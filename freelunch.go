// Package repro is a Go reproduction of "Message Reduction in the LOCAL
// Model Is a Free Lunch" (Bitton, Emek, Izumi, Kutten; DISC 2019).
//
// The paper shows that any t-round LOCAL algorithm can be simulated in O(t)
// rounds while sending only Õ(t·n^{1+ε}) messages — independent of the edge
// count m. Its engine is algorithm Sampler, a randomized spanner
// construction with constant stretch, near-linear size, and o(m) message
// complexity in the LOCAL model with unique edge IDs.
//
// # The Engine/Scheme API
//
// The facade is organized around two abstractions:
//
//   - A Scheme is one execution strategy for a t-round algorithm. Schemes
//     live in a registry keyed by name — Lookup, Schemes, RegisterScheme —
//     and the built-ins cover the paper and its baselines: "direct" (ground
//     truth, Θ(t·m) messages), "scheme1" (Theorem 3's first trade-off),
//     "scheme2" (the two-stage trade-off with Baswana–Sen), "scheme2en"
//     (the Elkin–Neiman stage anticipated by the paper's concluding
//     remarks), "scheme1-congest" (scheme1 under a CONGEST-style
//     WithBandwidth word cap, reporting its round dilation),
//     "hybrid" (gossip seeds WithHybridFraction of the t-balls, the
//     Sampler spanner collects the residue), "globalcompute" (the paper's
//     Section 7 extension: a spanner BFS tree convergecasts all knowledge),
//     and the push–pull baseline family: "gossip" (the fixed 100·n-round
//     schedule), "gossip-earlystop" (a central oracle halts the loop at the
//     cover round — same bill, a fraction of the wall clock), and
//     "gossip-converge" (distributed termination detection via a BFS-tree
//     convergecast, billed as its own phase on top of the gossip bill).
//     Every scheme produces outputs bit-identical to "direct" at the same
//     seed.
//
//   - An Engine holds one validated configuration, built from functional
//     options (WithSeed, WithConcurrency, WithGamma, WithStageK,
//     WithSpannerParams, WithObserver, ...), and runs schemes under it:
//
//     eng := repro.NewEngine(repro.WithSeed(42), repro.WithGamma(2))
//     res, err := eng.Run(ctx, "scheme2en", g, repro.MaxID(4))
//
// Runs take a context.Context and stop within one node step's work when it
// is cancelled, in both the sequential and the concurrent engine. Observers
// registered with WithObserver stream round- and phase-completion events
// while a simulation is in flight; MetricsSink is a ready-made observer
// that reduces the stream to bounded per-phase statistics, and
// WithRoundLedger(false) drops the internal per-round ledgers so long
// schedules run at O(1) memory in executed rounds.
//
// WithAdversary subjects a run to a pluggable network adversary — seeded
// message drops and duplications, crash-stop failures, bounded per-edge
// delivery delays, and mid-run edge insertions/deletions — with every send
// still billed honestly (PhaseCost.Dropped and PhaseCost.Duplicated
// attribute the damage). Adversarial runs are bit-identical across both
// engines at every worker count; the default (no adversary) is the paper's
// flawless synchronous network.
//
// An Engine memoizes its stage-1 Sampler spanners across Runs keyed by
// (graph, seed, spanner parameters) — the paper's amortization story —
// so repeated simulations at the same key pay the construction only once;
// see Engine for details, Engine.Reset to drop the cache, and WithNoCache
// to opt out. Replays of collected balls fan out over a worker pool under
// WithConcurrency with byte-identical outputs at every concurrency level.
//
// Graph construction, generators, target algorithms, and the LOCAL runtime
// live in the internal packages (internal/graph, internal/graph/gen,
// internal/algorithms, internal/local); the most useful types are aliased
// here so typical use needs only this package plus the generators.
//
// The pre-registry entry points (BuildSpanner, RunDirect, SimulateScheme1,
// SimulateScheme2, SimulateScheme2EN) remain as deprecated wrappers over
// the Engine and produce identical outputs at the same seed.
package repro

import (
	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/local"
)

// Aliases for the types a typical caller touches.
type (
	// Graph is an undirected multigraph with unique edge IDs.
	Graph = graph.Graph
	// NodeID identifies a node (0..n-1).
	NodeID = graph.NodeID
	// EdgeID is a globally unique edge identifier.
	EdgeID = graph.EdgeID
	// AlgorithmSpec describes a t-round LOCAL algorithm to simulate.
	AlgorithmSpec = algorithms.Spec
	// RunConfig configures the LOCAL simulator directly. New code should
	// prefer an Engine with functional options; RunConfig remains for the
	// deprecated entry points.
	RunConfig = local.Config
	// AdversaryProfile configures the pluggable network adversary a run
	// executes against (see WithAdversary): seeded message drops and
	// duplications, crash-stop failures, per-edge delivery delays, and
	// mid-run topology events. The zero value perturbs nothing.
	AdversaryProfile = adversary.Profile
	// AdversaryCrash schedules one crash-stop failure inside an
	// AdversaryProfile.
	AdversaryCrash = adversary.Crash
	// AdversaryEdgeEvent schedules one mid-run edge insertion or deletion
	// inside an AdversaryProfile.
	AdversaryEdgeEvent = adversary.EdgeEvent
)

// Edge-event operations for AdversaryEdgeEvent.Op.
const (
	// InsertEdge adds a fresh edge (new unique ID) between the event's
	// endpoints.
	InsertEdge = adversary.InsertEdge
	// DeleteEdge removes the lowest-ID edge between the event's endpoints
	// (a no-op when none exists).
	DeleteEdge = adversary.DeleteEdge
)

// AdversaryProfiles returns the names of the shipped adversary profiles, in
// registry order; NamedAdversary resolves one by name.
func AdversaryProfiles() []string { return adversary.Names() }

// NamedAdversary returns the shipped adversary profile with the given name.
func NamedAdversary(name string) (AdversaryProfile, bool) { return adversary.Named(name) }

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Spanner is a constructed spanner with its certificate and cost.
type Spanner struct {
	// Edges is the spanner edge set S ⊆ E.
	Edges map[EdgeID]bool
	// StretchBound is the certified stretch 2·3^K − 1.
	StretchBound int
	// Rounds and Messages are the distributed construction costs (zero for
	// centralized builds, whose cost model is not message passing).
	Rounds   int
	Messages int64
}

// Subgraph materializes H = (V, S) over the original graph.
func (s *Spanner) Subgraph(g *Graph) (*Graph, error) {
	return g.SubgraphByEdges(s.Edges)
}

// Verify checks that the spanner spans g within its certified stretch,
// returning the measured maximum edge stretch.
func (s *Spanner) Verify(g *Graph) (int, error) {
	_, rep, err := graph.VerifySpanner(g, s.Edges, s.StretchBound)
	if err != nil {
		return 0, err
	}
	return rep.MaxEdgeStretch, nil
}

// Target algorithm constructors, re-exported for convenience.
var (
	// MaxID is the t-hop maximum-identity algorithm (exact oracle: BFS).
	MaxID = algorithms.MaxID
	// MIS is Luby's maximal independent set with a fixed round budget.
	MIS = algorithms.MIS
	// MISRounds is the default whp-termination budget for MIS.
	MISRounds = algorithms.MISRounds
	// Coloring is randomized (Δ+1)-coloring with a fixed round budget.
	Coloring = algorithms.Coloring
	// ColoringRounds is the default whp budget for Coloring.
	ColoringRounds = algorithms.ColoringRounds
	// BFSLayers computes hop distances from a source up to t.
	BFSLayers = algorithms.BFS
)

// SimulationResult is the outcome of a simulated (or direct) execution.
type SimulationResult struct {
	// Scheme names the scheme that produced this result.
	Scheme string
	// Outputs holds each node's output, index = node.
	Outputs []any
	// Rounds and Messages are the total execution costs. For gossip runs
	// they are the cover round and the messages spent by it.
	Rounds   int
	Messages int64
	// Phases itemizes the pipeline stages in execution order.
	Phases []PhaseCost
	// StretchUsed and SpannerEdges describe the spanner that carried the
	// final collection (zero for direct and gossip runs).
	StretchUsed  int
	SpannerEdges int
}
