// Package repro is a Go reproduction of "Message Reduction in the LOCAL
// Model Is a Free Lunch" (Bitton, Emek, Izumi, Kutten; DISC 2019).
//
// The paper shows that any t-round LOCAL algorithm can be simulated in O(t)
// rounds while sending only Õ(t·n^{1+ε}) messages — independent of the edge
// count m. Its engine is algorithm Sampler, a randomized spanner
// construction with constant stretch, near-linear size, and o(m) message
// complexity in the LOCAL model with unique edge IDs.
//
// This package is the facade over the implementation:
//
//   - BuildSpanner runs algorithm Sampler (centralized reference or the
//     full distributed protocol under the bundled LOCAL simulator);
//   - SimulateScheme1 / SimulateScheme2 run the paper's two
//     message-reduction schemes end to end on a target algorithm;
//   - RunDirect executes a target algorithm directly (the ground truth and
//     the Θ(t·m)-message baseline).
//
// Graph construction, generators, target algorithms, and the LOCAL runtime
// live in the internal packages (internal/graph, internal/graph/gen,
// internal/algorithms, internal/local); the most useful types are aliased
// here so typical use needs only this package plus the generators.
package repro

import (
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/simulate"
)

// Aliases for the types a typical caller touches.
type (
	// Graph is an undirected multigraph with unique edge IDs.
	Graph = graph.Graph
	// NodeID identifies a node (0..n-1).
	NodeID = graph.NodeID
	// EdgeID is a globally unique edge identifier.
	EdgeID = graph.EdgeID
	// AlgorithmSpec describes a t-round LOCAL algorithm to simulate.
	AlgorithmSpec = algorithms.Spec
	// RunConfig configures the LOCAL simulator (engine choice, KT1, ...).
	RunConfig = local.Config
)

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// SpannerOptions configures BuildSpanner.
type SpannerOptions struct {
	// K is the hierarchy depth (stretch bound 2·3^K − 1, size exponent
	// 1 + 1/(2^{K+1}−1)). Default 2.
	K int
	// H is the trial parameter (message exponent surplus 1/H; round factor
	// H). Default 4.
	H int
	// C scales the whp thresholds. Default 1; experiments at n below a few
	// thousand often use 0.5.
	C float64
	// Seed drives all randomness.
	Seed uint64
	// Distributed selects the full LOCAL-model protocol (Section 5 of the
	// paper) instead of the centralized reference implementation; the
	// result then carries round and message costs.
	Distributed bool
	// Run configures the simulator in distributed mode.
	Run RunConfig
}

func (o SpannerOptions) params() core.Params {
	k, h := o.K, o.H
	if k == 0 {
		k = 2
	}
	if h == 0 {
		h = 4
	}
	p := core.Default(k, h)
	if o.C != 0 {
		p.C = o.C
	}
	return p
}

// Spanner is a constructed spanner with its certificate and cost.
type Spanner struct {
	// Edges is the spanner edge set S ⊆ E.
	Edges map[EdgeID]bool
	// StretchBound is the certified stretch 2·3^K − 1.
	StretchBound int
	// Rounds and Messages are the distributed construction costs (zero for
	// centralized builds, whose cost model is not message passing).
	Rounds   int
	Messages int64
}

// Subgraph materializes H = (V, S) over the original graph.
func (s *Spanner) Subgraph(g *Graph) (*Graph, error) {
	return g.SubgraphByEdges(s.Edges)
}

// Verify checks that the spanner spans g within its certified stretch,
// returning the measured maximum edge stretch.
func (s *Spanner) Verify(g *Graph) (int, error) {
	_, rep, err := graph.VerifySpanner(g, s.Edges, s.StretchBound)
	if err != nil {
		return 0, err
	}
	return rep.MaxEdgeStretch, nil
}

// BuildSpanner runs algorithm Sampler on the connected simple graph g.
func BuildSpanner(g *Graph, opts SpannerOptions) (*Spanner, error) {
	p := opts.params()
	if opts.Distributed {
		res, err := core.BuildDistributed(g, p, opts.Seed, opts.Run)
		if err != nil {
			return nil, err
		}
		return &Spanner{
			Edges:        res.S,
			StretchBound: res.StretchBound(),
			Rounds:       res.Run.Rounds,
			Messages:     res.Run.Messages,
		}, nil
	}
	res, err := core.Build(g, p, opts.Seed)
	if err != nil {
		return nil, err
	}
	return &Spanner{Edges: res.S, StretchBound: res.StretchBound()}, nil
}

// Target algorithm constructors, re-exported for convenience.
var (
	// MaxID is the t-hop maximum-identity algorithm (exact oracle: BFS).
	MaxID = algorithms.MaxID
	// MIS is Luby's maximal independent set with a fixed round budget.
	MIS = algorithms.MIS
	// MISRounds is the default whp-termination budget for MIS.
	MISRounds = algorithms.MISRounds
	// Coloring is randomized (Δ+1)-coloring with a fixed round budget.
	Coloring = algorithms.Coloring
	// ColoringRounds is the default whp budget for Coloring.
	ColoringRounds = algorithms.ColoringRounds
	// BFSLayers computes hop distances from a source up to t.
	BFSLayers = algorithms.BFS
)

// SimulationResult is the outcome of a simulated (or direct) execution.
type SimulationResult struct {
	// Outputs holds each node's output, index = node.
	Outputs []any
	// Rounds and Messages are the total execution costs.
	Rounds   int
	Messages int64
	// Phases itemizes the pipeline (spanner construction, collections) for
	// the simulation schemes; nil for direct runs.
	Phases []simulate.PhaseCost
}

// RunDirect executes the algorithm directly on g: the ground truth and the
// Θ(t·m)-message baseline.
func RunDirect(g *Graph, spec AlgorithmSpec, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	outs, run, err := simulate.Direct(g, spec, seed, cfg)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{Outputs: outs, Rounds: run.Rounds, Messages: run.Messages}, nil
}

// SimulateScheme1 simulates spec on g with the paper's first
// message-reduction scheme (Theorem 3): a Sampler spanner with parameter
// gamma carries a stretch·t-round collection of every node's initial
// knowledge; outputs are recovered by local replay and match RunDirect's
// exactly (same seed).
func SimulateScheme1(g *Graph, spec AlgorithmSpec, gamma int, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	res, err := simulate.Scheme1(g, spec, simulate.Scheme1Params(gamma), seed, cfg)
	if err != nil {
		return nil, err
	}
	return schemeResult(res, spec)
}

// SimulateScheme2 simulates spec with the paper's two-stage scheme: the
// Sampler spanner first simulates an off-the-shelf spanner construction
// (Baswana–Sen with stretch 2·bsK−1), whose output carries the final
// collection.
func SimulateScheme2(g *Graph, spec AlgorithmSpec, gamma, bsK int, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	res, err := simulate.Scheme2(g, spec, simulate.Scheme1Params(gamma), bsK, seed, cfg)
	if err != nil {
		return nil, err
	}
	return schemeResult(res, spec)
}

// SimulateScheme2EN is SimulateScheme2 with the Elkin–Neiman construction
// as the simulated stage (stretch 2·enK−1 in enK+O(1) rounds instead of
// Baswana–Sen's O(enK²)) — the improvement anticipated by the paper's
// concluding remarks.
func SimulateScheme2EN(g *Graph, spec AlgorithmSpec, gamma, enK int, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	res, err := simulate.Scheme2With(g, spec, simulate.Scheme1Params(gamma), simulate.ElkinNeimanStage2(enK), seed, cfg)
	if err != nil {
		return nil, err
	}
	return schemeResult(res, spec)
}

func schemeResult(res *simulate.SchemeResult, spec AlgorithmSpec) (*SimulationResult, error) {
	outs, err := res.Coll.ReplayAll(spec)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		Outputs:  outs,
		Rounds:   res.TotalRounds(),
		Messages: res.TotalMessages(),
		Phases:   res.Phases,
	}, nil
}
