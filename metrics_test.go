package repro_test

// Tests for the streaming metrics sink and the WithRoundLedger opt-out: the
// sink's bounded aggregates must agree with the exact ledgers, snapshots
// must be safe while concurrent runs share the sink, and disabling the
// ledger must leave every scheme's observable result bit-identical.

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// metricsGraph is a small deterministic workload shared by the sink tests.
func metricsGraph() *repro.Graph {
	return gen.ConnectedGNP(32, 0.12, xrand.New(21))
}

// TestMetricsSinkMatchesExactLedger cross-checks the sink against a plain
// recording observer on the same run: per-phase totals must agree with the
// sum of the streamed rounds, the histogram must count every round, and the
// billed totals must match the phase costs.
func TestMetricsSinkMatchesExactLedger(t *testing.T) {
	g := metricsGraph()
	sink := repro.NewMetricsSink(0)
	exactRounds := map[string]int{}
	exactMsgs := map[string]int64{}
	billed := map[string]int64{}
	eng := repro.NewEngine(
		repro.WithSeed(7),
		repro.WithObserver(sink),
		repro.WithObserver(repro.ObserverFuncs{
			OnRound: func(phase string, round int, messages int64) {
				exactRounds[phase]++
				exactMsgs[phase] += messages
			},
			OnPhase: func(c repro.PhaseCost) { billed[c.Name] += c.Messages },
		}),
	)
	if _, err := eng.Run(context.Background(), "scheme1", g, repro.MaxID(3)); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	if len(snap.Phases) == 0 {
		t.Fatal("snapshot has no phases")
	}
	for _, ph := range snap.Phases {
		if ph.Rounds != exactRounds[ph.Name] {
			t.Errorf("phase %s: sink rounds %d, exact %d", ph.Name, ph.Rounds, exactRounds[ph.Name])
		}
		if ph.Messages != exactMsgs[ph.Name] {
			t.Errorf("phase %s: sink messages %d, exact %d", ph.Name, ph.Messages, exactMsgs[ph.Name])
		}
		if ph.BilledMessages != billed[ph.Name] {
			t.Errorf("phase %s: sink billed %d, observer saw %d", ph.Name, ph.BilledMessages, billed[ph.Name])
		}
		var histCount uint64
		var histTail int64
		for _, b := range ph.Histogram {
			histCount += b.Count
		}
		for _, s := range ph.Tail {
			histTail += s.Messages
		}
		if histCount != uint64(ph.Rounds) {
			t.Errorf("phase %s: histogram holds %d rounds, stream had %d", ph.Name, histCount, ph.Rounds)
		}
		if ph.Rounds <= repro.DefaultMetricsTail && histTail != ph.Messages {
			t.Errorf("phase %s: full tail sums to %d messages, stream had %d", ph.Name, histTail, ph.Messages)
		}
	}
}

// TestMetricsSinkTailBounded pins the ring-buffer contract at the facade:
// a long gossip schedule streams thousands of rounds, the tail retains
// exactly the configured capacity with the most recent rounds.
func TestMetricsSinkTailBounded(t *testing.T) {
	g := gen.Cycle(12)
	const tail = 16
	sink := repro.NewMetricsSink(tail)
	eng := repro.NewEngine(
		repro.WithSeed(3),
		repro.WithMaxRounds(600),
		repro.WithRoundLedger(false),
		repro.WithObserver(sink),
	)
	if _, err := eng.Run(context.Background(), "gossip", g, repro.MaxID(2)); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	var gossip *repro.PhaseMetrics
	for i := range snap.Phases {
		if snap.Phases[i].Name == "gossip" {
			gossip = &snap.Phases[i]
		}
	}
	if gossip == nil {
		t.Fatalf("no gossip phase in %+v", snap.Phases)
	}
	if gossip.Rounds != 601 {
		t.Fatalf("gossip streamed %d rounds, want the full 601-round schedule", gossip.Rounds)
	}
	if len(gossip.Tail) != tail {
		t.Fatalf("tail holds %d rounds, want the %d-round cap", len(gossip.Tail), tail)
	}
	for i, s := range gossip.Tail {
		if want := 601 - tail + i; s.Round != want {
			t.Fatalf("tail[%d].Round = %d, want %d (most recent rounds, oldest first)", i, s.Round, want)
		}
	}
}

// TestMetricsSinkSnapshotUnderConcurrentRuns exercises the documented
// concurrent-Runs contract under the race detector: several goroutines run
// schemes on one shared engine+sink while another hammers Snapshot and
// Reset. The final snapshot must also account for every completed run.
func TestMetricsSinkSnapshotUnderConcurrentRuns(t *testing.T) {
	g := metricsGraph()
	sink := repro.NewMetricsSink(8)
	eng := repro.NewEngine(
		repro.WithSeed(5),
		repro.WithConcurrency(2),
		repro.WithNoCache(),
		repro.WithObserver(sink),
	)
	const runs = 4
	stop := make(chan struct{})
	spinnerDone := make(chan struct{})
	go func() {
		defer close(spinnerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = sink.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	var runErr error
	var mu sync.Mutex
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Run(context.Background(), "scheme1", g, repro.MaxID(2)); err != nil {
				mu.Lock()
				runErr = err
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-spinnerDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	snap := sink.Snapshot()
	var collects int
	for _, ph := range snap.Phases {
		if ph.Name == "collect" {
			collects = ph.Completions
		}
	}
	if collects != runs {
		t.Fatalf("sink saw %d collect completions, want one per run (%d)", collects, runs)
	}
	sink.Reset()
	if got := sink.Snapshot(); len(got.Phases) != 0 {
		t.Fatalf("snapshot after Reset still has %d phases", len(got.Phases))
	}
}

// TestRoundLedgerOffBitIdentical runs every registered scheme with the
// per-round ledger enabled and disabled and requires identical observable
// results: same outputs, same total bill, same phase ledger. Disabling the
// ledger is a memory knob, never a semantics knob — in particular the
// gossip-backed schemes' cover-round billing must survive on the compact
// arrival-round record.
func TestRoundLedgerOffBitIdentical(t *testing.T) {
	g := metricsGraph()
	spec := repro.MaxID(3)
	for _, s := range repro.Schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			run := func(ledger bool) *repro.SimulationResult {
				eng := repro.NewEngine(
					repro.WithSeed(9),
					repro.WithRoundLedger(ledger),
				)
				res, err := eng.RunScheme(context.Background(), s, g, spec)
				if err != nil {
					t.Fatalf("ledger=%v: %v", ledger, err)
				}
				return res
			}
			on, off := run(true), run(false)
			if !reflect.DeepEqual(on.Outputs, off.Outputs) {
				t.Fatal("outputs differ with the ledger disabled")
			}
			if on.Rounds != off.Rounds || on.Messages != off.Messages {
				t.Fatalf("bill drifted: ledger on (%d rounds, %d msgs), off (%d, %d)",
					on.Rounds, on.Messages, off.Rounds, off.Messages)
			}
			if !reflect.DeepEqual(on.Phases, off.Phases) {
				t.Fatalf("phase ledger drifted:\non:  %+v\noff: %+v", on.Phases, off.Phases)
			}
		})
	}
}

// TestMetricsSnapshotJSONShape keeps the snapshot JSON-serializable with
// stable field names — cmd/simulate -metrics prints exactly this.
func TestMetricsSnapshotJSONShape(t *testing.T) {
	sink := repro.NewMetricsSink(4)
	sink.RoundCompleted("direct", 0, 12)
	sink.PhaseCompleted(repro.PhaseCost{Name: "direct", Rounds: 1, Messages: 12})
	snap := sink.Snapshot()
	got := fmt.Sprintf("%+v", snap.Phases[0].Tail)
	if want := "[{Round:0 Messages:12}]"; got != want {
		t.Fatalf("tail = %s, want %s", got, want)
	}
	if snap.TotalRounds != 1 || snap.TotalMessages != 12 {
		t.Fatalf("totals = %d rounds / %d messages", snap.TotalRounds, snap.TotalMessages)
	}
}
