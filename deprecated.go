package repro

// The pre-registry entry points. Each is a thin wrapper over the
// Engine/Scheme API that maps the old loose parameters onto functional
// options; outputs are bit-identical to the historical implementations at
// the same seed (the scheme pipelines call the same internal code with the
// same parameters).

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// SpannerOptions configures BuildSpanner.
//
// Deprecated: use NewEngine with WithSpannerParams and Engine.BuildSpanner.
type SpannerOptions struct {
	// K is the hierarchy depth (stretch bound 2·3^K − 1, size exponent
	// 1 + 1/(2^{K+1}−1)). Default 2.
	K int
	// H is the trial parameter (message exponent surplus 1/H; round factor
	// H). Default 4.
	H int
	// C scales the whp thresholds. Default 1; experiments at n below a few
	// thousand often use 0.5.
	C float64
	// Seed drives all randomness.
	Seed uint64
	// Distributed selects the full LOCAL-model protocol (Section 5 of the
	// paper) instead of the centralized reference implementation; the
	// result then carries round and message costs.
	Distributed bool
	// Run configures the simulator in distributed mode.
	Run RunConfig
}

func (o SpannerOptions) params() core.Params {
	k, h := o.K, o.H
	if k == 0 {
		k = 2
	}
	if h == 0 {
		h = 4
	}
	p := core.Default(k, h)
	if o.C != 0 {
		p.C = o.C
	}
	return p
}

// BuildSpanner runs algorithm Sampler on the connected simple graph g.
//
// Deprecated: use Engine.BuildSpanner for the distributed protocol. The
// centralized reference implementation remains available only through this
// wrapper (Distributed: false).
func BuildSpanner(g *Graph, opts SpannerOptions) (*Spanner, error) {
	if err := checkConfig(opts.Run); err != nil {
		return nil, err
	}
	p := opts.params()
	if opts.Distributed {
		eng := NewEngine(append(optionsFromConfig(opts.Run, opts.Seed),
			WithSpannerParams(p.K, p.H, opts.C))...)
		return eng.BuildSpanner(context.Background(), g)
	}
	res, err := core.Build(g, p, opts.Seed)
	if err != nil {
		return nil, err
	}
	return &Spanner{Edges: res.S, StretchBound: res.StretchBound()}, nil
}

// optionsFromConfig translates a raw simulator config into engine options.
func optionsFromConfig(cfg RunConfig, seed uint64) []Option {
	opts := []Option{WithSeed(seed)}
	if cfg.KT1 {
		opts = append(opts, WithKT1(true))
	}
	if cfg.Concurrent {
		if cfg.Workers > 0 {
			opts = append(opts, WithConcurrency(cfg.Workers))
		} else {
			opts = append(opts, WithConcurrency(-1))
		}
	}
	if cfg.MaxRounds != 0 {
		opts = append(opts, WithMaxRounds(cfg.MaxRounds))
	}
	if cfg.LogNSlack != 0 {
		opts = append(opts, WithLogNSlack(cfg.LogNSlack))
	}
	if cfg.OnRound != nil {
		round := cfg.OnRound
		opts = append(opts, WithObserver(ObserverFuncs{
			OnRound: func(_ string, r int, m int64) { round(r, m) },
		}))
	}
	return opts
}

// checkConfig rejects config fields the option model deliberately does not
// carry: IDMap and NOverride are ball-replay internals the pipelines manage
// themselves. Erroring beats the silent drop that would otherwise change
// outputs at the same seed.
func checkConfig(cfg RunConfig) error {
	if cfg.IDMap != nil || cfg.NOverride > 0 {
		return fmt.Errorf("repro: RunConfig.IDMap/NOverride are replay internals and cannot be set on facade runs")
	}
	return nil
}

// RunDirect executes the algorithm directly on g: the ground truth and the
// Θ(t·m)-message baseline.
//
// Deprecated: use Engine.Run with scheme "direct".
func RunDirect(g *Graph, spec AlgorithmSpec, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	if err := checkConfig(cfg); err != nil {
		return nil, err
	}
	res, err := NewEngine(optionsFromConfig(cfg, seed)...).Run(context.Background(), "direct", g, spec)
	if err != nil {
		return nil, err
	}
	res.Phases = nil // historical contract: no phase ledger for direct runs
	return res, nil
}

// SimulateScheme1 simulates spec on g with the paper's first
// message-reduction scheme (Theorem 3): a Sampler spanner with parameter
// gamma carries a stretch·t-round collection of every node's initial
// knowledge; outputs are recovered by local replay and match RunDirect's
// exactly (same seed).
//
// Deprecated: use Engine.Run with scheme "scheme1" and WithGamma.
func SimulateScheme1(g *Graph, spec AlgorithmSpec, gamma int, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	if err := checkConfig(cfg); err != nil {
		return nil, err
	}
	eng := NewEngine(append(optionsFromConfig(cfg, seed), WithGamma(gamma))...)
	return eng.Run(context.Background(), "scheme1", g, spec)
}

// SimulateScheme2 simulates spec with the paper's two-stage scheme: the
// Sampler spanner first simulates an off-the-shelf spanner construction
// (Baswana–Sen with stretch 2·bsK−1), whose output carries the final
// collection.
//
// Deprecated: use Engine.Run with scheme "scheme2", WithGamma, WithStageK.
func SimulateScheme2(g *Graph, spec AlgorithmSpec, gamma, bsK int, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	if err := checkConfig(cfg); err != nil {
		return nil, err
	}
	eng := NewEngine(append(optionsFromConfig(cfg, seed), WithGamma(gamma), WithStageK(bsK))...)
	return eng.Run(context.Background(), "scheme2", g, spec)
}

// SimulateScheme2EN is SimulateScheme2 with the Elkin–Neiman construction
// as the simulated stage (stretch 2·enK−1 in enK+O(1) rounds instead of
// Baswana–Sen's O(enK²)) — the improvement anticipated by the paper's
// concluding remarks.
//
// Deprecated: use Engine.Run with scheme "scheme2en", WithGamma, WithStageK.
func SimulateScheme2EN(g *Graph, spec AlgorithmSpec, gamma, enK int, seed uint64, cfg RunConfig) (*SimulationResult, error) {
	if err := checkConfig(cfg); err != nil {
		return nil, err
	}
	eng := NewEngine(append(optionsFromConfig(cfg, seed), WithGamma(gamma), WithStageK(enK))...)
	return eng.Run(context.Background(), "scheme2en", g, spec)
}
