package repro_test

// Facade-level pins for the pluggable adversary layer: every shipped
// profile is golden-pinned bit for bit on both engines at several worker
// counts, the 100%-drop starvation profile surfaces typed budget errors
// registry-wide instead of hanging, and early-stopped gossip under delivery
// delays reaches the exact unstopped bill.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro"
)

// adversaryGoldenSchemes is the scheme slice the per-profile goldens cover:
// the ground truth, both paper pipelines, the early-stopping gossip
// baseline, and the Section 7 extension — every distinct protocol family
// the adversary can perturb.
var adversaryGoldenSchemes = []string{"direct", "scheme1", "scheme2", "gossip-earlystop", "globalcompute"}

// renderRunOrError renders a run like the golden files do, or pins the
// error string: under crash and blackout profiles some schemes must fail
// (typed, deterministic), and that failure mode is part of the pinned
// behaviour.
func renderRunOrError(res *repro.SimulationResult, err error) string {
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	return renderResult(res)
}

// TestAdversaryGolden pins every shipped adversary profile, on every scheme
// in adversaryGoldenSchemes, against committed golden output — and asserts
// the sequential and concurrent engines render identically at several
// worker counts. Adversarial decisions are pure hashes of message identity,
// so a worker-count-dependent render is a determinism regression.
func TestAdversaryGolden(t *testing.T) {
	g := goldenGraph()
	spec := repro.MaxID(3)
	const seed = 5
	for _, name := range repro.AdversaryProfiles() {
		profile, ok := repro.NamedAdversary(name)
		if !ok {
			t.Fatalf("shipped profile %q did not resolve", name)
		}
		for _, scheme := range adversaryGoldenSchemes {
			t.Run(name+"/"+scheme, func(t *testing.T) {
				run := func(concurrency int) string {
					eng := repro.NewEngine(
						repro.WithSeed(seed),
						repro.WithGamma(1),
						repro.WithStageK(2),
						repro.WithConcurrency(concurrency),
						repro.WithAdversary(profile),
					)
					res, err := eng.Run(context.Background(), scheme, g, spec)
					return renderRunOrError(res, err)
				}
				sequential := run(0)
				for _, workers := range []int{2, 7} {
					if got := run(workers); got != sequential {
						t.Fatalf("workers=%d drifted from the sequential engine:\n--- concurrent ---\n%s--- sequential ---\n%s",
							workers, got, sequential)
					}
				}
				checkGolden(t, "adversary-"+name+"-"+scheme, sequential)
			})
		}
	}
}

// TestAdversaryStarvationTyped sweeps the whole scheme registry under the
// shipped total-loss profile: with a finite round budget every scheme must
// fail with the typed ErrRoundBudget — promptly, never hanging — and under
// a wall-clock budget with the typed ErrDeadline.
func TestAdversaryStarvationTyped(t *testing.T) {
	g := goldenGraph()
	spec := repro.MaxID(3)
	blackout, ok := repro.NamedAdversary("blackout")
	if !ok {
		t.Fatal("blackout profile missing from the registry")
	}
	for _, s := range repro.Schemes() {
		t.Run(s.Name()+"/rounds", func(t *testing.T) {
			eng := repro.NewEngine(
				repro.WithSeed(5),
				repro.WithAdversary(blackout),
				repro.WithMaxRounds(3), // below every pipeline's billed schedule
			)
			_, err := eng.RunScheme(context.Background(), s, g, spec)
			if !errors.Is(err, repro.ErrRoundBudget) {
				t.Fatalf("err = %v, want ErrRoundBudget", err)
			}
		})
		t.Run(s.Name()+"/deadline", func(t *testing.T) {
			eng := repro.NewEngine(
				repro.WithSeed(5),
				repro.WithAdversary(blackout),
				repro.WithDeadline(time.Nanosecond),
			)
			_, err := eng.RunScheme(context.Background(), s, g, spec)
			if !errors.Is(err, repro.ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
		})
	}
}

// TestGossipEarlyStopUnderDelayExactBill is the in-flight gate's
// end-to-end regression: under a pure-delay profile, gossip-earlystop must
// reach the exact cover round, message bill, damage attribution, and
// outputs of the unstopped fixed-schedule gossip baseline. If early
// stopping could fire with delayed rumors still in flight, the stopped
// prefix would no longer be the unstopped schedule's prefix and the bills
// would drift.
func TestGossipEarlyStopUnderDelayExactBill(t *testing.T) {
	g := goldenGraph()
	spec := repro.MaxID(3)
	delay, ok := repro.NamedAdversary("delay2")
	if !ok {
		t.Fatal("delay2 profile missing from the registry")
	}
	run := func(scheme string) *repro.SimulationResult {
		eng := repro.NewEngine(repro.WithSeed(5), repro.WithAdversary(delay))
		res, err := eng.Run(context.Background(), scheme, g, spec)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		return res
	}
	full := run("gossip")
	early := run("gossip-earlystop")
	if full.Rounds != early.Rounds || full.Messages != early.Messages {
		t.Fatalf("bills differ: unstopped %d rounds / %d messages, earlystop %d / %d",
			full.Rounds, full.Messages, early.Rounds, early.Messages)
	}
	if !reflect.DeepEqual(full.Outputs, early.Outputs) {
		t.Fatal("outputs differ between unstopped and early-stopped gossip under delay")
	}
}

// TestAdversaryNilPathByteIdentical double-checks the no-adversary
// contract at the facade: an engine with a zero profile renders exactly
// like an engine with no adversary at all (the zero profile compiles to
// the nil fast path).
func TestAdversaryNilPathByteIdentical(t *testing.T) {
	g := goldenGraph()
	spec := repro.MaxID(3)
	for _, scheme := range []string{"direct", "scheme1"} {
		plain := repro.NewEngine(repro.WithSeed(5))
		zeroed := repro.NewEngine(repro.WithSeed(5), repro.WithAdversary(repro.AdversaryProfile{Name: "noop"}))
		a, err := plain.Run(context.Background(), scheme, g, spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := zeroed.Run(context.Background(), scheme, g, spec)
		if err != nil {
			t.Fatal(err)
		}
		if renderResult(a) != renderResult(b) {
			t.Fatalf("%s: zero profile perturbed the run", scheme)
		}
	}
}

// TestWithAdversaryValidation pins option validation: a malformed profile
// fails fast on every scheme, with the profile named in the error.
func TestWithAdversaryValidation(t *testing.T) {
	g := goldenGraph()
	eng := repro.NewEngine(repro.WithAdversary(repro.AdversaryProfile{DropRate: 1.5}))
	_, err := eng.Run(context.Background(), "direct", g, repro.MaxID(2))
	if err == nil {
		t.Fatal("drop rate 1.5 accepted")
	}
	if want := "drop rate"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want mention of %q", err, want)
	}
}
