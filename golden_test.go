package repro_test

// Golden seed-equivalence tests for the deprecated wrappers (deprecated.go).
// Each wrapper runs on a pinned graph and seed and its full result — cost
// ledger and every node output — is compared byte for byte against a
// committed golden file, so future refactors cannot silently drift the
// legacy API. Regenerate with:
//
//	go test -run TestDeprecatedGolden -update-golden .

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/golden")

// goldenGraph is the pinned input: construction is fully deterministic, so
// the same graph is rebuilt in every run of the suite.
func goldenGraph() *repro.Graph {
	return gen.ConnectedGNP(36, 0.12, xrand.New(77))
}

// renderResult serializes a simulation result into the stable line format
// the golden files use.
func renderResult(res *repro.SimulationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme=%s rounds=%d messages=%d stretch=%d spannerEdges=%d\n",
		res.Scheme, res.Rounds, res.Messages, res.StretchUsed, res.SpannerEdges)
	for _, ph := range res.Phases {
		fmt.Fprintf(&b, "phase %s rounds=%d messages=%d", ph.Name, ph.Rounds, ph.Messages)
		if ph.Dilation != 0 {
			fmt.Fprintf(&b, " dilation=%.4f", ph.Dilation)
		}
		// Only adversarial runs have damage to attribute; flawless runs keep
		// their historical golden lines byte for byte.
		if ph.Dropped != 0 {
			fmt.Fprintf(&b, " dropped=%d", ph.Dropped)
		}
		if ph.Duplicated != 0 {
			fmt.Fprintf(&b, " duplicated=%d", ph.Duplicated)
		}
		fmt.Fprintf(&b, "\n")
	}
	for v, out := range res.Outputs {
		fmt.Fprintf(&b, "node %d %v\n", v, out)
	}
	return b.String()
}

// renderSpanner serializes a built spanner: certificate, costs, and the
// sorted edge set.
func renderSpanner(sp *repro.Spanner) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stretchBound=%d rounds=%d messages=%d edges=%d\n",
		sp.StretchBound, sp.Rounds, sp.Messages, len(sp.Edges))
	ids := make([]repro.EdgeID, 0, len(sp.Edges))
	for id := range sp.Edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "edge %d\n", id)
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from its golden output.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestDeprecatedGolden pins every deprecated entry point against committed
// golden output at a fixed (graph, seed).
func TestDeprecatedGolden(t *testing.T) {
	g := goldenGraph()
	spec := repro.MaxID(3)
	const seed, gamma, stageK = 5, 1, 2

	t.Run("rundirect", func(t *testing.T) {
		res, err := repro.RunDirect(g, spec, seed, repro.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "rundirect", renderResult(res))
	})
	t.Run("scheme1", func(t *testing.T) {
		res, err := repro.SimulateScheme1(g, spec, gamma, seed, repro.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "scheme1", renderResult(res))
	})
	t.Run("scheme2", func(t *testing.T) {
		res, err := repro.SimulateScheme2(g, spec, gamma, stageK, seed, repro.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "scheme2", renderResult(res))
	})
	t.Run("scheme2en", func(t *testing.T) {
		res, err := repro.SimulateScheme2EN(g, spec, gamma, stageK, seed, repro.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "scheme2en", renderResult(res))
	})
	t.Run("spanner-centralized", func(t *testing.T) {
		sp, err := repro.BuildSpanner(g, repro.SpannerOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "spanner-centralized", renderSpanner(sp))
	})
	t.Run("spanner-distributed", func(t *testing.T) {
		sp, err := repro.BuildSpanner(g, repro.SpannerOptions{Seed: seed, Distributed: true})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "spanner-distributed", renderSpanner(sp))
	})
}

// TestSchemeGolden pins every *registered* scheme against committed golden
// output at a fixed (graph, seed): full cost ledger (including the CONGEST
// scheme's round dilation) and every node output. A newly registered scheme
// fails this test until its golden file is generated with -update-golden —
// which is exactly the CI drift guard's contract: bit-level behaviour of the
// registry cannot change silently.
func TestSchemeGolden(t *testing.T) {
	g := goldenGraph()
	spec := repro.MaxID(3)
	const seed = 5
	for _, s := range repro.Schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			eng := repro.NewEngine(
				repro.WithSeed(seed),
				repro.WithGamma(1),
				repro.WithStageK(2),
			)
			res, err := eng.RunScheme(context.Background(), s, g, spec)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "scheme-"+s.Name(), renderResult(res))
		})
	}
}
