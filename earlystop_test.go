package repro_test

// Black-box tests of the early-stopping gossip family: the exact-equivalence
// contract (gossip-earlystop's bill through the cover round is bit-identical
// to plain gossip's), the strictly-fewer-executed-rounds guarantee CI
// asserts on the smoke graph, the WithEarlyStop knob on the plain baseline,
// and gossip-converge's honestly billed termination-detection phase.

import (
	"context"
	"reflect"
	"testing"

	"repro"
)

// countingObserver tallies executed rounds per phase — the probe for "how
// many rounds did the simulator actually run", as opposed to the billed
// rounds a result reports.
type countingObserver struct {
	rounds map[string]int
	phases []repro.PhaseCost
}

func (o *countingObserver) RoundCompleted(phase string, round int, messages int64) {
	o.rounds[phase]++
}

func (o *countingObserver) PhaseCompleted(c repro.PhaseCost) {
	o.phases = append(o.phases, c)
}

func runWithCounter(t *testing.T, scheme string, opts ...repro.Option) (*repro.SimulationResult, *countingObserver) {
	t.Helper()
	obs := &countingObserver{rounds: map[string]int{}}
	opts = append(opts, repro.WithSeed(7), repro.WithObserver(obs))
	eng := repro.NewEngine(opts...)
	res, err := eng.Run(context.Background(), scheme, testGraph(), repro.MaxID(3))
	if err != nil {
		t.Fatalf("%s: %v", scheme, err)
	}
	return res, obs
}

// TestGossipEarlyStopBillEquivalence is the acceptance-criterion pin: the
// early-stop variant's bill through the cover round — rounds, messages, and
// the per-phase breakdown — matches plain gossip's exactly, and so do the
// outputs.
func TestGossipEarlyStopBillEquivalence(t *testing.T) {
	full, _ := runWithCounter(t, "gossip")
	early, _ := runWithCounter(t, "gossip-earlystop")

	if early.Rounds != full.Rounds {
		t.Fatalf("gossip-earlystop billed %d rounds, gossip %d", early.Rounds, full.Rounds)
	}
	if early.Messages != full.Messages {
		t.Fatalf("gossip-earlystop billed %d messages, gossip %d", early.Messages, full.Messages)
	}
	if len(early.Phases) != 1 || len(full.Phases) != 1 {
		t.Fatalf("phase counts: earlystop %d, gossip %d, want 1 each", len(early.Phases), len(full.Phases))
	}
	if early.Phases[0].Rounds != full.Phases[0].Rounds || early.Phases[0].Messages != full.Phases[0].Messages {
		t.Fatalf("phase bills differ: %+v vs %+v", early.Phases[0], full.Phases[0])
	}
	if !reflect.DeepEqual(early.Outputs, full.Outputs) {
		t.Fatal("gossip-earlystop outputs differ from gossip's")
	}
}

// TestEarlyStopExecutesFewerRounds is the CI assertion: on the smoke graph,
// the early-stop variant executes strictly fewer simulator rounds than the
// fixed schedule (it stops at cover+1; the fixed schedule runs 100·n+1
// rounds). CI runs this by name next to the bench gates.
func TestEarlyStopExecutesFewerRounds(t *testing.T) {
	_, fullObs := runWithCounter(t, "gossip")
	res, earlyObs := runWithCounter(t, "gossip-earlystop")

	fullRounds := fullObs.rounds["gossip"]
	earlyRounds := earlyObs.rounds["gossip(earlystop)"]
	if fullRounds == 0 || earlyRounds == 0 {
		t.Fatalf("observer saw %d full and %d early rounds; expected both nonzero", fullRounds, earlyRounds)
	}
	if earlyRounds >= fullRounds {
		t.Fatalf("early stop executed %d rounds, fixed schedule %d — want strictly fewer", earlyRounds, fullRounds)
	}
	if earlyRounds != res.Rounds+1 {
		t.Fatalf("early stop executed %d rounds for a bill of %d; want exactly cover+1", earlyRounds, res.Rounds)
	}
}

// TestWithEarlyStopKnob: the plain gossip scheme under WithEarlyStop(true)
// produces a bit-identical result (golden-safe), only executing fewer
// rounds; the default remains the full fixed schedule.
func TestWithEarlyStopKnob(t *testing.T) {
	def, defObs := runWithCounter(t, "gossip")
	fast, fastObs := runWithCounter(t, "gossip", repro.WithEarlyStop(true))

	if fast.Rounds != def.Rounds || fast.Messages != def.Messages {
		t.Fatalf("WithEarlyStop changed the bill: (%d, %d) vs (%d, %d)",
			fast.Rounds, fast.Messages, def.Rounds, def.Messages)
	}
	if !reflect.DeepEqual(fast.Outputs, def.Outputs) {
		t.Fatal("WithEarlyStop changed the outputs")
	}
	if fastObs.rounds["gossip"] >= defObs.rounds["gossip"] {
		t.Fatalf("WithEarlyStop executed %d rounds, default %d — want strictly fewer",
			fastObs.rounds["gossip"], defObs.rounds["gossip"])
	}
}

// TestGossipConvergeBillsDetectionSeparately: the distributed-termination
// variant reports the convergecast pass as its own nonzero phase, sums it
// into the totals, and still reproduces direct execution's outputs.
func TestGossipConvergeBillsDetectionSeparately(t *testing.T) {
	res, obs := runWithCounter(t, "gossip-converge")
	gossip, _ := runWithCounter(t, "gossip")

	if len(res.Phases) != 2 {
		t.Fatalf("gossip-converge reported %d phases, want 2: %+v", len(res.Phases), res.Phases)
	}
	gs, detect := res.Phases[0], res.Phases[1]
	if gs.Name != "gossip(earlystop)" || detect.Name != "converge(halt)" {
		t.Fatalf("phase names %q, %q", gs.Name, detect.Name)
	}
	if detect.Rounds <= 0 || detect.Messages <= 0 {
		t.Fatalf("termination detection billed (%d rounds, %d messages); knowing you're done is not free", detect.Rounds, detect.Messages)
	}
	if res.Rounds != gs.Rounds+detect.Rounds || res.Messages != gs.Messages+detect.Messages {
		t.Fatalf("totals (%d, %d) are not the sum of phases %+v", res.Rounds, res.Messages, res.Phases)
	}
	// The gossip stage's bill matches the plain baseline's exactly; the
	// detection phase is the honestly billed premium on top.
	if gs.Rounds != gossip.Rounds || gs.Messages != gossip.Messages {
		t.Fatalf("gossip stage billed (%d, %d), plain gossip (%d, %d)", gs.Rounds, gs.Messages, gossip.Rounds, gossip.Messages)
	}
	if !reflect.DeepEqual(res.Outputs, gossip.Outputs) {
		t.Fatal("gossip-converge outputs differ from gossip's")
	}
	if obs.rounds["converge(halt)"] == 0 {
		t.Fatal("observer saw no detection rounds")
	}
}
