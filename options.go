package repro

import (
	"fmt"
	"math"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/local"
	"repro/internal/simulate"
)

// Options is the resolved configuration of an Engine. Construct it through
// NewEngine and the With* functional options; the zero value plus defaults
// (applied by NewEngine) reproduces the paper's canonical setup: sequential
// engine, seed 0, γ = 1 with the coupling h = 2^{γ+1}−1, Baswana–Sen /
// Elkin–Neiman stage parameter k = 2.
type Options struct {
	// Seed drives all randomness (graph algorithms and protocol coin flips).
	Seed uint64
	// KT1 exposes neighbor IDs on ports; the default (false) is the paper's
	// unique-edge-ID model, strictly between KT0 and KT1.
	KT1 bool
	// Concurrency selects the execution engine: 0 runs the sequential
	// engine, n > 0 the concurrent engine with n workers, and n < 0 the
	// concurrent engine with GOMAXPROCS workers. Both engines produce
	// bit-identical executions and outputs; this is purely a wall-clock
	// knob. Note that under n != 0 the scheme pipelines also replay
	// collected balls on concurrent workers, so an AlgorithmSpec's New and
	// Output callbacks may be invoked from multiple goroutines and must be
	// safe for concurrent use (the built-in algorithm constructors are).
	Concurrency int
	// MaxRounds bounds protocols that manage their own halting. The
	// pipeline stages with fixed schedules (sampler, collections, direct
	// runs) override it internally; the gossip scheme uses it as its round
	// budget (0 means 100·n, matching the historical driver default).
	MaxRounds int
	// Deadline is the wall-clock twin of MaxRounds: a positive duration
	// bounds how long one run may execute before it is cancelled and fails
	// with the typed ErrDeadline. Zero (the default, unless WithDeadline was
	// given) means no wall-clock bound.
	Deadline time.Duration
	// LogNSlack multiplies the true log2(n) handed to nodes, modeling the
	// O(1)-approximate upper bound on log n. Zero means exact.
	LogNSlack float64
	// Gamma is the Sampler level parameter γ for the message-reduction
	// schemes, with the paper's coupling h = 2^{γ+1}−1. Default 1.
	Gamma int
	// StageK is the stretch parameter k of the simulated stage-2
	// construction (Baswana–Sen or Elkin–Neiman, stretch 2k−1). Default 2.
	StageK int
	// Bandwidth caps, for the CONGEST-budgeted scheme, the words one
	// directed edge may carry per round. Zero (the default, unless
	// WithBandwidth was given) resolves at run time to ⌈log2 n⌉ — the
	// CONGEST model's canonical O(log n)-bit message in words.
	Bandwidth int
	// HybridFraction is the fraction of nodes the hybrid scheme's gossip
	// stage must cover with complete t-balls before the spanner collects the
	// residue. Must lie in (0,1]; default 0.5.
	HybridFraction float64
	// EarlyStop makes the plain "gossip" scheme end its round loop at the
	// cover round instead of executing the full fixed schedule. Bills,
	// outputs, and the streamed rounds through the cover round are
	// bit-identical either way — only the schedule's dead tail (and its wall
	// clock) disappears, along with the tail's RoundCompleted events. Default
	// false: the baseline faithfully pays for its fixed schedule. The
	// "gossip-earlystop" and "gossip-converge" scheme variants always stop
	// early and ignore this knob; hybrid's seeding stage always stops early.
	EarlyStop bool
	// CacheSize bounds the engine's stage-1 spanner cache (LRU eviction).
	// Zero means DefaultCacheSize.
	CacheSize int
	// RoundLedger keeps the internal per-round message ledgers
	// (local.Result.PerRound) the protocol stages accumulate. Default
	// true; WithRoundLedger(false) drops them so a run's memory stays
	// O(1) in executed rounds (see WithRoundLedger).
	RoundLedger bool
	// SpannerK, SpannerH, SpannerC override the Sampler parameters
	// wholesale (hierarchy depth, trial parameter, whp-threshold scale).
	// When SpannerK is zero the schemes derive parameters from Gamma and
	// Engine.BuildSpanner uses the paper defaults K=2, H=4.
	SpannerK int
	SpannerH int
	SpannerC float64
	// Observers receive round- and phase-completion events while a
	// simulation runs.
	Observers []Observer
	// NoCache disables the engine's stage-1 spanner cache: every Run and
	// BuildSpanner then constructs the Sampler spanner from scratch.
	NoCache bool
	// Adversary, when non-nil, subjects every executed protocol stage to the
	// given perturbation profile: seeded message drops and duplications,
	// crash-stop failures, bounded per-edge delivery delays, and mid-run
	// topology events (see WithAdversary). Nil — the default — is the
	// flawless network the paper assumes, byte-identical to historical runs.
	Adversary *AdversaryProfile

	// stage1 supplies stage-1 spanners to the scheme pipelines. The Engine
	// points it at its memoized cache on each Run's private Options copy;
	// nil means a fresh construction per run.
	stage1 simulate.Stage1Source
	// bandwidthSet records that WithBandwidth was given, so validation can
	// reject explicit sub-word budgets while the unset zero still means
	// "auto".
	bandwidthSet bool
	// deadlineSet records that WithDeadline was given, so validation can
	// reject nonsense non-positive budgets while the unset zero still means
	// "no deadline".
	deadlineSet bool
}

// Option mutates Options; pass them to NewEngine.
type Option func(*Options)

// WithSeed sets the root random seed.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithKT1 enables (or disables) the KT1 model variant in which nodes know
// their neighbors' IDs.
func WithKT1(on bool) Option { return func(o *Options) { o.KT1 = on } }

// WithConcurrency selects the execution engine: 0 sequential, n > 0
// concurrent with n workers, n < 0 concurrent with GOMAXPROCS workers.
func WithConcurrency(n int) Option { return func(o *Options) { o.Concurrency = n } }

// WithMaxRounds sets the engine's round budget: a positive budget makes any
// scheme whose billed LOCAL rounds exceed it fail with ErrRoundBudget (a
// runaway pipeline is additionally cancelled in flight once its executed
// rounds pass a safety multiple of the budget). The gossip and hybrid
// schemes also use it as their gossip stage's schedule length (0 means
// 100·n, matching the historical driver default), and self-halting
// protocols inherit it as their MaxRounds bound.
func WithMaxRounds(r int) Option { return func(o *Options) { o.MaxRounds = r } }

// WithDeadline sets the engine's wall-clock budget per run — the duration
// twin of WithMaxRounds. A run still executing when the budget expires is
// cancelled through the same context plumbing every scheme's round loop
// already honors (both engines abort within one node step's work) and fails
// with the typed ErrDeadline, which also matches context.DeadlineExceeded
// under errors.Is. The budget must be positive; it covers one RunScheme
// call end to end — sampler construction, simulated stages, collection,
// and replays — so a run that misses the deadline on a cold spanner cache
// may meet it once the cached stage-1 artifact is amortized away, exactly
// as with the round budget.
func WithDeadline(d time.Duration) Option {
	return func(o *Options) { o.Deadline, o.deadlineSet = d, true }
}

// WithBandwidth caps the words one directed edge may carry per round in the
// CONGEST-budgeted scheme ("scheme1-congest"). The cap must be at least one
// word; leaving the option unset resolves to ⌈log2 n⌉ words at run time.
func WithBandwidth(words int) Option {
	return func(o *Options) { o.Bandwidth, o.bandwidthSet = words, true }
}

// WithHybridFraction sets the fraction of nodes (in (0,1]) whose t-balls the
// hybrid scheme's gossip stage must complete before the Sampler spanner
// collects the residue. Default 0.5.
func WithHybridFraction(f float64) Option { return func(o *Options) { o.HybridFraction = f } }

// WithEarlyStop makes the plain "gossip" scheme stop its round loop at the
// cover round instead of simulating its full fixed schedule (default false).
// The bill through the cover round, the outputs, and the golden-pinned
// results are bit-identical with the knob on or off — it is purely a wall
// clock lever. The dedicated "gossip-earlystop" and "gossip-converge"
// variants always stop early regardless of this option.
func WithEarlyStop(on bool) Option { return func(o *Options) { o.EarlyStop = on } }

// WithCacheSize bounds the engine's stage-1 spanner cache to the given
// number of entries, evicting least-recently-used artifacts beyond it.
// Zero restores DefaultCacheSize; sizing happens at engine construction.
func WithCacheSize(entries int) Option { return func(o *Options) { o.CacheSize = entries } }

// WithLogNSlack sets the slack factor on the log n upper bound handed to
// nodes (must be >= 1; 0 means exact).
func WithLogNSlack(f float64) Option { return func(o *Options) { o.LogNSlack = f } }

// WithGamma sets the Sampler level parameter γ for the schemes (h follows
// the paper's coupling 2^{γ+1}−1).
func WithGamma(gamma int) Option { return func(o *Options) { o.Gamma = gamma } }

// WithStageK sets the stage-2 construction's stretch parameter k
// (stretch 2k−1) for scheme2 and scheme2en.
func WithStageK(k int) Option { return func(o *Options) { o.StageK = k } }

// WithSpannerParams overrides the Sampler parameters wholesale: hierarchy
// depth k, trial parameter h, and whp-threshold scale c (c = 0 keeps the
// default). It takes precedence over WithGamma's coupling.
func WithSpannerParams(k, h int, c float64) Option {
	return func(o *Options) {
		o.SpannerK, o.SpannerH, o.SpannerC = k, h, c
	}
}

// WithRoundLedger enables (the default) or disables the per-round message
// ledgers the protocol stages accumulate. With the ledger disabled a run's
// memory footprint is O(1) in the number of executed rounds — the knob long
// schedules need (gossip's 100·n-round default, hybrid seeding, CONGEST
// dilation): outputs, phase costs, and the streamed RoundCompleted events
// are all unchanged, so pairing the option with a MetricsSink retains
// bounded per-round statistics; only the unbounded PerRound slices are
// dropped. The gossip-backed schemes keep their exact cover-round billing
// through a compact record of cumulative counts at arrival rounds, so
// results are bit-identical with the ledger on or off.
func WithRoundLedger(on bool) Option { return func(o *Options) { o.RoundLedger = on } }

// WithNoCache disables the engine's stage-1 spanner cache, forcing every
// Run and BuildSpanner to construct the Sampler spanner from scratch (the
// pre-cache behaviour, useful for benchmarking the full pipeline cost).
func WithNoCache() Option { return func(o *Options) { o.NoCache = true } }

// WithObserver registers an observer for round- and phase-completion
// events. May be given multiple times; observers are notified in
// registration order.
func WithObserver(obs Observer) Option {
	return func(o *Options) { o.Observers = append(o.Observers, obs) }
}

// WithAdversary subjects every executed protocol stage to the given
// perturbation profile: seeded per-message drops and duplications,
// crash-stop node failures at scheduled rounds, bounded per-edge delivery
// delays, and mid-run edge insertions/deletions. All perturbations are pure
// hashes of (profile seed, engine seed, message identity), so adversarial
// runs stay bit-identical across the sequential and concurrent engines at
// every worker count and are golden-pinnable. Adversary-induced losses and
// duplicates are billed honestly — every send still counts in Messages, and
// PhaseCost.Dropped / PhaseCost.Duplicated attribute the damage.
//
// The stage-1 spanner construction is exempt: schemes treat the sampler's
// spanner as pre-provisioned infrastructure (it is memoized across runs and
// its artifact must not depend on the adversary), so only the simulated,
// collection, gossip, and replayed-execution stages feel the profile. Named
// profiles ship in the internal registry; resolve them through the serve
// API or cmd/simulate's -adversary flag, or construct an AdversaryProfile
// literal here.
func WithAdversary(p AdversaryProfile) Option {
	return func(o *Options) { o.Adversary = &p }
}

// newOptions applies defaults and then the given options.
func newOptions(opts []Option) Options {
	o := Options{Gamma: 1, StageK: 2, HybridFraction: 0.5, RoundLedger: true}
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// bandwidth resolves the CONGEST word budget for a run on an n-node graph:
// the explicit WithBandwidth value, or ⌈log2 n⌉ words.
func (o *Options) bandwidth(n int) int {
	if o.Bandwidth > 0 {
		return o.Bandwidth
	}
	bw := int(math.Ceil(math.Log2(math.Max(2, float64(n)))))
	if bw < 1 {
		bw = 1
	}
	return bw
}

// gossipBudget resolves the gossip schedule length for the gossip and hybrid
// schemes: the configured MaxRounds, or the historical 100·n default.
func (o *Options) gossipBudget(n int) int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 100 * n
}

// localConfig translates the options into a LOCAL-simulator config.
func (o *Options) localConfig() local.Config {
	cfg := local.Config{
		Seed:      o.Seed,
		KT1:       o.KT1,
		MaxRounds: o.MaxRounds,
		LogNSlack: o.LogNSlack,
		NoLedger:  !o.RoundLedger,
	}
	switch {
	case o.Concurrency > 0:
		cfg.Concurrent, cfg.Workers = true, o.Concurrency
	case o.Concurrency < 0:
		cfg.Concurrent = true
	}
	if o.Adversary != nil && !o.Adversary.IsZero() {
		cfg.Adversary = adversary.Compile(*o.Adversary, o.Seed)
	}
	return cfg
}

// samplerParams resolves the Sampler parameters the schemes use for their
// stage-1 spanner: the explicit WithSpannerParams override when present,
// otherwise the paper's γ-coupling.
func (o *Options) samplerParams() core.Params {
	if o.SpannerK > 0 {
		h := o.SpannerH
		if h == 0 {
			h = 4
		}
		p := core.Default(o.SpannerK, h)
		if o.SpannerC != 0 {
			p.C = o.SpannerC
		}
		return p
	}
	p := simulate.Scheme1Params(o.Gamma)
	if o.SpannerC != 0 {
		p.C = o.SpannerC
	}
	return p
}

// buildSpannerParams resolves the parameters Engine.BuildSpanner uses:
// explicit overrides when present, otherwise the paper defaults K=2, H=4.
func (o *Options) buildSpannerParams() core.Params {
	k, h := o.SpannerK, o.SpannerH
	if k == 0 {
		k = 2
	}
	if h == 0 {
		h = 4
	}
	p := core.Default(k, h)
	if o.SpannerC != 0 {
		p.C = o.SpannerC
	}
	return p
}

// hooks fans pipeline events out to every registered observer.
func (o *Options) hooks() simulate.Hooks {
	if len(o.Observers) == 0 {
		return simulate.Hooks{}
	}
	obs := o.Observers
	return simulate.Hooks{
		Round: func(phase string, round int, messages int64) {
			for _, ob := range obs {
				ob.RoundCompleted(phase, round, messages)
			}
		},
		Phase: func(cost PhaseCost) {
			for _, ob := range obs {
				ob.PhaseCompleted(cost)
			}
		},
	}
}

// validate checks the option values every scheme depends on. Nonsense
// values are rejected engine-wide — even by schemes that ignore the knob —
// so a misconfigured engine fails fast on its first Run rather than only on
// the one scheme that happens to read the option.
func (o *Options) validate() error {
	if o.LogNSlack != 0 && o.LogNSlack < 1 {
		return fmt.Errorf("LogNSlack %v < 1 is not an upper bound", o.LogNSlack)
	}
	if o.MaxRounds < 0 {
		return fmt.Errorf("negative MaxRounds %d", o.MaxRounds)
	}
	if o.deadlineSet && o.Deadline <= 0 {
		return fmt.Errorf("non-positive Deadline %v (use WithDeadline)", o.Deadline)
	}
	if o.SpannerK == 0 && o.Gamma < 1 {
		return fmt.Errorf("gamma %d < 1 (use WithGamma or WithSpannerParams)", o.Gamma)
	}
	if o.StageK < 1 {
		return fmt.Errorf("stage-2 parameter k = %d < 1 (use WithStageK)", o.StageK)
	}
	if o.bandwidthSet && o.Bandwidth < 1 {
		return fmt.Errorf("bandwidth %d < 1 word per edge per round (use WithBandwidth)", o.Bandwidth)
	}
	if o.HybridFraction <= 0 || o.HybridFraction > 1 {
		return fmt.Errorf("hybrid fraction %v outside (0,1] (use WithHybridFraction)", o.HybridFraction)
	}
	if o.CacheSize < 0 {
		return fmt.Errorf("negative CacheSize %d (use WithCacheSize)", o.CacheSize)
	}
	if o.Adversary != nil {
		if err := o.Adversary.Validate(); err != nil {
			return fmt.Errorf("%w (use WithAdversary)", err)
		}
	}
	return nil
}
