package repro_test

// Godoc examples for the public Engine/Scheme facade. Each is
// deterministic (fixed seeds) so `go test` verifies the printed output.

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// ExampleEngine_BuildSpanner builds a spanner with the distributed Sampler
// under an option-configured engine and verifies its stretch certificate.
func ExampleEngine_BuildSpanner() {
	g := gen.ConnectedGNP(200, 0.1, xrand.New(7))
	eng := repro.NewEngine(
		repro.WithSeed(42),
		repro.WithSpannerParams(2, 4, 0),
	)
	sp, err := eng.BuildSpanner(context.Background(), g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	maxStretch, err := sp.Verify(g)
	fmt.Println("certified:", err == nil)
	fmt.Println("bound respected:", maxStretch <= sp.StretchBound)
	fmt.Println("sparser than input:", len(sp.Edges) <= g.NumEdges())
	fmt.Println("paid messages:", sp.Messages > 0)
	// Output:
	// certified: true
	// bound respected: true
	// sparser than input: true
	// paid messages: true
}

// ExampleEngine_Run simulates a 3-round algorithm through the paper's first
// message-reduction scheme, addressed by its registry name, and checks
// fidelity against direct execution.
func ExampleEngine_Run() {
	g := gen.ConnectedGNP(80, 0.1, xrand.New(3))
	spec := repro.MaxID(3)
	ctx := context.Background()
	eng := repro.NewEngine(repro.WithSeed(9), repro.WithGamma(1))

	direct, err := eng.Run(ctx, "direct", g, spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sim, err := eng.Run(ctx, "scheme1", g, spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	identical := true
	for v := range direct.Outputs {
		if direct.Outputs[v] != sim.Outputs[v] {
			identical = false
		}
	}
	fmt.Println("outputs identical:", identical)
	fmt.Println("pipeline phases:", len(sim.Phases))
	// Output:
	// outputs identical: true
	// pipeline phases: 2
}

// ExampleLookup resolves a scheme from the registry — here the Elkin–Neiman
// two-stage pipeline — and runs it with an observer streaming the phase
// ledger as it completes.
func ExampleLookup() {
	g := gen.ConnectedGNP(60, 0.12, xrand.New(5))
	scheme, err := repro.Lookup("scheme2en")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("scheme:", scheme.Name())

	eng := repro.NewEngine(
		repro.WithSeed(15),
		repro.WithGamma(1),
		repro.WithStageK(2),
		repro.WithObserver(repro.ObserverFuncs{
			OnPhase: func(c repro.PhaseCost) { fmt.Println("phase done:", c.Name) },
		}),
	)
	res, err := eng.RunScheme(context.Background(), scheme, g, repro.MaxID(2))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("stretch of carrier spanner:", res.StretchUsed)
	// Output:
	// scheme: scheme2en
	// phase done: sampler
	// phase done: simulate-en
	// phase done: collect
	// stretch of carrier spanner: 3
}

// ExampleSchemes enumerates the registry — the same loop drivers and
// benchmarks use, so new schemes show up everywhere without new call sites.
func ExampleSchemes() {
	for _, s := range repro.Schemes() {
		fmt.Println(s.Name())
	}
	// Output:
	// direct
	// globalcompute
	// gossip
	// gossip-converge
	// gossip-earlystop
	// hybrid
	// scheme1
	// scheme1-congest
	// scheme2
	// scheme2en
}
