package repro_test

// Godoc examples for the public facade. Each is deterministic (fixed seeds)
// so `go test` verifies the printed output.

import (
	"fmt"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// ExampleBuildSpanner builds a spanner with the distributed Sampler and
// verifies its stretch certificate.
func ExampleBuildSpanner() {
	g := gen.ConnectedGNP(200, 0.1, xrand.New(7))
	sp, err := repro.BuildSpanner(g, repro.SpannerOptions{K: 2, H: 4, Seed: 42, Distributed: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	maxStretch, err := sp.Verify(g)
	fmt.Println("certified:", err == nil)
	fmt.Println("bound respected:", maxStretch <= sp.StretchBound)
	fmt.Println("sparser than input:", len(sp.Edges) <= g.NumEdges())
	fmt.Println("paid messages:", sp.Messages > 0)
	// Output:
	// certified: true
	// bound respected: true
	// sparser than input: true
	// paid messages: true
}

// ExampleSimulateScheme1 simulates a 3-round algorithm through the paper's
// message-reduction scheme and checks fidelity against direct execution.
func ExampleSimulateScheme1() {
	g := gen.ConnectedGNP(80, 0.1, xrand.New(3))
	spec := repro.MaxID(3)

	direct, err := repro.RunDirect(g, spec, 9, repro.RunConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sim, err := repro.SimulateScheme1(g, spec, 1, 9, repro.RunConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	identical := true
	for v := range direct.Outputs {
		if direct.Outputs[v] != sim.Outputs[v] {
			identical = false
		}
	}
	fmt.Println("outputs identical:", identical)
	fmt.Println("pipeline phases:", len(sim.Phases))
	// Output:
	// outputs identical: true
	// pipeline phases: 2
}
