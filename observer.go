package repro

import "repro/internal/simulate"

// PhaseCost is one pipeline stage's price (name, rounds, messages).
type PhaseCost = simulate.PhaseCost

// Observer receives live progress events from a running simulation.
//
// RoundCompleted fires after every LOCAL round the pipeline executes,
// labeled with the phase it belongs to ("sampler", "simulate-bs",
// "simulate-en", "collect", "collect(congest)", "collect(residue)",
// "gossip(seed)", "globalcast", "direct", "gossip"); PhaseCompleted fires when a
// whole pipeline stage finishes, with its cost. A run that reuses the
// engine's cached stage-1 spanner executes no sampler rounds at all: it
// fires no "sampler" round events and reports the stage as a single
// PhaseCompleted with Name "sampler(cached)" and zero rounds and messages. Within a single Run,
// callbacks fire on that run's coordinating goroutine and are never
// invoked concurrently with each other; an observer shared by concurrent
// Runs is called from each run's goroutine and must be safe for concurrent
// use. Callbacks must not call back into the running engine.
type Observer interface {
	RoundCompleted(phase string, round int, messages int64)
	PhaseCompleted(cost PhaseCost)
}

// ObserverFuncs adapts plain functions to the Observer interface. Nil
// fields ignore their events.
type ObserverFuncs struct {
	OnRound func(phase string, round int, messages int64)
	OnPhase func(cost PhaseCost)
}

// RoundCompleted implements Observer.
func (o ObserverFuncs) RoundCompleted(phase string, round int, messages int64) {
	if o.OnRound != nil {
		o.OnRound(phase, round, messages)
	}
}

// PhaseCompleted implements Observer.
func (o ObserverFuncs) PhaseCompleted(cost PhaseCost) {
	if o.OnPhase != nil {
		o.OnPhase(cost)
	}
}
