package repro

import "repro/internal/simulate"

// PhaseCost is one pipeline stage's price: name, rounds, messages, and —
// under WithAdversary — the Dropped/Duplicated attribution of
// adversary-induced damage within the billed messages.
type PhaseCost = simulate.PhaseCost

// Observer receives live progress events from a running simulation.
//
// RoundCompleted fires after every LOCAL round the pipeline executes,
// labeled with the phase it belongs to. The registered schemes emit these
// phase names:
//
//   - "direct" — direct execution on G;
//   - "sampler" — a fresh stage-1 Sampler spanner construction;
//   - "sampler(cached)" — PhaseCompleted only: the run reused the engine's
//     cached stage-1 spanner, executed no sampler rounds, and bills the
//     stage at zero rounds and messages;
//   - "simulate-bs" / "simulate-en" — scheme2's simulated stage-2
//     construction (Baswana–Sen / Elkin–Neiman);
//   - "collect" — a spanner-carried collection flood;
//   - "collect(congest)" — the bandwidth-budgeted collection of
//     scheme1-congest, including its zero-message filler rounds;
//   - "collect(residue)" — the hybrid scheme's residue flood;
//   - "gossip(seed)" — the hybrid scheme's gossip seeding stage;
//   - "gossip" — the push–pull gossip baseline (its fixed schedule, or the
//     early-stopped prefix under WithEarlyStop — same label either way);
//   - "gossip(earlystop)" — the gossip-earlystop and gossip-converge
//     variants' early-stopped gossip stage;
//   - "converge(halt)" — gossip-converge's distributed termination
//     detection pass (wave, convergecast-AND, broadcast halt);
//   - "globalcast" — globalcompute's wave/tree/convergecast protocol.
//
// WithAdversary introduces no phase names of its own: adversarial runs
// reuse the labels above, and the damage shows up in each PhaseCost's
// Dropped and Duplicated fields instead.
//
// These names are load-bearing beyond logging: they are the values of the
// "phase" label in the Prometheus-style exposition that
// MetricsSnapshot.MetricFamilies derives from a MetricsSink (served by
// cmd/serve at GET /v1/metrics), and "sampler(cached)" on a result's phase
// list is how serving layers detect a stage-1 spanner cache hit. Renaming a
// phase is therefore a breaking change for metrics consumers.
//
// PhaseCompleted fires when a whole pipeline stage finishes, with its cost.
// RoundCompleted streams regardless of WithRoundLedger: with the ledger
// disabled, observers are the only per-round record a run leaves, and the
// ready-made MetricsSink reduces the stream to bounded per-phase statistics
// (totals, log-bucketed histograms, a ring of recent rounds).
//
// Within a single Run, callbacks fire on that run's coordinating goroutine
// and are never invoked concurrently with each other; an observer shared by
// concurrent Runs is called from each run's goroutine and must be safe for
// concurrent use. Callbacks must not call back into the running engine.
type Observer interface {
	RoundCompleted(phase string, round int, messages int64)
	PhaseCompleted(cost PhaseCost)
}

// ObserverFuncs adapts plain functions to the Observer interface. Nil
// fields ignore their events.
type ObserverFuncs struct {
	OnRound func(phase string, round int, messages int64)
	OnPhase func(cost PhaseCost)
}

// RoundCompleted implements Observer.
func (o ObserverFuncs) RoundCompleted(phase string, round int, messages int64) {
	if o.OnRound != nil {
		o.OnRound(phase, round, messages)
	}
}

// PhaseCompleted implements Observer.
func (o ObserverFuncs) PhaseCompleted(cost PhaseCost) {
	if o.OnPhase != nil {
		o.OnPhase(cost)
	}
}
