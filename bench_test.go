package repro_test

// One benchmark per experiment in DESIGN.md §4. Each runs the experiment's
// quick configuration and fails if the paper-shape check does not hold, so
// `go test -bench=.` doubles as a full reproduction pass at bench scale.
// The full-size tables in EXPERIMENTS.md come from cmd/experiments.

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/simulate"
	"repro/internal/xrand"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var ex experiments.Experiment
	for _, e := range experiments.All() {
		if e.ID == id {
			ex = e
		}
	}
	if ex.Run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		rep := ex.Run(true)
		if !rep.Pass {
			b.Fatalf("experiment %s failed its shape check:\n%s", id, rep)
		}
	}
}

func BenchmarkE1SpannerSize(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Stretch(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3Rounds(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4Messages(b *testing.B)         { benchExperiment(b, "E4") }
func BenchmarkE5Baseline(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6Hierarchy(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7Scheme1(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8TwoStage(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE10PeelingAblation(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Crossover(b *testing.B)       { benchExperiment(b, "E11") }

// BenchmarkSchemes enumerates the scheme registry: every registered
// execution strategy runs the same workload under one engine, with the
// message cost surfaced as a custom metric by a registered observer — no
// hardcoded call sites, so a newly registered scheme is benchmarked for
// free. The spanner cache is disabled so each iteration prices the full
// pipeline; BenchmarkSchemesAmortized measures the cached steady state.
func BenchmarkSchemes(b *testing.B) {
	g := gen.ConnectedGNP(120, 0.08, xrand.New(11))
	spec := repro.MaxID(3)
	for _, s := range repro.Schemes() {
		b.Run(s.Name(), func(b *testing.B) {
			var msgs int64
			eng := repro.NewEngine(
				repro.WithSeed(5),
				repro.WithConcurrency(-1),
				repro.WithNoCache(),
				repro.WithObserver(repro.ObserverFuncs{
					OnPhase: func(c repro.PhaseCost) { msgs += c.Messages },
				}),
			)
			for i := 0; i < b.N; i++ {
				msgs = 0
				if _, err := eng.RunScheme(context.Background(), s, g, spec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
	}
}

// BenchmarkSchemesUnderDrop prices the adversary layer: the same workload
// as BenchmarkSchemes under the shipped drop10 profile (10% message loss),
// with the honest bill and the adversary's share surfaced as custom
// metrics. The scheme slice is the profile-tolerant subset — schemes whose
// convergecast stages legitimately fail under loss are pinned by the
// golden suite instead.
func BenchmarkSchemesUnderDrop(b *testing.B) {
	g := gen.ConnectedGNP(120, 0.08, xrand.New(11))
	spec := repro.MaxID(3)
	profile, ok := repro.NamedAdversary("drop10")
	if !ok {
		b.Fatal("drop10 profile missing from the registry")
	}
	for _, name := range []string{"direct", "scheme1", "scheme2", "gossip-earlystop"} {
		b.Run(name, func(b *testing.B) {
			eng := repro.NewEngine(
				repro.WithSeed(5),
				repro.WithConcurrency(-1),
				repro.WithNoCache(),
				repro.WithAdversary(profile),
			)
			var msgs, dropped int64
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(context.Background(), name, g, spec)
				if err != nil {
					b.Fatal(err)
				}
				msgs, dropped = res.Messages, 0
				for _, ph := range res.Phases {
					dropped += ph.Dropped
				}
			}
			b.ReportMetric(float64(msgs), "msgs/op")
			b.ReportMetric(float64(dropped), "dropped/op")
		})
	}
}

// BenchmarkSchemesAmortized demonstrates the amortization curve the paper
// predicts for repeated runs: for every sampler-based scheme, "cold"
// reconstructs the stage-1 spanner each iteration (WithNoCache) while
// "warm" reuses one engine whose cache was primed before the timer — the
// paper's intended experiment-sweep usage, where only the collection phases
// remain on the per-run bill.
func BenchmarkSchemesAmortized(b *testing.B) {
	g := gen.ConnectedGNP(120, 0.08, xrand.New(11))
	spec := repro.MaxID(3)
	for _, s := range repro.Schemes() {
		name := s.Name()
		if name == "direct" || name == "gossip" || name == "gossip-earlystop" || name == "gossip-converge" {
			continue // no stage-1 construction to amortize
		}
		for _, mode := range []string{"cold", "warm"} {
			b.Run(name+"/"+mode, func(b *testing.B) {
				opts := []repro.Option{
					repro.WithSeed(5),
					repro.WithConcurrency(-1),
				}
				if mode == "cold" {
					opts = append(opts, repro.WithNoCache())
				}
				eng := repro.NewEngine(opts...)
				var msgs int64
				run := func() {
					res, err := eng.RunScheme(context.Background(), s, g, spec)
					if err != nil {
						b.Fatal(err)
					}
					msgs = res.Messages
				}
				if mode == "warm" {
					run() // prime the cache outside the timer
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run()
				}
				b.ReportMetric(float64(msgs), "msgs/op")
			})
		}
	}
}

// BenchmarkLongGossipMemory demonstrates the round-ledger bound on a long
// gossip schedule (the regime the streaming metrics sink exists for): run
// with -benchmem and compare ledger=true against ledger=false at the two
// round scales. The retained ledger (surfaced as the ledgerB/op metric)
// grows linearly with the schedule when enabled — 8 bytes per executed
// round — and is identically zero when disabled, while rounds, messages,
// and coverage stay bit-identical; with the ledger disabled the only
// round-dependent state left is the compact arrival-round billing record,
// whose size is bounded by arrival events, not rounds.
func BenchmarkLongGossipMemory(b *testing.B) {
	g := gen.ConnectedGNP(24, 0.2, xrand.New(6))
	payloads := make([]any, g.NumNodes())
	for _, rounds := range []int{1000, 10000} {
		for _, ledger := range []bool{true, false} {
			b.Run(fmt.Sprintf("rounds=%d/ledger=%v", rounds, ledger), func(b *testing.B) {
				b.ReportAllocs()
				var ledgerBytes float64
				for i := 0; i < b.N; i++ {
					res, err := broadcast.Gossip(context.Background(), g, payloads, rounds,
						local.Config{Seed: 7, NoLedger: !ledger})
					if err != nil {
						b.Fatal(err)
					}
					if res.Run.Rounds != rounds+1 {
						b.Fatalf("executed %d rounds, want %d", res.Run.Rounds, rounds+1)
					}
					if ledger != (res.Run.PerRound != nil) {
						b.Fatalf("ledger=%v but PerRound has %d entries", ledger, len(res.Run.PerRound))
					}
					ledgerBytes = float64(len(res.Run.PerRound)) * 8
				}
				b.ReportMetric(ledgerBytes, "ledgerB/op")
			})
		}
	}
}

// Micro-benchmarks of the building blocks, with message costs surfaced as
// custom metrics.

func BenchmarkSamplerCentralized(b *testing.B) {
	g := gen.ConnectedGNP(2000, 0.02, xrand.New(1))
	b.ResetTimer()
	var samples int64
	for i := 0; i < b.N; i++ {
		res, err := core.Build(g, core.Default(2, 4), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		samples = res.TotalSamples
	}
	b.ReportMetric(float64(samples), "samples/op")
}

func BenchmarkSamplerDistributed(b *testing.B) {
	g := gen.ConnectedGNP(600, 0.05, xrand.New(2))
	b.ResetTimer()
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := core.BuildDistributed(g, core.Default(2, 4), uint64(i), local.Config{Concurrent: true})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Run.Messages
	}
	b.ReportMetric(float64(msgs), "msgs/op")
}

func BenchmarkLocalEngineSequential(b *testing.B) {
	benchLocalEngine(b, false)
}

func BenchmarkLocalEngineConcurrent(b *testing.B) {
	benchLocalEngine(b, true)
}

// The engine benchmarks always report allocations: they are the perf
// trajectory's hot-path series (BENCH_10.json) and the subject of CI's
// allocation-regression gate (cmd/bench -ceiling).
func benchLocalEngine(b *testing.B, concurrent bool) {
	b.Helper()
	g := gen.ConnectedGNP(2000, 0.01, xrand.New(3))
	spec := repro.MaxID(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := simulate.Direct(context.Background(), g, spec, uint64(i), local.Config{Concurrent: concurrent}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectOnSpanner(b *testing.B) {
	g := gen.Complete(300)
	sp, err := core.Build(g, core.Default(2, 4), 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := g.SubgraphByEdges(sp.S)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var msgs int64
	for i := 0; i < b.N; i++ {
		coll, err := simulate.Collect(context.Background(), g, h, sp.StretchBound()*2, uint64(i), local.Config{Concurrent: true})
		if err != nil {
			b.Fatal(err)
		}
		msgs = coll.Run.Messages
	}
	b.ReportMetric(float64(msgs), "msgs/op")
}

func BenchmarkReplay(b *testing.B) {
	g := gen.ConnectedGNP(300, 0.05, xrand.New(4))
	spec := repro.MaxID(3)
	coll, err := simulate.Collect(context.Background(), g, g, spec.T, 7, local.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coll.Replay(spec, repro.NodeID(i%g.NumNodes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12GlobalCompute(b *testing.B) { benchExperiment(b, "E12") }

func BenchmarkE13BitComplexity(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14SpannerQuality(b *testing.B) { benchExperiment(b, "E14") }

func BenchmarkE15ElkinNeimanStage(b *testing.B) { benchExperiment(b, "E15") }

func BenchmarkE16RegistryFidelity(b *testing.B) { benchExperiment(b, "E16") }
