package experiments

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/simulate"
	"repro/internal/stats"
)

// Progress, when non-nil, receives live pipeline events (per-phase
// completions) from the experiments that run simulation pipelines.
// cmd/experiments wires it to its -progress flag; the default (nil) is
// silent. It is consulted once per phase on the engine's coordinating
// goroutine.
var Progress func(format string, args ...any)

// progressHooks labels pipeline events with the experiment that produced
// them and forwards them to Progress.
func progressHooks(id string) simulate.Hooks {
	if Progress == nil {
		return simulate.Hooks{}
	}
	return simulate.Hooks{
		Phase: func(c simulate.PhaseCost) {
			Progress("%s: %-12s %6d rounds  %9d messages", id, c.Name, c.Rounds, c.Messages)
		},
	}
}

// E16RegistryFidelity drives the public Engine/Scheme facade: every
// registered scheme runs the same algorithm at the same seed through the
// registry, and every node's output must match the direct baseline
// bit-for-bit (Theorem 3's fidelity guarantee, checked end to end through
// the API users actually call). Costs are gathered live by an Observer
// rather than read off the result, exercising the streaming path.
func E16RegistryFidelity(quick bool) Report {
	rep := Report{
		ID:    "E16",
		Title: "scheme registry fidelity (public facade)",
		Claim: "every registered scheme reproduces direct execution bit-for-bit at the same seed",
		Pass:  true,
	}
	n := 80
	if quick {
		n = 50
	}
	g := gnpWithDegree(n, 10, 77)
	spec := repro.MaxID(3)
	const seed = 13

	// Observed costs, streamed phase by phase.
	type obsRow struct {
		scheme string
		cost   simulate.PhaseCost
	}
	var observed []obsRow
	current := "direct"
	obs := repro.ObserverFuncs{
		OnPhase: func(c repro.PhaseCost) {
			observed = append(observed, obsRow{scheme: current, cost: c})
			if Progress != nil {
				Progress("E16: %s %-12s %6d rounds  %9d messages", current, c.Name, c.Rounds, c.Messages)
			}
		},
	}
	eng := repro.NewEngine(
		repro.WithSeed(seed),
		repro.WithConcurrency(-1),
		repro.WithGamma(1),
		repro.WithStageK(2),
		repro.WithObserver(obs),
	)

	direct, err := eng.Run(context.Background(), "direct", g, spec)
	if err != nil {
		panic(err)
	}
	for _, s := range repro.Schemes() {
		if s.Name() == "direct" {
			continue
		}
		current = s.Name()
		res, err := eng.Run(context.Background(), s.Name(), g, spec)
		if err != nil {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s failed: %v", s.Name(), err))
			continue
		}
		mismatches := 0
		for v := range direct.Outputs {
			if res.Outputs[v] != direct.Outputs[v] {
				mismatches++
			}
		}
		if mismatches > 0 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d node outputs differ from direct", s.Name(), mismatches))
		}
	}
	var rows [][]string
	for _, r := range observed {
		rows = append(rows, []string{r.scheme, r.cost.Name, fmt.Sprint(r.cost.Rounds), fmt.Sprint(r.cost.Messages)})
	}
	rep.Table = stats.Table([]string{"scheme", "phase", "rounds", "messages"}, rows)
	rep.Notes = append(rep.Notes, fmt.Sprintf("%d phase events observed live across %d schemes (incl. the direct baseline)", len(observed), len(repro.Schemes())))
	if len(observed) == 0 {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "observer saw no phase events")
	}
	return rep
}
