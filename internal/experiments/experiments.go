// Package experiments regenerates the paper's evaluation. The paper is a
// theory paper — its "tables and figures" are the quantitative claims of its
// theorems — so each experiment measures one claim and checks its *shape*
// (who wins, approximate exponents, bounds never violated), not absolute
// constants. DESIGN.md §4 is the index; EXPERIMENTS.md records the outputs.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	// Claim is the paper statement under test.
	Claim string
	// Table is the rendered measurement table.
	Table string
	// Notes carry derived quantities (fits, ratios) and caveats.
	Notes []string
	// Pass records whether the claim's shape held.
	Pass bool
}

func (r Report) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	s := fmt.Sprintf("== %s: %s [%s]\n   claim: %s\n%s", r.ID, r.Title, status, r.Claim, r.Table)
	for _, n := range r.Notes {
		s += "   note: " + n + "\n"
	}
	return s
}

// Experiment is a named, runnable experiment. Quick mode shrinks workloads
// to bench scale.
type Experiment struct {
	ID  string
	Run func(quick bool) Report
}

// All returns the registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1SpannerSize},
		{"E2", E2Stretch},
		{"E3", E3Rounds},
		{"E4", E4Messages},
		{"E5", E5Baseline},
		{"E6", E6Hierarchy},
		{"E7", E7Scheme1},
		{"E8", E8TwoStage},
		{"E10", E10PeelingAblation},
		{"E11", E11Crossover},
		{"E12", E12GlobalCompute},
		{"E13", E13BitComplexity},
		{"E14", E14SpannerQuality},
		{"E15", E15ElkinNeimanStage},
		{"E16", E16RegistryFidelity},
		{"E17", E17DegradationUnderAdversity},
	}
}

// gnpWithDegree builds a connected G(n,p) with expected average degree deg.
func gnpWithDegree(n int, deg float64, seed uint64) *graph.Graph {
	p := deg / float64(n-1)
	return gen.ConnectedGNP(n, p, xrand.New(seed))
}

// E1SpannerSize measures Theorem 2's size bound |S| = Õ(n^{1+δ}),
// δ = 1/(2^{k+1}−1): the fitted exponent of |S| against n must track 1+δ
// and decrease in k. The workload's degree grows as 4·n^{1/3} so the bound
// binds (on sparser graphs the spanner is trivially the whole graph and the
// bound is vacuous).
func E1SpannerSize(quick bool) Report {
	sizes := []int{1000, 2000, 4000, 8000}
	if quick {
		sizes = []int{500, 1000, 2000}
	}
	ks := []int{1, 2, 3}
	rep := Report{
		ID:    "E1",
		Title: "spanner size scaling (Theorem 2)",
		Claim: "|S| = Õ(n^{1+1/(2^{k+1}-1)}); size exponent decreases with k",
		Pass:  true,
	}
	var rows [][]string
	prevFit := math.Inf(1)
	for _, k := range ks {
		p := core.Default(k, 4)
		p.C = 0.25
		var xs, ys []float64
		for _, n := range sizes {
			g := gnpWithDegree(n, 4*math.Cbrt(float64(n)), uint64(n))
			res, err := core.Build(g, p, uint64(17*k+n))
			if err != nil {
				panic(err)
			}
			xs = append(xs, float64(n))
			ys = append(ys, float64(len(res.S)))
			rows = append(rows, []string{
				fmt.Sprint(k), fmt.Sprint(n), fmt.Sprint(g.NumEdges()),
				fmt.Sprint(len(res.S)),
				stats.F(float64(len(res.S)) / math.Pow(float64(n), p.PredictedSizeExponent())),
			})
		}
		fit, _ := stats.FitPowerLaw(xs, ys)
		pred := p.PredictedSizeExponent()
		rows = append(rows, []string{fmt.Sprint(k), "fit", "-", stats.F(fit), "pred " + stats.F(pred)})
		rep.Notes = append(rep.Notes, fmt.Sprintf("k=%d: fitted exponent %.3f vs predicted %.3f (Õ hides log factors)", k, fit, pred))
		if math.Abs(fit-pred) > 0.25 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("k=%d exponent off by more than 0.25", k))
		}
		if fit >= prevFit {
			rep.Pass = false
			rep.Notes = append(rep.Notes, "size exponent failed to decrease with k")
		}
		prevFit = fit
	}
	rep.Table = stats.Table([]string{"k", "n", "m", "|S|", "|S|/n^(1+d)"}, rows)
	return rep
}

// E2Stretch measures Theorem 9: the spanner's stretch never exceeds
// 2·3^k − 1, across graph families.
func E2Stretch(quick bool) Report {
	rep := Report{
		ID:    "E2",
		Title: "stretch bound (Theorem 9)",
		Claim: "H is a (2·3^k - 1)-spanner: max_{(u,v) in E} dist_H(u,v) <= 2·3^k - 1",
		Pass:  true,
	}
	n := 600
	if quick {
		n = 200
	}
	workloads := map[string]*graph.Graph{
		"gnp":       gnpWithDegree(n, 12, 1),
		"grid":      gen.Grid(isqrt(n), isqrt(n)),
		"hypercube": gen.Hypercube(9),
		"community": gen.Community(6, n/6, math.Min(1, 24/float64(n/6)), 0.002, xrand.New(2)),
		"complete":  gen.Complete(n / 2), // dense: the spanner actually prunes here
	}
	if quick {
		workloads["hypercube"] = gen.Hypercube(7)
	}
	var rows [][]string
	for _, k := range []int{1, 2, 3} {
		for name, g := range workloads {
			p := core.Default(k, 2)
			p.C = 0.5
			res, err := core.Build(g, p, uint64(100+k))
			if err != nil {
				panic(err)
			}
			_, sr, err := graph.VerifySpanner(g, res.S, res.StretchBound())
			if err != nil {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf("k=%d %s: %v", k, name, err))
				continue
			}
			rows = append(rows, []string{
				fmt.Sprint(k), name, fmt.Sprint(res.StretchBound()),
				fmt.Sprint(sr.MaxEdgeStretch), stats.F(sr.MeanEdgeStretch),
				fmt.Sprintf("%d/%d", len(res.S), g.NumEdges()),
			})
			if sr.MaxEdgeStretch > res.StretchBound() {
				rep.Pass = false
			}
		}
	}
	rep.Table = stats.Table([]string{"k", "graph", "bound", "max", "mean", "|S|/m"}, rows)
	rep.Notes = append(rep.Notes, "measured stretch sits far below the worst-case bound, as expected")
	return rep
}

// E3Rounds measures Theorem 11's round complexity: the distributed Sampler
// runs on a fixed schedule of O(3^k·h) rounds, independent of n and m.
func E3Rounds(quick bool) Report {
	rep := Report{
		ID:    "E3",
		Title: "round complexity (Theorem 11)",
		Claim: "distributed Sampler takes O(3^k·h) rounds, independent of n",
		Pass:  true,
	}
	ns := []int{200, 400}
	if quick {
		ns = []int{150}
	}
	var rows [][]string
	for _, k := range []int{1, 2} {
		for _, h := range []int{1, 2, 4} {
			var lastRounds int
			roundsByN := map[int]int{}
			for _, n := range ns {
				g := gnpWithDegree(n, 10, uint64(n))
				res, err := core.BuildDistributed(g, core.Default(k, h), 5, local.Config{Concurrent: true})
				if err != nil {
					panic(err)
				}
				roundsByN[n] = res.Run.Rounds
				lastRounds = res.Run.Rounds
				if res.Run.Rounds != res.ScheduleRounds {
					rep.Pass = false
				}
			}
			for _, n := range ns[1:] {
				if roundsByN[n] != roundsByN[ns[0]] {
					rep.Pass = false
					rep.Notes = append(rep.Notes, "rounds depend on n")
				}
			}
			shape := float64(lastRounds) / (math.Pow(3, float64(k)) * float64(h))
			rows = append(rows, []string{
				fmt.Sprint(k), fmt.Sprint(h), fmt.Sprint(lastRounds), stats.F(shape),
			})
			if lastRounds > 45*int(math.Pow(3, float64(k)))*h {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf("k=%d h=%d: %d rounds outside O(3^k h) shape", k, h, lastRounds))
			}
		}
	}
	rep.Table = stats.Table([]string{"k", "h", "rounds", "rounds/(3^k·h)"}, rows)
	rep.Notes = append(rep.Notes, "rounds are a deterministic schedule: same value for every n (checked)")
	return rep
}

// E4Messages measures Theorem 11's message complexity on complete graphs:
// Õ(n^{1+δ+1/h}), i.e. o(m) — the headline.
func E4Messages(quick bool) Report {
	rep := Report{
		ID:    "E4",
		Title: "message complexity (Theorem 11)",
		Claim: "distributed Sampler sends Õ(n^{1+δ+1/h}) messages — o(m) on dense graphs",
		Pass:  true,
	}
	sizes := []int{200, 400, 800}
	if quick {
		sizes = []int{150, 300}
	}
	p := core.Default(2, 8)
	p.C = 0.5
	var rows [][]string
	var xs, ys []float64
	prevRatio := math.Inf(1)
	for _, n := range sizes {
		g := gen.Complete(n)
		res, err := core.BuildDistributed(g, p, 1, local.Config{Concurrent: true})
		if err != nil {
			panic(err)
		}
		m := float64(g.NumEdges())
		ratio := float64(res.Run.Messages) / m
		xs = append(xs, float64(n))
		ys = append(ys, float64(res.Run.Messages))
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(g.NumEdges()), fmt.Sprint(res.Run.Messages),
			stats.F(ratio),
			fmt.Sprint(res.Run.Counters[core.CntQuery]),
			fmt.Sprint(res.Run.Counters[core.CntTree]),
		})
		if ratio >= prevRatio {
			rep.Pass = false
			rep.Notes = append(rep.Notes, "messages/m failed to decrease with n")
		}
		prevRatio = ratio
	}
	fit, _ := stats.FitPowerLaw(xs, ys)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("fitted message exponent %.2f vs predicted %.2f (and far from Θ(m)=n^2)",
			fit, p.PredictedMessageExponent()))
	if fit > 1.8 {
		rep.Pass = false
	}
	rep.Table = stats.Table([]string{"n", "m", "msgs", "msgs/m", "queries", "tree"}, rows)
	return rep
}

func isqrt(n int) int { return int(math.Sqrt(float64(n))) }
