package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"repro"
	"repro/internal/stats"
)

// advCell is one measurement of the degradation sweep, shaped for machine
// consumption: the JSON rendering of the full grid is emitted as a note so
// downstream tooling can parse the sweep without scraping the text table.
type advCell struct {
	Scheme   string  `json:"scheme"`
	Drop     float64 `json:"drop"`
	Delay    int     `json:"delay"`
	Rounds   int     `json:"rounds,omitempty"`
	Messages int64   `json:"messages,omitempty"`
	Dropped  int64   `json:"dropped,omitempty"`
	Coverage float64 `json:"coverage"`
	Err      string  `json:"error,omitempty"`
}

// E17DegradationUnderAdversity measures how gracefully each protocol family
// trades the free-lunch fidelity guarantee for robustness when the network
// misbehaves: a drop-rate × delay-bound grid, with per-scheme coverage
// defined as the fraction of node outputs that still match the *clean*
// direct run. The flawless cell must stay at 100% coverage (Theorem 3 is
// exact on a flawless network); adversarial cells are measurements, not
// guarantees — a scheme may even fail outright (typed error), and that
// failure is recorded as a 0-coverage cell rather than aborting the sweep.
// Every send is still billed at send time, so the messages column is the
// honest bill and the dropped column is the adversary's share of it.
func E17DegradationUnderAdversity(quick bool) Report {
	rep := Report{
		ID:    "E17",
		Title: "degradation under adversity (drop × delay sweep)",
		Claim: "coverage is exactly 100% on the flawless cell and degrades measurably, not catastrophically, at small drop rates",
		Pass:  true,
	}
	n := 80
	drops := []float64{0, 0.05, 0.1, 0.2}
	delays := []int{0, 2}
	if quick {
		n = 50
		drops = []float64{0, 0.1}
	}
	schemes := []string{"direct", "scheme1", "scheme2", "gossip-earlystop"}
	g := gnpWithDegree(n, 10, 77)
	spec := repro.MaxID(3)
	const seed = 13

	// The clean direct run is the coverage yardstick for every cell.
	baseline, err := repro.NewEngine(
		repro.WithSeed(seed), repro.WithConcurrency(-1),
		repro.WithGamma(1), repro.WithStageK(2),
	).Run(context.Background(), "direct", g, spec)
	if err != nil {
		panic(err)
	}

	var cells []advCell
	var rows [][]string
	for _, drop := range drops {
		for _, delay := range delays {
			profile := repro.AdversaryProfile{
				Name:       fmt.Sprintf("e17-d%02.0f-y%d", drop*100, delay),
				Seed:       0xe17,
				DropRate:   drop,
				DelayBound: delay,
			}
			for _, scheme := range schemes {
				eng := repro.NewEngine(
					repro.WithSeed(seed), repro.WithConcurrency(-1),
					repro.WithGamma(1), repro.WithStageK(2),
					repro.WithAdversary(profile),
				)
				cell := advCell{Scheme: scheme, Drop: drop, Delay: delay}
				res, err := eng.Run(context.Background(), scheme, g, spec)
				if err != nil {
					// Starved schemes fail typed; that *is* the measurement.
					cell.Err = err.Error()
					cells = append(cells, cell)
					rows = append(rows, []string{scheme, stats.F(drop), fmt.Sprint(delay), "-", "-", "-", "failed"})
					if drop == 0 && delay == 0 {
						rep.Pass = false
						rep.Notes = append(rep.Notes, fmt.Sprintf("%s failed on the flawless cell: %v", scheme, err))
					}
					if Progress != nil {
						Progress("E17: %-16s drop=%.2f delay=%d failed: %v", scheme, drop, delay, err)
					}
					continue
				}
				match := 0
				for v := range baseline.Outputs {
					if res.Outputs[v] == baseline.Outputs[v] {
						match++
					}
				}
				cell.Rounds, cell.Messages = res.Rounds, res.Messages
				for _, ph := range res.Phases {
					cell.Dropped += ph.Dropped
				}
				cell.Coverage = float64(match) / float64(len(baseline.Outputs))
				cells = append(cells, cell)
				rows = append(rows, []string{
					scheme, stats.F(drop), fmt.Sprint(delay),
					fmt.Sprint(res.Rounds), fmt.Sprint(res.Messages),
					fmt.Sprint(cell.Dropped), stats.F(cell.Coverage),
				})
				if Progress != nil {
					Progress("E17: %-16s drop=%.2f delay=%d coverage=%.2f (%d dropped)", scheme, drop, delay, cell.Coverage, cell.Dropped)
				}
				if drop == 0 && delay == 0 {
					if cell.Coverage != 1 {
						rep.Pass = false
						rep.Notes = append(rep.Notes, fmt.Sprintf("%s: flawless cell coverage %.2f, want exactly 1", scheme, cell.Coverage))
					}
					if cell.Dropped != 0 {
						rep.Pass = false
						rep.Notes = append(rep.Notes, fmt.Sprintf("%s: flawless cell attributed %d dropped messages", scheme, cell.Dropped))
					}
				}
			}
		}
	}

	// Shape check: the adversary must actually bite — at the highest drop
	// rate some scheme loses coverage, and the dropped ledger is nonzero.
	maxDrop := drops[len(drops)-1]
	bit := false
	var damage int64
	for _, c := range cells {
		if c.Drop == maxDrop {
			damage += c.Dropped
			if c.Err != "" || c.Coverage < 1 {
				bit = true
			}
		}
	}
	if !bit {
		rep.Pass = false
		rep.Notes = append(rep.Notes, fmt.Sprintf("drop rate %.2f left every scheme at full coverage; the adversary is not wired in", maxDrop))
	}
	if damage == 0 {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "no dropped messages billed at the highest drop rate")
	}

	rep.Table = stats.Table([]string{"scheme", "drop", "delay", "rounds", "messages", "dropped", "coverage"}, rows)
	blob, err := json.Marshal(cells)
	if err != nil {
		panic(err)
	}
	rep.Notes = append(rep.Notes,
		"coverage = fraction of node outputs equal to the clean direct run; failed cells carry an error instead",
		"gossip damage attribution covers the executed schedule, which under delay profiles runs past the billed cover prefix (dropped can exceed the truncated message bill)",
		"json: "+string(blob))
	return rep
}
