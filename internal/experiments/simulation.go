package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/globalcompute"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/simulate"
	"repro/internal/spanner"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// E5Baseline contrasts the distributed Sampler with distributed Baswana–Sen
// (the Ω(m)-message family the paper improves on): on a dense graph, Sampler
// must send fewer messages, while Baswana–Sen's messages track m.
func E5Baseline(quick bool) Report {
	rep := Report{
		ID:    "E5",
		Title: "Sampler vs Baswana–Sen message cost (Section 1.2 contrast)",
		Claim: "classic spanner constructions send Θ(m) messages; Sampler sends o(m)",
		Pass:  true,
	}
	n := 500
	if quick {
		n = 250
	}
	p := core.Default(2, 8)
	p.C = 0.5
	var rows [][]string
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"complete", gen.Complete(n)},
		{"gnp-dense", gnpWithDegree(n, float64(n)/2, 3)},
	} {
		m := int64(tc.g.NumEdges())
		samp, err := core.BuildDistributed(tc.g, p, 7, local.Config{Concurrent: true})
		if err != nil {
			panic(err)
		}
		bs, err := spanner.BaswanaSenDistributed(tc.g, 2, 7, local.Config{Concurrent: true})
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{
			tc.name, fmt.Sprint(m),
			fmt.Sprint(samp.Run.Messages), stats.F(float64(samp.Run.Messages) / float64(m)),
			fmt.Sprint(bs.Run.Messages), stats.F(float64(bs.Run.Messages) / float64(m)),
			fmt.Sprint(samp.Run.Rounds), fmt.Sprint(bs.Run.Rounds),
		})
		if samp.Run.Messages >= bs.Run.Messages {
			rep.Pass = false
			rep.Notes = append(rep.Notes, tc.name+": Sampler did not beat Baswana–Sen on messages")
		}
		if bs.Run.Messages < 2*m {
			rep.Pass = false
			rep.Notes = append(rep.Notes, tc.name+": Baswana–Sen below the Θ(m) floor?")
		}
	}
	rep.Table = stats.Table(
		[]string{"graph", "m", "sampler-msgs", "/m", "bs-msgs", "/m", "sampler-rounds", "bs-rounds"}, rows)
	rep.Notes = append(rep.Notes, "Baswana–Sen wins on rounds — the paper's point is removing the message bottleneck without a *round blow-up in t* when simulating algorithms")
	return rep
}

// E6Hierarchy checks Lemma 4 (level populations concentrate in
// [n·p̂/2, 3n·p̂/2]) and Lemma 6 (every node ends light or heavy; final level
// all light) across seeds.
func E6Hierarchy(quick bool) Report {
	rep := Report{
		ID:    "E6",
		Title: "hierarchy concentration (Lemmas 4 and 6)",
		Claim: "n_j in [n·p̂_{j-1}/2, 3n·p̂_{j-1}/2] whp; nodes end light or heavy; level-k all light",
		Pass:  true,
	}
	n := 3000
	seeds := 5
	if quick {
		n, seeds = 1000, 2
	}
	p := core.Default(2, 2)
	g := gnpWithDegree(n, 20, 9)
	var rows [][]string
	for seed := 0; seed < seeds; seed++ {
		res, err := core.Build(g, p, uint64(seed))
		if err != nil {
			panic(err)
		}
		for j := 1; j < len(res.Levels); j++ {
			phat := 1.0
			for i := 0; i < j; i++ {
				phat *= math.Pow(float64(n), -math.Pow(2, float64(i))*p.Delta())
			}
			nj := res.Levels[j].G.NumNodes()
			lo, hi := float64(n)*phat/2, 3*float64(n)*phat/2
			in := float64(nj) >= lo && float64(nj) <= hi
			rows = append(rows, []string{
				fmt.Sprint(seed), fmt.Sprint(j), fmt.Sprint(nj),
				fmt.Sprintf("[%.0f, %.0f]", lo, hi), fmt.Sprint(in),
				fmt.Sprint(res.Levels[j].FailSafe),
			})
			if !in {
				rep.Pass = false
			}
		}
		last := res.Levels[len(res.Levels)-1]
		for v := range last.Light {
			if !last.Light[v] {
				rep.Pass = false
				rep.Notes = append(rep.Notes, "final-level node not light")
			}
		}
		if res.FailSafeNodes > n/100 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("fail-safe fired %d times (> 1%% of nodes)", res.FailSafeNodes))
		}
	}
	rep.Table = stats.Table([]string{"seed", "level", "n_j", "Lemma4 band", "inside", "failsafe"}, rows)
	return rep
}

// E7Scheme1 runs Theorem 3's first scheme end to end against the two
// baselines. Two claims are separable:
//
//   - messages: on dense graphs the whole scheme-1 pipeline (spanner +
//     collection) costs fewer messages than direct flooding's Θ(t·m);
//   - rounds: the scheme's collection takes exactly α·t rounds regardless
//     of n, while gossip's cover time grows with n (its O(t·log n + log²n)
//     signature) and worsens with low conductance. At laptop scale the
//     constant α = 2·3^k−1 exceeds log n, so gossip's absolute round count
//     can still be smaller — the *growth shapes* are what the theory
//     predicts and what we check.
func E7Scheme1(quick bool) Report {
	rep := Report{
		ID:    "E7",
		Title: "message-reduction scheme 1 vs baselines (Theorem 3)",
		Claim: "simulate a t-round algorithm in O(t) n-independent rounds with o(t·m) messages; gossip rounds grow with n and conductance",
		Pass:  true,
	}
	const tr = 4
	spec := algorithms.MaxID(tr)
	p := core.Default(2, 8)
	p.C = 0.5
	seed := uint64(31)

	// Message side: dense graph.
	nDense := 400
	if quick {
		nDense = 250
	}
	dense := gen.Complete(nDense)
	direct, err := simulate.DirectBroadcastCost(context.Background(), dense, tr, seed, local.Config{Concurrent: true})
	if err != nil {
		panic(err)
	}
	s1, err := simulate.Scheme1(context.Background(), dense, spec, p, seed, local.Config{Concurrent: true}, progressHooks("E7"))
	if err != nil {
		panic(err)
	}
	var rows [][]string
	rows = append(rows, []string{"msgs:complete", fmt.Sprint(dense.NumEdges()),
		"direct", fmt.Sprint(direct.Run.Messages), "scheme1", fmt.Sprint(s1.TotalMessages())})
	if s1.TotalMessages() >= direct.Run.Messages {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "scheme1 failed to beat direct flooding on the dense graph")
	}
	// Fidelity spot check.
	want, _, err := simulate.Direct(context.Background(), dense, spec, seed, local.Config{})
	if err != nil {
		panic(err)
	}
	for _, v := range []graph.NodeID{0, graph.NodeID(nDense / 2), graph.NodeID(nDense - 1)} {
		got, err := s1.Coll.Replay(spec, v)
		if err != nil {
			panic(err)
		}
		if got != want[v] {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("fidelity violated at node %d", v))
		}
	}

	// Round side: sweep n; gossip cover time must grow, scheme collection
	// rounds must not.
	sweep := []int{100, 200, 400}
	if quick {
		sweep = []int{80, 160, 320}
	}
	var gossipCovers, collectRounds []int
	for _, n := range sweep {
		g := gnpWithDegree(n, 12, uint64(n))
		_, cover, gmsgs, err := simulate.GossipCollect(context.Background(), g, tr, 2000, seed, local.Config{Concurrent: true})
		if err != nil {
			panic(err)
		}
		sw, err := simulate.Scheme1(context.Background(), g, spec, p, seed, local.Config{Concurrent: true}, progressHooks("E7"))
		if err != nil {
			panic(err)
		}
		collect := sw.Phases[1].Rounds
		gossipCovers = append(gossipCovers, cover)
		collectRounds = append(collectRounds, collect)
		rows = append(rows, []string{fmt.Sprintf("rounds:n=%d", n), fmt.Sprint(g.NumEdges()),
			"gossip-cover", fmt.Sprint(cover), "s1-collect", fmt.Sprint(collect)})
		_ = gmsgs
	}
	if gossipCovers[len(gossipCovers)-1] <= gossipCovers[0] {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "gossip cover time failed to grow with n")
	}
	for _, c := range collectRounds[1:] {
		if c != collectRounds[0] {
			rep.Pass = false
			rep.Notes = append(rep.Notes, "scheme collection rounds depend on n")
		}
	}

	// Conductance side: barbell vs complete at equal n.
	nB := 200
	if quick {
		nB = 120
	}
	bar := gen.Barbell(nB/2, 4)
	komp := gen.Complete(bar.NumNodes())
	_, coverBar, _, err := simulate.GossipCollect(context.Background(), bar, tr, 2000, seed, local.Config{Concurrent: true})
	if err != nil {
		panic(err)
	}
	_, coverK, _, err := simulate.GossipCollect(context.Background(), komp, tr, 2000, seed, local.Config{Concurrent: true})
	if err != nil {
		panic(err)
	}
	rows = append(rows, []string{"conductance", fmt.Sprint(bar.NumNodes()),
		"gossip-barbell", fmt.Sprint(coverBar), "gossip-complete", fmt.Sprint(coverK)})
	if coverBar <= coverK {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "gossip showed no conductance sensitivity")
	}

	rep.Table = stats.Table([]string{"measurement", "m", "a", "value", "b", "value"}, rows)
	rep.Notes = append(rep.Notes,
		"scheme-1 total rounds include the one-off spanner construction; the recurring per-simulation cost is the collection's α·t rounds, constant in n",
		"at this scale α=17 exceeds log n, so gossip's absolute rounds can be lower; the claim under test is the growth shape (constant vs growing in n)")
	return rep
}

// E8TwoStage runs Theorem 3's second scheme: Sampler's spanner simulates
// Baswana–Sen message-free, and the resulting better spanner carries the
// final collection.
func E8TwoStage(quick bool) Report {
	rep := Report{
		ID:    "E8",
		Title: "two-stage message reduction (Theorem 3, second bullet)",
		Claim: "the stage-2 spanner is built without its Ω(m) messages and has better stretch, shrinking the per-t collection cost",
		Pass:  true,
	}
	n := 300
	if quick {
		n = 150
	}
	g := gnpWithDegree(n, float64(n)/5, 11)
	const tr, bsK = 4, 2
	seed := uint64(41)
	spec := algorithms.MaxID(tr)
	s2, err := simulate.Scheme2(context.Background(), g, spec, simulate.Scheme1Params(1), bsK, seed, local.Config{Concurrent: true}, progressHooks("E8"))
	if err != nil {
		panic(err)
	}
	s1, err := simulate.Scheme1(context.Background(), g, spec, simulate.Scheme1Params(1), seed, local.Config{Concurrent: true}, progressHooks("E8"))
	if err != nil {
		panic(err)
	}
	var rows [][]string
	for _, ph := range s2.Phases {
		rows = append(rows, []string{"scheme2", ph.Name, fmt.Sprint(ph.Rounds), fmt.Sprint(ph.Messages)})
	}
	for _, ph := range s1.Phases {
		rows = append(rows, []string{"scheme1", ph.Name, fmt.Sprint(ph.Rounds), fmt.Sprint(ph.Messages)})
	}
	rep.Table = stats.Table([]string{"scheme", "phase", "rounds", "messages"}, rows)

	// Stage-2 spanner must be a valid (2k'−1)-spanner, and its stretch beats
	// the stage-1 spanner's certified stretch.
	if _, _, err := graph.VerifySpanner(g, s2.FinalSpanner, s2.StretchUsed); err != nil {
		rep.Pass = false
		rep.Notes = append(rep.Notes, fmt.Sprintf("stage-2 spanner invalid: %v", err))
	}
	if s2.StretchUsed >= s1.StretchUsed {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "stage-2 stretch not better than stage-1")
	}
	// Final-collection round cost: α2·t < α1·t.
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"final collection floods %d rounds (α'=%d) instead of %d (α=%d): stretch improvement pays off for every future t",
		s2.StretchUsed*tr, s2.StretchUsed, s1.StretchUsed*tr, s1.StretchUsed))
	// Fidelity spot check.
	want, _, err := simulate.Direct(context.Background(), g, spec, seed, local.Config{})
	if err != nil {
		panic(err)
	}
	got, err := s2.Coll.Replay(spec, 0)
	if err != nil {
		panic(err)
	}
	if got != want[0] {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "fidelity violated")
	}
	return rep
}

// E10PeelingAblation quantifies the paper's Section 1.3 key idea: without
// iterative peeling of parallel edges, a neighbor owning most of a node's
// edge multiset swallows the sampling budget, and neighbor discovery stalls.
// The workload makes the regime explicit: every node has one neighbor of
// multiplicity M far above the per-trial sample count, exactly the bias
// cluster contraction produces in the virtual graphs G_j.
func E10PeelingAblation(quick bool) Report {
	rep := Report{
		ID:    "E10",
		Title: "iterative peeling ablation (Section 1.3)",
		Claim: "peeling parallel edges of discovered neighbors keeps the sample budget effective under skewed multiplicities",
		Pass:  true,
	}
	n, mult := 50, 5000
	if quick {
		n, mult = 40, 2500
	}
	base := gen.Complete(n)
	// Ring-mate edges get the skewed multiplicity.
	mg := gen.Multi(base, func(e graph.Edge) int {
		if int(e.V) == (int(e.U)+1)%n {
			return mult
		}
		return 1
	})
	// Threshold above the distinct-neighbor count forces every node to go
	// for light (discover everyone) — the regime where discovery speed is
	// what matters.
	p := core.Default(1, 4)
	p.C = 2.5
	var rows [][]string
	var sPeel, sNo int64
	var fsPeel, fsNo int
	for _, disable := range []bool{false, true} {
		p.DisablePeeling = disable
		res, err := core.Build(mg, p, 17)
		if err != nil {
			panic(err)
		}
		name := "peel"
		if disable {
			name = "no-peel"
			sNo, fsNo = res.TotalSamples, res.FailSafeNodes
		} else {
			sPeel, fsPeel = res.TotalSamples, res.FailSafeNodes
		}
		_, sr, err := graph.VerifySpanner(mg, res.S, res.StretchBound())
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{
			name, fmt.Sprint(res.TotalSamples), fmt.Sprint(res.FailSafeNodes),
			fmt.Sprint(len(res.S)), fmt.Sprint(sr.MaxEdgeStretch),
		})
	}
	rep.Table = stats.Table([]string{"variant", "samples(≈msgs)", "failsafe", "|S|", "stretch"}, rows)
	if sNo < 2*sPeel {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "disabling peeling did not at least double the sampling cost")
	} else {
		rep.Notes = append(rep.Notes, fmt.Sprintf("no-peel needs %.1fx the samples of peel", float64(sNo)/float64(sPeel)))
	}
	if fsNo <= fsPeel {
		rep.Notes = append(rep.Notes, "note: fail-safe pressure did not increase (acceptable if sampling alone shows the gap)")
	} else {
		rep.Notes = append(rep.Notes, fmt.Sprintf("fail-safe rescued %d nodes without peeling vs %d with", fsNo, fsPeel))
	}
	return rep
}

// E11Crossover charts the free-lunch region: for fixed n, the Sampler's
// message cost stays flat as density grows, crossing below m.
func E11Crossover(quick bool) Report {
	rep := Report{
		ID:    "E11",
		Title: "free-lunch crossover vs density",
		Claim: "Sampler messages are (almost) independent of m; direct Θ(m) cost overtakes it at moderate density",
		Pass:  true,
	}
	// The crossover needs n in the several hundreds before the polylog
	// constants fade (see E4), so both modes run at n=500 and quick mode
	// trims the density sweep.
	n := 500
	fracs := []float64{0.02, 0.08, 0.25, 0.6, 1.0}
	if quick {
		fracs = []float64{0.08, 0.4, 1.0}
	}
	p := core.Default(2, 8)
	p.C = 0.5
	maxM := n * (n - 1) / 2
	var rows [][]string
	prevRatio := math.Inf(1)
	crossed := false
	for _, frac := range fracs {
		m := int(frac * float64(maxM))
		var g *graph.Graph
		if frac == 1.0 {
			g = gen.Complete(n)
		} else {
			g = gen.Connectify(gen.GNM(n, m, xrand.New(uint64(m))), xrand.New(uint64(m)))
		}
		res, err := core.BuildDistributed(g, p, 19, local.Config{Concurrent: true})
		if err != nil {
			panic(err)
		}
		ratio := float64(res.Run.Messages) / float64(g.NumEdges())
		rows = append(rows, []string{
			fmt.Sprint(g.NumEdges()), fmt.Sprint(res.Run.Messages), stats.F(ratio),
		})
		if ratio >= prevRatio {
			rep.Pass = false
			rep.Notes = append(rep.Notes, "msgs/m failed to decrease with density")
		}
		if ratio < 1 {
			crossed = true
		}
		prevRatio = ratio
	}
	if !crossed {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "never crossed below m at this scale")
	}
	rep.Table = stats.Table([]string{"m", "sampler-msgs", "msgs/m"}, rows)
	return rep
}

// E12GlobalCompute reproduces the paper's Section 7 concluding remark:
// with an o(m)-message spanner construction, any global function can be
// computed in O(diameter) rounds and o(m) messages. We aggregate a maximum
// over all node inputs on a dense graph, over the spanner vs directly.
func E12GlobalCompute(quick bool) Report {
	rep := Report{
		ID:    "E12",
		Title: "global aggregation over the spanner (Section 7 remark)",
		Claim: "global functions computable in O(diameter) rounds with o(m) messages",
		Pass:  true,
	}
	n := 500
	if quick {
		n = 300
	}
	g := gen.Complete(n)
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = int64((i*31)%997 + 1)
	}
	p := core.Default(2, 8)
	p.C = 0.5
	direct, err := globalcompute.Direct(context.Background(), g, inputs, globalcompute.Max, 1, local.Config{Concurrent: true})
	if err != nil {
		panic(err)
	}
	span, err := globalcompute.OverSpanner(context.Background(), g, inputs, globalcompute.Max, 1, p, 21, local.Config{Concurrent: true})
	if err != nil {
		panic(err)
	}
	want := inputs[0]
	for _, v := range inputs[1:] {
		if v > want {
			want = v
		}
	}
	for v := range direct.Values {
		if direct.Values[v] != want || span.Values[v] != want {
			rep.Pass = false
			rep.Notes = append(rep.Notes, "wrong aggregate")
			break
		}
	}
	rows := [][]string{
		{"direct", fmt.Sprint(g.NumEdges()), fmt.Sprint(direct.TotalMessages()), fmt.Sprint(direct.TotalRounds())},
		{"spanner", fmt.Sprint(span.HostEdges), fmt.Sprint(span.TotalMessages()), fmt.Sprint(span.TotalRounds())},
	}
	rep.Table = stats.Table([]string{"pipeline", "host-edges", "messages", "rounds"}, rows)
	if span.TotalMessages() >= direct.TotalMessages() {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "spanner pipeline did not reduce messages")
	}
	rep.Notes = append(rep.Notes, "spanner messages include the one-off construction; rounds grow by the stretch factor on the wave phase")
	return rep
}

// E13BitComplexity measures what the LOCAL model's free message size is
// buying: the distributed Sampler's *message* count is o(m), but its query
// replies carry whole boundary sets, so its *word* count (payload units,
// one unit per edge/node ID) behaves like Θ(m) — an honest accounting of
// where the paper's "free lunch" is free (messages, rounds) and where it is
// not (bits; the paper never claims it is). CONGEST-minded readers should
// look here first.
func E13BitComplexity(quick bool) Report {
	rep := Report{
		ID:    "E13",
		Title: "message vs word complexity of the distributed Sampler",
		Claim: "messages are o(m) while payload words stay Ω(m): the lunch is free in messages and rounds, not bits",
		Pass:  true,
	}
	sizes := []int{200, 400, 800}
	if quick {
		sizes = []int{150, 300}
	}
	p := core.Default(2, 8)
	p.C = 0.5
	var rows [][]string
	var prevMsgRatio = math.Inf(1)
	for _, n := range sizes {
		g := gen.Complete(n)
		res, err := core.BuildDistributed(g, p, 1, local.Config{Concurrent: true})
		if err != nil {
			panic(err)
		}
		m := float64(g.NumEdges())
		msgRatio := float64(res.Run.Messages) / m
		wordRatio := float64(res.Run.PayloadUnits) / m
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(g.NumEdges()),
			fmt.Sprint(res.Run.Messages), stats.F(msgRatio),
			fmt.Sprint(res.Run.PayloadUnits), stats.F(wordRatio),
		})
		if msgRatio >= prevMsgRatio {
			rep.Pass = false
			rep.Notes = append(rep.Notes, "message ratio failed to decrease")
		}
		prevMsgRatio = msgRatio
		if wordRatio < 1 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, "words dropped below m — boundary accounting looks broken")
		}
	}
	rep.Table = stats.Table([]string{"n", "m", "msgs", "msgs/m", "words", "words/m"}, rows)
	rep.Notes = append(rep.Notes,
		"a unit is one O(log n)-bit word (edge ID, node ID, flag); boundary sets in query replies dominate the word count",
		"this is expected: under CONGEST KT0 even global tasks need Ω(m) messages [KPPRT15]; the paper's point is the LOCAL model's message count")
	return rep
}

// E14SpannerQuality prices the message-efficiency: at a matched stretch
// bound, how much larger is Sampler's spanner than the classic greedy
// spanner's and Baswana–Sen's?
func E14SpannerQuality(quick bool) Report {
	rep := Report{
		ID:    "E14",
		Title: "spanner quality at matched stretch",
		Claim: "message-efficiency costs a constant-factor size premium, not an asymptotic one",
		Pass:  true,
	}
	n := 400
	if quick {
		n = 200
	}
	var rows [][]string
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"complete", gen.Complete(n)},
		{"gnp-dense", gnpWithDegree(n, float64(n)/4, 5)},
	} {
		g := tc.g
		// Sampler at k=1: stretch bound 5. Match greedy and BS at stretch 5
		// (k'=3: 2k'−1 = 5).
		p := core.Default(1, 4)
		p.C = 0.5
		samp, err := core.Build(g, p, 3)
		if err != nil {
			panic(err)
		}
		bs, err := spanner.BaswanaSen(g, 3, 3)
		if err != nil {
			panic(err)
		}
		greedy, err := spanner.Greedy(g, 3)
		if err != nil {
			panic(err)
		}
		_, srS, err := graph.VerifySpanner(g, samp.S, 5)
		if err != nil {
			panic(err)
		}
		_, srB, err := graph.VerifySpanner(g, bs.S, 5)
		if err != nil {
			panic(err)
		}
		_, srG, err := graph.VerifySpanner(g, greedy.S, 5)
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{
			tc.name, fmt.Sprint(g.NumEdges()),
			fmt.Sprintf("%d (max %d)", len(samp.S), srS.MaxEdgeStretch),
			fmt.Sprintf("%d (max %d)", len(bs.S), srB.MaxEdgeStretch),
			fmt.Sprintf("%d (max %d)", len(greedy.S), srG.MaxEdgeStretch),
			stats.F(float64(len(samp.S)) / float64(len(greedy.S))),
		})
		if len(samp.S) > 60*len(greedy.S) {
			rep.Pass = false
			rep.Notes = append(rep.Notes, tc.name+": Sampler's size premium over greedy exceeds any reasonable constant")
		}
	}
	rep.Table = stats.Table([]string{"graph", "m", "sampler@5", "baswana-sen@5", "greedy@5", "sampler/greedy"}, rows)
	rep.Notes = append(rep.Notes, "greedy is the centralized quality yardstick (no message-efficient analogue); the premium pays for o(m) messages")
	return rep
}

// E15ElkinNeimanStage reproduces the paper's Section 7 improvement remark:
// swapping the simulated off-the-shelf construction from Baswana–Sen (O(k²)
// rounds) to Elkin–Neiman (k+O(1) rounds) shrinks the two-stage scheme's
// middle phase, at the same stage-2 stretch.
func E15ElkinNeimanStage(quick bool) Report {
	rep := Report{
		ID:    "E15",
		Title: "two-stage scheme with Elkin–Neiman (Section 7 improvement)",
		Claim: "the Elkin–Neiman stage costs fewer rounds and messages than Baswana–Sen at equal stretch",
		Pass:  true,
	}
	n := 300
	if quick {
		n = 150
	}
	g := gnpWithDegree(n, float64(n)/5, 21)
	const tr, k2 = 4, 2
	seed := uint64(51)
	spec := algorithms.MaxID(tr)
	p := simulate.Scheme1Params(1)

	bs, err := simulate.Scheme2With(context.Background(), g, spec, p, simulate.BaswanaSenStage2(k2), seed, local.Config{Concurrent: true}, progressHooks("E15"))
	if err != nil {
		panic(err)
	}
	en, err := simulate.Scheme2With(context.Background(), g, spec, p, simulate.ElkinNeimanStage2(k2), seed, local.Config{Concurrent: true}, progressHooks("E15"))
	if err != nil {
		panic(err)
	}
	var rows [][]string
	for _, tc := range []struct {
		name string
		r    *simulate.SchemeResult
	}{{"baswana-sen", bs}, {"elkin-neiman", en}} {
		for _, ph := range tc.r.Phases {
			rows = append(rows, []string{tc.name, ph.Name, fmt.Sprint(ph.Rounds), fmt.Sprint(ph.Messages)})
		}
		rows = append(rows, []string{tc.name, "H' size", fmt.Sprint(tc.r.SpannerEdges), "stretch " + fmt.Sprint(tc.r.StretchUsed)})
		if _, _, err := graph.VerifySpanner(g, tc.r.FinalSpanner, tc.r.StretchUsed); err != nil {
			rep.Pass = false
			rep.Notes = append(rep.Notes, tc.name+": invalid stage-2 spanner: "+err.Error())
		}
	}
	rep.Table = stats.Table([]string{"stage-2", "phase", "rounds", "messages"}, rows)
	if en.Phases[1].Rounds >= bs.Phases[1].Rounds {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "EN stage did not save rounds")
	} else {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"middle phase: EN %d rounds vs BS %d (budgets %d vs %d times the stage-1 stretch)",
			en.Phases[1].Rounds, bs.Phases[1].Rounds, spanner.ENRounds(k2), spanner.BSRounds(k2)))
	}
	// Fidelity spot check for the EN pipeline.
	want, _, err := simulate.Direct(context.Background(), g, spec, seed, local.Config{})
	if err != nil {
		panic(err)
	}
	got, err := en.Coll.Replay(spec, 0)
	if err != nil {
		panic(err)
	}
	if got != want[0] {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "fidelity violated")
	}
	return rep
}
