package experiments

import (
	"strings"
	"testing"
)

// Every experiment must run in quick mode and report a passing shape. These
// are the repository's end-to-end regression tests for the paper's claims.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are minutes-scale")
	}
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			t.Parallel()
			rep := ex.Run(true)
			if rep.ID != ex.ID {
				t.Fatalf("report ID %q under experiment %q", rep.ID, ex.ID)
			}
			if !rep.Pass {
				t.Fatalf("experiment failed its shape check:\n%s", rep)
			}
			if rep.Table == "" {
				t.Fatal("no table rendered")
			}
		})
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "EX", Title: "t", Claim: "c", Table: "tbl\n", Notes: []string{"n"}, Pass: true}
	s := r.String()
	for _, want := range []string{"EX", "PASS", "tbl", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}
