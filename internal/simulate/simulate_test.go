package simulate

import (
	"context"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/spanner"
	"repro/internal/xrand"
)

func TestCollectDirectEqualsBalls(t *testing.T) {
	g := gen.ConnectedGNP(100, 0.05, xrand.New(1))
	for _, tr := range []int{0, 1, 3} {
		coll, err := Collect(context.Background(), g, g, tr, 7, local.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			ball := g.Ball(graph.NodeID(v), tr)
			if len(coll.Ports[v]) != len(ball) {
				t.Fatalf("t=%d node %d collected %d, ball %d", tr, v, len(coll.Ports[v]), len(ball))
			}
			for _, u := range ball {
				ports, ok := coll.Ports[v][u]
				if !ok {
					t.Fatalf("missing origin %d", u)
				}
				if len(ports) != g.Degree(u) {
					t.Fatalf("origin %d ports %d != degree %d", u, len(ports), g.Degree(u))
				}
			}
		}
	}
}

func TestCollectHostMismatch(t *testing.T) {
	if _, err := Collect(context.Background(), gen.Path(3), gen.Path(4), 1, 1, local.Config{}); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

// checkFidelity verifies that replayed outputs from coll equal direct
// execution on g — the operational content of the paper's Section 6.
func checkFidelity(t *testing.T, g *graph.Graph, spec algorithms.Spec, coll *Collection, seed uint64) {
	t.Helper()
	want, _, err := Direct(context.Background(), g, spec, seed, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coll.ReplayAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: node %d replay %v != direct %v", spec.Name, v, got[v], want[v])
		}
	}
}

func TestReplayFidelityDirectCollection(t *testing.T) {
	// Simplest setting: collect over g itself for exactly t rounds.
	g := gen.ConnectedGNP(90, 0.06, xrand.New(2))
	const seed = 42
	for _, spec := range []algorithms.Spec{
		algorithms.MaxID(2),
		algorithms.BFS(0, 4),
		algorithms.MIS(algorithms.MISRounds(90)),
		algorithms.Coloring(algorithms.ColoringRounds(90)),
	} {
		coll, err := Collect(context.Background(), g, g, spec.T, seed, local.Config{})
		if err != nil {
			t.Fatal(err)
		}
		checkFidelity(t, g, spec, coll, seed)
	}
}

func TestScheme1Fidelity(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.ConnectedGNP(80, 0.08, xrand.New(3))},
		{"grid", gen.Grid(8, 8)},
		{"barbell", gen.Barbell(12, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			const seed = 11
			for _, spec := range []algorithms.Spec{
				algorithms.MaxID(3),
				algorithms.MIS(algorithms.MISRounds(g.NumNodes())),
			} {
				res, err := Scheme1(context.Background(), g, spec, Scheme1Params(1), seed, local.Config{}, Hooks{})
				if err != nil {
					t.Fatal(err)
				}
				checkFidelity(t, g, spec, res.Coll, seed)
				if len(res.Phases) != 2 {
					t.Fatal("scheme1 phase accounting")
				}
				if res.TotalMessages() <= 0 || res.TotalRounds() <= 0 {
					t.Fatal("degenerate cost accounting")
				}
			}
		})
	}
}

func TestScheme1FidelityK2(t *testing.T) {
	g := gen.ConnectedGNP(70, 0.1, xrand.New(4))
	const seed = 13
	spec := algorithms.Coloring(algorithms.ColoringRounds(70))
	res, err := Scheme1(context.Background(), g, spec, Scheme1Params(2), seed, local.Config{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkFidelity(t, g, spec, res.Coll, seed)
}

func TestGossipCollectFidelity(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.12, xrand.New(5))
	const seed, tr = 17, 2
	spec := algorithms.MaxID(tr)
	coll, cover, msgs, err := GossipCollect(context.Background(), g, tr, 600, seed, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cover < 0 {
		t.Fatal("gossip did not cover within budget")
	}
	if cover < tr {
		t.Fatalf("cover round %d below t", cover)
	}
	if msgs <= 0 {
		t.Fatal("no messages counted")
	}
	checkFidelity(t, g, spec, coll, seed)
}

func TestScheme2FidelityAndSpanner(t *testing.T) {
	g := gen.ConnectedGNP(70, 0.12, xrand.New(6))
	const seed = 23
	spec := algorithms.MaxID(2)
	res, err := Scheme2(context.Background(), g, spec, Scheme1Params(1), 2, seed, local.Config{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkFidelity(t, g, spec, res.Coll, seed)
	if res.StretchUsed != 3 {
		t.Fatalf("stage-2 stretch = %d, want 3", res.StretchUsed)
	}
	if res.FinalSpanner == nil {
		t.Fatal("no final spanner recorded")
	}
	if _, _, err := graph.VerifySpanner(g, res.FinalSpanner, res.StretchUsed); err != nil {
		t.Fatalf("simulated Baswana–Sen output is not a valid spanner: %v", err)
	}
	if len(res.Phases) != 3 {
		t.Fatal("scheme2 phase accounting")
	}
}

func TestScheme2MatchesDirectBS(t *testing.T) {
	// The simulated Baswana–Sen must produce exactly the edge set of a
	// direct distributed run with the same seed.
	g := gen.ConnectedGNP(60, 0.15, xrand.New(7))
	const seed, bsK = 29, 2
	res, err := Scheme2(context.Background(), g, algorithms.MaxID(1), Scheme1Params(1), bsK, seed, local.Config{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Direct BS run with identical seed: the replayed construction must
	// reproduce it edge for edge (both use the same per-node RNG streams).
	direct, err := spanner.BaswanaSenDistributed(g, bsK, seed, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.S) != len(res.FinalSpanner) {
		t.Fatalf("simulated BS has %d edges, direct %d", len(res.FinalSpanner), len(direct.S))
	}
	for e := range direct.S {
		if !res.FinalSpanner[e] {
			t.Fatal("simulated and direct BS disagree")
		}
	}
}

func TestScheme1Params(t *testing.T) {
	p := Scheme1Params(2)
	if p.K != 2 || p.H != 7 {
		t.Fatalf("coupling wrong: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectBroadcastCost(t *testing.T) {
	g := gen.Complete(40)
	coll, err := DirectBroadcastCost(context.Background(), g, 2, 3, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Complete graph, t=2: everyone knows everyone.
	for v := range coll.Ports {
		if len(coll.Ports[v]) != 40 {
			t.Fatalf("node %d knows %d of 40", v, len(coll.Ports[v]))
		}
	}
	if coll.Run.Messages < int64(2*g.NumEdges()) {
		t.Fatal("direct broadcast cheaper than one sweep?")
	}
}

func TestSchemeBeatsDirectOnDenseGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("dense-graph crossover needs a few hundred nodes")
	}
	// The free-lunch claim end to end: simulating a t-round algorithm over
	// the Sampler spanner costs fewer messages than direct flooding, on a
	// graph dense enough for the crossover at this scale.
	g := gen.Complete(400)
	const seed, tr = 3, 4
	spec := algorithms.MaxID(tr)
	p := core.Default(2, 8)
	p.C = 0.5
	res, err := Scheme1(context.Background(), g, spec, p, seed, local.Config{Concurrent: true}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := DirectBroadcastCost(context.Background(), g, tr, seed, local.Config{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scheme1: %d msgs (spanner %d + collect %d); direct: %d msgs",
		res.TotalMessages(), res.Phases[0].Messages, res.Phases[1].Messages, direct.Run.Messages)
	if res.TotalMessages() >= direct.Run.Messages {
		t.Fatalf("scheme1 (%d msgs) did not beat direct flooding (%d msgs)",
			res.TotalMessages(), direct.Run.Messages)
	}
	// And fidelity still holds on a sample of nodes.
	want, _, err := Direct(context.Background(), g, spec, seed, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.NodeID{0, 17, 399} {
		got, err := res.Coll.Replay(spec, v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[v] {
			t.Fatalf("node %d: %v != %v", v, got, want[v])
		}
	}
}

func TestReplayDetectsCorruptCollection(t *testing.T) {
	g := gen.Path(3)
	coll, err := Collect(context.Background(), g, g, 2, 1, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: a third node claims an existing edge.
	coll.Ports[0][2] = append(coll.Ports[0][2], coll.Ports[0][0][0])
	if _, err := coll.Replay(algorithms.MaxID(2), 0); err == nil {
		t.Fatal("corrupt collection accepted")
	}
}

func TestScheme2WithElkinNeiman(t *testing.T) {
	g := gen.ConnectedGNP(70, 0.12, xrand.New(8))
	const seed = 37
	spec := algorithms.MaxID(2)
	res, err := Scheme2With(context.Background(), g, spec, Scheme1Params(1), ElkinNeimanStage2(2), seed, local.Config{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkFidelity(t, g, spec, res.Coll, seed)
	if _, _, err := graph.VerifySpanner(g, res.FinalSpanner, res.StretchUsed); err != nil {
		t.Fatalf("simulated Elkin–Neiman output invalid: %v", err)
	}
	// The EN stage must cost fewer rounds than the BS stage at the same
	// stretch (k'=2: EN 5 rounds vs BS 7, times the stage-1 stretch).
	bs, err := Scheme2(context.Background(), g, spec, Scheme1Params(1), 2, seed, local.Config{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[1].Rounds >= bs.Phases[1].Rounds {
		t.Fatalf("EN stage rounds %d not below BS stage rounds %d",
			res.Phases[1].Rounds, bs.Phases[1].Rounds)
	}
}

func TestScheme2ENMatchesDirectEN(t *testing.T) {
	// Same seed: the simulated EN run must reproduce the direct distributed
	// run edge for edge.
	g := gen.ConnectedGNP(60, 0.15, xrand.New(9))
	const seed, k = 43, 2
	res, err := Scheme2With(context.Background(), g, algorithms.MaxID(1), Scheme1Params(1), ElkinNeimanStage2(k), seed, local.Config{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := spanner.ElkinNeimanDistributed(g, k, seed, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.S) != len(res.FinalSpanner) {
		t.Fatalf("simulated EN has %d edges, direct %d", len(res.FinalSpanner), len(direct.S))
	}
	for e := range direct.S {
		if !res.FinalSpanner[e] {
			t.Fatal("simulated and direct EN disagree")
		}
	}
}
