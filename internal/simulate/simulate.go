// Package simulate implements the paper's Section 6: message-efficient
// simulation of arbitrary t-round LOCAL algorithms.
//
// The pipeline follows the paper exactly. In a t-round LOCAL algorithm, the
// computation of node v depends only on the initial knowledge — identity,
// input, incident edge IDs — of the nodes in its ball B_{G,t}(v). The
// simulation therefore (1) performs t-local broadcast of every node's
// initial knowledge, flooding over a spanner H with stretch α for α·t
// rounds, and (2) has every node locally reconstruct its exact t-ball and
// re-execute the algorithm on it ("replay"). Unique edge IDs make the
// reconstruction possible: two collected nodes are adjacent iff their port
// lists share an edge ID.
//
// Scheme1 realizes Theorem 3's first trade-off (spanner built by algorithm
// Sampler, then one collection); Scheme2 realizes the second, two-stage
// trade-off (Sampler's spanner simulates an off-the-shelf spanner
// construction — Baswana–Sen here, substituting for Derbel et al., see
// DESIGN.md — whose output spanner then carries the final collection).
package simulate

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/algorithms"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
)

// Collection is the outcome of the t-local broadcast of port lists: for
// every node, the port list of every node it heard about.
type Collection struct {
	// N is the size of the original network (for replays).
	N int
	// Seed is the run seed shared by the original network and all replays.
	Seed uint64
	// Ports[v] maps each origin u that v heard about to u's incident edge
	// IDs in the original graph.
	Ports []map[graph.NodeID][]graph.EdgeID
	// Run is the cost of the collection phase.
	Run local.Result
}

// portsOf extracts every node's (sorted) incident edge list from g.
func portsOf(g *graph.Graph) []any {
	out := make([]any, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		inc := g.Incident(graph.NodeID(v))
		edges := make([]graph.EdgeID, len(inc))
		for i, h := range inc {
			edges[i] = h.Edge
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		out[v] = edges
	}
	return out
}

// Collect floods every node's original-graph port list over host for the
// given number of rounds. host must span the same node set as g (it is g
// itself for the direct baseline, or a spanner of g for the schemes).
// Cancelling ctx aborts the flood mid-round.
func Collect(ctx context.Context, g, host *graph.Graph, rounds int, seed uint64, cfg local.Config) (*Collection, error) {
	if g.NumNodes() != host.NumNodes() {
		return nil, fmt.Errorf("simulate: host spans %d nodes, graph has %d", host.NumNodes(), g.NumNodes())
	}
	cfg.Seed = seed
	fl, err := broadcast.Flood(ctx, host, portsOf(g), rounds, cfg)
	if err != nil {
		return nil, err
	}
	return collectionFrom(g, fl.Known, seed, fl.Run), nil
}

// CollectBudget is Collect under a CONGEST-style bandwidth cap: every
// directed host edge carries at most bw words per round, so oversized port
// lists are split across consecutive rounds (see broadcast.FloodBudget). The
// returned collection holds exactly the knowledge Collect would have
// gathered; only the round schedule (and hence Run.Rounds) dilates.
func CollectBudget(ctx context.Context, g, host *graph.Graph, rounds, bw int, seed uint64, cfg local.Config) (*Collection, error) {
	if g.NumNodes() != host.NumNodes() {
		return nil, fmt.Errorf("simulate: host spans %d nodes, graph has %d", host.NumNodes(), g.NumNodes())
	}
	cfg.Seed = seed
	fl, err := broadcast.FloodBudget(ctx, host, portsOf(g), rounds, bw, cfg)
	if err != nil {
		return nil, err
	}
	return collectionFrom(g, fl.Known, seed, fl.Run), nil
}

// GossipCollect performs the same collection by push–pull gossip (the
// baseline family of Censor-Hillel et al. and Haeupler). It runs for
// maxRounds rounds and additionally reports the earliest round at which
// every t-ball was covered (-1 if never) and the messages spent by then.
func GossipCollect(ctx context.Context, g *graph.Graph, t, maxRounds int, seed uint64, cfg local.Config) (*Collection, int, int64, error) {
	cfg.Seed = seed
	gos, err := broadcast.Gossip(ctx, g, portsOf(g), maxRounds, cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	cover := broadcast.CoverRound(g, gos.Arrival, t)
	var msgs int64
	if cover >= 0 {
		if msgs, err = gos.MessagesThrough(cover); err != nil {
			return nil, 0, 0, fmt.Errorf("simulate: gossip cover billing: %w", err)
		}
	}
	return collectionFrom(g, gos.Known, seed, gos.Run), cover, msgs, nil
}

// GossipCollectEarly is GossipCollect with central early stopping: the same
// schedule, seed, and per-round behaviour, but the round loop ends the
// moment every node's distance-t ball is covered. The cover round and the
// message bill through it are bit-identical to GossipCollect's (the executed
// prefix is the same execution); only the schedule's dead tail — and its
// wall clock — disappears. The collection holds exactly the knowledge
// gossip had delivered by the cover round, which suffices for every replay.
func GossipCollectEarly(ctx context.Context, g *graph.Graph, t, maxRounds int, seed uint64, cfg local.Config) (*Collection, int, int64, error) {
	cfg.Seed = seed
	bi := broadcast.NewBallIndex(g, t)
	gos, cover, err := broadcast.GossipUntilCover(ctx, g, portsOf(g), bi, maxRounds, cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	var msgs int64
	if cover >= 0 {
		if msgs, err = gos.MessagesThrough(cover); err != nil {
			return nil, 0, 0, fmt.Errorf("simulate: gossip cover billing: %w", err)
		}
	}
	return collectionFrom(g, gos.Known, seed, gos.Run), cover, msgs, nil
}

func collectionFrom(g *graph.Graph, known []map[graph.NodeID]any, seed uint64, run local.Result) *Collection {
	coll := &Collection{N: g.NumNodes(), Seed: seed, Run: run}
	coll.Ports = make([]map[graph.NodeID][]graph.EdgeID, len(known))
	for v, kn := range known {
		m := make(map[graph.NodeID][]graph.EdgeID, len(kn))
		for origin, payload := range kn {
			m[origin] = payload.([]graph.EdgeID)
		}
		coll.Ports[v] = m
	}
	return coll
}

// Replay reconstructs node v's exact t-ball from the collection and
// re-executes the algorithm on it, returning v's output — the value it
// would have produced in a direct t-round run on the original graph.
func (c *Collection) Replay(spec algorithms.Spec, v graph.NodeID) (any, error) {
	known := c.Ports[v]
	// Adjacency among known origins: an edge ID shared by two port lists
	// connects them (the unique-edge-ID assumption at work).
	owners := make(map[graph.EdgeID][]graph.NodeID)
	//freelunch:orderok owner-list order only pairs edge endpoints; replay sorts the ball and takes order-independent BFS distances
	for origin, ports := range known {
		for _, e := range ports {
			owners[e] = append(owners[e], origin)
		}
	}
	adj := make(map[graph.NodeID][]graph.NodeID, len(known))
	//freelunch:orderok adjacency is consumed as a set: replay's distance computation is neighbor-order-independent
	for e, os := range owners {
		if len(os) > 2 {
			return nil, fmt.Errorf("simulate: edge %d claimed by %d nodes", e, len(os))
		}
		if len(os) == 2 {
			adj[os[0]] = append(adj[os[0]], os[1])
			adj[os[1]] = append(adj[os[1]], os[0])
		}
	}
	// Distances from v among known origins. For targets within t these
	// equal original-graph distances: every vertex of a shortest path of
	// length <= t lies in B_{G,t}(v), which the collection covers.
	dist := map[graph.NodeID]int{v: 0}
	queue := []graph.NodeID{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] >= spec.T {
			continue
		}
		for _, w := range adj[u] {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	// Ball members, deterministically ordered.
	ball := make([]graph.NodeID, 0, len(dist))
	for u := range dist {
		ball = append(ball, u)
	}
	sort.Slice(ball, func(i, j int) bool { return ball[i] < ball[j] })

	// Build the replay graph: ball nodes with their complete port lists.
	// Edges leaving the ball get their far endpoint as a "phantom" node —
	// the known origin beyond distance t when the collection heard of it, or
	// a synthetic node otherwise. Phantoms sit at distance >= t+1 from v, so
	// their (arbitrary) behaviour cannot influence v within t rounds; they
	// exist so that boundary nodes of the ball see their true degree.
	idx := make(map[graph.NodeID]int, len(ball))
	var idmap []graph.NodeID
	addNode := func(id graph.NodeID) int {
		if i, ok := idx[id]; ok {
			return i
		}
		i := len(idmap)
		idx[id] = i
		idmap = append(idmap, id)
		return i
	}
	for _, u := range ball {
		addNode(u)
	}
	type pend struct {
		e    graph.EdgeID
		a, b int
	}
	var pends []pend
	seenEdge := make(map[graph.EdgeID]bool)
	synth := c.N // synthetic phantom identities start beyond all real IDs
	for _, u := range ball {
		for _, e := range known[u] {
			if seenEdge[e] {
				continue
			}
			seenEdge[e] = true
			var far graph.NodeID
			switch os := owners[e]; len(os) {
			case 2:
				far = os[0]
				if far == u {
					far = os[1]
				}
			default:
				far = graph.NodeID(synth)
				synth++
			}
			pends = append(pends, pend{e: e, a: idx[u], b: addNode(far)})
		}
	}
	rg := graph.New(len(idmap))
	for _, p := range pends {
		if p.a == p.b {
			return nil, fmt.Errorf("simulate: reconstructed self-loop on edge %d", p.e)
		}
		if err := rg.AddEdgeWithID(p.e, graph.NodeID(p.a), graph.NodeID(p.b)); err != nil {
			return nil, fmt.Errorf("simulate: rebuilding ball of %d: %w", v, err)
		}
	}

	// Re-execute with original identities, original network size, and the
	// original seed, so every ball node behaves exactly as in the real run.
	protos := make([]local.Protocol, rg.NumNodes())
	run, err := local.Run(rg, func(id graph.NodeID) local.Protocol {
		p := spec.New(id)
		// Factory receives mapped IDs; find the slot by identity.
		protos[idx[id]] = p
		return p
	}, local.Config{
		Seed:      c.Seed,
		MaxRounds: spec.T + 1,
		IDMap:     idmap,
		NOverride: c.N,
	})
	if err != nil {
		return nil, err
	}
	if !run.Halted {
		return nil, fmt.Errorf("simulate: replay of %s did not halt in %d rounds", spec.Name, spec.T)
	}
	return spec.Output(protos[idx[v]]), nil
}

// ReplayAll replays every node sequentially and returns the full output
// vector. It is ReplayAllN with concurrency 0; cancelling ctx aborts between
// node replays (each replay is one small-ball local re-execution, so aborts
// land within one node's work).
func (c *Collection) ReplayAll(ctx context.Context, spec algorithms.Spec) ([]any, error) {
	return c.ReplayAllN(ctx, spec, 0)
}

// ReplayAllN replays every node and returns the full output vector, fanning
// the independent per-node re-executions out over a worker pool. The
// concurrency knob follows the facade convention: 0 sequential, w > 0 that
// many workers, w < 0 GOMAXPROCS. Output slots are indexed by node, so the
// result is byte-identical at every concurrency level; cancelling ctx aborts
// between node replays.
func (c *Collection) ReplayAllN(ctx context.Context, spec algorithms.Spec, concurrency int) ([]any, error) {
	out := make([]any, len(c.Ports))
	err := core.ParallelFor(ctx, len(c.Ports), concurrency, func(v int) error {
		o, err := c.Replay(spec, graph.NodeID(v))
		if err != nil {
			return fmt.Errorf("node %d: %w", v, err)
		}
		out[v] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Direct runs the algorithm directly on g — the ground truth and the
// Θ(t·m)-message baseline.
func Direct(ctx context.Context, g *graph.Graph, spec algorithms.Spec, seed uint64, cfg local.Config) ([]any, local.Result, error) {
	protos := make([]local.Protocol, g.NumNodes())
	cfg.Seed = seed
	cfg.MaxRounds = spec.T + 1
	run, err := local.RunCtx(ctx, g, func(v graph.NodeID) local.Protocol {
		protos[v] = spec.New(v)
		return protos[v]
	}, cfg)
	if err != nil {
		return nil, local.Result{}, err
	}
	if !run.Halted {
		return nil, run, fmt.Errorf("simulate: %s did not halt in %d rounds", spec.Name, spec.T)
	}
	out := make([]any, len(protos))
	for v, p := range protos {
		out[v] = spec.Output(p)
	}
	return out, run, nil
}
