package simulate

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/algorithms"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/globalcompute"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/spanner"
)

// ErrRoundBudget is the typed failure for runs that exceed their round
// budget: a scheme whose billed rounds overrun the configured MaxRounds, a
// gossip stage that fails to cover its t-balls within its budget, or a
// pipeline the engine's runaway guard had to cancel. Callers test for it
// with errors.Is.
var ErrRoundBudget = errors.New("simulate: round budget exceeded")

// PhaseCost is one pipeline stage's price. Dilation is nonzero only for
// bandwidth-budgeted stages: the factor by which the CONGEST-style word cap
// stretched the stage's round count relative to the unbudgeted LOCAL
// schedule. Dropped and Duplicated are the stage's adversary-induced losses
// and duplications (zero without an adversary); both kinds of perturbed
// message are already billed inside Messages — the honest-billing contract —
// so these fields attribute, not extend, the bill.
type PhaseCost struct {
	Name       string
	Rounds     int
	Messages   int64
	Dilation   float64
	Dropped    int64
	Duplicated int64
}

// Hooks observes a scheme pipeline as it runs: Round fires after every
// simulator round (labeled with the phase it belongs to), Phase fires when a
// pipeline stage completes. Either may be nil. The zero Hooks observes
// nothing.
type Hooks struct {
	Round func(phase string, round int, messages int64)
	Phase func(cost PhaseCost)
}

// RoundConfig returns cfg with its OnRound callback bound to this phase.
func (h Hooks) RoundConfig(cfg local.Config, phase string) local.Config {
	if h.Round != nil {
		round := h.Round
		cfg.OnRound = func(r int, m int64) { round(phase, r, m) }
	}
	return cfg
}

// PhaseDone reports a completed stage.
func (h Hooks) PhaseDone(cost PhaseCost) {
	if h.Phase != nil {
		h.Phase(cost)
	}
}

// SchemeResult is the outcome of a message-reduction scheme: the collection
// from which any node's output can be replayed, plus full cost accounting.
type SchemeResult struct {
	Coll   *Collection
	Phases []PhaseCost
	// StretchUsed is the stretch bound of the spanner that carried the
	// final collection.
	StretchUsed int
	// SpannerEdges is that spanner's size.
	SpannerEdges int
	// FinalSpanner is the edge set of the spanner that carried the final
	// collection (Sampler's for Scheme1; the simulated off-the-shelf
	// construction's for Scheme2).
	FinalSpanner map[graph.EdgeID]bool
}

// TotalMessages sums message costs across phases.
func (r *SchemeResult) TotalMessages() int64 {
	var t int64
	for _, p := range r.Phases {
		t += p.Messages
	}
	return t
}

// TotalRounds sums round costs across phases.
func (r *SchemeResult) TotalRounds() int {
	t := 0
	for _, p := range r.Phases {
		t += p.Rounds
	}
	return t
}

// Stage1 is a built stage-1 Sampler spanner together with its materialized
// host subgraph — the reusable artifact of the paper's amortization story:
// the one-off construction whose cost is shared by every collection that
// floods over it. A Stage1 is immutable once built and safe to share across
// concurrent pipeline runs (collections and replays only read it).
type Stage1 struct {
	// S is the spanner edge set.
	S map[graph.EdgeID]bool
	// Host is the materialized subgraph H = (V, S) that collections flood.
	Host *graph.Graph
	// Stretch is the certified stretch bound 2·3^K − 1.
	Stretch int
	// Rounds and Messages are the construction's costs.
	Rounds   int
	Messages int64
}

// Stage1Source supplies the stage-1 spanner for a scheme pipeline, together
// with the phase cost the pipeline should account for it. BuildStage1 is the
// default source (a fresh construction, phase "sampler"); an engine-level
// cache substitutes a source that returns a memoized Stage1 under the
// zero-cost phase "sampler(cached)".
type Stage1Source func(ctx context.Context, g *graph.Graph, p core.Params, seed uint64, cfg local.Config, hooks Hooks) (*Stage1, PhaseCost, error)

// BuildStage1 runs the distributed Sampler on g and materializes the host
// subgraph. Round events stream through hooks under phase "sampler"; the
// caller is responsible for firing PhaseDone with the returned cost (so a
// caching layer can substitute its own phase label on hits).
func BuildStage1(ctx context.Context, g *graph.Graph, p core.Params, seed uint64, cfg local.Config, hooks Hooks) (*Stage1, PhaseCost, error) {
	// Stage-1 construction is exempt from the adversary: the spanner is the
	// schemes' pre-provisioned reliable infrastructure (and the engine cache
	// keys spanners on (graph, seed, params) — profile-independent), so the
	// perturbations apply to the simulation traffic the spanner carries, not
	// to building the spanner itself.
	cfg.Adversary = nil
	sp, err := core.BuildDistributedCtx(ctx, g, p, seed, hooks.RoundConfig(cfg, "sampler"))
	if err != nil {
		return nil, PhaseCost{}, err
	}
	host, err := g.SubgraphByEdges(sp.S)
	if err != nil {
		return nil, PhaseCost{}, err
	}
	st1 := &Stage1{
		S:        sp.S,
		Host:     host,
		Stretch:  sp.StretchBound(),
		Rounds:   sp.Run.Rounds,
		Messages: sp.Run.Messages,
	}
	return st1, PhaseCost{Name: "sampler", Rounds: sp.Run.Rounds, Messages: sp.Run.Messages}, nil
}

// replayWorkers translates a simulator config into ParallelFor's concurrency
// knob: sequential runs replay sequentially, concurrent runs fan out over
// the configured worker count (GOMAXPROCS when unset).
func replayWorkers(cfg local.Config) int {
	if !cfg.Concurrent {
		return 0
	}
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return -1
}

// Scheme1 implements Theorem 3's first trade-off: build a spanner with the
// distributed Sampler (parameter γ = p.K), then t-local-broadcast the
// initial knowledge by flooding the spanner for stretch·t rounds. Round
// complexity O(3^γ·t + 6^γ); message complexity Õ(t·n^{1+2/(2^{γ+1}−1)})
// with the paper's parameter coupling h = 2^{γ+1}−1.
func Scheme1(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, seed uint64, cfg local.Config, hooks Hooks) (*SchemeResult, error) {
	return Scheme1Src(ctx, g, spec, p, seed, cfg, hooks, nil)
}

// Scheme1Src is Scheme1 with a pluggable stage-1 source (nil means a fresh
// construction per call). An engine-level spanner cache passes its memoized
// source here so that repeated runs amortize the construction.
func Scheme1Src(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, seed uint64, cfg local.Config, hooks Hooks, src Stage1Source) (*SchemeResult, error) {
	if src == nil {
		src = BuildStage1
	}
	st1, samplerCost, err := src(ctx, g, p, seed, cfg, hooks)
	if err != nil {
		return nil, fmt.Errorf("scheme1 spanner: %w", err)
	}
	hooks.PhaseDone(samplerCost)
	coll, err := Collect(ctx, g, st1.Host, st1.Stretch*spec.T, seed, hooks.RoundConfig(cfg, "collect"))
	if err != nil {
		return nil, fmt.Errorf("scheme1 collection: %w", err)
	}
	collectCost := PhaseCost{
		Name:       "collect",
		Rounds:     coll.Run.Rounds,
		Messages:   coll.Run.Messages,
		Dropped:    coll.Run.Dropped,
		Duplicated: coll.Run.Duplicated,
	}
	hooks.PhaseDone(collectCost)
	return &SchemeResult{
		Coll:         coll,
		Phases:       []PhaseCost{samplerCost, collectCost},
		StretchUsed:  st1.Stretch,
		SpannerEdges: len(st1.S),
		FinalSpanner: st1.S,
	}, nil
}

// Scheme1Params returns the paper's parameter coupling for scheme 1: level
// count γ and h = 2^{γ+1}−1 so that δ = 1/h and the message exponent
// becomes 1 + 2/(2^{γ+1}−1).
func Scheme1Params(gamma int) core.Params {
	return core.Default(gamma, (1<<(gamma+1))-1)
}

// Stage2 describes an off-the-shelf distributed spanner construction the
// two-stage scheme can simulate: a fixed-round-budget LOCAL protocol whose
// per-node output is its incident spanner edges.
type Stage2 struct {
	// Name labels the phase in cost tables.
	Name string
	// T is the protocol's fixed round budget.
	T int
	// Stretch is the construction's stretch bound.
	Stretch int
	// New builds a protocol instance.
	New func() local.Protocol
	// Output extracts a node's incident spanner edges.
	Output func(local.Protocol) map[graph.EdgeID]bool
}

// BaswanaSenStage2 is the Baswana–Sen construction as a stage-2 target:
// stretch 2k−1 in O(k²) rounds.
func BaswanaSenStage2(k int) Stage2 {
	return Stage2{
		Name:    "simulate-bs",
		T:       spanner.BSRounds(k),
		Stretch: 2*k - 1,
		New:     func() local.Protocol { return spanner.NewBSNode(k) },
		Output:  func(p local.Protocol) map[graph.EdgeID]bool { return p.(*spanner.BSNode).InS },
	}
}

// ElkinNeimanStage2 is the Elkin–Neiman construction as a stage-2 target:
// stretch 2k−1 in only k+O(1) rounds — the improvement the paper's
// concluding remarks anticipate (experiment E15 quantifies it).
func ElkinNeimanStage2(k int) Stage2 {
	return Stage2{
		Name:    "simulate-en",
		T:       spanner.ENRounds(k),
		Stretch: 2*k - 1,
		New:     func() local.Protocol { return spanner.NewENNode(k) },
		Output:  func(p local.Protocol) map[graph.EdgeID]bool { return p.(*spanner.ENNode).InS },
	}
}

// Scheme2 implements Theorem 3's second trade-off with Baswana–Sen as the
// off-the-shelf construction (the paper uses Derbel et al.; see DESIGN.md
// §3.2 for the substitution).
func Scheme2(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, bsK int, seed uint64, cfg local.Config, hooks Hooks) (*SchemeResult, error) {
	return Scheme2With(ctx, g, spec, p, BaswanaSenStage2(bsK), seed, cfg, hooks)
}

// Scheme2With implements Theorem 3's second trade-off, the two-stage
// pipeline, with a pluggable off-the-shelf construction:
//
//  1. the distributed Sampler builds a stage-1 spanner H with stretch α;
//  2. H simulates the stage-2 construction: the t₂-ball of every node is
//     collected over H in α·t₂ rounds and the construction is replayed
//     locally, yielding each node's incident edges of the better spanner H′
//     — without sending a single message of the original Ω(m)-message
//     algorithm;
//  3. H′ carries the final collection for the target algorithm.
func Scheme2With(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, st2 Stage2, seed uint64, cfg local.Config, hooks Hooks) (*SchemeResult, error) {
	return Scheme2WithSrc(ctx, g, spec, p, st2, seed, cfg, hooks, nil)
}

// Scheme2WithSrc is Scheme2With with a pluggable stage-1 source (nil means a
// fresh construction per call); see Scheme1Src.
func Scheme2WithSrc(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, st2 Stage2, seed uint64, cfg local.Config, hooks Hooks, src Stage1Source) (*SchemeResult, error) {
	if src == nil {
		src = BuildStage1
	}
	// Stage 1: Sampler spanner.
	st1, samplerCost, err := src(ctx, g, p, seed, cfg, hooks)
	if err != nil {
		return nil, fmt.Errorf("scheme2 stage-1 spanner: %w", err)
	}
	hooks.PhaseDone(samplerCost)

	// Stage 2: simulate the off-the-shelf construction over H1.
	st2Spec := algorithms.Spec{
		Name: st2.Name,
		T:    st2.T,
		New:  func(graph.NodeID) local.Protocol { return st2.New() },
		Output: func(pr local.Protocol) any {
			// A node's output is its incident H' edges (both endpoints of
			// every H' edge know it, by the protocols' accept messages).
			return st2.Output(pr)
		},
	}
	coll2, err := Collect(ctx, g, st1.Host, st1.Stretch*st2.T, seed, hooks.RoundConfig(cfg, st2.Name))
	if err != nil {
		return nil, fmt.Errorf("scheme2 stage-2 collection: %w", err)
	}
	// The per-node replays are independent; fan them out and merge the
	// incident edge sets afterwards (set union is order-independent, so the
	// merged spanner is identical at every concurrency level).
	nodeEdges := make([]map[graph.EdgeID]bool, g.NumNodes())
	err = core.ParallelFor(ctx, g.NumNodes(), replayWorkers(cfg), func(v int) error {
		out, err := coll2.Replay(st2Spec, graph.NodeID(v))
		if err != nil {
			return fmt.Errorf("scheme2 stage-2 replay at %d: %w", v, err)
		}
		nodeEdges[v] = out.(map[graph.EdgeID]bool)
		return nil
	})
	if err != nil {
		return nil, err
	}
	h2edges := make(map[graph.EdgeID]bool)
	for _, edges := range nodeEdges {
		for e := range edges {
			h2edges[e] = true
		}
	}
	stageCost := PhaseCost{
		Name:       st2.Name,
		Rounds:     coll2.Run.Rounds,
		Messages:   coll2.Run.Messages,
		Dropped:    coll2.Run.Dropped,
		Duplicated: coll2.Run.Duplicated,
	}
	hooks.PhaseDone(stageCost)
	h2, err := g.SubgraphByEdges(h2edges)
	if err != nil {
		return nil, fmt.Errorf("scheme2: simulated %s emitted a non-subgraph: %w", st2.Name, err)
	}

	// Stage 3: final collection over H2.
	coll, err := Collect(ctx, g, h2, st2.Stretch*spec.T, seed, hooks.RoundConfig(cfg, "collect"))
	if err != nil {
		return nil, fmt.Errorf("scheme2 final collection: %w", err)
	}
	collectCost := PhaseCost{
		Name:       "collect",
		Rounds:     coll.Run.Rounds,
		Messages:   coll.Run.Messages,
		Dropped:    coll.Run.Dropped,
		Duplicated: coll.Run.Duplicated,
	}
	hooks.PhaseDone(collectCost)
	return &SchemeResult{
		Coll:         coll,
		Phases:       []PhaseCost{samplerCost, stageCost, collectCost},
		StretchUsed:  st2.Stretch,
		SpannerEdges: h2.NumEdges(),
		FinalSpanner: h2edges,
	}, nil
}

// DirectBroadcastCost measures the Θ(t·m) baseline: t-local broadcast by
// flooding the communication graph itself.
func DirectBroadcastCost(ctx context.Context, g *graph.Graph, t int, seed uint64, cfg local.Config) (*Collection, error) {
	return Collect(ctx, g, g, t, seed, cfg)
}

// Scheme1CongestSrc is Scheme1Src under a CONGEST-style bandwidth budget:
// the Sampler spanner carries the same stretch·t-hop collection, but every
// directed spanner edge transmits at most bw words per round, so oversized
// ball payloads are split across extra rounds. The collection phase is
// labeled "collect(congest)" and reports its round dilation relative to the
// unbudgeted LOCAL schedule in PhaseCost.Dilation. Outputs replayed from the
// collection are bit-identical to direct execution — the bandwidth cap
// reshapes the schedule, never the knowledge.
func Scheme1CongestSrc(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, bw int, seed uint64, cfg local.Config, hooks Hooks, src Stage1Source) (*SchemeResult, error) {
	if src == nil {
		src = BuildStage1
	}
	st1, samplerCost, err := src(ctx, g, p, seed, cfg, hooks)
	if err != nil {
		return nil, fmt.Errorf("scheme1-congest spanner: %w", err)
	}
	hooks.PhaseDone(samplerCost)
	budgetRounds := st1.Stretch * spec.T
	coll, err := CollectBudget(ctx, g, st1.Host, budgetRounds, bw, seed, hooks.RoundConfig(cfg, "collect(congest)"))
	if err != nil {
		return nil, fmt.Errorf("scheme1-congest collection: %w", err)
	}
	collectCost := PhaseCost{
		Name:     "collect(congest)",
		Rounds:   coll.Run.Rounds,
		Messages: coll.Run.Messages,
		Dilation: float64(coll.Run.Rounds) / float64(budgetRounds+1),
		// The CONGEST collection is centrally scheduled (no LOCAL engine
		// run), so it is adversary-exempt by construction: no drops or
		// duplicates to attribute.
	}
	hooks.PhaseDone(collectCost)
	return &SchemeResult{
		Coll:         coll,
		Phases:       []PhaseCost{samplerCost, collectCost},
		StretchUsed:  st1.Stretch,
		SpannerEdges: len(st1.S),
		FinalSpanner: st1.S,
	}, nil
}

// HybridSrc composes the gossip baseline with the Sampler spanner pipeline:
// push–pull gossip runs until a target fraction of nodes holds its complete
// t-ball (phase "gossip(seed)", billed up to that round), and the spanner
// then floods only the residue — the rumors some node still misses — for
// stretch·t rounds (phase "collect(residue)"). The merged collection covers
// every t-ball, so replayed outputs are bit-identical to direct execution.
// The stage-1 spanner is built first so engine caches amortize it exactly as
// for the pure spanner schemes. gossipBudget bounds the seeding stage's
// schedule; failing to cover the fraction within it is an ErrRoundBudget.
func HybridSrc(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, fraction float64, gossipBudget int, seed uint64, cfg local.Config, hooks Hooks, src Stage1Source) (*SchemeResult, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("hybrid fraction %v outside (0,1]", fraction)
	}
	if src == nil {
		src = BuildStage1
	}
	st1, samplerCost, err := src(ctx, g, p, seed, cfg, hooks)
	if err != nil {
		return nil, fmt.Errorf("hybrid spanner: %w", err)
	}
	hooks.PhaseDone(samplerCost)

	n := g.NumNodes()
	ports := portsOf(g)
	need := int(math.Ceil(fraction * float64(n)))

	// Find the seeding deadline — the earliest round by which the target
	// fraction of nodes holds its complete t-ball — without simulating the
	// schedule's dead tail (the default budget is 100·n rounds; the fraction
	// is typically covered in O(polylog n)). The early-stopped run's executed
	// prefix is bit-identical to the full schedule's, so the deadline,
	// arrivals, and per-round message bill match what the full schedule
	// would have produced. The ball index is built once and shared by the
	// per-arrival cover tracking and the residue scan below.
	bi := broadcast.NewBallIndex(g, spec.T)
	gcfg := cfg
	gcfg.Seed = seed
	gos, seedRound, err := broadcast.GossipUntilCovered(ctx, g, ports, bi, need, gossipBudget, hooks.RoundConfig(gcfg, "gossip(seed)"))
	if err != nil {
		return nil, fmt.Errorf("hybrid gossip stage: %w", err)
	}
	if seedRound < 0 {
		covered := 0
		for _, r := range bi.CoverRounds(gos.Arrival) {
			if r >= 0 {
				covered++
			}
		}
		return nil, fmt.Errorf("hybrid gossip stage covered %d of the %d required t-balls within %d rounds: %w",
			covered, need, gossipBudget, ErrRoundBudget)
	}
	seedMsgs, err := gos.MessagesThrough(seedRound)
	if err != nil {
		return nil, fmt.Errorf("hybrid seed billing: %w", err)
	}
	seedCost := PhaseCost{
		Name:     "gossip(seed)",
		Rounds:   seedRound,
		Messages: seedMsgs,
		// Attribution covers the whole executed seeding run (the bill above
		// is truncated at the seeding deadline; drop/duplicate attribution
		// is not tracked per round).
		Dropped:    gos.Run.Dropped,
		Duplicated: gos.Run.Duplicated,
	}
	hooks.PhaseDone(seedCost)

	// Residue senders: every origin some node's t-ball still misses at the
	// seeding deadline (central bookkeeping, like broadcast.CoverRound).
	residue := make([]bool, n)
	for v := 0; v < n; v++ {
		for u := range bi.Members(graph.NodeID(v)) {
			if r, ok := gos.Arrival[v][u]; !ok || r > seedRound {
				residue[u] = true
			}
		}
	}
	fcfg := cfg
	fcfg.Seed = seed
	fl, err := broadcast.FloodFrom(ctx, st1.Host, ports, residue, st1.Stretch*spec.T, hooks.RoundConfig(fcfg, "collect(residue)"))
	if err != nil {
		return nil, fmt.Errorf("hybrid residue collection: %w", err)
	}
	collectCost := PhaseCost{
		Name:       "collect(residue)",
		Rounds:     fl.Run.Rounds,
		Messages:   fl.Run.Messages,
		Dropped:    fl.Run.Dropped,
		Duplicated: fl.Run.Duplicated,
	}
	hooks.PhaseDone(collectCost)

	// Merge: what gossip had delivered by the seeding deadline, plus the
	// residue flood.
	coll := &Collection{N: n, Seed: seed, Run: fl.Run}
	coll.Ports = make([]map[graph.NodeID][]graph.EdgeID, n)
	for v := 0; v < n; v++ {
		m := make(map[graph.NodeID][]graph.EdgeID, len(fl.Known[v]))
		for origin, r := range gos.Arrival[v] {
			if r <= seedRound {
				m[origin] = ports[origin].([]graph.EdgeID)
			}
		}
		for origin, payload := range fl.Known[v] {
			m[origin] = payload.([]graph.EdgeID)
		}
		coll.Ports[v] = m
	}
	return &SchemeResult{
		Coll:         coll,
		Phases:       []PhaseCost{samplerCost, seedCost, collectCost},
		StretchUsed:  st1.Stretch,
		SpannerEdges: len(st1.S),
		FinalSpanner: st1.S,
	}, nil
}

// GlobalCollectSrc realizes the paper's Section 7 extension as a collection
// pipeline: the Sampler spanner elects a root and builds a BFS tree, every
// node's port list is convergecast up the tree and the merged table is
// flooded back down (phase "globalcast"), after which every node can replay
// any node's t-ball locally. Rounds are O(stretch · diameter); messages are
// O(n) tree messages carrying tables instead of Θ(t·m) flood traffic.
func GlobalCollectSrc(ctx context.Context, g *graph.Graph, spec algorithms.Spec, p core.Params, seed uint64, cfg local.Config, hooks Hooks, src Stage1Source) (*SchemeResult, error) {
	if src == nil {
		src = BuildStage1
	}
	st1, samplerCost, err := src(ctx, g, p, seed, cfg, hooks)
	if err != nil {
		return nil, fmt.Errorf("globalcompute spanner: %w", err)
	}
	hooks.PhaseDone(samplerCost)

	n := g.NumNodes()
	ports := portsOf(g)
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = map[graph.NodeID][]graph.EdgeID{graph.NodeID(v): ports[v].([]graph.EdgeID)}
	}
	merge := func(a, b any) any {
		ta := a.(map[graph.NodeID][]graph.EdgeID)
		for origin, pl := range b.(map[graph.NodeID][]graph.EdgeID) {
			ta[origin] = pl
		}
		return ta
	}
	// The wave deadline must upper-bound the host diameter; the host is a
	// fixed artifact of this run, so the exact diameter is deterministic.
	waveRounds := st1.Host.Diameter()
	ccfg := cfg
	ccfg.Seed = seed
	vals, runRes, err := globalcompute.Converge(ctx, st1.Host, inputs, merge, waveRounds, hooks.RoundConfig(ccfg, "globalcast"))
	if err != nil {
		return nil, fmt.Errorf("globalcompute convergecast: %w", err)
	}
	castCost := PhaseCost{
		Name:       "globalcast",
		Rounds:     runRes.Rounds,
		Messages:   runRes.Messages,
		Dropped:    runRes.Dropped,
		Duplicated: runRes.Duplicated,
	}
	hooks.PhaseDone(castCost)

	// Every node holds the identical merged table (the root's map, shared
	// and read-only from here on), so the collection can alias it.
	coll := &Collection{N: n, Seed: seed, Run: runRes}
	coll.Ports = make([]map[graph.NodeID][]graph.EdgeID, n)
	for v := 0; v < n; v++ {
		table := vals[v].(map[graph.NodeID][]graph.EdgeID)
		if len(table) != n {
			// An incomplete table means the wave/convergecast starved within
			// its schedule (an adversarial network can do this): a budget
			// failure, typed so callers can test for it.
			return nil, fmt.Errorf("globalcompute: node %d's table covers %d of %d nodes: %w", v, len(table), n, ErrRoundBudget)
		}
		coll.Ports[v] = table
	}
	return &SchemeResult{
		Coll:         coll,
		Phases:       []PhaseCost{samplerCost, castCost},
		StretchUsed:  st1.Stretch,
		SpannerEdges: len(st1.S),
		FinalSpanner: st1.S,
	}, nil
}
