package simulate

// Tests of the parallel replay path: byte-identical outputs at every
// concurrency level, deterministic behaviour under cancellation (including
// mid-replay, exercised under -race in CI), and a fuzz target generalizing
// the corrupt-collection detection to arbitrary byte flips.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

// TestReplayAllNMatchesSequential is the acceptance check for the parallel
// replay path: the output vector must be byte-identical to the sequential
// path at every tested concurrency level.
func TestReplayAllNMatchesSequential(t *testing.T) {
	g := gen.ConnectedGNP(80, 0.07, xrand.New(21))
	ctx := context.Background()
	for _, spec := range []algorithms.Spec{
		algorithms.MaxID(2),
		algorithms.MIS(algorithms.MISRounds(g.NumNodes())),
	} {
		coll, err := Collect(ctx, g, g, spec.T, 9, local.Config{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := coll.ReplayAll(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, conc := range []int{0, 1, 2, 3, 8, -1} {
			got, err := coll.ReplayAllN(ctx, spec, conc)
			if err != nil {
				t.Fatalf("%s conc=%d: %v", spec.Name, conc, err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s conc=%d node %d: %v != sequential %v",
						spec.Name, conc, v, got[v], want[v])
				}
			}
		}
	}
}

// TestReplayAllNCancellationMidReplay cancels the context from inside a
// replay (after a fixed number of protocol instantiations) and checks every
// concurrency level unwinds promptly with the context error.
func TestReplayAllNCancellationMidReplay(t *testing.T) {
	g := gen.ConnectedGNP(120, 0.05, xrand.New(22))
	base := algorithms.MaxID(2)
	coll, err := Collect(context.Background(), g, g, base.T, 9, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{0, 4, -1} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		spec := base
		spec.New = func(v graph.NodeID) local.Protocol {
			if started.Add(1) == 5 {
				cancel()
			}
			return base.New(v)
		}
		_, err := coll.ReplayAllN(ctx, spec, conc)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("conc=%d: got %v, want context.Canceled", conc, err)
		}
		if started.Load() == 0 {
			t.Fatalf("conc=%d: cancelled before any replay started", conc)
		}
		cancel()
	}
}

// TestReplayAllNPreCancelled checks that an already-cancelled context stops
// the sweep before any replay runs.
func TestReplayAllNPreCancelled(t *testing.T) {
	g := gen.Path(6)
	base := algorithms.MaxID(1)
	coll, err := Collect(context.Background(), g, g, base.T, 1, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int64
	spec := base
	spec.New = func(v graph.NodeID) local.Protocol {
		started.Add(1)
		return base.New(v)
	}
	for _, conc := range []int{0, -1} {
		if _, err := coll.ReplayAllN(ctx, spec, conc); !errors.Is(err, context.Canceled) {
			t.Fatalf("conc=%d: got %v, want context.Canceled", conc, err)
		}
	}
	if n := started.Load(); n != 0 {
		t.Fatalf("%d replays ran under a pre-cancelled context", n)
	}
}

// cloneCollection deep-copies the mutable parts of a collection so fuzz
// mutations cannot leak across fuzz iterations.
func cloneCollection(c *Collection) *Collection {
	out := &Collection{N: c.N, Seed: c.Seed, Run: c.Run}
	out.Ports = make([]map[graph.NodeID][]graph.EdgeID, len(c.Ports))
	for v, m := range c.Ports {
		cm := make(map[graph.NodeID][]graph.EdgeID, len(m))
		for origin, ports := range m {
			cm[origin] = append([]graph.EdgeID(nil), ports...)
		}
		out.Ports[v] = cm
	}
	return out
}

// sortedOrigins returns a collection node's known origins in ascending
// order, so fuzz mutations are deterministic for a given input.
func sortedOrigins(m map[graph.NodeID][]graph.EdgeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for origin := range m {
		out = append(out, origin)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FuzzReplayDetectsCorruption generalizes TestReplayDetectsCorruptCollection
// to arbitrary corruption of the collected balls: byte flips in collected
// edge IDs, injected and dropped ports, and forged origins. The invariant is
// that Replay never panics or hangs on a corrupt collection — it either
// detects the corruption and errors, or degrades to a (possibly wrong)
// output; both are acceptable, a crash is not.
func FuzzReplayDetectsCorruption(f *testing.F) {
	g := gen.ConnectedGNP(24, 0.15, xrand.New(31))
	spec := algorithms.MaxID(2)
	base, err := Collect(context.Background(), g, g, spec.T, 1, local.Config{})
	if err != nil {
		f.Fatal(err)
	}
	// Seed corpus: one op per mutation kind, plus a multi-op mix.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{3, 0, 7, 1})
	f.Add([]byte{5, 1, 2, 200})
	f.Add([]byte{1, 2, 3, 4, 9, 1, 0, 255, 17, 3, 5, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := cloneCollection(base)
		mutated := false
		for len(data) >= 4 {
			v := int(data[0]) % len(c.Ports)
			op, a, b := data[1], data[2], data[3]
			data = data[4:]
			m := c.Ports[v]
			origins := sortedOrigins(m)
			if len(origins) == 0 {
				continue
			}
			origin := origins[int(a)%len(origins)]
			ports := m[origin]
			switch op % 4 {
			case 0: // flip one byte of a collected edge ID
				if mask := graph.EdgeID(uint64(a) << (8 * (b % 8))); mask != 0 && len(ports) > 0 {
					i := int(b) % len(ports)
					ports[i] ^= mask
					mutated = true
				}
			case 1: // inject a foreign (possibly duplicate) port
				m[origin] = append(ports, graph.EdgeID(int64(a)<<8|int64(b)))
				mutated = true
			case 2: // drop a port
				if len(ports) > 0 {
					i := int(b) % len(ports)
					m[origin] = append(ports[:i:i], ports[i+1:]...)
					mutated = true
				}
			case 3: // forge an origin with a stolen port list
				if target := graph.NodeID(int(a) % c.N); target != origin {
					m[target] = append([]graph.EdgeID(nil), ports...)
					mutated = true
				}
			}
		}
		// Replay a sample of nodes. Detected corruption surfaces as an
		// error; undetected corruption may change the output; neither may
		// panic or hang.
		for _, v := range []graph.NodeID{0, graph.NodeID(c.N / 2), graph.NodeID(c.N - 1)} {
			out, err := c.Replay(spec, v)
			if !mutated {
				// Uncorrupted clone: replay must still succeed and agree
				// with the pristine collection.
				if err != nil {
					t.Fatalf("clean clone replay at %d failed: %v", v, err)
				}
				want, werr := base.Replay(spec, v)
				if werr != nil {
					t.Fatal(werr)
				}
				if out != want {
					t.Fatalf("clean clone replay at %d drifted: %v != %v", v, out, want)
				}
			}
		}
	})
}
