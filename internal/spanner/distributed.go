package spanner

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/local"
)

// Distributed Baswana–Sen. The protocol is the textbook LOCAL realization:
// in each of the k−1 sampling iterations every clustered node announces its
// (cluster, sampled) pair over every incident edge, so the message
// complexity is Θ(k·m) — this is the baseline whose Ω(m) bottleneck the
// paper's algorithm Sampler removes. Round complexity is O(k²) (iteration i
// pays i rounds for the center-coin broadcast down radius-(i−1) cluster
// trees).
//
// The protocol is a plain local.Protocol with a fixed round budget
// (BSRounds), so it can also serve as the target algorithm of the paper's
// two-stage message-reduction scheme: the scheme simulates this protocol's
// execution on G by ball collection over the stage-1 spanner.

// BSRounds returns the fixed round budget of the distributed protocol for
// stretch parameter k: Σ_{i=1..k-1}(i+3) for the sampling iterations plus 3
// for the final clustering phase.
func BSRounds(k int) int {
	total := 3
	for i := 1; i < k; i++ {
		total += i + 3
	}
	return total
}

// bsPhase identifies what a round within one iteration does.
type bsPhase int

const (
	bsCoin     bsPhase = iota + 1 // center coin floods down the cluster tree
	bsAnnounce                    // clustered nodes announce over all edges
	bsDecide                      // join/leave decisions; PARENT and ACCEPT sends
	bsSettle                      // PARENT/ACCEPT receipts processed
	bsDone
)

// bsLocate maps a global round to (iteration, phase, round-within-coin).
// Iterations are 1..k-1; iteration k means the final clustering phase (which
// has no coin rounds).
func bsLocate(round, k int) (iter int, ph bsPhase) {
	for i := 1; i < k; i++ {
		coin := i // rounds for the coin broadcast (tree depth i-1, +1)
		if round < coin {
			return i, bsCoin
		}
		round -= coin
		if round < 3 {
			return i, []bsPhase{bsAnnounce, bsDecide, bsSettle}[round]
		}
		round -= 3
	}
	if round < 3 {
		return k, []bsPhase{bsAnnounce, bsDecide, bsSettle}[round]
	}
	return k, bsDone
}

// Message payloads.
type bsCoinMsg struct {
	Cluster graph.NodeID
	Sampled bool
}
type bsAnnounceMsg struct {
	Cluster graph.NodeID
	Sampled bool // meaningless in the final phase
}
type bsParentMsg struct{}
type bsAcceptMsg struct{}

// BSNode is the per-node protocol state. Exported so the simulation layer
// can extract outputs from replayed instances.
type BSNode struct {
	K int

	cluster     graph.NodeID // my cluster's center, or -1 once unclustered
	clustered   bool
	isCenter    bool
	parent      graph.EdgeID
	hasParent   bool
	children    map[graph.EdgeID]bool
	sampledNow  bool // my cluster's coin this iteration
	coinKnown   bool
	anns        []bsAnn // announcements heard this iteration
	pendingJoin graph.EdgeID
	hasJoin     bool
	accepts     []graph.EdgeID

	// InS is the node's final knowledge: its incident spanner edges.
	InS map[graph.EdgeID]bool
}

type bsAnn struct {
	Edge    graph.EdgeID
	Cluster graph.NodeID
	Sampled bool
}

var _ local.Protocol = (*BSNode)(nil)

// NewBSNode returns a protocol instance for one node.
func NewBSNode(k int) *BSNode {
	return &BSNode{K: k, children: make(map[graph.EdgeID]bool), InS: make(map[graph.EdgeID]bool)}
}

// Step implements local.Protocol.
func (nd *BSNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		nd.cluster = env.ID()
		nd.clustered = true
		nd.isCenter = true
	}
	iter, ph := bsLocate(round, nd.K)

	// Receipts first: they belong to the previous phase's sends.
	for _, m := range inbox {
		switch msg := m.Payload.(type) {
		case bsCoinMsg:
			nd.learnCoin(env, msg, m.Edge)
		case bsAnnounceMsg:
			nd.anns = append(nd.anns, bsAnn{Edge: m.Edge, Cluster: msg.Cluster, Sampled: msg.Sampled})
		case bsParentMsg:
			nd.children[m.Edge] = true
		case bsAcceptMsg:
			nd.InS[m.Edge] = true
		default:
			panic(fmt.Sprintf("spanner: unexpected message %T", m.Payload))
		}
	}

	switch ph {
	case bsCoin:
		// First coin round of the iteration: centers flip and start the
		// flood; everyone resets iteration-local state.
		if nd.iterStart(round) {
			nd.coinKnown = false
			nd.anns = nil
			if nd.clustered && nd.isCenter {
				p := math.Pow(float64(env.N()), -1.0/float64(nd.K))
				nd.sampledNow = env.Rand().Bernoulli(p)
				nd.coinKnown = true
				nd.forwardCoin(env, noFrom)
			}
		}
	case bsAnnounce:
		if iter == nd.K {
			nd.anns = nil // final phase has no coin rounds; reset here
		}
		if nd.clustered {
			for _, pt := range env.Ports() {
				env.Send(pt.Edge, bsAnnounceMsg{Cluster: nd.cluster, Sampled: nd.sampledNow})
			}
		}
	case bsDecide:
		nd.flushAccepts(env)
		if iter < nd.K {
			nd.decideIteration(env)
		} else {
			nd.decideFinal()
		}
	case bsSettle:
		nd.flushAccepts(env)
		if nd.hasJoin {
			env.Send(nd.pendingJoin, bsParentMsg{})
			nd.hasJoin = false
		}
	case bsDone:
		nd.flushAccepts(env)
		env.Halt()
	}
}

// noFrom marks "flood origin" for forwardCoin.
const noFrom = graph.EdgeID(-1)

// iterStart reports whether this round begins an iteration's coin phase.
func (nd *BSNode) iterStart(round int) bool {
	r := 0
	for i := 1; i < nd.K; i++ {
		if round == r {
			return true
		}
		r += i + 3
	}
	return false
}

func (nd *BSNode) learnCoin(env *local.Env, msg bsCoinMsg, from graph.EdgeID) {
	if nd.coinKnown || !nd.clustered {
		return
	}
	nd.sampledNow = msg.Sampled
	nd.coinKnown = true
	nd.forwardCoin(env, from)
}

func (nd *BSNode) forwardCoin(env *local.Env, from graph.EdgeID) {
	for _, e := range sortedEdges(nd.children) {
		if e != from {
			env.Send(e, bsCoinMsg{Cluster: nd.cluster, Sampled: nd.sampledNow})
		}
	}
}

// sortedEdges returns a map's edge keys in increasing ID order, so send
// sweeps over edge sets fire in the same order every run.
func sortedEdges[V any](m map[graph.EdgeID]V) []graph.EdgeID {
	ids := make([]graph.EdgeID, 0, len(m))
	for e := range m {
		ids = append(ids, e)
	}
	slices.Sort(ids)
	return ids
}

func (nd *BSNode) flushAccepts(env *local.Env) {
	for _, e := range nd.accepts {
		env.Send(e, bsAcceptMsg{})
	}
	nd.accepts = nil
}

// decideIteration applies the Baswana–Sen case analysis for one vertex of an
// unsampled cluster: join a sampled neighboring cluster, or add one edge per
// neighboring cluster and leave.
func (nd *BSNode) decideIteration(env *local.Env) {
	if !nd.clustered || nd.sampledNow {
		return // unsampled? sampled clusters persist wholesale
	}
	// My cluster was not sampled: I re-decide individually, dropping my old
	// tree links.
	nd.children = make(map[graph.EdgeID]bool)
	nd.hasParent = false
	nd.isCenter = false

	best, bestEdge := bsBestSampled(nd.anns)
	if best != unclustered {
		nd.cluster = best
		nd.hasParent = true
		nd.parent = bestEdge
		nd.InS[bestEdge] = true
		nd.accepts = append(nd.accepts, bestEdge)
		nd.pendingJoin = bestEdge
		nd.hasJoin = true
		return
	}
	// No sampled neighbor: connect to every neighboring cluster and leave.
	for _, e := range bsClusterEdges(nd.anns, unclustered) {
		nd.InS[e] = true
		nd.accepts = append(nd.accepts, e)
	}
	nd.clustered = false
	nd.cluster = unclustered
}

// decideFinal applies phase 2: still-clustered vertices connect to every
// neighboring cluster other than their own.
func (nd *BSNode) decideFinal() {
	if !nd.clustered {
		return
	}
	for _, e := range bsClusterEdges(nd.anns, nd.cluster) {
		nd.InS[e] = true
		nd.accepts = append(nd.accepts, e)
	}
}

// bsBestSampled returns the smallest sampled cluster among announcements and
// the smallest edge reaching it.
func bsBestSampled(anns []bsAnn) (graph.NodeID, graph.EdgeID) {
	best := unclustered
	var bestEdge graph.EdgeID
	for _, a := range anns {
		if !a.Sampled {
			continue
		}
		if best == unclustered || a.Cluster < best || (a.Cluster == best && a.Edge < bestEdge) {
			best, bestEdge = a.Cluster, a.Edge
		}
	}
	return best, bestEdge
}

// bsClusterEdges returns one (smallest-ID) edge per announced cluster,
// excluding the given cluster, in deterministic order.
func bsClusterEdges(anns []bsAnn, exclude graph.NodeID) []graph.EdgeID {
	perCluster := make(map[graph.NodeID]graph.EdgeID)
	for _, a := range anns {
		if a.Cluster == exclude {
			continue
		}
		if e, ok := perCluster[a.Cluster]; !ok || a.Edge < e {
			perCluster[a.Cluster] = a.Edge
		}
	}
	out := make([]graph.EdgeID, 0, len(perCluster))
	for _, e := range perCluster {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BSDistResult is the outcome of a direct distributed run.
type BSDistResult struct {
	S   map[graph.EdgeID]bool
	K   int
	Run local.Result
}

// StretchBound returns 2K−1.
func (r *BSDistResult) StretchBound() int { return 2*r.K - 1 }

// BaswanaSenDistributed runs the protocol directly on g under the LOCAL
// simulator (the Θ(k·m)-message baseline).
func BaswanaSenDistributed(g *graph.Graph, k int, seed uint64, cfg local.Config) (*BSDistResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("spanner: k = %d, need k >= 1", k)
	}
	nodes := make([]*BSNode, g.NumNodes())
	cfg.Seed = seed
	cfg.MaxRounds = BSRounds(k) + 1
	run, err := local.Run(g, func(v graph.NodeID) local.Protocol {
		nodes[v] = NewBSNode(k)
		return nodes[v]
	}, cfg)
	if err != nil {
		return nil, err
	}
	if !run.Halted {
		return nil, fmt.Errorf("spanner: distributed Baswana–Sen did not halt in %d rounds", BSRounds(k))
	}
	res := &BSDistResult{S: make(map[graph.EdgeID]bool), K: k, Run: run}
	for _, nd := range nodes {
		for e := range nd.InS {
			res.S[e] = true
		}
	}
	return res, nil
}

// Payload sizes (local.Sizer): words per message.

// PayloadUnits implements local.Sizer.
func (m bsCoinMsg) PayloadUnits() int64 { return 2 }

// PayloadUnits implements local.Sizer.
func (m bsAnnounceMsg) PayloadUnits() int64 { return 2 }
