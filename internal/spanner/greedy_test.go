package spanner

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func TestGreedyRejectsBadInput(t *testing.T) {
	if _, err := Greedy(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Greedy(gen.Cycle(4), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestGreedyK1KeepsSimpleGraph(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.1, xrand.New(1))
	res, err := Greedy(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != g.SimpleEdgeCount() {
		t.Fatalf("k=1 greedy kept %d of %d simple edges", len(res.S), g.SimpleEdgeCount())
	}
}

func TestGreedyValidAndSparse(t *testing.T) {
	for _, k := range []int{2, 3} {
		g := gen.Complete(150)
		res, err := Greedy(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := graph.VerifySpanner(g, res.S, res.StretchBound()); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Greedy on K_n with stretch 2k−1 keeps O(n^{1+1/k}) edges; allow
		// slack but demand real sparsification.
		if float64(len(res.S)) > SizeBound(150, k) {
			t.Fatalf("k=%d: %d edges above the O(k n^{1+1/k}) ballpark %v", k, len(res.S), SizeBound(150, k))
		}
	}
}

func TestGreedySmallerThanRandomizedConstructions(t *testing.T) {
	// Greedy is the quality yardstick: on dense graphs it should not be
	// larger than Baswana–Sen at the same stretch.
	g := gen.Complete(200)
	greedy, err := Greedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := BaswanaSen(g, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.S) > len(bs.S) {
		t.Fatalf("greedy (%d) larger than Baswana–Sen (%d) at stretch 3", len(greedy.S), len(bs.S))
	}
}

func TestGreedyDropsParallelEdges(t *testing.T) {
	base := gen.Cycle(10)
	g := gen.Multi(base, func(e graph.Edge) int { return 3 })
	res, err := Greedy(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != 10 {
		t.Fatalf("greedy kept %d edges of the tripled cycle", len(res.S))
	}
}

func TestGreedyProperty(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 5
		k := int(kRaw%3) + 1
		rng := xrand.New(seed)
		g := gen.Connectify(gen.GNP(n, 0.25, rng), rng)
		res, err := Greedy(g, k)
		if err != nil {
			return false
		}
		_, _, err = graph.VerifySpanner(g, res.S, res.StretchBound())
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
