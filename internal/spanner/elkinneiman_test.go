package spanner

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func TestENRejectsBadInput(t *testing.T) {
	if _, err := ElkinNeimanDistributed(gen.Cycle(4), 0, 1, local.Config{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestENRounds(t *testing.T) {
	if ENRounds(2) != 5 || ENRounds(3) != 6 {
		t.Fatalf("ENRounds wrong: %d, %d", ENRounds(2), ENRounds(3))
	}
}

func TestENValidSpanner(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"gnp-k2", gen.ConnectedGNP(300, 0.06, xrand.New(1)), 2},
		{"gnp-k3", gen.ConnectedGNP(300, 0.06, xrand.New(1)), 3},
		{"complete-k2", gen.Complete(150), 2},
		{"complete-k3", gen.Complete(150), 3},
		{"grid-k2", gen.Grid(12, 12), 2},
		{"hypercube-k3", gen.Hypercube(8), 3},
		{"barbell-k2", gen.Barbell(25, 4), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := ElkinNeimanDistributed(tc.g, tc.k, 7, local.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := graph.VerifySpanner(tc.g, res.S, res.StretchBound()); err != nil {
				t.Fatalf("invalid spanner: %v", err)
			}
		})
	}
}

func TestENSparsifiesDenseGraph(t *testing.T) {
	g := gen.Complete(300) // m = 44850
	res, err := ElkinNeimanDistributed(g, 2, 3, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S)*3 > g.NumEdges() {
		t.Fatalf("EN kept %d of %d edges; expected sparsification", len(res.S), g.NumEdges())
	}
	if _, _, err := graph.VerifySpanner(g, res.S, 3); err != nil {
		t.Fatal(err)
	}
}

func TestENRoundBudgetBeatsBaswanaSen(t *testing.T) {
	// The whole point of the Section 7 remark: EN's round budget is O(k),
	// Baswana–Sen's is O(k²) — so simulating EN in the two-stage scheme
	// costs proportionally fewer rounds.
	for k := 2; k <= 5; k++ {
		if ENRounds(k) >= BSRounds(k) && k > 2 {
			t.Fatalf("k=%d: ENRounds %d >= BSRounds %d", k, ENRounds(k), BSRounds(k))
		}
	}
}

func TestENBothEndpointsKnow(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.08, xrand.New(2))
	nodes := make([]*ENNode, g.NumNodes())
	_, err := local.Run(g, func(v graph.NodeID) local.Protocol {
		nodes[v] = NewENNode(2)
		return nodes[v]
	}, local.Config{Seed: 5, MaxRounds: ENRounds(2) + 1})
	if err != nil {
		t.Fatal(err)
	}
	union := map[graph.EdgeID]bool{}
	for _, nd := range nodes {
		for e := range nd.InS {
			union[e] = true
		}
	}
	if len(union) == 0 {
		t.Fatal("empty spanner")
	}
	for e := range union {
		ge, _ := g.EdgeByID(e)
		if !nodes[ge.U].InS[e] || !nodes[ge.V].InS[e] {
			t.Fatalf("edge %d not known to both endpoints", e)
		}
	}
}

func TestENEnginesAgree(t *testing.T) {
	g := gen.ConnectedGNP(120, 0.08, xrand.New(3))
	a, err := ElkinNeimanDistributed(g, 3, 11, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ElkinNeimanDistributed(g, 3, 11, local.Config{Concurrent: true, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.S) != len(b.S) {
		t.Fatal("engines disagree")
	}
	for e := range a.S {
		if !b.S[e] {
			t.Fatal("edge sets differ across engines")
		}
	}
}

func TestENProperty(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 5
		k := int(kRaw%3) + 2
		rng := xrand.New(seed)
		g := gen.Connectify(gen.GNP(n, 0.2, rng), rng)
		res, err := ElkinNeimanDistributed(g, k, seed, local.Config{})
		if err != nil {
			return false
		}
		_, _, err = graph.VerifySpanner(g, res.S, res.StretchBound())
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
