package spanner

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/local"
)

// Elkin–Neiman spanner ("Efficient Algorithms for Constructing Very Sparse
// Spanners and Emulators", TALG 2018) — the construction the paper's
// concluding remarks point to as the drop-in improvement for the two-stage
// message-reduction scheme: a (2k−1)-spanner built in only k+O(1) rounds
// (Baswana–Sen needs O(k²)), so simulating it over the stage-1 spanner
// costs proportionally fewer rounds.
//
// The construction is a broadcast race with exponential start times. Every
// node u draws r_u ~ Exp(β), β = ln(n)/k, truncated below k (the truncation
// is the whp failure handling: it preserves the stretch argument and only
// perturbs the size bound), and starts a broadcast at continuous time
// k − r_u. Messages travel one hop per unit time; a node forwards a message
// exactly when it improves its earliest arrival ("first"). After the race,
// node v keeps every incident edge that delivered some message within one
// time unit of its first — these are the shortest-path forest edges toward
// the near-maximal sources {u : r_u − d(u,v) > m(v) − 1} of the centralized
// description, where m(v) = max_u (r_u − d(u,v)) = k − first(v).
//
// Why forwarding only improvements suffices (the chain lemma): if p
// delivered to v a message that lands in v's window, that message was an
// improvement at p, so its arrival at p lies in p's own window; inductively
// the delivery edges form a path back to the source, every edge of which is
// kept, of length at most r_u < k. For an edge (v,w) not in the spanner,
// v's first reaches w within w's window (or vice versa — ties are
// measure-zero under continuous draws unless the endpoints share a source,
// in which case both reach it in the forest), giving stretch
// ≤ 2(k−1) + 1 = 2k − 1.
//
// Expected size is O(n^{1+1/k}): window arrivals per node count the
// exponentials within 1 of the maximum, e^β = n^{1/k} in expectation.

// ENRounds returns the protocol's fixed round budget for parameter k: one
// start round, k propagation rounds, one decision/accept round, and one
// receipt round.
func ENRounds(k int) int { return k + 3 }

// enMsg carries the continuous arrival time at the receiver.
type enMsg struct{ T float64 }

// enAccept tells the far endpoint its edge joined the spanner.
type enAccept struct{}

// PayloadUnits implements local.Sizer.
func (enMsg) PayloadUnits() int64 { return 1 }

// ENNode is the per-node protocol state. Exported so the simulation layer
// can replay it (scheme 2 with the Elkin–Neiman stage).
type ENNode struct {
	K int

	first   float64                  // earliest arrival time seen
	bestVia map[graph.EdgeID]float64 // earliest arrival per incident edge
	InS     map[graph.EdgeID]bool    // final knowledge: incident spanner edges
}

var _ local.Protocol = (*ENNode)(nil)

// NewENNode returns a protocol instance for one node.
func NewENNode(k int) *ENNode {
	return &ENNode{K: k, bestVia: make(map[graph.EdgeID]float64), InS: make(map[graph.EdgeID]bool)}
}

// Step implements local.Protocol.
func (nd *ENNode) Step(env *local.Env, round int, inbox []local.Message) {
	switch {
	case round == 0:
		// r ~ Exp(β) conditioned on r < k, by rejection: the conditioning is
		// the whp failure handling and, unlike clamping to a constant, keeps
		// the distribution atom-free — ties between distinct sources must
		// stay measure-zero or the stretch argument's tie-breaking fails.
		beta := math.Log(math.Max(2, float64(env.N()))) / float64(nd.K)
		r := env.Rand().Exp(beta)
		for i := 0; r >= float64(nd.K) && i < 64; i++ {
			r = env.Rand().Exp(beta)
		}
		if r >= float64(nd.K) {
			r = float64(nd.K) * (1 - env.Rand().Float64()/16) // unreachable in practice
		}
		nd.first = float64(nd.K) - r // own start time
		for _, pt := range env.Ports() {
			env.Send(pt.Edge, enMsg{T: nd.first + 1})
			nd.bestVia[pt.Edge] = math.Inf(1)
		}
	case round <= nd.K:
		// Ingest this round's arrivals, forward the best strict improvement.
		improved := false
		for _, m := range inbox {
			t := m.Payload.(enMsg).T
			if t < nd.bestVia[m.Edge] {
				nd.bestVia[m.Edge] = t
			}
			if t < nd.first {
				nd.first = t
				improved = true
			}
		}
		if improved && round < nd.K {
			for _, pt := range env.Ports() {
				env.Send(pt.Edge, enMsg{T: nd.first + 1})
			}
		}
	case round == nd.K+1:
		// Keep every edge that delivered an arrival within one time unit of
		// the first. Strict inequality excludes exact ties (same source at
		// the same distance via the far endpoint), which is what sparsifies
		// the level sets of m.
		for _, e := range sortedEdges(nd.bestVia) {
			if nd.bestVia[e] < nd.first+1 {
				nd.InS[e] = true
				env.Send(e, enAccept{})
			}
		}
	default:
		for _, m := range inbox {
			if _, ok := m.Payload.(enAccept); ok {
				nd.InS[m.Edge] = true
			}
		}
		env.Halt()
	}
}

// ENDistResult is the outcome of a direct distributed run.
type ENDistResult struct {
	S   map[graph.EdgeID]bool
	K   int
	Run local.Result
}

// StretchBound returns 2K−1.
func (r *ENDistResult) StretchBound() int { return 2*r.K - 1 }

// ElkinNeimanDistributed runs the protocol directly on g. Like Baswana–Sen
// it can sweep many edges per round (Θ(k·m) messages worst case); its value
// is the O(k) round budget when *simulated* in the two-stage scheme.
func ElkinNeimanDistributed(g *graph.Graph, k int, seed uint64, cfg local.Config) (*ENDistResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("spanner: k = %d, need k >= 1", k)
	}
	nodes := make([]*ENNode, g.NumNodes())
	cfg.Seed = seed
	cfg.MaxRounds = ENRounds(k) + 1
	run, err := local.Run(g, func(v graph.NodeID) local.Protocol {
		nodes[v] = NewENNode(k)
		return nodes[v]
	}, cfg)
	if err != nil {
		return nil, err
	}
	if !run.Halted {
		return nil, fmt.Errorf("spanner: Elkin–Neiman did not halt in %d rounds", ENRounds(k))
	}
	res := &ENDistResult{S: make(map[graph.EdgeID]bool), K: k, Run: run}
	for _, nd := range nodes {
		for e := range nd.InS {
			res.S[e] = true
		}
	}
	return res, nil
}
