package spanner

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func TestBaswanaSenRejectsBadInput(t *testing.T) {
	if _, err := BaswanaSen(nil, 2, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := BaswanaSen(gen.Cycle(4), 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBaswanaSenK1IsWholeGraph(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.1, xrand.New(1))
	res, err := BaswanaSen(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != g.NumEdges() {
		t.Fatalf("k=1 spanner has %d of %d edges", len(res.S), g.NumEdges())
	}
	if res.StretchBound() != 1 {
		t.Fatal("k=1 stretch bound")
	}
}

func TestBaswanaSenValidSpanner(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"gnp-k2", gen.ConnectedGNP(300, 0.06, xrand.New(2)), 2},
		{"gnp-k3", gen.ConnectedGNP(300, 0.06, xrand.New(2)), 3},
		{"complete-k2", gen.Complete(120), 2},
		{"complete-k3", gen.Complete(120), 3},
		{"grid-k2", gen.Grid(12, 12), 2},
		{"hypercube-k3", gen.Hypercube(8), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := BaswanaSen(tc.g, tc.k, 7)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := graph.VerifySpanner(tc.g, res.S, res.StretchBound()); err != nil {
				t.Fatalf("invalid spanner: %v", err)
			}
		})
	}
}

func TestBaswanaSenSparsifies(t *testing.T) {
	g := gen.Complete(300) // m = 44850
	res, err := BaswanaSen(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Expected size O(k n^{1+1/k}) = 3·300^{4/3} ≈ 6000; allow 3x.
	if float64(len(res.S)) > 3*SizeBound(300, 3) {
		t.Fatalf("spanner size %d far above expectation %v", len(res.S), SizeBound(300, 3))
	}
	if len(res.S)*3 > g.NumEdges() {
		t.Fatalf("no sparsification: %d of %d", len(res.S), g.NumEdges())
	}
}

func TestBaswanaSenDeterministic(t *testing.T) {
	g := gen.ConnectedGNP(200, 0.05, xrand.New(3))
	a, err := BaswanaSen(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BaswanaSen(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.sortedEdgeIDs(), b.sortedEdgeIDs()
	if len(ea) != len(eb) {
		t.Fatal("sizes differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("edge sets differ for same seed")
		}
	}
}

func TestBaswanaSenProperty(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 5
		k := int(kRaw%3) + 1
		rng := xrand.New(seed)
		g := gen.Connectify(gen.GNP(n, 0.2, rng), rng)
		res, err := BaswanaSen(g, k, seed)
		if err != nil {
			return false
		}
		_, _, err = graph.VerifySpanner(g, res.S, res.StretchBound())
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBSRounds(t *testing.T) {
	if BSRounds(1) != 3 {
		t.Fatalf("BSRounds(1) = %d", BSRounds(1))
	}
	if BSRounds(2) != 7 {
		t.Fatalf("BSRounds(2) = %d", BSRounds(2))
	}
	if BSRounds(3) != 12 {
		t.Fatalf("BSRounds(3) = %d", BSRounds(3))
	}
}

func TestBSLocateCoversAllRounds(t *testing.T) {
	for k := 1; k <= 4; k++ {
		prevIter, prevPh := 0, bsPhase(0)
		for r := 0; r < BSRounds(k); r++ {
			iter, ph := bsLocate(r, k)
			if iter < 1 || iter > k {
				t.Fatalf("k=%d round %d: iter %d", k, r, iter)
			}
			if ph == bsDone {
				t.Fatalf("k=%d round %d: done before budget", k, r)
			}
			if iter < prevIter {
				t.Fatal("iteration went backwards")
			}
			prevIter, prevPh = iter, ph
		}
		_ = prevPh
		if _, ph := bsLocate(BSRounds(k), k); ph != bsDone {
			t.Fatalf("k=%d: budget round is not done", k)
		}
	}
}

func TestDistributedBSValidSpanner(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := gen.ConnectedGNP(200, 0.07, xrand.New(4))
		res, err := BaswanaSenDistributed(g, k, 9, local.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := graph.VerifySpanner(g, res.S, res.StretchBound()); err != nil {
			t.Fatalf("k=%d: invalid spanner: %v", k, err)
		}
	}
}

func TestDistributedBSMessageComplexityIsThetaM(t *testing.T) {
	// The baseline's defining property: messages scale with m, not n.
	k := 2
	sparse := gen.ConnectedGNP(300, 0.03, xrand.New(5))
	dense := gen.Complete(300)
	rs, err := BaswanaSenDistributed(sparse, k, 5, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := BaswanaSenDistributed(dense, k, 5, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Announcements alone send >= 2m messages (k=2: two announce rounds).
	if rs.Run.Messages < 2*int64(sparse.NumEdges()) {
		t.Fatalf("sparse: %d messages < 2m", rs.Run.Messages)
	}
	if rd.Run.Messages < 2*int64(dense.NumEdges()) {
		t.Fatalf("dense: %d messages < 2m", rd.Run.Messages)
	}
	ratio := float64(rd.Run.Messages) / float64(rs.Run.Messages)
	mRatio := float64(dense.NumEdges()) / float64(sparse.NumEdges())
	if ratio < mRatio/3 {
		t.Fatalf("message growth %.1f does not track edge growth %.1f", ratio, mRatio)
	}
}

func TestDistributedBSBothEndpointsKnow(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.06, xrand.New(6))
	nodes := make([]*BSNode, g.NumNodes())
	_, err := local.Run(g, func(v graph.NodeID) local.Protocol {
		nodes[v] = NewBSNode(2)
		return nodes[v]
	}, local.Config{Seed: 8, MaxRounds: BSRounds(2) + 1})
	if err != nil {
		t.Fatal(err)
	}
	union := make(map[graph.EdgeID]bool)
	for _, nd := range nodes {
		for e := range nd.InS {
			union[e] = true
		}
	}
	for e := range union {
		ge, _ := g.EdgeByID(e)
		if !nodes[ge.U].InS[e] || !nodes[ge.V].InS[e] {
			t.Fatalf("edge %d not known to both endpoints", e)
		}
	}
}

func TestDistributedBSEnginesAgree(t *testing.T) {
	g := gen.ConnectedGNP(120, 0.08, xrand.New(7))
	a, err := BaswanaSenDistributed(g, 3, 13, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BaswanaSenDistributed(g, 3, 13, local.Config{Concurrent: true, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.S) != len(b.S) || a.Run.Messages != b.Run.Messages {
		t.Fatal("engines disagree")
	}
	for e := range a.S {
		if !b.S[e] {
			t.Fatal("edge sets differ across engines")
		}
	}
}

func TestSizeBound(t *testing.T) {
	if SizeBound(100, 1) != 100*100 {
		t.Fatalf("SizeBound(100,1) = %v", SizeBound(100, 1))
	}
}
