// Package spanner implements the Baswana–Sen (2k−1)-spanner construction
// (Baswana, Sen: "A simple and linear time randomized algorithm for
// computing sparse spanners in weighted graphs", Random Structures &
// Algorithms 2007), specialized to unweighted graphs.
//
// It plays two roles in the reproduction:
//
//   - it is the baseline the paper contrasts with: its natural distributed
//     implementation has every clustered node announce its cluster over
//     every incident edge each iteration, which costs Θ(k·m) messages — the
//     Ω(m) bottleneck that algorithm Sampler removes (experiment E5);
//   - it is the "off-the-shelf spanner algorithm with a better size/stretch
//     trade-off" simulated in the two-stage message-reduction scheme of the
//     paper's Section 6 (our substitution for Derbel et al., see DESIGN.md).
package spanner

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Result is the output of the centralized construction.
type Result struct {
	// S is the spanner edge set.
	S map[graph.EdgeID]bool
	// K is the stretch parameter: H is a (2K−1)-spanner whp.
	K int
}

// StretchBound returns 2K−1.
func (r *Result) StretchBound() int { return 2*r.K - 1 }

// unclustered marks a node that left the clustering.
const unclustered = graph.NodeID(-1)

// BaswanaSen runs the centralized construction on g with parameter k >= 1
// and sampling probability n^{-1/k}. The expected spanner size is
// O(k·n^{1+1/k}).
func BaswanaSen(g *graph.Graph, k int, seed uint64) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("spanner: k = %d, need k >= 1", k)
	}
	if g == nil {
		return nil, fmt.Errorf("spanner: nil graph")
	}
	n := g.NumNodes()
	rng := xrand.New(seed).Derive(0xB5)
	p := math.Pow(float64(n), -1.0/float64(k))

	res := &Result{S: make(map[graph.EdgeID]bool), K: k}
	// cluster[v] is the center of v's cluster, or unclustered.
	cluster := make([]graph.NodeID, n)
	for v := range cluster {
		cluster[v] = graph.NodeID(v)
	}

	// Phase 1: k-1 sampling iterations.
	for i := 1; i < k; i++ {
		sampled := make(map[graph.NodeID]bool)
		// A center's sampling coin is drawn from its own stream so the
		// outcome does not depend on iteration order.
		centers := make(map[graph.NodeID]bool)
		for v := 0; v < n; v++ {
			if cluster[v] != unclustered {
				centers[cluster[v]] = true
			}
		}
		//freelunch:orderok each coin comes from the center's own derived stream, independent of visit order
		for c := range centers {
			if rng.Derive(uint64(i)<<32 | uint64(c)).Bernoulli(p) {
				sampled[c] = true
			}
		}
		next := make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			cv := cluster[v]
			switch {
			case cv == unclustered:
				next[v] = unclustered
			case sampled[cv]:
				next[v] = cv // cluster survives wholesale
			default:
				next[v] = joinOrLeave(g, graph.NodeID(v), cluster, sampled, res.S)
			}
		}
		cluster = next
	}

	// Phase 2: every still-clustered vertex connects to each neighboring
	// cluster (one edge per cluster, smallest edge ID for determinism).
	for v := 0; v < n; v++ {
		if cluster[v] == unclustered {
			continue
		}
		for c, e := range neighboringClusters(g, graph.NodeID(v), cluster) {
			if c != cluster[v] {
				res.S[e] = true
			}
		}
	}
	return res, nil
}

// joinOrLeave handles an unsampled-cluster vertex: if it neighbors a sampled
// cluster it joins one (adding the connecting edge); otherwise it adds one
// edge to every neighboring cluster and becomes unclustered.
func joinOrLeave(g *graph.Graph, v graph.NodeID, cluster []graph.NodeID,
	sampled map[graph.NodeID]bool, s map[graph.EdgeID]bool) graph.NodeID {
	nbrs := neighboringClusters(g, v, cluster)
	// Deterministic scan order: smallest sampled cluster wins.
	var best graph.NodeID = unclustered
	//freelunch:orderok min-reduction: the smallest sampled cluster wins regardless of visit order
	for c := range nbrs {
		if sampled[c] && (best == unclustered || c < best) {
			best = c
		}
	}
	if best != unclustered {
		s[nbrs[best]] = true
		return best
	}
	for _, e := range nbrs {
		s[e] = true
	}
	return unclustered
}

// neighboringClusters maps each cluster adjacent to v (via a clustered
// neighbor) to the smallest-ID edge reaching it. v's own cluster is included
// when v has a same-cluster neighbor; callers filter it as needed.
func neighboringClusters(g *graph.Graph, v graph.NodeID, cluster []graph.NodeID) map[graph.NodeID]graph.EdgeID {
	out := make(map[graph.NodeID]graph.EdgeID)
	for _, h := range g.Incident(v) {
		c := cluster[h.Peer]
		if c == unclustered {
			continue
		}
		if e, ok := out[c]; !ok || h.Edge < e {
			out[c] = h.Edge
		}
	}
	return out
}

// SizeBound returns the expected-size bound k·n^{1+1/k} for reporting.
func SizeBound(n, k int) float64 {
	return float64(k) * math.Pow(float64(n), 1+1.0/float64(k))
}

// sortedEdgeIDs is a test/debug helper returning S in ascending order.
func (r *Result) sortedEdgeIDs() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(r.S))
	for e := range r.S {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
