package spanner

import (
	"fmt"

	"repro/internal/graph"
)

// Greedy builds the classic greedy (2k−1)-spanner (Althöfer et al.):
// process edges in a fixed order and keep an edge only if the current
// spanner distance between its endpoints exceeds 2k−1. The result is a
// valid (2k−1)-spanner with O(n^{1+1/k}) edges — the quality yardstick
// against which the message-efficient constructions are measured (a purely
// centralized algorithm; no distributed analogue is implied).
//
// For unweighted graphs any edge order is valid; we use ascending edge ID
// for determinism.
func Greedy(g *graph.Graph, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("spanner: k = %d, need k >= 1", k)
	}
	if g == nil {
		return nil, fmt.Errorf("spanner: nil graph")
	}
	bound := 2*k - 1
	res := &Result{S: make(map[graph.EdgeID]bool), K: k}
	// Incrementally maintained spanner adjacency.
	adj := make([][]graph.NodeID, g.NumNodes())
	type pair struct{ a, b graph.NodeID }
	seen := make(map[pair]bool, g.NumEdges())
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			continue // parallel duplicate: never needed
		}
		if boundedDist(adj, e.U, e.V, bound) <= bound {
			continue
		}
		seen[pair{a, b}] = true
		res.S[e.ID] = true
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return res, nil
}

// boundedDist returns the distance from src to dst in the partial spanner,
// or bound+1 if it exceeds bound.
func boundedDist(adj [][]graph.NodeID, src, dst graph.NodeID, bound int) int {
	if src == dst {
		return 0
	}
	dist := map[graph.NodeID]int{src: 0}
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= bound {
			continue
		}
		for _, u := range adj[v] {
			if _, ok := dist[u]; ok {
				continue
			}
			d := dist[v] + 1
			if u == dst {
				return d
			}
			dist[u] = d
			queue = append(queue, u)
		}
	}
	return bound + 1
}
