package local

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// chatterProto sends one message on every port each round and never halts —
// without StopWhen it runs to MaxRounds.
type chatterProto struct{ seen []int64 }

func (p *chatterProto) Step(env *Env, round int, inbox []Message) {
	p.seen = append(p.seen, int64(len(inbox)))
	for _, pt := range env.Ports() {
		env.Send(pt.Edge, round)
	}
}

// TestStopWhenEndsRun pins the StopWhen contract on both engines: the hook
// fires after the round it names has fully executed (ledger fed, OnRound
// delivered), the run ends before the next round, and the executed prefix is
// bit-identical to the unstopped schedule's.
func TestStopWhenEndsRun(t *testing.T) {
	g := gen.Grid(4, 4)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Seed: 5, MaxRounds: 10}},
		{"concurrent", Config{Seed: 5, MaxRounds: 10, Concurrent: true, Workers: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(stopAt int) (Result, [][]int64) {
				cfg := tc.cfg
				var rounds []int
				cfg.OnRound = func(r int, _ int64) { rounds = append(rounds, r) }
				if stopAt >= 0 {
					cfg.StopWhen = func(r int, _ int64) bool { return r >= stopAt }
				}
				protos := make([]*chatterProto, g.NumNodes())
				res, err := RunCtx(context.Background(), g, func(v graph.NodeID) Protocol {
					p := &chatterProto{}
					protos[v] = p
					return p
				}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if stopAt >= 0 && rounds[len(rounds)-1] != stopAt {
					t.Fatalf("OnRound last saw round %d, want the stop round %d", rounds[len(rounds)-1], stopAt)
				}
				traces := make([][]int64, len(protos))
				for v, p := range protos {
					traces[v] = p.seen
				}
				return res, traces
			}

			full, fullTraces := run(-1)
			if full.Rounds != 10 {
				t.Fatalf("unstopped run executed %d rounds, want MaxRounds=10", full.Rounds)
			}
			stopped, traces := run(3)
			if stopped.Rounds != 4 {
				t.Fatalf("stopped run executed %d rounds, want 4", stopped.Rounds)
			}
			if len(stopped.PerRound) != 4 {
				t.Fatalf("stopped run's ledger has %d rounds, want 4", len(stopped.PerRound))
			}
			for r := range stopped.PerRound {
				if stopped.PerRound[r] != full.PerRound[r] {
					t.Fatalf("round %d: stopped sent %d, full sent %d", r, stopped.PerRound[r], full.PerRound[r])
				}
			}
			for v := range traces {
				for r, c := range traces[v] {
					if fullTraces[v][r] != c {
						t.Fatalf("node %d round %d: inbox %d stopped vs %d full", v, r, c, fullTraces[v][r])
					}
				}
			}
		})
	}
}
