package local

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// millionN is the scale target of the CSR core + staged-delivery work: a
// graph whose per-node maps and slice headers would previously have
// dominated memory now costs O(edges) flat arrays.
const millionN = 1 << 20

func buildMillion(tb testing.TB) *graph.Graph {
	tb.Helper()
	g, err := gen.Build(gen.Spec{Family: "cycle", N: millionN})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// floodProto sends one message per port per round: on the million-node
// cycle that is ~2M messages per round, the "1M nodes, ~1M messages"
// headline workload.
type floodProto struct{}

func (floodProto) Step(env *Env, round int, inbox []Message) {
	for _, pt := range env.Ports() {
		env.Send(pt.Edge, "x")
	}
}

// BenchmarkMillionNodeFloodRound prices one flood round at the million-node
// scale. A single Run executes all b.N rounds, so ns/op is the marginal
// round cost (the one-time graph build and engine setup amortize away) and
// B/op is the per-round steady-state footprint, which the zero-allocation
// delivery contract pins near zero — the O(edges) engine arrays are set-up
// cost, not per-round cost. CI gates both (see cmd/bench -ceiling).
func BenchmarkMillionNodeFloodRound(b *testing.B) {
	g := buildMillion(b)
	b.ReportAllocs()
	// Workers is pinned (not GOMAXPROCS) so allocs/op is identical on every
	// machine — the committed baseline gates it with zero tolerance.
	res, err := Run(g, func(graph.NodeID) Protocol { return floodProto{} },
		Config{Seed: 1, MaxRounds: b.N, NoLedger: true, Concurrent: true, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Messages)/float64(b.N), "msgs/round")
}

// TestMillionNodeFloodRound is the correctness side of the benchmark: two
// flood rounds at full scale deliver exactly 2 messages per node per round,
// on both engines. Skipped with -short: it allocates the full O(edges)
// engine state.
func TestMillionNodeFloodRound(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node run in -short mode")
	}
	g := buildMillion(t)
	for _, concurrent := range []bool{false, true} {
		res, err := Run(g, func(graph.NodeID) Protocol { return floodProto{} },
			Config{Seed: 1, MaxRounds: 2, NoLedger: true, Concurrent: concurrent})
		if err != nil {
			t.Fatal(err)
		}
		// 2 rounds x 2 ports per node x 2^20 nodes.
		if want := int64(2 * 2 * millionN); res.Messages != want {
			t.Fatalf("concurrent=%v: %d messages, want %d", concurrent, res.Messages, want)
		}
	}
}
