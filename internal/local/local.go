// Package local implements a fully synchronous message-passing simulator for
// the LOCAL model of distributed computing (Linial; Peleg), specialized to
// the model variant used by the paper:
//
//   - rounds are fully synchronous: in round r every node receives the
//     messages sent to it in round r-1, computes, and sends messages;
//   - message size is unbounded (the simulator counts messages, not bits,
//     exactly as the paper's message complexity does);
//   - every edge has a unique identifier known to both endpoints (the
//     assumption "strictly between KT0 and KT1"); the KT1 variant, in which
//     a node additionally knows the ID of each neighbor, can be enabled;
//   - every node knows an O(1)-approximate upper bound on log n, surfaced as
//     Env.LogN (the approximation factor is configurable so experiments can
//     check robustness to the bound's slack).
//
// Two engines execute the same Protocol code: a sequential engine and a
// concurrent engine that fans node steps — and message delivery, sharded by
// receiver — out over a persistent worker pool (internal/sched) with a
// barrier per phase. Per-node randomness comes from streams derived from
// (seed, node ID), and inboxes are sorted canonically, so both engines
// produce bit-identical executions — a property the test suite checks.
//
// Sends are staged at Env.Send time into per-(step worker, receiver shard)
// buckets: during the step phase each worker appends only to its own bucket
// row, and during delivery each worker drains only its own bucket column, so
// delivery reads each message exactly once — O(messages) total, not
// O(workers x messages) — and nothing is locked on either path. Reading the
// column in step-worker order reproduces the sequential engine's
// (sender, send order) staging order exactly, which is what keeps the two
// engines bit-identical at every worker count.
//
// The message plane is allocation-free in the steady state: staging buckets
// and inboxes are truncated and reused across rounds, per-node state (Envs,
// ports, peer indices, RNG streams) lives in flat arrays with no per-node
// maps or pointers, ordering keys ride in the Message struct itself (no
// per-message boxing), and the canonical sort runs over the concrete slice
// with no reflection. A busy round at steady state performs zero heap
// allocations — a property the test suite pins with testing.AllocsPerRun —
// and a run's setup memory is O(nodes + edges), which is what lets
// million-node graphs fit.
package local

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// Message is a payload in transit over an edge. Code receiving a Message
// knows the unique ID of the edge it arrived on — this is the model's
// central assumption — but not, under KT0, who sent it.
type Message struct {
	// Edge is the unique ID of the edge the message traveled over.
	Edge graph.EdgeID
	// Payload is the message body. The LOCAL model does not bound its size.
	Payload any

	// seq is the sender's send order within the round; together with Edge it
	// is the canonical inbox sort key. Keeping it in the Message itself lets
	// delivery sort the staged inbox in place, with no per-message wrapper
	// allocation.
	seq int32
}

// Protocol is the per-node state machine of a distributed algorithm.
//
// Step is invoked once per round. In round 0 the inbox is empty; in round
// r > 0 it holds the messages sent to this node in round r-1, sorted by
// (edge ID, send order). The inbox slice is owned by the simulator and
// reused across rounds: protocols must not retain it (or subslices of it)
// past the Step call. A node stops participating by calling Env.Halt;
// afterwards Step is never invoked again and arriving messages are dropped.
type Protocol interface {
	Step(env *Env, round int, inbox []Message)
}

// ProtocolFunc adapts a function to the Protocol interface for stateless or
// closure-based algorithms.
type ProtocolFunc func(env *Env, round int, inbox []Message)

// Step implements Protocol.
func (f ProtocolFunc) Step(env *Env, round int, inbox []Message) { f(env, round, inbox) }

// Factory builds the protocol instance for one node. It is called once per
// node before round 0.
type Factory func(v graph.NodeID) Protocol

// Port is a node's local view of one incident edge.
type Port struct {
	// Edge is the globally unique edge ID (always available).
	Edge graph.EdgeID
	// Peer is the node at the other end. It is valid only under KT1; under
	// the default model it is set to -1 and protocol code must not use it.
	Peer graph.NodeID
}

// NoPeer is the Peer value of a Port under the KT0-with-edge-IDs model.
const NoPeer graph.NodeID = -1

// Config configures a run.
type Config struct {
	// Seed is the root seed for all node RNG streams.
	Seed uint64
	// KT1 exposes neighbor IDs on ports. Default (false) is the paper's
	// unique-edge-ID model.
	KT1 bool
	// MaxRounds aborts runs that fail to halt. Zero means DefaultMaxRounds.
	MaxRounds int
	// LogNSlack multiplies the true log2(n) before it is handed to nodes,
	// modeling the "O(1)-approximate upper bound on log n" assumption.
	// Zero means 1.0 (exact).
	LogNSlack float64
	// Concurrent selects the worker-pool engine; the default is the
	// sequential engine. Both produce identical executions.
	Concurrent bool
	// Workers bounds the worker pool in concurrent mode; zero means
	// GOMAXPROCS.
	Workers int
	// IDMap overrides node identities: node v reports ID IDMap[v] and draws
	// its randomness from the stream of that identity. It exists for the
	// ball-replay simulation of the paper's Section 6, which re-executes an
	// algorithm on a reconstructed subgraph whose nodes must behave exactly
	// as their originals. nil means the identity mapping.
	IDMap []graph.NodeID
	// NOverride, if positive, is the node count reported by Env.N and used
	// for Env.LogN (again for ball replays, where the subgraph is smaller
	// than the original network).
	NOverride int
	// OnRound, if non-nil, is invoked after every completed round with the
	// round index and the number of messages sent in it. It runs on the
	// engine's coordinating goroutine (never concurrently with itself) and
	// must not call back into the run.
	OnRound func(round int, messages int64)
	// NoLedger disables the Result.PerRound ledger, whose length otherwise
	// grows with every executed round. Totals, counters, halting, and the
	// OnRound stream are unaffected, so a long-schedule run keeps O(1)
	// memory in executed rounds by streaming rounds through OnRound (e.g.
	// into the facade's MetricsSink) instead of retaining the slice.
	NoLedger bool
	// StopWhen, if non-nil, is consulted after every completed round (after
	// OnRound) with the round index and its message count; returning true
	// ends the run before the next round starts. The round it fires on has
	// executed in full — all sends delivered, ledger and OnRound already fed
	// — so a stopped run's executed prefix is bit-identical to the same
	// schedule without the hook. It runs on the engine's coordinating
	// goroutine, after the round's barrier, and must not call back into the
	// run. Protocols that centrally detect a completion condition (e.g.
	// broadcast coverage) use it to skip a fixed schedule's dead tail.
	// Under an Adversary with delays the hook is additionally deferred past
	// rounds with delayed messages still in flight, so a centrally detected
	// completion condition cannot fire while undelivered traffic could still
	// change it.
	StopWhen func(round int, messages int64) bool
	// Adversary, if non-nil, perturbs the run: per-message drops and
	// duplications, crash-stop failures, per-edge FIFO delivery delays, and
	// mid-run edge events, all consulted at the delivery boundary (and, for
	// crashes and topology, at the round boundary). Decisions are pure
	// functions of (profile seed, run seed, round, edge, receiver, send
	// order), so both engines at every worker count execute bit-identical
	// adversarial runs. nil (the default) leaves the flawless synchronous
	// network byte-identical to historical behaviour. When the profile has
	// edge events the engine runs on a private clone of the input graph.
	Adversary *adversary.Adversary
}

// DefaultMaxRounds bounds runaway protocols.
const DefaultMaxRounds = 1 << 20

// Result reports the cost of a run, in the units the paper uses.
type Result struct {
	// Rounds is the number of rounds executed (a round with no active nodes
	// and no messages in flight is not counted).
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// PayloadUnits is the total abstract size of all payloads sent (see
	// Sizer). The LOCAL model does not charge for it — message complexity
	// counts messages — but it quantifies how much the model's unbounded
	// messages are leaned on (the CONGEST-side view).
	PayloadUnits int64
	// PerRound is the number of messages sent in each round. It is nil
	// when the run was configured with Config.NoLedger.
	PerRound []int64
	// Halted reports whether every node halted before MaxRounds. Crashed
	// nodes count as halted: a crash-stop failure ends the node's
	// participation exactly as a voluntary halt does.
	Halted bool
	// Counters aggregates Env.Count calls from all nodes, keyed by name.
	// Protocols use it to attribute message traffic to phases (e.g. query
	// vs. cluster-tree traffic in the distributed Sampler).
	Counters map[string]int64

	// Dropped counts messages the adversary destroyed in transit: random
	// losses, messages addressed to crashed receivers, and messages on
	// deleted edges (including sends over edges that vanished mid-run).
	// Every dropped message is still billed in Messages — the sender paid
	// for the transmission — which is the honest-billing contract the
	// degradation experiments rely on. Messages to voluntarily halted
	// receivers are not counted here (they are the model's ordinary
	// terminated-receiver drops, billed the same with or without an
	// adversary). Always zero without an adversary.
	Dropped int64
	// Duplicated counts adversary-duplicated messages. Each duplicate is
	// billed as one extra message in Messages (and its payload again in
	// PayloadUnits) and delivered adjacent to the original. Always zero
	// without an adversary.
	Duplicated int64
	// Crashed counts nodes the adversary crash-stopped during the run.
	Crashed int
}

// Sizer lets a payload report its abstract size in "units" (think O(log n)-
// bit words: an edge ID, a node ID, a flag). Payloads that do not implement
// Sizer count as 1 unit. The runtime sums sizes into Result.PayloadUnits.
// In concurrent mode PayloadUnits may be invoked from a worker goroutine
// (after the round's step barrier); implementations must not mutate shared
// state.
type Sizer interface {
	PayloadUnits() int64
}

// payloadUnits measures one payload.
func payloadUnits(p any) int64 {
	if s, ok := p.(Sizer); ok {
		return s.PayloadUnits()
	}
	return 1
}

// Env is a node's handle to the simulator. It is valid only inside Step (and
// the node's own goroutine in concurrent mode); protocols must not retain it
// across rounds or share it. Envs live in one flat per-run array — no
// per-node heap objects — and a node's ports and peer indices are views into
// run-wide flat arrays.
type Env struct {
	run   *run
	idx   graph.NodeID // index in the run's graph
	id    graph.NodeID // reported identity (equals idx unless IDMap is set)
	shard int32        // the step worker that owns this node (its bucket row)
	rng   xrand.RNG    // the node's private stream, stored inline

	ports []Port         // incident ports sorted by edge ID (view into run.portsAll)
	peers []graph.NodeID // receiver index per port, parallel to ports

	seq     int32 // send order within the current round (the inbox tiebreak key)
	hint    int32 // rotating port-position hint: protocols that send along
	halted  bool  // their port list in order resolve each edge in O(1)
	crashed bool  // halted by an adversarial crash-stop failure

	counts []int64 // indexed by the run's counter registry

	// lastName/lastIdx memoize the node's most recent counter lookup so a
	// protocol hammering one counter name skips the registry's shared
	// read-lock entirely (counter names are static literals, so the string
	// compare is usually a pointer comparison).
	lastName string
	lastIdx  int
}

// stagedMsg is one send awaiting delivery, staged in a per-(step worker,
// receiver shard) bucket.
type stagedMsg struct {
	edge graph.EdgeID
	to   graph.NodeID
	seq  int32
	body any
}

// ID returns this node's unique identifier.
func (e *Env) ID() graph.NodeID { return e.id }

// N returns the number of nodes. The paper only assumes a poly(n) upper
// bound on n; protocols that want to honor that weaker assumption should use
// LogN instead and avoid N.
func (e *Env) N() int {
	if e.run.cfg.NOverride > 0 {
		return e.run.cfg.NOverride
	}
	return e.run.g.NumNodes()
}

// LogN returns the node's (possibly slack) upper bound on log2 n.
func (e *Env) LogN() float64 { return e.run.logN }

// Degree returns the number of incident edges (with multiplicity).
func (e *Env) Degree() int { return len(e.ports) }

// Ports returns the node's incident ports. The slice is owned by the
// simulator and must not be modified.
func (e *Env) Ports() []Port { return e.ports }

// Rand returns this node's private random stream. It is stable across
// engines and runs with the same Config.Seed.
func (e *Env) Rand() *xrand.RNG { return &e.rng }

// Send transmits payload over the identified incident edge; it panics if the
// edge is not incident to this node, which always indicates a protocol bug.
// Multiple sends on the same edge in one round are delivered in order.
//
// The port resolves through a rotating hint (protocols overwhelmingly send
// along their port list in order, making the lookup O(1)) with a binary
// search over the node's sorted port view as the fallback. The message is
// staged directly into the bucket for its receiver's shard: the bucket row
// is owned by the step worker running this node, so sends touch no shared
// state and delivery will read the message exactly once.
//
//freelunch:noalloc
func (e *Env) Send(edge graph.EdgeID, payload any) {
	i := int(e.hint)
	if i >= len(e.ports) || e.ports[i].Edge != edge {
		var ok bool
		i, ok = slices.BinarySearchFunc(e.ports, edge, func(p Port, id graph.EdgeID) int {
			return cmp.Compare(p.Edge, id)
		})
		if !ok {
			if e.run.advEdges {
				// Under adversarial topology events a protocol can hold a
				// stale ID for an edge deleted mid-run. The send is billed
				// but delivers nowhere: stage a void message (receiver -1,
				// always bucket column 0) that delivery counts as dropped.
				bucket := &e.run.stages[e.shard][0]
				//freelunch:allocok amortized: staging buckets are truncated and reused across rounds, steady state grows nothing
				*bucket = append(*bucket, stagedMsg{edge: edge, to: -1, seq: e.seq, body: payload})
				e.seq++
				return
			}
			panic(fmt.Sprintf("local: node %d sent on non-incident edge %d", e.id, edge))
		}
	}
	e.hint = int32(i + 1)
	to := e.peers[i]
	r := e.run
	bucket := &r.stages[e.shard][int(to)/r.chunk]
	//freelunch:allocok amortized: staging buckets are truncated and reused across rounds, steady state grows nothing
	*bucket = append(*bucket, stagedMsg{edge: edge, to: to, seq: e.seq, body: payload})
	e.seq++
}

// Halt marks the node as terminated. Pending sends from the current Step are
// still delivered.
func (e *Env) Halt() {
	if !e.halted {
		e.halted = true
		// Each Env is stepped by exactly one goroutine per round, so the
		// halted guard is race-free; the shared active count is atomic.
		e.run.active.Add(-1)
	}
}

// Count adds delta to a named per-run counter (aggregated across nodes into
// Result.Counters). Names are interned once per run in a shared registry, so
// the per-call cost is an index lookup into a per-node slice — no per-node
// map and no steady-state allocation.
func (e *Env) Count(name string, delta int64) {
	i := e.lastIdx
	if name != e.lastName || e.lastName == "" {
		i = e.run.counters.index(name)
		e.lastName, e.lastIdx = name, i
	}
	if i >= len(e.counts) {
		grown := make([]int64, i+1)
		copy(grown, e.counts)
		e.counts = grown
	}
	e.counts[i] += delta
}

// counterRegistry interns counter names for one run. Interning takes the
// write lock only the first time a name is seen; every later Count from any
// node is a read-locked map hit yielding a stable slice index.
type counterRegistry struct {
	mu    sync.RWMutex
	idx   map[string]int
	names []string
}

func (cr *counterRegistry) index(name string) int {
	cr.mu.RLock()
	i, ok := cr.idx[name]
	cr.mu.RUnlock()
	if ok {
		return i
	}
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if i, ok = cr.idx[name]; ok {
		return i
	}
	if cr.idx == nil {
		cr.idx = make(map[string]int)
	}
	i = len(cr.names)
	cr.idx[name] = i
	cr.names = append(cr.names, name)
	return i
}

// run is the shared state of one execution.
type run struct {
	g    *graph.Graph
	cfg  Config
	logN float64
	done <-chan struct{} // cancellation signal; nil when uncancellable

	envs     []Env          // flat per-node state, one array
	protos   []Protocol     // per-node protocol instances
	inbox    [][]Message    // per-receiver staging, truncated and reused per round
	portsAll []Port         // every node's sorted ports, one flat backing array
	peersAll []graph.NodeID // receiver indices parallel to portsAll

	// stages[ws][w] holds the messages sent by step worker ws's nodes to
	// receivers in shard w. Rows are written lock-free by their owning step
	// worker; columns are drained lock-free by their owning delivery worker.
	// Each row is its own allocation so workers do not false-share headers.
	stages [][][]stagedMsg
	totals []shardTotals // per delivery worker, cache-line padded

	active   atomic.Int64
	counters counterRegistry

	pool    *sched.Pool // non-nil iff cfg.Concurrent
	nshards int         // worker count (1 for the sequential engine)
	chunk   int         // nodes per shard; shard of node v is v/chunk

	round     int // current round, read by stepFn
	stepFn    func(w, lo, hi int)
	deliverFn func(w, lo, hi int)

	// Adversary state; all nil/zero (and untouched on the hot path) for
	// unperturbed runs.
	adv      *adversary.Adversary
	advEdges bool // profile has edge events: tolerate sends on vanished edges
	// future[d][v] holds messages maturing for node v after d more delivery
	// phases (slot 0 drains into inboxes at the top of each delivery); the
	// coordinator rotates the ring once per round.
	future   [][][]Message
	inFlight int64 // delayed messages currently in the future ring
}

// shardTotals is one delivery worker's per-round message accounting, padded
// to a cache line so workers do not false-share. The adversary fields stay
// zero (and unread) on the nil-adversary path.
type shardTotals struct {
	sent       int64
	units      int64
	dropped    int64
	duplicated int64
	pend       int64 // delta of delayed messages entering/leaving the future ring
	_          [24]byte
}

// Run executes the protocol built by f on g under cfg and returns the cost
// metrics. It is RunCtx with an uncancellable context.
func Run(g *graph.Graph, f Factory, cfg Config) (Result, error) {
	return RunCtx(context.Background(), g, f, cfg)
}

// RunCtx executes the protocol built by f on g under cfg and returns the
// cost metrics. It returns an error only for configuration mistakes or
// context cancellation; protocol panics propagate (a deliberate choice: a
// protocol bug in a simulation is a programming error, not an operational
// condition).
//
// Cancellation is checked between node steps in both engines, so a run
// aborts within one node step's work — well under one round — and returns
// ctx.Err() together with the metrics accumulated so far.
func RunCtx(ctx context.Context, g *graph.Graph, f Factory, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return Result{}, fmt.Errorf("local: nil graph")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.LogNSlack == 0 {
		cfg.LogNSlack = 1
	}
	if cfg.LogNSlack < 1 {
		return Result{}, fmt.Errorf("local: LogNSlack %v < 1 is not an upper bound", cfg.LogNSlack)
	}
	n := g.NumNodes()
	if cfg.IDMap != nil && len(cfg.IDMap) != n {
		return Result{}, fmt.Errorf("local: IDMap covers %d of %d nodes", len(cfg.IDMap), n)
	}
	if cfg.Adversary != nil {
		profile := cfg.Adversary.Profile()
		if err := profile.Validate(); err != nil {
			return Result{}, fmt.Errorf("local: %w", err)
		}
		if cfg.Adversary.HasEdgeEvents() {
			// Topology events mutate the graph; run on a private clone so
			// the caller's graph (possibly shared or cached) stays intact.
			g = g.Clone()
		}
	}
	r := &run{g: g, cfg: cfg, done: ctx.Done()}
	if cfg.Adversary != nil {
		r.adv = cfg.Adversary
		r.advEdges = cfg.Adversary.HasEdgeEvents()
	}
	effN := n
	if cfg.NOverride > 0 {
		effN = cfg.NOverride
	}
	r.logN = cfg.LogNSlack * math.Log2(math.Max(2, float64(effN)))

	// Shard geometry first: Env.Send routes by it. The sequential engine is
	// the one-shard case of the same machinery.
	if cfg.Concurrent {
		r.pool = sched.NewPool(n, cfg.Workers)
		defer r.pool.Stop()
		r.nshards = r.pool.Workers()
		r.chunk = r.pool.Chunk()
	} else {
		r.nshards = 1
		r.chunk = n
	}
	if r.nshards < 1 {
		r.nshards = 1
	}
	if r.chunk < 1 {
		r.chunk = 1
	}
	r.stages = make([][][]stagedMsg, r.nshards)
	for ws := range r.stages {
		r.stages[ws] = make([][]stagedMsg, r.nshards)
	}
	r.totals = make([]shardTotals, r.nshards)

	// Flat per-node state: one Env array, one ports array, one peer-index
	// array — O(nodes + edges) setup memory, no per-node maps.
	root := xrand.New(cfg.Seed)
	r.envs = make([]Env, n)
	r.protos = make([]Protocol, n)
	r.inbox = make([][]Message, n)
	for v := 0; v < n; v++ {
		idx := graph.NodeID(v)
		id := idx
		if cfg.IDMap != nil {
			id = cfg.IDMap[v]
		}
		r.envs[v] = Env{
			run:   r,
			idx:   idx,
			id:    id,
			shard: int32(v / r.chunk),
			rng:   root.Derived(uint64(id)),
		}
		r.protos[v] = f(id)
	}
	r.buildPortViews()
	if r.adv != nil && r.adv.MaxDelay() > 0 {
		// Ring slot d holds messages that mature d delivery phases from now;
		// slot 0 is drained into inboxes at the top of each delivery. A send
		// with delay δ lands in slot δ (slot 0 is never appended to — it was
		// just drained), so the ring needs MaxDelay+1 slots.
		r.future = make([][][]Message, r.adv.MaxDelay()+1)
		for d := range r.future {
			r.future[d] = make([][]Message, n)
		}
	}
	r.active.Store(int64(n))
	r.stepFn = func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			if r.cancelled() {
				return
			}
			r.stepOne(v, r.round)
		}
	}
	if r.adv != nil {
		r.deliverFn = func(w, lo, hi int) { r.deliverShardAdv(w, lo, hi) }
	} else {
		r.deliverFn = func(w, lo, hi int) { r.deliverShard(w, lo, hi) }
	}

	res := Result{Counters: make(map[string]int64)}
	for round := 0; round < cfg.MaxRounds; round++ {
		if r.adv != nil {
			r.applyAdversaryRound(round, &res)
		}
		// LOCAL protocols may act every round until they halt, so the run
		// continues while any node is active. The count is maintained
		// incrementally by Env.Halt — no per-round O(n) scan.
		if r.active.Load() == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		r.round = round
		if r.pool != nil {
			r.pool.Dispatch(r.stepFn)
		} else {
			r.stepFn(0, 0, n)
		}
		// The engines return early on cancellation, possibly mid-round;
		// abandon the round's output rather than deliver a partial step.
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if r.pool != nil {
			r.pool.Dispatch(r.deliverFn)
		} else {
			r.deliverFn(0, 0, n)
		}
		var sent, units int64
		for w := range r.totals {
			sent += r.totals[w].sent
			units += r.totals[w].units
		}
		if r.adv != nil {
			for w := range r.totals {
				res.Dropped += r.totals[w].dropped
				res.Duplicated += r.totals[w].duplicated
				r.inFlight += r.totals[w].pend
			}
			// Rotate the future ring: the slot delivery just drained cycles
			// to the back, and the next round's matured messages move to the
			// front. The slot headers (and their truncated per-node slices)
			// are reused, so a steady-state round allocates nothing here.
			if len(r.future) > 0 {
				f0 := r.future[0]
				copy(r.future, r.future[1:])
				r.future[len(r.future)-1] = f0
			}
		}
		if !cfg.NoLedger {
			res.PerRound = append(res.PerRound, sent)
		}
		res.Messages += sent
		res.PayloadUnits += units
		res.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(round, sent)
		}
		// The in-flight gate defers central termination detection past
		// rounds with delayed messages still undelivered (always zero
		// without an adversary).
		if cfg.StopWhen != nil && r.inFlight == 0 && cfg.StopWhen(round, sent) {
			break
		}
	}
	res.Halted = true
	for v := 0; v < n; v++ {
		if !r.envs[v].halted {
			res.Halted = false
		}
		for i, c := range r.envs[v].counts {
			res.Counters[r.counters.names[i]] += c
		}
	}
	return res, nil
}

func (r *run) stepOne(v int, round int) {
	env := &r.envs[v]
	if env.halted {
		return
	}
	env.seq = 0
	env.hint = 0
	r.protos[v].Step(env, round, r.inbox[v])
}

// cancelled reports whether the run's context has been cancelled. It is a
// non-blocking poll, cheap enough to call per node step; with no
// cancellable context (done == nil) it compiles down to a nil check.
func (r *run) cancelled() bool {
	if r.done == nil {
		return false
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// msgOrder is the canonical inbox ordering: edge ID, then the sender's send
// order within the round.
func msgOrder(a, b Message) int {
	if c := cmp.Compare(a.Edge, b.Edge); c != 0 {
		return c
	}
	return cmp.Compare(a.seq, b.seq)
}

// sortInbox establishes the canonical (edge, send order) inbox ordering.
// The keys ride in the Message struct, so the stable sort runs over the
// concrete slice: no interface boxing, no reflection swapper, no
// allocation. Empty and singleton inboxes skip it — ordering them is the
// identity, and quiet rounds must stay free. Buckets that staged already
// in canonical order — common when a receiver hears from one sender, whose
// sends arrive in (edge, seq) order by construction — skip the sort behind
// a linear is-sorted scan: a stable sort of a sorted slice is the identity,
// so the fast path cannot change any execution.
//
//freelunch:noalloc
func sortInbox(in []Message) {
	if len(in) < 2 {
		return
	}
	if slices.IsSortedFunc(in, msgOrder) {
		return
	}
	slices.SortStableFunc(in, msgOrder)
}

// deliverShard moves this round's sends for the receivers in [lo, hi) —
// exactly the messages staged in bucket column w — into next round's
// inboxes, and accumulates this worker's message totals. Draining the
// column in step-worker order yields the (sender, send order) staging order
// of the sequential engine, and the canonical (edge, seq) sort on top makes
// both engines expose identical inboxes at every worker count. Each message
// is read once, by the one worker owning its receiver's shard; messages to
// halted receivers are dropped (but still billed, as the model prescribes).
// All staging buffers are truncated and reused: a steady-state round
// allocates nothing, and payload references are cleared so finished bursts
// do not pin their payloads.
//
//freelunch:noalloc
func (r *run) deliverShard(w, lo, hi int) {
	t := &r.totals[w]
	t.sent, t.units = 0, 0
	for v := lo; v < hi; v++ {
		if r.envs[v].halted {
			// A halted node never reads or receives again; drop its staging
			// buffer (and the payloads it references) instead of pinning
			// them for the rest of the run.
			r.inbox[v] = nil
			continue
		}
		// clear before truncating: a node that goes quiet after a burst must
		// not pin the burst's payloads in the reused backing array. The
		// memclr is linear in last round's inbox, a cost the round already
		// paid several times over to deliver it.
		clear(r.inbox[v])
		r.inbox[v] = r.inbox[v][:0]
	}
	for ws := 0; ws < r.nshards; ws++ {
		bucket := r.stages[ws][w]
		t.sent += int64(len(bucket))
		for i := range bucket {
			m := &bucket[i]
			t.units += payloadUnits(m.body)
			if r.envs[m.to].halted {
				continue // dropped: receiver terminated
			}
			//freelunch:allocok amortized: inbox backing arrays are truncated and reused across rounds
			r.inbox[m.to] = append(r.inbox[m.to], Message{Edge: m.edge, Payload: m.body, seq: m.seq})
		}
		clear(bucket) // no stale payload references in the reused bucket
		r.stages[ws][w] = bucket[:0]
	}
	for v := lo; v < hi; v++ {
		sortInbox(r.inbox[v])
	}
}

// buildPortViews (re)assembles every node's sorted port and peer-index views
// from the run's current graph into two flat backing arrays. It runs once at
// setup and again after each adversarial topology event; the nil-adversary
// path never re-enters it.
func (r *run) buildPortViews() {
	n := r.g.NumNodes()
	m := r.g.NumEdges()
	r.portsAll = make([]Port, 0, 2*m)
	r.peersAll = make([]graph.NodeID, 0, 2*m)
	var scratch []graph.Half
	for v := 0; v < n; v++ {
		idx := graph.NodeID(v)
		// Sort a scratch copy of the incident list by edge ID, then emit
		// ports and peer indices side by side: the two views stay parallel
		// and the backing arrays never reallocate (capacity is exact).
		scratch = append(scratch[:0], r.g.Incident(idx)...)
		slices.SortFunc(scratch, func(a, b graph.Half) int { return cmp.Compare(a.Edge, b.Edge) })
		base := len(r.portsAll)
		for _, h := range scratch {
			p := NoPeer
			if r.cfg.KT1 {
				p = h.Peer
				if r.cfg.IDMap != nil {
					p = r.cfg.IDMap[h.Peer]
				}
			}
			r.portsAll = append(r.portsAll, Port{Edge: h.Edge, Peer: p})
			r.peersAll = append(r.peersAll, h.Peer)
		}
		r.envs[v].ports = r.portsAll[base:len(r.portsAll):len(r.portsAll)]
		r.envs[v].peers = r.peersAll[base:len(r.peersAll):len(r.peersAll)]
	}
}

// applyAdversaryRound applies the adversary's round-boundary perturbations
// before any node steps: crash-stop failures (the node does not step this
// round) and topology events (an inserted edge is usable by this round's
// sends; messages still in flight over a deleted edge are destroyed). It
// runs on the coordinating goroutine, outside any worker phase.
func (r *run) applyAdversaryRound(round int, res *Result) {
	for _, c := range r.adv.CrashesAt(round) {
		v := int(c.Node)
		if v < 0 || v >= len(r.envs) {
			continue // profile names a node beyond this graph
		}
		env := &r.envs[v]
		if !env.halted {
			env.halted = true
			env.crashed = true
			r.active.Add(-1)
			res.Crashed++
		}
	}
	events := r.adv.EventsAt(round)
	if len(events) == 0 {
		return
	}
	changed := false
	for _, ev := range events {
		if int(ev.U) >= r.g.NumNodes() || int(ev.V) >= r.g.NumNodes() {
			continue // graph-independent profiles may outrange small graphs
		}
		switch ev.Op {
		case adversary.InsertEdge:
			r.g.AddEdge(ev.U, ev.V)
			changed = true
		case adversary.DeleteEdge:
			between := r.g.EdgesBetween(ev.U, ev.V)
			if len(between) == 0 {
				continue // deleting an absent pair is a no-op by contract
			}
			id := slices.Min(between)
			if err := r.g.RemoveEdgeID(id); err != nil {
				panic(fmt.Sprintf("local: removing adversary-selected edge %d: %v", id, err))
			}
			r.purgeFuture(id, ev.U, ev.V, res)
			changed = true
		}
	}
	if changed {
		r.buildPortViews()
	}
}

// purgeFuture destroys delayed messages still in flight over a deleted edge:
// they were billed at send time and now count as adversary-induced drops.
func (r *run) purgeFuture(id graph.EdgeID, u, v graph.NodeID, res *Result) {
	for d := range r.future {
		for _, w := range [2]graph.NodeID{u, v} {
			slot := r.future[d][w]
			kept := slot[:0]
			for _, m := range slot {
				if m.Edge == id {
					res.Dropped++
					r.inFlight--
					continue
				}
				kept = append(kept, m)
			}
			// Clear the tail so destroyed payloads are not pinned by the
			// reused backing array.
			for i := len(kept); i < len(slot); i++ {
				slot[i] = Message{}
			}
			r.future[d][w] = kept
		}
	}
}

// deliverShardAdv is deliverShard's adversary-aware twin: the same
// column-drain in step-worker order (so both engines stay bit-identical at
// every worker count), with the adversary consulted per message. Matured
// delayed messages (the future ring's front slot) enter the inbox first;
// because an edge's delay is constant, matured and fresh traffic never share
// an edge in one inbox, and the canonical (edge, seq) sort remains a total
// order. Every send — dropped, delayed, or void — is billed at send time;
// duplicates are billed as one extra message and delivered adjacent to the
// original. The nil-adversary path never enters this function, keeping the
// flawless network's zero-allocation delivery untouched.
func (r *run) deliverShardAdv(w, lo, hi int) {
	t := &r.totals[w]
	t.sent, t.units, t.dropped, t.duplicated, t.pend = 0, 0, 0, 0, 0
	a := r.adv
	delayed := len(r.future) > 0
	for v := lo; v < hi; v++ {
		env := &r.envs[v]
		if env.halted {
			r.inbox[v] = nil
			if delayed {
				mat := r.future[0][v]
				if env.crashed {
					// Matured messages to a crashed receiver are destroyed
					// by the adversary; a voluntary halt's drops stay
					// ordinary model behaviour.
					t.dropped += int64(len(mat))
				}
				t.pend -= int64(len(mat))
				clear(mat)
				r.future[0][v] = mat[:0]
			}
			continue
		}
		clear(r.inbox[v])
		in := r.inbox[v][:0]
		if delayed {
			mat := r.future[0][v]
			in = append(in, mat...)
			t.pend -= int64(len(mat))
			clear(mat)
			r.future[0][v] = mat[:0]
		}
		r.inbox[v] = in
	}
	round := r.round
	for ws := 0; ws < r.nshards; ws++ {
		bucket := r.stages[ws][w]
		t.sent += int64(len(bucket))
		for i := range bucket {
			m := &bucket[i]
			t.units += payloadUnits(m.body)
			if m.to < 0 {
				t.dropped++ // void send: the edge vanished mid-run
				continue
			}
			env := &r.envs[m.to]
			if env.halted {
				if env.crashed {
					t.dropped++
				}
				continue
			}
			if a.Drop(round, m.edge, m.to, m.seq) {
				t.dropped++
				continue
			}
			dup := a.Duplicate(round, m.edge, m.to, m.seq)
			if dup {
				t.sent++
				t.units += payloadUnits(m.body)
				t.duplicated++
			}
			if d := a.Delay(m.edge); d > 0 {
				slot := r.future[d]
				slot[m.to] = append(slot[m.to], Message{Edge: m.edge, Payload: m.body, seq: m.seq})
				t.pend++
				if dup {
					slot[m.to] = append(slot[m.to], Message{Edge: m.edge, Payload: m.body, seq: m.seq})
					t.pend++
				}
				continue
			}
			r.inbox[m.to] = append(r.inbox[m.to], Message{Edge: m.edge, Payload: m.body, seq: m.seq})
			if dup {
				r.inbox[m.to] = append(r.inbox[m.to], Message{Edge: m.edge, Payload: m.body, seq: m.seq})
			}
		}
		clear(bucket)
		r.stages[ws][w] = bucket[:0]
	}
	for v := lo; v < hi; v++ {
		sortInbox(r.inbox[v])
	}
}
