// Package local implements a fully synchronous message-passing simulator for
// the LOCAL model of distributed computing (Linial; Peleg), specialized to
// the model variant used by the paper:
//
//   - rounds are fully synchronous: in round r every node receives the
//     messages sent to it in round r-1, computes, and sends messages;
//   - message size is unbounded (the simulator counts messages, not bits,
//     exactly as the paper's message complexity does);
//   - every edge has a unique identifier known to both endpoints (the
//     assumption "strictly between KT0 and KT1"); the KT1 variant, in which
//     a node additionally knows the ID of each neighbor, can be enabled;
//   - every node knows an O(1)-approximate upper bound on log n, surfaced as
//     Env.LogN (the approximation factor is configurable so experiments can
//     check robustness to the bound's slack).
//
// Two engines execute the same Protocol code: a sequential engine and a
// concurrent engine that fans node steps out over a worker pool with a
// barrier per round. Per-node randomness comes from streams derived from
// (seed, node ID), and inboxes are sorted canonically, so both engines
// produce bit-identical executions — a property the test suite checks.
package local

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Message is a payload in transit over an edge. Code receiving a Message
// knows the unique ID of the edge it arrived on — this is the model's
// central assumption — but not, under KT0, who sent it.
type Message struct {
	// Edge is the unique ID of the edge the message traveled over.
	Edge graph.EdgeID
	// Payload is the message body. The LOCAL model does not bound its size.
	Payload any
}

// Protocol is the per-node state machine of a distributed algorithm.
//
// Step is invoked once per round. In round 0 the inbox is empty; in round
// r > 0 it holds the messages sent to this node in round r-1, sorted by
// (edge ID, send order). A node stops participating by calling Env.Halt;
// afterwards Step is never invoked again and arriving messages are dropped.
type Protocol interface {
	Step(env *Env, round int, inbox []Message)
}

// ProtocolFunc adapts a function to the Protocol interface for stateless or
// closure-based algorithms.
type ProtocolFunc func(env *Env, round int, inbox []Message)

// Step implements Protocol.
func (f ProtocolFunc) Step(env *Env, round int, inbox []Message) { f(env, round, inbox) }

// Factory builds the protocol instance for one node. It is called once per
// node before round 0.
type Factory func(v graph.NodeID) Protocol

// Port is a node's local view of one incident edge.
type Port struct {
	// Edge is the globally unique edge ID (always available).
	Edge graph.EdgeID
	// Peer is the node at the other end. It is valid only under KT1; under
	// the default model it is set to -1 and protocol code must not use it.
	Peer graph.NodeID
}

// NoPeer is the Peer value of a Port under the KT0-with-edge-IDs model.
const NoPeer graph.NodeID = -1

// Config configures a run.
type Config struct {
	// Seed is the root seed for all node RNG streams.
	Seed uint64
	// KT1 exposes neighbor IDs on ports. Default (false) is the paper's
	// unique-edge-ID model.
	KT1 bool
	// MaxRounds aborts runs that fail to halt. Zero means DefaultMaxRounds.
	MaxRounds int
	// LogNSlack multiplies the true log2(n) before it is handed to nodes,
	// modeling the "O(1)-approximate upper bound on log n" assumption.
	// Zero means 1.0 (exact).
	LogNSlack float64
	// Concurrent selects the worker-pool engine; the default is the
	// sequential engine. Both produce identical executions.
	Concurrent bool
	// Workers bounds the worker pool in concurrent mode; zero means
	// GOMAXPROCS.
	Workers int
	// IDMap overrides node identities: node v reports ID IDMap[v] and draws
	// its randomness from the stream of that identity. It exists for the
	// ball-replay simulation of the paper's Section 6, which re-executes an
	// algorithm on a reconstructed subgraph whose nodes must behave exactly
	// as their originals. nil means the identity mapping.
	IDMap []graph.NodeID
	// NOverride, if positive, is the node count reported by Env.N and used
	// for Env.LogN (again for ball replays, where the subgraph is smaller
	// than the original network).
	NOverride int
	// OnRound, if non-nil, is invoked after every completed round with the
	// round index and the number of messages sent in it. It runs on the
	// engine's coordinating goroutine (never concurrently with itself) and
	// must not call back into the run.
	OnRound func(round int, messages int64)
	// NoLedger disables the Result.PerRound ledger, whose length otherwise
	// grows with every executed round. Totals, counters, halting, and the
	// OnRound stream are unaffected, so a long-schedule run keeps O(1)
	// memory in executed rounds by streaming rounds through OnRound (e.g.
	// into the facade's MetricsSink) instead of retaining the slice.
	NoLedger bool
}

// DefaultMaxRounds bounds runaway protocols.
const DefaultMaxRounds = 1 << 20

// Result reports the cost of a run, in the units the paper uses.
type Result struct {
	// Rounds is the number of rounds executed (a round with no active nodes
	// and no messages in flight is not counted).
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// PayloadUnits is the total abstract size of all payloads sent (see
	// Sizer). The LOCAL model does not charge for it — message complexity
	// counts messages — but it quantifies how much the model's unbounded
	// messages are leaned on (the CONGEST-side view).
	PayloadUnits int64
	// PerRound is the number of messages sent in each round. It is nil
	// when the run was configured with Config.NoLedger.
	PerRound []int64
	// Halted reports whether every node halted before MaxRounds.
	Halted bool
	// Counters aggregates Env.Count calls from all nodes, keyed by name.
	// Protocols use it to attribute message traffic to phases (e.g. query
	// vs. cluster-tree traffic in the distributed Sampler).
	Counters map[string]int64
}

// Sizer lets a payload report its abstract size in "units" (think O(log n)-
// bit words: an edge ID, a node ID, a flag). Payloads that do not implement
// Sizer count as 1 unit. The runtime sums sizes into Result.PayloadUnits.
type Sizer interface {
	PayloadUnits() int64
}

// payloadUnits measures one payload.
func payloadUnits(p any) int64 {
	if s, ok := p.(Sizer); ok {
		return s.PayloadUnits()
	}
	return 1
}

// Env is a node's handle to the simulator. It is valid only inside Step (and
// the node's own goroutine in concurrent mode); protocols must not retain it
// across rounds or share it.
type Env struct {
	run    *run
	idx    graph.NodeID // index in the run's graph
	id     graph.NodeID // reported identity (equals idx unless IDMap is set)
	rng    *xrand.RNG
	ports  []Port
	out    []outMsg // this round's sends
	counts map[string]int64
	halted bool
}

type outMsg struct {
	edge graph.EdgeID
	to   graph.NodeID
	seq  int32
	body any
}

// ID returns this node's unique identifier.
func (e *Env) ID() graph.NodeID { return e.id }

// N returns the number of nodes. The paper only assumes a poly(n) upper
// bound on n; protocols that want to honor that weaker assumption should use
// LogN instead and avoid N.
func (e *Env) N() int {
	if e.run.cfg.NOverride > 0 {
		return e.run.cfg.NOverride
	}
	return e.run.g.NumNodes()
}

// LogN returns the node's (possibly slack) upper bound on log2 n.
func (e *Env) LogN() float64 { return e.run.logN }

// Degree returns the number of incident edges (with multiplicity).
func (e *Env) Degree() int { return len(e.ports) }

// Ports returns the node's incident ports. The slice is owned by the
// simulator and must not be modified.
func (e *Env) Ports() []Port { return e.ports }

// Rand returns this node's private random stream. It is stable across
// engines and runs with the same Config.Seed.
func (e *Env) Rand() *xrand.RNG { return e.rng }

// Send transmits payload over the identified incident edge; it panics if the
// edge is not incident to this node, which always indicates a protocol bug.
// Multiple sends on the same edge in one round are delivered in order.
func (e *Env) Send(edge graph.EdgeID, payload any) {
	ge, ok := e.run.g.EdgeByID(edge)
	if !ok || (ge.U != e.idx && ge.V != e.idx) {
		panic(fmt.Sprintf("local: node %d sent on non-incident edge %d", e.id, edge))
	}
	e.out = append(e.out, outMsg{edge: edge, to: ge.Other(e.idx), seq: int32(len(e.out)), body: payload})
}

// Halt marks the node as terminated. Pending sends from the current Step are
// still delivered.
func (e *Env) Halt() { e.halted = true }

// Count adds delta to a named per-run counter (aggregated across nodes into
// Result.Counters).
func (e *Env) Count(name string, delta int64) {
	if e.counts == nil {
		e.counts = make(map[string]int64)
	}
	e.counts[name] += delta
}

// run is the shared state of one execution.
type run struct {
	g    *graph.Graph
	cfg  Config
	logN float64
	done <-chan struct{} // cancellation signal; nil when uncancellable

	envs   []*Env
	protos []Protocol
	inbox  [][]Message
}

// Run executes the protocol built by f on g under cfg and returns the cost
// metrics. It is RunCtx with an uncancellable context.
func Run(g *graph.Graph, f Factory, cfg Config) (Result, error) {
	return RunCtx(context.Background(), g, f, cfg)
}

// RunCtx executes the protocol built by f on g under cfg and returns the
// cost metrics. It returns an error only for configuration mistakes or
// context cancellation; protocol panics propagate (a deliberate choice: a
// protocol bug in a simulation is a programming error, not an operational
// condition).
//
// Cancellation is checked between node steps in both engines, so a run
// aborts within one node step's work — well under one round — and returns
// ctx.Err() together with the metrics accumulated so far.
func RunCtx(ctx context.Context, g *graph.Graph, f Factory, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return Result{}, fmt.Errorf("local: nil graph")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.LogNSlack == 0 {
		cfg.LogNSlack = 1
	}
	if cfg.LogNSlack < 1 {
		return Result{}, fmt.Errorf("local: LogNSlack %v < 1 is not an upper bound", cfg.LogNSlack)
	}
	n := g.NumNodes()
	if cfg.IDMap != nil && len(cfg.IDMap) != n {
		return Result{}, fmt.Errorf("local: IDMap covers %d of %d nodes", len(cfg.IDMap), n)
	}
	r := &run{g: g, cfg: cfg, done: ctx.Done()}
	effN := n
	if cfg.NOverride > 0 {
		effN = cfg.NOverride
	}
	r.logN = cfg.LogNSlack * math.Log2(math.Max(2, float64(effN)))
	root := xrand.New(cfg.Seed)
	r.envs = make([]*Env, n)
	r.protos = make([]Protocol, n)
	r.inbox = make([][]Message, n)
	for v := 0; v < n; v++ {
		idx := graph.NodeID(v)
		id := idx
		if cfg.IDMap != nil {
			id = cfg.IDMap[v]
		}
		inc := g.Incident(idx)
		ports := make([]Port, len(inc))
		for i, h := range inc {
			peer := NoPeer
			if cfg.KT1 {
				peer = h.Peer
				if cfg.IDMap != nil {
					peer = cfg.IDMap[h.Peer]
				}
			}
			ports[i] = Port{Edge: h.Edge, Peer: peer}
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].Edge < ports[j].Edge })
		r.envs[v] = &Env{run: r, idx: idx, id: id, rng: root.Derive(uint64(id)), ports: ports}
		r.protos[v] = f(id)
	}

	res := Result{Counters: make(map[string]int64)}
	for round := 0; round < cfg.MaxRounds; round++ {
		// A node is active this round if it has not halted and either it is
		// round 0 or it has messages — no: LOCAL protocols may act every
		// round until they halt, so every non-halted node steps.
		active := false
		for v := 0; v < n; v++ {
			if !r.envs[v].halted {
				active = true
				break
			}
		}
		if !active {
			break
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if cfg.Concurrent {
			r.stepAllConcurrent(round)
		} else {
			r.stepAllSequential(round)
		}
		// The engines return early on cancellation, possibly mid-round;
		// abandon the round's output rather than deliver a partial step.
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sent, units := r.deliver()
		if !cfg.NoLedger {
			res.PerRound = append(res.PerRound, sent)
		}
		res.Messages += sent
		res.PayloadUnits += units
		res.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(round, sent)
		}
	}
	res.Halted = true
	for v := 0; v < n; v++ {
		if !r.envs[v].halted {
			res.Halted = false
		}
		for k, c := range r.envs[v].counts {
			res.Counters[k] += c
		}
	}
	return res, nil
}

func (r *run) stepOne(v int, round int) {
	env := r.envs[v]
	if env.halted {
		r.inbox[v] = nil
		return
	}
	in := r.inbox[v]
	r.inbox[v] = nil
	r.protos[v].Step(env, round, in)
}

// cancelled reports whether the run's context has been cancelled. It is a
// non-blocking poll, cheap enough to call per node step; with no
// cancellable context (done == nil) it compiles down to a nil check.
func (r *run) cancelled() bool {
	if r.done == nil {
		return false
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

func (r *run) stepAllSequential(round int) {
	for v := range r.envs {
		if r.cancelled() {
			return
		}
		r.stepOne(v, round)
	}
}

func (r *run) stepAllConcurrent(round int) {
	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(r.envs)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				if r.cancelled() {
					return
				}
				r.stepOne(v, round)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// deliver moves this round's sends into next round's inboxes and returns the
// number of messages sent and their total payload units. Inboxes are sorted
// by (edge, sender sequence) so both engines expose identical inbox
// orderings.
func (r *run) deliver() (int64, int64) {
	var sent, units int64
	for v := range r.envs {
		env := r.envs[v]
		sent += int64(len(env.out))
		for _, m := range env.out {
			units += payloadUnits(m.body)
			to := int(m.to)
			if r.envs[to].halted {
				continue // dropped: receiver terminated
			}
			r.inbox[to] = append(r.inbox[to], Message{Edge: m.edge, Payload: payloadWithSeq{m.body, m.edge, m.seq}})
		}
		env.out = env.out[:0]
	}
	for v := range r.inbox {
		in := r.inbox[v]
		if len(in) == 0 {
			continue
		}
		// Singleton inboxes (and empty ones above) skip the sort: ordering
		// zero or one messages is the identity, and sort.SliceStable
		// allocates its reflection swapper even then, which would make
		// every quiet round pay O(n) allocations for nothing.
		if len(in) > 1 {
			sort.SliceStable(in, func(i, j int) bool {
				a := in[i].Payload.(payloadWithSeq)
				b := in[j].Payload.(payloadWithSeq)
				if a.edge != b.edge {
					return a.edge < b.edge
				}
				return a.seq < b.seq
			})
		}
		for i := range in {
			in[i].Payload = in[i].Payload.(payloadWithSeq).body
		}
	}
	return sent, units
}

// payloadWithSeq temporarily tags payloads with ordering keys during
// delivery.
type payloadWithSeq struct {
	body any
	edge graph.EdgeID
	seq  int32
}
