package local

import (
	"context"
	"reflect"
	"runtime"
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// floodMax is a tiny LOCAL protocol: every node repeatedly broadcasts the
// largest node ID it has seen; after t rounds each node knows the max ID in
// its t-ball. It exercises Send, inboxes, halting, and determinism.
type floodMax struct {
	t    int
	best graph.NodeID
}

func (p *floodMax) Step(env *Env, round int, inbox []Message) {
	if round == 0 {
		p.best = env.ID()
	}
	for _, m := range inbox {
		if v := m.Payload.(graph.NodeID); v > p.best {
			p.best = v
		}
	}
	if round == p.t {
		env.Halt()
		return
	}
	for _, port := range env.Ports() {
		env.Send(port.Edge, p.best)
	}
	env.Count("floods", int64(env.Degree()))
}

func runFloodMax(t *testing.T, g *graph.Graph, rounds int, cfg Config) ([]graph.NodeID, Result) {
	t.Helper()
	states := make([]*floodMax, g.NumNodes())
	res, err := Run(g, func(v graph.NodeID) Protocol {
		states[v] = &floodMax{t: rounds}
		return states[v]
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]graph.NodeID, len(states))
	for i, s := range states {
		out[i] = s.best
	}
	return out, res
}

func TestFloodMaxCorrect(t *testing.T) {
	g := gen.Cycle(11)
	const tRounds = 3
	got, res := runFloodMax(t, g, tRounds, Config{Seed: 1})
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if res.Rounds != tRounds+1 {
		t.Fatalf("rounds = %d, want %d", res.Rounds, tRounds+1)
	}
	for v := 0; v < g.NumNodes(); v++ {
		want := graph.NodeID(0)
		for _, u := range g.Ball(graph.NodeID(v), tRounds) {
			if u > want {
				want = u
			}
		}
		if got[v] != want {
			t.Fatalf("node %d learned %d, want %d", v, got[v], want)
		}
	}
}

func TestEnginesIdentical(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.04, xrand.New(5))
	for _, rounds := range []int{0, 1, 4} {
		seq, resSeq := runFloodMax(t, g, rounds, Config{Seed: 9})
		con, resCon := runFloodMax(t, g, rounds, Config{Seed: 9, Concurrent: true, Workers: 8})
		if !reflect.DeepEqual(seq, con) {
			t.Fatalf("t=%d: states differ between engines", rounds)
		}
		if resSeq.Messages != resCon.Messages || resSeq.Rounds != resCon.Rounds {
			t.Fatalf("t=%d: metrics differ: %+v vs %+v", rounds, resSeq, resCon)
		}
		if !reflect.DeepEqual(resSeq.PerRound, resCon.PerRound) {
			t.Fatalf("t=%d: per-round traffic differs", rounds)
		}
	}
}

// randomized protocol: each node draws values; engines must agree exactly.
type randProto struct{ draws []uint64 }

func (p *randProto) Step(env *Env, round int, inbox []Message) {
	p.draws = append(p.draws, env.Rand().Uint64())
	if round == 3 {
		env.Halt()
	}
}

func TestRandStreamsEngineIndependent(t *testing.T) {
	g := gen.Grid(6, 6)
	run := func(concurrent bool) [][]uint64 {
		states := make([]*randProto, g.NumNodes())
		_, err := Run(g, func(v graph.NodeID) Protocol {
			states[v] = &randProto{}
			return states[v]
		}, Config{Seed: 123, Concurrent: concurrent})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]uint64, len(states))
		for i, s := range states {
			out[i] = s.draws
		}
		return out
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("randomness differs across engines")
	}
}

func TestMessageCounting(t *testing.T) {
	g := gen.Complete(5) // 10 edges
	_, res := runFloodMax(t, g, 2, Config{Seed: 1})
	// Rounds 0,1,2 each send over every half-edge: 3 * 2*10 = 60 messages...
	// round 2 is the halt round (no sends), so rounds 0 and 1 send: 2*20.
	if res.Messages != 40 {
		t.Fatalf("messages = %d, want 40", res.Messages)
	}
	if res.Counters["floods"] != 40 {
		t.Fatalf("counter = %d, want 40", res.Counters["floods"])
	}
	if len(res.PerRound) != 3 || res.PerRound[0] != 20 || res.PerRound[2] != 0 {
		t.Fatalf("per-round = %v", res.PerRound)
	}
}

func TestInboxOrderingCanonical(t *testing.T) {
	// Node 0 is connected to 1 and 2; both send two messages. The inbox must
	// be sorted by edge ID then send order, regardless of engine.
	g := graph.New(3)
	e01 := g.AddEdge(0, 1)
	e02 := g.AddEdge(0, 2)
	var got []string
	proto := func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			switch round {
			case 0:
				switch env.ID() {
				case 1:
					env.Send(e01, "1a")
					env.Send(e01, "1b")
				case 2:
					env.Send(e02, "2a")
					env.Send(e02, "2b")
				}
			case 1:
				if env.ID() == 0 {
					for _, m := range inbox {
						got = append(got, m.Payload.(string))
					}
				}
				env.Halt()
			}
		})
	}
	if _, err := Run(g, proto, Config{}); err != nil {
		t.Fatal(err)
	}
	want := []string{"1a", "1b", "2a", "2b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inbox order = %v, want %v", got, want)
	}
}

func TestHaltedReceiversDropMessages(t *testing.T) {
	g := graph.New(2)
	e := g.AddEdge(0, 1)
	sawAfterHalt := false
	proto := func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 1 {
				if round > 0 && len(inbox) > 0 {
					sawAfterHalt = true
				}
				env.Halt() // halts in round 0
				return
			}
			// node 0 keeps sending
			env.Send(e, round)
			if round == 3 {
				env.Halt()
			}
		})
	}
	if _, err := Run(g, proto, Config{}); err != nil {
		t.Fatal(err)
	}
	if sawAfterHalt {
		t.Fatal("halted node was stepped with messages")
	}
}

func TestMaxRoundsAbort(t *testing.T) {
	g := gen.Cycle(4)
	res, err := Run(g, func(graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {}) // never halts
	}, Config{MaxRounds: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("non-halting protocol reported halted")
	}
	if res.Rounds != 17 {
		t.Fatalf("rounds = %d, want 17", res.Rounds)
	}
}

func TestSendNonIncidentPanics(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	e12 := g.AddEdge(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("send on non-incident edge did not panic")
		}
	}()
	_, _ = Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 0 {
				env.Send(e12, "bad")
			}
			env.Halt()
		})
	}, Config{})
}

func TestKT1Ports(t *testing.T) {
	g := gen.Path(3)
	check := func(kt1 bool) {
		_, err := Run(g, func(v graph.NodeID) Protocol {
			return ProtocolFunc(func(env *Env, round int, inbox []Message) {
				for _, p := range env.Ports() {
					if kt1 && p.Peer == NoPeer {
						t.Error("KT1 port missing peer")
					}
					if !kt1 && p.Peer != NoPeer {
						t.Error("KT0 port leaked peer")
					}
				}
				env.Halt()
			})
		}, Config{KT1: kt1})
		if err != nil {
			t.Fatal(err)
		}
	}
	check(false)
	check(true)
}

func TestLogNSlack(t *testing.T) {
	g := gen.Cycle(16) // log2 16 = 4
	var got float64
	_, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 0 {
				got = env.LogN()
			}
			env.Halt()
		})
	}, Config{LogNSlack: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("LogN = %v, want 10", got)
	}
	if _, err := Run(g, func(graph.NodeID) Protocol { return ProtocolFunc(func(*Env, int, []Message) {}) }, Config{LogNSlack: 0.5}); err == nil {
		t.Fatal("LogNSlack < 1 accepted")
	}
}

func TestPortsSortedByEdgeID(t *testing.T) {
	g := graph.New(4)
	// insert edges out of order
	if err := g.AddEdgeWithID(30, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeWithID(10, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeWithID(20, 0, 3); err != nil {
		t.Fatal(err)
	}
	_, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 0 {
				prev := graph.EdgeID(-1)
				for _, p := range env.Ports() {
					if p.Edge <= prev {
						t.Error("ports not sorted")
					}
					prev = p.Edge
				}
			}
			env.Halt()
		})
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilGraphRejected(t *testing.T) {
	if _, err := Run(nil, func(graph.NodeID) Protocol { return nil }, Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestParallelEdgeDelivery(t *testing.T) {
	// Two parallel edges between 0 and 1: a message per edge must arrive
	// tagged with the right edge ID.
	g := graph.New(2)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(0, 1)
	gotEdges := map[graph.EdgeID]bool{}
	_, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			switch round {
			case 0:
				if env.ID() == 0 {
					env.Send(a, "via-a")
					env.Send(b, "via-b")
				}
			case 1:
				if env.ID() == 1 {
					for _, m := range inbox {
						gotEdges[m.Edge] = true
					}
				}
				env.Halt()
			}
		})
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !gotEdges[a] || !gotEdges[b] {
		t.Fatalf("parallel edge tags missing: %v", gotEdges)
	}
}

func TestIDMapAndNOverride(t *testing.T) {
	// A 3-node path posing as nodes {10, 20, 30} of a 100-node network.
	g := gen.Path(3)
	idmap := []graph.NodeID{10, 20, 30}
	var ids []graph.NodeID
	var ns []int
	var draws []uint64
	_, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			ids = append(ids, env.ID())
			ns = append(ns, env.N())
			draws = append(draws, env.Rand().Uint64())
			env.Halt()
		})
	}, Config{Seed: 99, IDMap: idmap, NOverride: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != idmap[i] {
			t.Fatalf("node %d reports ID %d", i, id)
		}
	}
	for _, n := range ns {
		if n != 100 {
			t.Fatalf("N() = %d, want 100", n)
		}
	}
	// The RNG stream must be that of the mapped identity: compare with a
	// run on a graph where node 20 is a real index.
	g2 := gen.Path(30)
	var draw20 uint64
	_, err = Run(g2, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 20 {
				draw20 = env.Rand().Uint64()
			}
			env.Halt()
		})
	}, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if draws[1] != draw20 {
		t.Fatal("mapped node 20 drew a different stream than the real node 20")
	}
}

func TestIDMapLengthChecked(t *testing.T) {
	g := gen.Path(3)
	_, err := Run(g, func(graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) { env.Halt() })
	}, Config{IDMap: []graph.NodeID{1}})
	if err == nil {
		t.Fatal("short IDMap accepted")
	}
}

// sized is a payload with an explicit unit size.
type sized struct{ units int64 }

func (s sized) PayloadUnits() int64 { return s.units }

func TestPayloadUnitsAccounting(t *testing.T) {
	g := gen.Path(2)
	e := g.Edges()[0].ID
	res, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if round == 0 && env.ID() == 0 {
				env.Send(e, sized{units: 10})
				env.Send(e, "plain") // non-Sizer counts as 1
			}
			if round == 1 {
				env.Halt()
			}
		})
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 {
		t.Fatalf("messages = %d", res.Messages)
	}
	if res.PayloadUnits != 11 {
		t.Fatalf("payload units = %d, want 11", res.PayloadUnits)
	}
}

func TestPayloadUnitsEngineIndependent(t *testing.T) {
	g := gen.Grid(5, 5)
	run := func(concurrent bool) int64 {
		res, err := Run(g, func(v graph.NodeID) Protocol {
			return ProtocolFunc(func(env *Env, round int, inbox []Message) {
				if round < 2 {
					for _, p := range env.Ports() {
						env.Send(p.Edge, sized{units: int64(env.ID()) + 1})
					}
				} else {
					env.Halt()
				}
			})
		}, Config{Seed: 3, Concurrent: concurrent})
		if err != nil {
			t.Fatal(err)
		}
		return res.PayloadUnits
	}
	if run(false) != run(true) {
		t.Fatal("payload units differ across engines")
	}
}

func TestRunCtxCancellation(t *testing.T) {
	// A protocol that never halts; cancellation is the only way out. Both
	// engines must return ctx.Err() promptly and without deadlock.
	g := gen.Grid(6, 6)
	for _, concurrent := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		rounds := 0
		cfg := Config{
			Seed:       1,
			Concurrent: concurrent,
			OnRound: func(round int, messages int64) {
				rounds++
				if rounds == 2 {
					cancel()
				}
			},
		}
		res, err := RunCtx(ctx, g, func(v graph.NodeID) Protocol {
			return ProtocolFunc(func(env *Env, round int, inbox []Message) {
				for _, p := range env.Ports() {
					env.Send(p.Edge, round)
				}
			})
		}, cfg)
		cancel()
		if err != context.Canceled {
			t.Fatalf("concurrent=%v: err = %v, want context.Canceled", concurrent, err)
		}
		// The run stops within one round of the cancellation point; nothing
		// near the MaxRounds default executes.
		if res.Rounds > 3 {
			t.Fatalf("concurrent=%v: %d rounds ran after cancellation", concurrent, res.Rounds)
		}
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.Path(3)
	stepped := false
	_, err := RunCtx(ctx, g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			stepped = true
			env.Halt()
		})
	}, Config{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stepped {
		t.Fatal("protocol stepped under a pre-cancelled context")
	}
}

func TestNoLedgerKeepsTotalsAndStream(t *testing.T) {
	// NoLedger must drop exactly the PerRound slice: totals, counters,
	// halting, and the OnRound stream are unchanged on both engines.
	g := gen.ConnectedGNP(40, 0.1, xrand.New(8))
	for _, concurrent := range []bool{false, true} {
		var ledgerMsgs, streamMsgs []int64
		withOut, withRes := runFloodMax(t, g, 3, Config{Seed: 6, Concurrent: concurrent,
			OnRound: func(r int, m int64) { ledgerMsgs = append(ledgerMsgs, m) }})
		out, res := runFloodMax(t, g, 3, Config{Seed: 6, Concurrent: concurrent, NoLedger: true,
			OnRound: func(r int, m int64) { streamMsgs = append(streamMsgs, m) }})
		if res.PerRound != nil {
			t.Fatalf("concurrent=%v: NoLedger run still retains %d PerRound entries", concurrent, len(res.PerRound))
		}
		if !reflect.DeepEqual(out, withOut) {
			t.Fatalf("concurrent=%v: outputs differ without the ledger", concurrent)
		}
		if res.Rounds != withRes.Rounds || res.Messages != withRes.Messages ||
			res.PayloadUnits != withRes.PayloadUnits || res.Halted != withRes.Halted ||
			!reflect.DeepEqual(res.Counters, withRes.Counters) {
			t.Fatalf("concurrent=%v: metrics drifted without the ledger: %+v vs %+v", concurrent, res, withRes)
		}
		if !reflect.DeepEqual(streamMsgs, ledgerMsgs) {
			t.Fatalf("concurrent=%v: OnRound stream drifted without the ledger", concurrent)
		}
		if !reflect.DeepEqual(ledgerMsgs, withRes.PerRound) {
			t.Fatalf("concurrent=%v: stream %v does not match ledger %v", concurrent, ledgerMsgs, withRes.PerRound)
		}
	}
}

// idleProto never halts and never sends: every executed round is pure
// simulator overhead, which makes per-round allocation growth measurable.
type idleProto struct{}

func (idleProto) Step(*Env, int, []Message) {}

func TestNoLedgerAllocsO1PerRound(t *testing.T) {
	// With the ledger disabled, a run's allocations must not grow with the
	// number of executed rounds: an 8x longer schedule may cost at most a
	// few more allocations (noise), not the ledger's append growth — the
	// memory contract WithRoundLedger(false) promises long schedules.
	g := gen.Path(8)
	measure := func(rounds int, noLedger bool) float64 {
		return testing.AllocsPerRun(5, func() {
			res, err := Run(g, func(graph.NodeID) Protocol { return idleProto{} },
				Config{Seed: 1, MaxRounds: rounds, NoLedger: noLedger})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds != rounds {
				t.Fatalf("executed %d rounds, want %d", res.Rounds, rounds)
			}
		})
	}
	short, long := measure(1000, true), measure(8000, true)
	if long > short+4 {
		t.Fatalf("allocations grew with rounds despite NoLedger: %.0f at 1000 rounds, %.0f at 8000", short, long)
	}
	// Control: the same schedule with the ledger on retains one int64 per
	// round (8000 entries), so the ledger is really what NoLedger removes.
	res, err := Run(g, func(graph.NodeID) Protocol { return idleProto{} },
		Config{Seed: 1, MaxRounds: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRound) != 8000 {
		t.Fatalf("ledger-on control retained %d entries, want 8000", len(res.PerRound))
	}
}

// busyProto saturates the message plane: every round it sends a pre-boxed
// payload over every port and bumps a counter, and it never halts. Every
// simulator-side cost of a busy round — outbox staging, delivery, inbox
// sorting, counter accounting — recurs each round, so allocation growth
// across schedules measures the steady-state cost of a busy round.
type busyProto struct{ payload any }

func (p *busyProto) Step(env *Env, round int, inbox []Message) {
	for _, pt := range env.Ports() {
		env.Send(pt.Edge, p.payload)
	}
	env.Count("busy", 1)
}

func TestBusyRoundAllocsSteadyStateZero(t *testing.T) {
	// The zero-allocation delivery contract: once buffers have grown to the
	// workload's high-water mark, a busy round allocates nothing. An 8x
	// longer schedule of full-traffic rounds may cost at most a few more
	// allocations (noise), on both engines. This is the busy-round
	// complement of TestNoLedgerAllocsO1PerRound's quiet-round bound.
	g := gen.Grid(5, 5)
	for _, workers := range []int{0, 2} { // 0 = sequential engine
		measure := func(rounds int) float64 {
			return testing.AllocsPerRun(5, func() {
				res, err := Run(g, func(graph.NodeID) Protocol { return &busyProto{payload: "x"} },
					Config{Seed: 1, MaxRounds: rounds, NoLedger: true,
						Concurrent: workers > 0, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if res.Rounds != rounds {
					t.Fatalf("executed %d rounds, want %d", res.Rounds, rounds)
				}
				if res.Counters["busy"] != int64(rounds*g.NumNodes()) {
					t.Fatalf("counter = %d", res.Counters["busy"])
				}
			})
		}
		short, long := measure(500), measure(4000)
		if long > short+8 {
			t.Fatalf("workers=%d: busy-round allocations grew with rounds: %.0f at 500 rounds, %.0f at 4000",
				workers, short, long)
		}
	}
}

// sweepPayload is the transcript payload of the worker-sweep equivalence
// test: it encodes who sent it, over which port copy, and a private random
// draw, so transcript equality pins message content, canonical inbox order,
// and RNG stream stability all at once.
type sweepPayload struct {
	From graph.NodeID
	Copy int
	Draw uint64
}

// sweepRec is one delivered message as a node's transcript records it.
type sweepRec struct {
	Round int
	Edge  graph.EdgeID
	Body  sweepPayload
}

// sweepProto multi-sends on every port (several copies per edge per round)
// and logs its inbox verbatim.
type sweepProto struct {
	t   int
	log []sweepRec
}

func (p *sweepProto) Step(env *Env, round int, inbox []Message) {
	for _, m := range inbox {
		p.log = append(p.log, sweepRec{Round: round, Edge: m.Edge, Body: m.Payload.(sweepPayload)})
	}
	if round >= p.t {
		env.Halt()
		return
	}
	copies := 1 + round%3
	for _, pt := range env.Ports() {
		for k := 0; k < copies; k++ {
			env.Send(pt.Edge, sweepPayload{From: env.ID(), Copy: k, Draw: env.Rand().Uint64()})
		}
	}
	env.Count("sweep-sends", int64(copies*env.Degree()))
}

func TestEngineEquivalenceWorkerSweep(t *testing.T) {
	// Property test: on a multigraph with parallel edges, under a protocol
	// that sends several messages per edge per round, the concurrent engine
	// must produce byte-identical Results and inbox orderings at every
	// worker count — including worker counts that do not divide n.
	g := gen.ConnectedGNP(41, 0.08, xrand.New(12))
	src := xrand.New(99)
	for k := 0; k < 30; k++ { // sprinkle parallel edges over existing ones
		e := g.Edges()[src.Uint64()%uint64(g.NumEdges())]
		g.AddEdge(e.U, e.V)
	}
	if g.IsSimple() {
		t.Fatal("test graph must contain parallel edges")
	}
	execute := func(concurrent bool, workers int) ([][]sweepRec, Result) {
		protos := make([]*sweepProto, g.NumNodes())
		res, err := Run(g, func(v graph.NodeID) Protocol {
			protos[v] = &sweepProto{t: 5}
			return protos[v]
		}, Config{Seed: 21, Concurrent: concurrent, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		logs := make([][]sweepRec, len(protos))
		for i, p := range protos {
			logs[i] = p.log
		}
		return logs, res
	}
	wantLogs, wantRes := execute(false, 0)
	if wantRes.Messages == 0 || !wantRes.Halted {
		t.Fatalf("degenerate baseline run: %+v", wantRes)
	}
	for _, workers := range []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)} {
		gotLogs, gotRes := execute(true, workers)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Fatalf("workers=%d: Result differs from sequential engine:\n got %+v\nwant %+v", workers, gotRes, wantRes)
		}
		if !reflect.DeepEqual(gotLogs, wantLogs) {
			t.Fatalf("workers=%d: inbox transcripts differ from sequential engine", workers)
		}
	}
}

// TestSortInboxAlreadySortedFastPath pins the delivery sort's fast path: a
// staged bucket already in canonical (edge, seq) order must pass through
// sortInbox untouched (the is-sorted guard makes it the identity, exactly
// what a stable sort of a sorted slice would be), an unsorted bucket must
// still land in canonical order, and ties on the full (edge, seq) key must
// keep their staging order (stability). TestEngineEquivalenceWorkerSweep
// pins the same property end to end across both engines.
func TestSortInboxAlreadySortedFastPath(t *testing.T) {
	sorted := []Message{
		{Edge: 1, seq: 0, Payload: "a"},
		{Edge: 1, seq: 2, Payload: "b"},
		{Edge: 3, seq: 1, Payload: "c"},
		{Edge: 3, seq: 1, Payload: "d"}, // duplicate key: parallel senders
		{Edge: 7, seq: 0, Payload: "e"},
	}
	if !slices.IsSortedFunc(sorted, msgOrder) {
		t.Fatal("fixture is not canonically sorted")
	}
	got := append([]Message(nil), sorted...)
	sortInbox(got)
	if !reflect.DeepEqual(got, sorted) {
		t.Fatalf("sortInbox perturbed an already-sorted bucket:\n got %v\nwant %v", got, sorted)
	}
	if allocs := testing.AllocsPerRun(100, func() { sortInbox(got) }); allocs != 0 {
		t.Fatalf("sortInbox allocated %.1f times on the sorted fast path", allocs)
	}

	unsorted := []Message{
		{Edge: 7, seq: 0, Payload: "e"},
		{Edge: 3, seq: 1, Payload: "c"},
		{Edge: 1, seq: 2, Payload: "b"},
		{Edge: 3, seq: 1, Payload: "d"}, // ties with "c"; staged after it
		{Edge: 1, seq: 0, Payload: "a"},
	}
	sortInbox(unsorted)
	want := []Message{
		{Edge: 1, seq: 0, Payload: "a"},
		{Edge: 1, seq: 2, Payload: "b"},
		{Edge: 3, seq: 1, Payload: "c"},
		{Edge: 3, seq: 1, Payload: "d"}, // stability: "c" before "d"
		{Edge: 7, seq: 0, Payload: "e"},
	}
	if !reflect.DeepEqual(unsorted, want) {
		t.Fatalf("sortInbox mis-ordered an unsorted bucket:\n got %v\nwant %v", unsorted, want)
	}
}

// benchBusyRound prices one full-traffic round: a single run executes b.N
// busy rounds, so ns/op is the marginal cost of a round (setup amortizes
// away as b.N grows) and allocs/op exposes any steady-state allocation on
// the message plane — the zero-allocation delivery contract says it
// converges to 0.
func benchBusyRound(b *testing.B, workers int) {
	g := gen.Grid(16, 16)
	b.ReportAllocs()
	res, err := Run(g, func(graph.NodeID) Protocol { return &busyProto{payload: "x"} },
		Config{Seed: 1, MaxRounds: b.N, NoLedger: true, Concurrent: workers > 0, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Messages)/float64(b.N), "msgs/round")
}

func BenchmarkBusyRoundSequential(b *testing.B) { benchBusyRound(b, 0) }
func BenchmarkBusyRoundConcurrent(b *testing.B) { benchBusyRound(b, 4) }

func TestOnRoundObserver(t *testing.T) {
	// OnRound must fire once per executed round, with per-round message
	// counts matching the result's ledger, in both engines.
	g := gen.Grid(4, 4)
	for _, concurrent := range []bool{false, true} {
		var rounds []int
		var msgs []int64
		res, err := Run(g, func(v graph.NodeID) Protocol {
			return ProtocolFunc(func(env *Env, round int, inbox []Message) {
				if round >= 3 {
					env.Halt()
					return
				}
				for _, p := range env.Ports() {
					env.Send(p.Edge, "x")
				}
			})
		}, Config{Seed: 2, Concurrent: concurrent, OnRound: func(r int, m int64) {
			rounds = append(rounds, r)
			msgs = append(msgs, m)
		}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rounds) != res.Rounds {
			t.Fatalf("concurrent=%v: observer saw %d rounds, result has %d", concurrent, len(rounds), res.Rounds)
		}
		for i, r := range rounds {
			if r != i {
				t.Fatalf("round indices out of order: %v", rounds)
			}
			if msgs[i] != res.PerRound[i] {
				t.Fatalf("round %d: observed %d messages, ledger has %d", i, msgs[i], res.PerRound[i])
			}
		}
	}
}
