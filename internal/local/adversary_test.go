package local

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// compileProfile is the test shorthand for binding a profile to a run seed.
func compileProfile(t *testing.T, p adversary.Profile, seed uint64) *adversary.Adversary {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return adversary.Compile(p, seed)
}

// TestAdversaryEngineEquivalenceWorkerSweep is the adversarial twin of
// TestEngineEquivalenceWorkerSweep: under a profile combining drops, dups,
// delays, and one crash, both engines must produce byte-identical Results
// and inbox transcripts at every worker count. Adversary decisions are pure
// hashes of message identity, so sharding must not be able to perturb them.
func TestAdversaryEngineEquivalenceWorkerSweep(t *testing.T) {
	g := gen.ConnectedGNP(41, 0.08, xrand.New(12))
	src := xrand.New(99)
	for k := 0; k < 30; k++ { // parallel edges stress the (edge, seq) keying
		e := g.Edges()[src.Uint64()%uint64(g.NumEdges())]
		g.AddEdge(e.U, e.V)
	}
	profile := adversary.Profile{
		Name:       "sweep-mixed",
		Seed:       0xbeef,
		DropRate:   0.15,
		DupRate:    0.10,
		DelayBound: 2,
		Crashes:    []adversary.Crash{{Node: 4, Round: 2}},
	}
	execute := func(concurrent bool, workers int) ([][]sweepRec, Result) {
		protos := make([]*sweepProto, g.NumNodes())
		res, err := Run(g, func(v graph.NodeID) Protocol {
			protos[v] = &sweepProto{t: 6}
			return protos[v]
		}, Config{Seed: 21, Concurrent: concurrent, Workers: workers,
			Adversary: compileProfile(t, profile, 21)})
		if err != nil {
			t.Fatal(err)
		}
		logs := make([][]sweepRec, len(protos))
		for i, p := range protos {
			logs[i] = p.log
		}
		return logs, res
	}
	wantLogs, wantRes := execute(false, 0)
	if wantRes.Messages == 0 || wantRes.Dropped == 0 || wantRes.Duplicated == 0 || wantRes.Crashed != 1 {
		t.Fatalf("degenerate adversarial baseline: %+v", wantRes)
	}
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		gotLogs, gotRes := execute(true, workers)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Fatalf("workers=%d: Result differs from sequential engine:\n got %+v\nwant %+v", workers, gotRes, wantRes)
		}
		if !reflect.DeepEqual(gotLogs, wantLogs) {
			t.Fatalf("workers=%d: inbox transcripts differ from sequential engine", workers)
		}
	}
}

// TestAdversaryDropBillsHonestly pins the honest billing contract under total
// loss: every send is billed in Messages and counted in Dropped, and nothing
// is delivered.
func TestAdversaryDropBillsHonestly(t *testing.T) {
	g := gen.Path(2)
	e := g.Edges()[0].ID
	received := 0
	res, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			received += len(inbox)
			if round == 3 {
				env.Halt()
				return
			}
			env.Send(e, round)
		})
	}, Config{Seed: 7, Adversary: compileProfile(t, adversary.Profile{DropRate: 1, Seed: 1}, 7)})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 0..2 send on both half-edges: 6 messages, all billed, all lost.
	if res.Messages != 6 {
		t.Fatalf("messages = %d, want 6 (drops are billed)", res.Messages)
	}
	if res.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", res.Dropped)
	}
	if received != 0 {
		t.Fatalf("%d messages slipped through a 100%% drop adversary", received)
	}
}

// TestAdversaryDuplicateBillsAndDelivers pins duplication: at DupRate 1 every
// message is delivered twice, billed as two messages, and counted once in
// Duplicated, with the copies adjacent in the canonical inbox order.
func TestAdversaryDuplicateBillsAndDelivers(t *testing.T) {
	g := gen.Path(2)
	e := g.Edges()[0].ID
	var got []any
	res, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 1 {
				for _, m := range inbox {
					got = append(got, m.Payload)
				}
			}
			if round == 1 {
				env.Halt()
				return
			}
			if env.ID() == 0 {
				env.Send(e, "a")
				env.Send(e, "b")
			}
		})
	}, Config{Seed: 3, Adversary: compileProfile(t, adversary.Profile{DupRate: 1, Seed: 2}, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 4 { // 2 sends, each billed twice
		t.Fatalf("messages = %d, want 4", res.Messages)
	}
	if res.Duplicated != 2 {
		t.Fatalf("duplicated = %d, want 2", res.Duplicated)
	}
	want := []any{"a", "a", "b", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inbox = %v, want %v (duplicates adjacent, canonical order)", got, want)
	}
}

// TestAdversaryDelayArrival pins the delay semantics: a message sent in
// round r over edge e arrives in round r+1+δ(e), per-edge FIFO.
func TestAdversaryDelayArrival(t *testing.T) {
	g := gen.Path(2)
	e := g.Edges()[0].ID
	profile := adversary.Profile{DelayBound: 3, Seed: 5}
	const seed = 11
	adv := compileProfile(t, profile, seed)
	delta := adv.Delay(e)
	if delta <= 0 {
		t.Fatalf("fixture needs a delayed edge, got δ=%d (pick another seed)", delta)
	}
	type arrival struct {
		Round   int
		Payload any
	}
	var got []arrival
	_, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 1 {
				for _, m := range inbox {
					got = append(got, arrival{Round: round, Payload: m.Payload})
				}
			}
			if env.ID() == 0 && round <= 1 {
				env.Send(e, round)
			}
			if round == 8 {
				env.Halt()
			}
		})
	}, Config{Seed: seed, Adversary: compileProfile(t, profile, seed)})
	if err != nil {
		t.Fatal(err)
	}
	want := []arrival{
		{Round: 1 + delta, Payload: 0},
		{Round: 2 + delta, Payload: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("arrivals = %v, want %v (sent r arrives r+1+δ, FIFO)", got, want)
	}
}

// TestAdversaryCrashStop pins crash-stop semantics: the node stops stepping
// at its scheduled round, messages addressed to it are billed and counted
// dropped, Result.Crashed reports it, and Halted still goes true once the
// survivors halt.
func TestAdversaryCrashStop(t *testing.T) {
	g := gen.Path(3) // 0-1-2
	stepRounds := make(map[graph.NodeID]int)
	res, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			stepRounds[env.ID()]++
			for _, pt := range env.Ports() {
				env.Send(pt.Edge, round)
			}
			if round == 4 {
				env.Halt()
			}
		})
	}, Config{Seed: 2, Adversary: compileProfile(t, adversary.Profile{
		Crashes: []adversary.Crash{{Node: 1, Round: 2}},
	}, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if stepRounds[1] != 2 {
		t.Fatalf("crashed node stepped %d rounds, want 2 (rounds 0 and 1)", stepRounds[1])
	}
	if stepRounds[0] != 5 || stepRounds[2] != 5 {
		t.Fatalf("survivors stepped %d/%d rounds, want 5", stepRounds[0], stepRounds[2])
	}
	if res.Crashed != 1 {
		t.Fatalf("crashed = %d, want 1", res.Crashed)
	}
	if !res.Halted {
		t.Fatal("run with a crashed node did not report Halted")
	}
	// Rounds 2..4: nodes 0 and 2 each send one message to the dead node 1
	// per round — billed and dropped. (Round 4 sends happen before Halt.)
	if res.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6 (sends to the crashed node)", res.Dropped)
	}
}

// TestAdversaryEdgeEvents pins dynamic topology: an inserted edge is usable
// from its round on (ports views rebuild), a deleted edge vanishes, and
// sends staged over an edge deleted in the same delivery window are billed
// and dropped, never delivered or panicking.
func TestAdversaryEdgeEvents(t *testing.T) {
	g := gen.Path(3) // 0-1-2; no 0-2 edge yet
	profile := adversary.Profile{
		EdgeEvents: []adversary.EdgeEvent{
			{Round: 2, Op: adversary.InsertEdge, U: 0, V: 2},
			{Round: 4, Op: adversary.DeleteEdge, U: 0, V: 2},
		},
	}
	type rec struct {
		Round int
		Edge  graph.EdgeID
	}
	var at2 []rec // node 2's arrivals
	degrees := make(map[int]int)
	res, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			if env.ID() == 2 {
				degrees[round] = env.Degree()
				for _, m := range inbox {
					at2 = append(at2, rec{Round: round, Edge: m.Edge})
				}
			}
			if env.ID() == 0 {
				for _, pt := range env.Ports() {
					env.Send(pt.Edge, round)
				}
			}
			if round == 6 {
				env.Halt()
			}
		})
	}, Config{Seed: 4, Adversary: compileProfile(t, profile, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 gains the inserted edge at round 2 and loses it at round 4.
	if degrees[1] != 1 || degrees[2] != 2 || degrees[4] != 1 {
		t.Fatalf("node 2 degrees = %v, want 1 before, 2 during, 1 after the edge's life", degrees)
	}
	// Node 0 reaches node 2 directly only in rounds 2 and 3 (arriving 3, 4).
	direct := 0
	for _, r := range at2 {
		if r.Edge >= graph.EdgeID(2) { // the inserted edge gets a fresh ID past the path's 0,1
			direct++
			if r.Round != 3 && r.Round != 4 {
				t.Fatalf("direct arrival at round %d, want only rounds 3 and 4 (%v)", r.Round, at2)
			}
		}
	}
	if direct != 2 {
		t.Fatalf("node 2 heard %d direct messages, want 2 (rounds 2 and 3 sends)", direct)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (no send raced the deletion)", res.Dropped)
	}
}

// TestAdversaryVoidSendDropped pins the vanished-edge tolerance: a protocol
// that cached a port from before a deletion may still Send on it; the send
// is billed and counted dropped instead of panicking.
func TestAdversaryVoidSendDropped(t *testing.T) {
	g := gen.Path(2)
	e := g.Edges()[0].ID
	profile := adversary.Profile{
		EdgeEvents: []adversary.EdgeEvent{{Round: 1, Op: adversary.DeleteEdge, U: 0, V: 1}},
	}
	received := 0
	res, err := Run(g, func(v graph.NodeID) Protocol {
		return ProtocolFunc(func(env *Env, round int, inbox []Message) {
			received += len(inbox)
			if env.ID() == 0 && round <= 2 {
				env.Send(e, round) // round 1's and 2's sends hit a deleted edge
			}
			if round == 3 {
				env.Halt()
			}
		})
	}, Config{Seed: 6, Adversary: compileProfile(t, profile, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 3 {
		t.Fatalf("messages = %d, want 3 (void sends are billed)", res.Messages)
	}
	if res.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (the post-deletion sends)", res.Dropped)
	}
	if received != 1 {
		t.Fatalf("received = %d, want 1 (only round 0's send lands)", received)
	}
}

// TestStopWhenDefersWhileInFlight pins the in-flight gate: central
// termination detection must not fire while delayed messages are still
// undelivered, so a run whose StopWhen is true from round 0 still outlives
// every flight.
func TestStopWhenDefersWhileInFlight(t *testing.T) {
	g := gen.Path(2)
	e := g.Edges()[0].ID
	profile := adversary.Profile{DelayBound: 3, Seed: 5}
	const seed = 11
	delta := adversary.Compile(profile, seed).Delay(e)
	if delta <= 0 {
		t.Fatalf("fixture needs a delayed edge, got δ=%d", delta)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{}},
		{"concurrent", Config{Concurrent: true, Workers: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed = seed
			cfg.MaxRounds = 10
			cfg.Adversary = compileProfile(t, profile, seed)
			cfg.StopWhen = func(round int, sent int64) bool { return true }
			res, err := Run(g, func(v graph.NodeID) Protocol {
				return ProtocolFunc(func(env *Env, round int, inbox []Message) {
					if env.ID() == 0 && round == 0 {
						env.Send(e, "x")
					}
				})
			}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Without the gate the always-true predicate ends the run at
			// round 0, stranding the flight in the ring. With it, the stop
			// defers to the end of round δ — the first round whose delivery
			// drained the flight into the receiver's inbox.
			if res.Rounds != delta+1 {
				t.Fatalf("rounds = %d, want %d (stop deferred past the flight)", res.Rounds, delta+1)
			}
		})
	}
}
