// Package analysistest is the fixture-based test harness for the
// freelunchvet analyzers: a minimal, stdlib-only mirror of
// golang.org/x/tools/go/analysis/analysistest.
//
// A test calls Run with an analyzer and one or more import paths; each path
// resolves to a directory under the calling package's testdata/src. The
// harness parses and type-checks the fixture package, runs the analyzer,
// and compares its diagnostics against the fixture's expectations: a
// comment
//
//	// want `regex` `regex2` ...
//
// on a line declares that the analyzer reports, on that exact line, one
// diagnostic matching each pattern (double-quoted Go strings work too).
// Lines without a want comment must produce no diagnostics.
//
// Fixture directories mirror real import paths — a fixture under
// testdata/src/repro/internal/graph type-checks as package path
// "repro/internal/graph" — so analyzers gated on
// contract.DeterministicPackages behave identically under test and under
// cmd/vetsuite. Imports between fixture packages resolve within
// testdata/src first; everything else (the standard library) falls back to
// the source importer, which needs only GOROOT.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run checks the analyzer against the fixture packages at the given import
// paths under ./testdata/src.
func Run(t *testing.T, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		fset:  token.NewFileSet(),
		root:  filepath.Join("testdata", "src"),
		pkgs:  make(map[string]*types.Package),
		files: make(map[string][]*ast.File),
		infos: make(map[string]*types.Info),
	}
	// The source importer resolves standard-library imports from GOROOT
	// source; it shares the fixture fileset so positions stay coherent.
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, path := range pkgPaths {
		runOne(t, a, l, path)
	}
}

func runOne(t *testing.T, a *framework.Analyzer, l *loader, path string) {
	t.Helper()
	pkg, err := l.Import(path)
	if err != nil {
		t.Fatalf("loading fixture package %q: %v", path, err)
	}
	files := l.files[path]

	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: l.infos[path],
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s on %q: %v", a.Name, path, err)
	}

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		p := l.fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		got[k] = append(got[k], d.Message)
	}
	want := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		name := l.fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, err := wantPatterns(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", l.fset.Position(c.Slash), err)
				}
				if len(pats) == 0 {
					continue
				}
				k := key{name, l.fset.Position(c.Slash).Line}
				want[k] = append(want[k], pats...)
			}
		}
	}

	keys := make(map[key]bool)
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	ordered := make([]key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].file != ordered[j].file {
			return ordered[i].file < ordered[j].file
		}
		return ordered[i].line < ordered[j].line
	})
	for _, k := range ordered {
		msgs := append([]string(nil), got[k]...)
		for _, re := range want[k] {
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", k.file, k.line, re, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// wantPatterns parses a "// want `re` `re2`" comment into its compiled
// patterns; non-want comments return none.
func wantPatterns(text string) ([]*regexp.Regexp, error) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var pats []*regexp.Regexp
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		var raw string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			raw, rest = rest[1:1+end], rest[2+end:]
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", rest, err)
			}
			raw, err = strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			rest = rest[len(q):]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", rest)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", raw, err)
		}
		pats = append(pats, re)
	}
	return pats, nil
}

// loader resolves import paths to fixture packages under root, falling back
// to the source importer for the standard library.
type loader struct {
	fset  *token.FileSet
	root  string
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
	infos map[string]*types.Info
	std   types.Importer
}

func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return l.std.Import(path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture dir %s has no .go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.files[path] = files
	l.infos[path] = info
	return pkg, nil
}
