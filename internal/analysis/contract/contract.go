// Package contract holds the shared vocabulary of the freelunchvet
// analyzers: which packages are bound by the determinism contract, the
// //freelunch:* annotation and waiver directives, and small AST helpers the
// analyzers have in common.
//
// # Directives
//
// Directives are line comments beginning with "//freelunch:" (no space —
// the Go directive convention, so gofmt leaves them alone). Two kinds
// exist:
//
//   - Annotations opt a declaration into a contract. //freelunch:noalloc on
//     a function's doc comment asks the noallocpath analyzer to check its
//     body for allocating constructs.
//
//   - Waivers suppress one finding with a recorded justification:
//     //freelunch:orderok, //freelunch:clockok, //freelunch:allocok,
//     //freelunch:observerok, //freelunch:retainok. A waiver applies to
//     findings on its own line (end-of-line comment) or on the line
//     directly below (standalone comment line). The justification text
//     after the directive is mandatory: a bare waiver is itself reported,
//     so every suppressed finding carries its reason in the source.
package contract

import (
	"go/ast"
	"go/token"
	"strings"
)

// DeterministicPackages are the import paths bound by the full determinism
// contract (maporder, nowallclock): packages whose outputs are pinned by
// golden files and must be bit-identical functions of (graph, seed,
// options). Other packages (cmd/*, internal/serve, internal/stats, ...)
// are serving or reporting layers where wall-clock and map order are
// legitimate.
var DeterministicPackages = map[string]bool{
	"repro/internal/graph":         true,
	"repro/internal/graph/gen":     true,
	"repro/internal/local":         true,
	"repro/internal/broadcast":     true,
	"repro/internal/simulate":      true,
	"repro/internal/spanner":       true,
	"repro/internal/globalcompute": true,
	"repro/internal/adversary":     true,
}

// Deterministic reports whether the package at path is bound by the
// determinism contract. Test fixtures mirror the real import paths under
// their testdata/src roots, so exact matching works for both.
func Deterministic(path string) bool { return DeterministicPackages[path] }

// IsTestFile reports whether the file at pos is a _test.go file. The
// determinism contract binds production simulation code; tests assert
// determinism by comparing outputs and routinely iterate maps in asserts.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Directive is one parsed //freelunch:* comment.
type Directive struct {
	// Kind is the word after the colon: "noalloc", "orderok", ...
	Kind string
	// Reason is the justification text after the kind (may be empty —
	// analyzers report empty reasons on waivers).
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// prefix is the directive marker. The no-space form follows the Go
// compiler-directive convention (//go:, //lint:), which gofmt preserves.
const prefix = "//freelunch:"

// ParseDirective parses one comment; ok is false for non-directives.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	kind, reason, _ := strings.Cut(rest, " ")
	kind = strings.TrimSpace(kind)
	if kind == "" {
		return Directive{}, false
	}
	return Directive{Kind: kind, Reason: strings.TrimSpace(reason), Pos: c.Slash}, true
}

// Waivers indexes a file's directives by line for fast waiver lookup.
type Waivers struct {
	fset   *token.FileSet
	byLine map[int][]Directive
}

// FileWaivers collects every directive in f.
func FileWaivers(fset *token.FileSet, f *ast.File) *Waivers {
	w := &Waivers{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := ParseDirective(c); ok {
				line := fset.Position(c.Slash).Line
				w.byLine[line] = append(w.byLine[line], d)
			}
		}
	}
	return w
}

// At returns the directive of the given kind covering a finding at pos: on
// the finding's own line (end-of-line comment) or the line directly above
// (standalone comment). ok is false when the finding is not waived.
func (w *Waivers) At(pos token.Pos, kind string) (Directive, bool) {
	line := w.fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range w.byLine[l] {
			if d.Kind == kind {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// FuncAnnotated reports whether a function declaration's doc comment
// carries the given annotation directive (e.g. "noalloc").
func FuncAnnotated(decl *ast.FuncDecl, kind string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if d, ok := ParseDirective(c); ok && d.Kind == kind {
			return true
		}
	}
	return false
}
