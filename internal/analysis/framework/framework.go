// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that this repository's custom
// analyzers are written against.
//
// The real go/analysis module is not vendored here — the repository is
// deliberately stdlib-only — so this package provides the same shape
// (Analyzer, Pass, Diagnostic) on top of go/ast and go/types. Analyzers
// written against it are intentionally source-compatible with x/tools: if
// the module ever grows a dependency on golang.org/x/tools, each analyzer
// ports by changing one import line.
//
// The two drivers are cmd/vetsuite (the `go vet -vettool` unitchecker
// protocol, used by CI and local runs) and internal/analysis/analysistest
// (the fixture-based unit-test harness).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, a contract document, and a
// Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags. By
	// convention it is a single lowercase word.
	Name string
	// Doc states the contract the analyzer enforces, why it exists, and the
	// waiver syntax, shown by `cmd/vetsuite help`.
	Doc string
	// Run executes the check. It reports findings through pass.Report and
	// returns an error only for analyzer-internal failures (not findings).
	Run func(pass *Pass) error
}

// Pass is the single-package unit of work handed to an Analyzer's Run. It
// carries the parsed syntax, the type information, and the Report sink.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and object resolution.
	TypesInfo *types.Info
	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver prefixes
// the message with the analyzer name when printing.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
