// Package engine is an observergoroutine fixture. The hook-threading
// contract binds every package, so the fixture needs no special import
// path.
package engine

type observer interface {
	RoundCompleted(phase string, round int, messages int64)
	PhaseCompleted(rounds int)
}

type funcs struct {
	OnRound func(phase string, round int, messages int64)
	OnPhase func(rounds int)
}

type pool struct{}

func (pool) Dispatch(fn func(w, lo, hi int)) { fn(0, 0, 0) }

func parallelFor(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ParallelFor mirrors sched.ParallelFor's name for the dispatcher check.
func ParallelFor(n int, fn func(i int)) { parallelFor(n, fn) }

// coordinating calls hooks inline on the coordinating goroutine: fine.
func coordinating(obs observer, f funcs) {
	obs.RoundCompleted("direct", 1, 10)
	obs.PhaseCompleted(1)
	if f.OnRound != nil {
		f.OnRound("direct", 1, 10)
	}
}

// spawned fires hooks from spawned goroutines: flagged.
func spawned(obs observer, f funcs, done chan struct{}) {
	go obs.RoundCompleted("direct", 1, 10) // want `inside a go statement`
	go func() {
		obs.PhaseCompleted(1) // want `inside a go statement`
		f.OnPhase(1)          // want `inside a go statement`
		close(done)
	}()
}

// pooled fires hooks from worker-pool bodies: flagged.
func pooled(p pool, obs observer) {
	p.Dispatch(func(w, lo, hi int) {
		obs.RoundCompleted("direct", lo, int64(hi)) // want `in a worker-pool body`
	})
	ParallelFor(4, func(i int) {
		obs.PhaseCompleted(i) // want `in a worker-pool body`
	})
}

// poolAggregates shows the sanctioned shape: workers fill slots, the
// coordinating goroutine reduces and fires the hook afterwards.
func poolAggregates(p pool, obs observer) {
	var totals [4]int64
	p.Dispatch(func(w, lo, hi int) {
		totals[w] += int64(hi - lo)
	})
	var sum int64
	for _, t := range totals {
		sum += t
	}
	obs.RoundCompleted("direct", 1, sum)
}

// waived carries a justified waiver: suppressed.
func waived(obs observer) {
	ParallelFor(1, func(i int) {
		//freelunch:observerok single-worker pool, invocations are serialized
		obs.PhaseCompleted(i)
	})
}

// bareWaiver omits the justification: the waiver itself is reported.
func bareWaiver(obs observer) {
	ParallelFor(1, func(i int) {
		//freelunch:observerok
		obs.PhaseCompleted(i) // want `waiver needs a justification`
	})
}
