// Package observergoroutine enforces the observer threading contract:
// observer hooks fire only on a run's coordinating goroutine.
//
// # Contract
//
// The Observer API (RoundCompleted / PhaseCompleted, and the ObserverFuncs
// adapters OnRound / OnPhase) promises callers that, within a single Run,
// callbacks are never invoked concurrently with each other. That promise is
// what lets the ready-made MetricsSink and user observers stay lock-free for
// the single-run case. The engine keeps it by invoking hooks only from the
// coordinating goroutine — never from delivery workers.
//
// This analyzer rejects hook invocations that structurally break the
// promise:
//
//   - inside a go statement (directly, or anywhere in a function literal the
//     go statement starts);
//   - inside a function literal passed to a worker-pool dispatcher
//     (sched.Pool.Dispatch, sched.ParallelFor) — those bodies run on pool
//     workers, concurrently.
//
// The check is name-based over the hook set {RoundCompleted, PhaseCompleted,
// OnRound, OnPhase} and runs over all packages: the contract binds every
// layer that holds an observer, including serving code.
//
// # Waiver
//
// An invocation that is provably serialized (e.g. a pool run with one
// worker, or a hook guarded by the run's own mutex) carries an inline
// justification:
//
//	obs.RoundCompleted(ph, r, n) //freelunch:observerok <why this is serialized>
//
// (or the comment on the line directly above). The reason text is
// mandatory; a bare waiver is itself reported.
package observergoroutine
