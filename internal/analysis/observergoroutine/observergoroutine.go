package observergoroutine

import (
	"go/ast"

	"repro/internal/analysis/contract"
	"repro/internal/analysis/framework"
)

// Analyzer flags observer hook calls inside go statements or worker-pool
// bodies. See the package documentation for the contract.
var Analyzer = &framework.Analyzer{
	Name: "observergoroutine",
	Doc:  "forbid observer hook calls (RoundCompleted/PhaseCompleted/OnRound/OnPhase) inside go statements and worker-pool bodies",
	Run:  run,
}

// hookNames are the Observer interface methods and their ObserverFuncs
// adapters.
var hookNames = map[string]bool{
	"RoundCompleted": true,
	"PhaseCompleted": true,
	"OnRound":        true,
	"OnPhase":        true,
}

// dispatchers are the worker-pool entry points whose function-literal
// arguments run on pool workers.
var dispatchers = map[string]bool{
	"Dispatch":    true, // sched.Pool.Dispatch
	"ParallelFor": true, // sched.ParallelFor
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if contract.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		waivers := contract.FileWaivers(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				flagHooks(pass, waivers, n.Call, "inside a go statement")
				return false
			case *ast.CallExpr:
				if name, ok := calleeName(n); ok && dispatchers[name] {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							flagHooks(pass, waivers, lit.Body, "in a worker-pool body ("+name+")")
						}
					}
					// Keep walking: non-literal args may nest further calls.
				}
			}
			return true
		})
	}
	return nil
}

// flagHooks reports every hook invocation under root.
func flagHooks(pass *framework.Pass, waivers *contract.Waivers, root ast.Node, where string) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := calleeName(call)
		if !ok || !hookNames[name] {
			return true
		}
		if d, ok := waivers.At(call.Pos(), "observerok"); ok {
			if d.Reason == "" {
				pass.Reportf(call.Pos(), "freelunch:observerok waiver needs a justification")
			}
			return true
		}
		pass.Reportf(call.Pos(), "observer hook %s called %s: hooks must fire on the coordinating goroutine only", name, where)
		return true
	})
}

// calleeName extracts the called method or function name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name, true
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	}
	return "", false
}
