package observergoroutine_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/observergoroutine"
)

func TestObserverGoroutine(t *testing.T) {
	analysistest.Run(t, observergoroutine.Analyzer, "example.com/engine")
}
