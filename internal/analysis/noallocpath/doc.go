// Package noallocpath checks functions annotated //freelunch:noalloc for
// source-level constructs that heap-allocate.
//
// # Contract
//
// The simulation's hot paths — Env.Send staging, delivery fan-out, CSR
// adjacency lookups, gossip arrival tracking — run once per message per
// round and are sized so that a steady-state round performs zero heap
// allocations (the busy-round allocation regression tests in
// internal/local pin this). The annotation makes the intent machine-checked:
// a function whose doc comment carries
//
//	//freelunch:noalloc
//
// is scanned for the constructs that allocate (or, for interface boxing and
// fmt, almost always allocate):
//
//   - make and new;
//   - slice and map composite literals, and &T{...} (an escaping struct);
//   - append whose destination slice does not come from a parameter — growth
//     of anything else is the function's own allocation, not the caller's
//     amortized buffer;
//   - calls into fmt or errors (formatting boxes and allocates);
//   - capturing function literals (a closure over local state allocates when
//     it escapes, and every func literal passed to another function must be
//     assumed to);
//   - interface boxing: passing or converting a concrete, non-pointer-free
//     value where an interface is expected.
//
// Arguments of panic(...) calls are exempt: a panicking hot path has already
// failed, so the cost of formatting its message is irrelevant.
//
// The check is syntactic, deliberately stricter than the escape analysis the
// compiler actually performs: a flagged construct the optimizer provably
// keeps on the stack can be waived.
//
// # Waiver
//
// A deliberate, amortized, or provably non-escaping allocation carries an
// inline justification:
//
//	*bucket = append(*bucket, m) //freelunch:allocok amortized: buffer reused across rounds
//
// (or the comment on the line directly above). The reason text is
// mandatory; a bare waiver is itself reported.
package noallocpath
