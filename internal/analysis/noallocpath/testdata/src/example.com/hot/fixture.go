// Package hot is a noallocpath fixture. The analyzer is annotation-driven,
// so the package needs no special import path.
package hot

import (
	"fmt"
	"sort"
)

type item struct{ k, v int }

type table struct {
	rows []item
	name string
}

//freelunch:noalloc
func makes(n int) []int {
	s := make([]int, n) // want `make allocates`
	p := new(item)      // want `new allocates`
	_ = p
	return s
}

//freelunch:noalloc
func literals() ([]int, map[int]bool, *item) {
	s := []int{1, 2, 3}        // want `slice literal allocates`
	m := map[int]bool{1: true} // want `map literal allocates`
	p := &item{k: 1}           // want `&composite literal escapes`
	return s, m, p
}

// valueLiteral is a plain struct value: no allocation, no finding.
//
//freelunch:noalloc
func valueLiteral() item {
	return item{k: 1, v: 2}
}

//freelunch:noalloc
func appendGrowth(t *table, buf []item, it item) []item {
	t.rows = append(t.rows, it) // want `append grows a non-parameter slice`
	buf = append(buf, it)       // parameter buffer: the caller's amortized cost
	return buf
}

//freelunch:noalloc
func formatting(t *table) string {
	return fmt.Sprintf("table %s", t.name) // want `call into fmt`
}

// panicPath may format its death message: a panicking hot path has already
// failed.
//
//freelunch:noalloc
func panicPath(t *table, i int) item {
	if i >= len(t.rows) {
		panic(fmt.Sprintf("hot: index %d out of range", i))
	}
	return t.rows[i]
}

//freelunch:noalloc
func closures(t *table, k int) int {
	i := sort.Search(len(t.rows), func(i int) bool { // want `func literal captures`
		return t.rows[i].k >= k
	})
	return i
}

// nonCapturing passes a closure over its own parameters only: static, no
// allocation.
//
//freelunch:noalloc
func nonCapturing(xs []int) bool {
	return all(xs, func(x int) bool { return x >= 0 })
}

func all(xs []int, ok func(int) bool) bool {
	for _, x := range xs {
		if !ok(x) {
			return false
		}
	}
	return true
}

func sink(v any) {}

//freelunch:noalloc
func boxing(n int, e error) {
	sink(n)    // want `argument boxes into interface`
	sink(e)    // already an interface: no box
	sink(nil)  // nil boxes to a zero word
	_ = any(n) // want `conversion to .* boxes`
}

// unannotated allocates freely: the contract is opt-in.
func unannotated() []int {
	return append([]int{1}, make([]int, 4)...)
}

//freelunch:noalloc
func waived(t *table, it item) {
	//freelunch:allocok amortized: rows is truncated and reused by the caller
	t.rows = append(t.rows, it)
}

//freelunch:noalloc
func bareWaiver(t *table, it item) {
	//freelunch:allocok
	t.rows = append(t.rows, it) // want `waiver needs a justification`
}
