package noallocpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noallocpath"
)

func TestNoAllocPath(t *testing.T) {
	analysistest.Run(t, noallocpath.Analyzer, "example.com/hot")
}
