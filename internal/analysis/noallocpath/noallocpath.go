package noallocpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/contract"
	"repro/internal/analysis/framework"
)

// Analyzer checks //freelunch:noalloc-annotated functions for allocating
// constructs. See the package documentation for the contract.
var Analyzer = &framework.Analyzer{
	Name: "noallocpath",
	Doc:  "check //freelunch:noalloc-annotated functions for allocating constructs (make/new, literals, append growth, fmt, capturing closures, boxing)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if contract.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		waivers := contract.FileWaivers(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !contract.FuncAnnotated(fd, "noalloc") {
				continue
			}
			c := &checker{pass: pass, waivers: waivers, params: paramObjs(pass, fd)}
			c.check(fd.Body)
		}
	}
	return nil
}

// paramObjs collects the function's parameter objects (not the receiver:
// growing receiver-owned storage is still this function's allocation).
func paramObjs(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	return params
}

type checker struct {
	pass    *framework.Pass
	waivers *contract.Waivers
	params  map[types.Object]bool
	// funcLit is the innermost enclosing func literal, so capture analysis
	// knows which scope an identifier must escape to count as captured.
	funcLit *ast.FuncLit
}

func (c *checker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(c.pass, n) {
				return false // a panicking hot path has already failed
			}
			c.checkCall(n)
		case *ast.CompositeLit:
			switch c.typeOf(n).(type) {
			case *types.Slice, *types.Map:
				c.reportf(n.Pos(), "%s literal allocates", describeLit(c.typeOf(n)))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if cap := c.captured(n); cap != nil {
				c.reportf(n.Pos(), "func literal captures %q: a capturing closure allocates when it escapes", cap.Name())
			}
			// Check the literal's own body with its own capture scope.
			inner := &checker{pass: c.pass, waivers: c.waivers, params: c.params, funcLit: n}
			inner.check(n.Body)
			return false
		}
		return true
	})
}

// checkCall flags allocating calls: make/new, fmt/errors, append growth of a
// non-parameter slice, and interface boxing of concrete arguments.
func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.reportf(call.Pos(), "%s allocates", b.Name())
			case "append":
				if len(call.Args) > 0 && !c.fromParam(call.Args[0]) {
					c.reportf(call.Pos(), "append grows a non-parameter slice (not the caller's amortized buffer)")
				}
			}
			return
		}
	}
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: allocates only when the target is an interface.
		if isInterface(tv.Type) && len(call.Args) == 1 && !c.isInterfaceValue(call.Args[0]) {
			c.reportf(call.Pos(), "conversion to %s boxes its operand", tv.Type)
		}
		return
	}
	if pkg := calleePkg(c.pass, call); pkg == "fmt" || pkg == "errors" {
		c.reportf(call.Pos(), "call into %s formats and allocates", pkg)
		return
	}
	c.checkBoxing(call)
}

// checkBoxing flags concrete values passed where the callee expects an
// interface.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && !c.isInterfaceValue(arg) {
			c.reportf(arg.Pos(), "argument boxes into interface %s", pt)
		}
	}
}

// captured returns a variable the func literal closes over (declared in the
// enclosing function, used inside the literal), or nil.
func (c *checker) captured(lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.IsField() {
			return true
		}
		// Captured = declared outside the literal but inside some function
		// (package-level vars are not captures).
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = v
			return false
		}
		return true
	})
	return found
}

// fromParam reports whether the expression is a parameter slice (peeling
// *x, x[i], x[i:j] — but not x.f: a field of a parameter struct is that
// struct's storage, and growing it is this function's allocation).
func (c *checker) fromParam(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return c.params[c.pass.TypesInfo.Uses[x]]
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (c *checker) isInterfaceValue(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return true // unresolved: stay quiet
	}
	if tv.IsNil() {
		return true // nil boxes to a zero word, no allocation
	}
	return isInterface(tv.Type)
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	t := c.pass.TypesInfo.Types[e].Type
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if d, ok := c.waivers.At(pos, "allocok"); ok {
		if d.Reason == "" {
			c.pass.Reportf(pos, "freelunch:allocok waiver needs a justification")
		}
		return
	}
	c.pass.Reportf(pos, "noalloc function: "+format, args...)
}

func isPanic(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func describeLit(t types.Type) string {
	switch t.(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// calleePkg returns the import path of the called function's package, or ""
// when the callee is not a resolvable package-level function or method.
func calleePkg(pass *framework.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return ""
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Pkg() != nil {
		return obj.Pkg().Path()
	}
	return ""
}
