// Package nowallclock rejects wall-clock reads and global randomness in the
// deterministic packages.
//
// # Contract
//
// Every run in the deterministic packages (see contract.DeterministicPackages)
// must be a bit-identical function of (graph, seed, options). Two stdlib
// facilities silently break that:
//
//   - time.Now / time.Since / time.Until read the wall clock, so any value
//     derived from them differs between runs;
//   - math/rand and math/rand/v2 package-level functions draw from a global,
//     program-wide stream (auto-seeded since Go 1.20), and even seeded
//     rand.New sources are banned in favor of the repository's own
//     internal/xrand, whose per-node derived streams are what keep the two
//     engines bit-identical.
//
// Simulation code that needs time limits takes a context deadline (the
// engine's WithDeadline plumbs one in); code that needs randomness takes an
// *xrand.RNG or derives one from the run seed.
//
// # Waiver
//
// A deliberate exception carries an inline justification:
//
//	t := time.Now() //freelunch:clockok <why this cannot leak into outputs>
//
// The reason text is mandatory; a bare waiver is itself reported.
package nowallclock
