package nowallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/contract"
	"repro/internal/analysis/framework"
)

// Analyzer flags wall-clock reads and global math/rand use in the
// deterministic packages. See the package documentation for the contract.
var Analyzer = &framework.Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Since/Until and math/rand in deterministic packages (use seeded internal/xrand and ctx deadlines)",
	Run:  run,
}

// clockFuncs are the wall-clock reads in package time. Duration arithmetic
// and constants are fine — only reading the clock is nondeterministic.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randPkgs are the globally seeded randomness packages, banned wholesale in
// favor of internal/xrand.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *framework.Pass) error {
	if !contract.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if contract.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		waivers := contract.FileWaivers(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			var msg string
			switch pkg := obj.Pkg().Path(); {
			case pkg == "time" && clockFuncs[obj.Name()] && isPkgFunc(obj):
				msg = "wall-clock read time." + obj.Name() + " in deterministic package (take a ctx deadline instead)"
			case randPkgs[pkg]:
				msg = "global math/rand (" + pkg + "." + obj.Name() + ") in deterministic package (use seeded internal/xrand)"
			default:
				return true
			}
			if d, ok := waivers.At(id.Pos(), "clockok"); ok {
				if d.Reason == "" {
					pass.Reportf(id.Pos(), "freelunch:clockok waiver needs a justification")
				}
				return true
			}
			pass.Reportf(id.Pos(), "%s", msg)
			return true
		})
	}
	return nil
}

// isPkgFunc reports whether obj is a package-level function (not a method
// or field that happens to share a clock function's name).
func isPkgFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Type().(*types.Signature).Recv() == nil
}
