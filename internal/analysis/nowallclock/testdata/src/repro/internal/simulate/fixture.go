// Package simulate is a nowallclock fixture mirroring the gated import path
// repro/internal/simulate.
package simulate

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func wallClock() (time.Time, time.Duration) {
	start := time.Now()                // want `wall-clock read time\.Now`
	elapsed := time.Since(start)       // want `wall-clock read time\.Since`
	_ = time.Until(start.Add(elapsed)) // want `wall-clock read time\.Until`
	return start, elapsed
}

func globalRand() (int, uint64) {
	a := rand.Intn(10)       // want `global math/rand`
	b := randv2.Uint64()     // want `global math/rand`
	src := rand.NewSource(1) // want `global math/rand`
	_ = rand.New(src)        // want `global math/rand`
	return a, b
}

// durations only does clock-free time arithmetic: no findings.
func durations(d time.Duration) time.Duration {
	return 2*d + 500*time.Millisecond
}

// clock is a type whose methods shadow the banned names; calling them is
// fine — only package time's functions read the wall clock.
type clock struct{}

func (clock) Now() int       { return 0 }
func (clock) Since(int) int  { return 0 }
func methodsNotFlagged() int { var c clock; return c.Now() + c.Since(1) }

// waived carries a justified waiver: suppressed.
func waived() time.Time {
	//freelunch:clockok measurement-only scaffolding, value never reaches outputs
	return time.Now()
}

// bareWaiver omits the justification: the waiver itself is reported.
func bareWaiver() time.Time {
	//freelunch:clockok
	return time.Now() // want `waiver needs a justification`
}
