// Package ungated is outside contract.DeterministicPackages: serving and
// reporting layers may read the wall clock, so nothing is flagged.
package ungated

import (
	"math/rand"
	"time"
)

func timestamps() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}
