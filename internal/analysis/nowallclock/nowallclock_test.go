package nowallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, nowallclock.Analyzer,
		"repro/internal/simulate", // gated: clock reads, math/rand, waivers
		"example.com/ungated",     // ungated: wall clock is legitimate
	)
}
