// Package spanner is an inboxretain fixture mirroring the gated import
// path repro/internal/spanner: protocols here receive simulator-owned
// inbox slices and must not retain them.
package spanner

import "repro/internal/local"

var lastInbox []local.Message

type node struct {
	saved  []local.Message
	replay func() int
	buf    []local.Message
	count  int
}

type record struct {
	msgs []local.Message
}

// retains stores aliases of the inbox: every store is flagged.
func (nd *node) retains(env *local.Env, round int, inbox []local.Message) {
	nd.saved = inbox                             // want `stored into field saved`
	nd.saved = inbox[1:]                         // want `stored into field saved`
	lastInbox = inbox                            // want `stored into package-level variable lastInbox`
	nd.replay = func() int { return len(inbox) } // want `stored into field replay`
}

// embeds hides the alias inside a composite literal: stores to outliving
// sinks are still flagged. (The assignment to the local r is not — the
// check is flow-insensitive and trusts locals to die with the frame.)
func (nd *node) embeds(env *local.Env, round int, inbox []local.Message) {
	var r record
	r = record{msgs: inbox}
	_ = r
	recs[0] = record{msgs: inbox} // want `stored into package-level variable recs`
}

var recs [1]record

// leaks returns the inbox: flagged.
func leaks(inbox []local.Message) []local.Message {
	return inbox // want `inbox slice returned`
}

// copies duplicates the messages into protocol-owned storage: the
// sanctioned idiom, no findings.
func (nd *node) copies(env *local.Env, round int, inbox []local.Message) {
	nd.buf = append(nd.buf[:0], inbox...)
	nd.count += len(inbox)
	for _, m := range inbox {
		if m.Edge > 0 {
			nd.count++
		}
	}
	inspect(inbox) // synchronous callees may look, they are checked themselves
}

func inspect(inbox []local.Message) {
	for range inbox {
	}
}

// waived carries a justified waiver: suppressed.
func (nd *node) waived(env *local.Env, round int, inbox []local.Message) {
	//freelunch:retainok scratch view, cleared before Step returns below
	nd.saved = inbox
	nd.saved = nil
}

// bareWaiver omits the justification: the waiver itself is reported.
func (nd *node) bareWaiver(env *local.Env, round int, inbox []local.Message) {
	//freelunch:retainok
	nd.saved = inbox // want `waiver needs a justification`
	nd.saved = nil
}
