// Package local is the inboxretain fixture's stand-in for the engine
// package: the analyzer identifies inbox parameters by the named type
// repro/internal/local.Message, which this fixture provides at the real
// import path.
package local

// Message mirrors the engine's delivered-message record.
type Message struct {
	Edge    int
	Payload any
}

// Env mirrors the protocol-facing environment handle.
type Env struct{}

// Halt mirrors the engine API.
func (e *Env) Halt() {}
