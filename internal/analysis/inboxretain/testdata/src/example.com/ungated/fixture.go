// Package ungated is outside contract.DeterministicPackages: test harnesses
// and tooling may hold onto message slices they own, so nothing is flagged.
package ungated

import "repro/internal/local"

var captured []local.Message

func capture(inbox []local.Message) []local.Message {
	captured = inbox
	return inbox
}
