package inboxretain_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/inboxretain"
)

func TestInboxRetain(t *testing.T) {
	analysistest.Run(t, inboxretain.Analyzer,
		"repro/internal/spanner", // gated: retention, copies, waivers
		"example.com/ungated",    // ungated: retention is legitimate
	)
}
