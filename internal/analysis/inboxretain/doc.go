// Package inboxretain enforces the inbox ownership contract: the message
// slice a Protocol.Step receives belongs to the simulator and must not
// outlive the call.
//
// # Contract
//
// The engine in internal/local reuses each node's inbox backing array across
// rounds: Step(inbox []Message) hands the protocol a view that the next
// delivery pass overwrites in place. A protocol that stores the slice — or
// any subslice aliasing its backing array — into a field, a package-level
// variable, or an escaping closure reads next round's messages through last
// round's variable, a corruption that is silent, round-timing-dependent, and
// (because delivery sharding varies with worker count) can differ between
// the sequential and concurrent engines.
//
// The analyzer looks at every function in the deterministic packages with a
// []local.Message parameter and flags statements that let the parameter
// escape by aliasing:
//
//   - assigning the parameter (or a subslice of it, inbox[i:j]) to a struct
//     field or a package-level variable, directly or inside a composite
//     literal;
//   - returning it;
//   - storing or returning a function literal that references it (the
//     closure keeps the alias alive).
//
// Copying is fine and is the sanctioned idiom: copy(dst, inbox) and
// append(dst, inbox...) duplicate the Message values into protocol-owned
// storage. Passing the slice down to an ordinary call is also fine — the
// analysis assumes callees are synchronous and do not retain (they are
// themselves subject to this check when they live in the deterministic
// packages).
//
// # Waiver
//
// A store the analyzer misreads (e.g. into a scratch structure that is
// provably cleared before Step returns) carries an inline justification:
//
//	s.scratch = inbox //freelunch:retainok cleared before return, never crosses rounds
//
// (or the comment on the line directly above). The reason text is
// mandatory; a bare waiver is itself reported.
package inboxretain
