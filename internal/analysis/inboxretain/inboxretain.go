package inboxretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/contract"
	"repro/internal/analysis/framework"
)

// Analyzer flags stores that let a delivered inbox slice outlive its Step
// call. See the package documentation for the contract.
var Analyzer = &framework.Analyzer{
	Name: "inboxretain",
	Doc:  "forbid retaining delivered inbox slices ([]local.Message parameters) in fields, globals, or escaping closures",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !contract.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if contract.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		waivers := contract.FileWaivers(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inboxes := inboxParams(pass, fd)
			if len(inboxes) == 0 {
				continue
			}
			c := &checker{pass: pass, waivers: waivers, inboxes: inboxes}
			c.check(fd.Body)
		}
	}
	return nil
}

// inboxParams collects the function's parameters of type []local.Message.
func inboxParams(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	inboxes := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isInboxType(obj.Type()) {
				inboxes[obj] = true
			}
		}
	}
	if len(inboxes) == 0 {
		return nil
	}
	return inboxes
}

// isInboxType reports whether t is []Message for the engine's Message type
// (the named type Message in repro/internal/local).
func isInboxType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Message" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "repro/internal/local"
}

type checker struct {
	pass    *framework.Pass
	waivers *contract.Waivers
	inboxes map[types.Object]bool
}

func (c *checker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break // f() multi-assign cannot carry the parameter
				}
				if !c.aliases(rhs) {
					continue
				}
				if sink := c.sinkKind(n.Lhs[i]); sink != "" {
					c.reportf(rhs.Pos(), "inbox slice stored into %s: the simulator reuses its backing array next round (copy the messages instead)", sink)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if c.aliases(res) {
					c.reportf(res.Pos(), "inbox slice returned: it aliases simulator-owned storage that the next round overwrites")
				}
			}
		}
		return true
	})
}

// aliases reports whether e's value aliases an inbox parameter: the
// parameter itself, a subslice of it, a composite literal embedding one, or
// a function literal that references one.
func (c *checker) aliases(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return c.inboxes[c.pass.TypesInfo.Uses[x]]
	case *ast.SliceExpr:
		return c.aliases(x.X)
	case *ast.ParenExpr:
		return c.aliases(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if c.aliases(elt) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return x.Op == token.AND && c.aliases(x.X)
	case *ast.FuncLit:
		found := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.inboxes[c.pass.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	default:
		return false
	}
}

// sinkKind classifies an assignment target that outlives the call: a struct
// field or a package-level variable. Local variables return "" — the alias
// dies with the frame (modulo closures, which aliases handles at their own
// store site).
func (c *checker) sinkKind(lhs ast.Expr) string {
	switch x := lhs.(type) {
	case *ast.SelectorExpr:
		return "field " + x.Sel.Name
	case *ast.IndexExpr:
		return c.sinkKind(x.X)
	case *ast.StarExpr:
		return c.sinkKind(x.X)
	case *ast.Ident:
		v, ok := c.pass.TypesInfo.Uses[x].(*types.Var)
		if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "package-level variable " + v.Name()
		}
		return ""
	default:
		return ""
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if d, ok := c.waivers.At(pos, "retainok"); ok {
		if d.Reason == "" {
			c.pass.Reportf(pos, "freelunch:retainok waiver needs a justification")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}
