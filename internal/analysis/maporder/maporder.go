package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/contract"
	"repro/internal/analysis/framework"
)

// Analyzer flags map iteration whose order can leak into outputs in the
// deterministic packages. See the package documentation for the contract
// and the recognized order-insensitive forms.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map in deterministic packages unless the body is provably order-insensitive",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !contract.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if contract.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		waivers := contract.FileWaivers(pass.Fset, f)
		c := &checker{pass: pass}
		ast.Inspect(f, func(n ast.Node) bool {
			// Track enclosing blocks so collect-then-sort can look at the
			// statement following a range.
			if b, ok := n.(*ast.BlockStmt); ok {
				c.blocks = append(c.blocks, b)
				return true
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if c.orderInsensitive(rng) {
				return true
			}
			if d, ok := waivers.At(rng.Pos(), "orderok"); ok {
				if d.Reason == "" {
					pass.Reportf(rng.Pos(), "freelunch:orderok waiver needs a justification")
				}
				return true
			}
			pass.Reportf(rng.Pos(), "range over map in deterministic package: iteration order may leak into outputs (emit via a sorted slice, or waive with //freelunch:orderok <why>)")
			return true
		})
	}
	return nil
}

// checker carries the per-file state for order-insensitivity analysis.
type checker struct {
	pass   *framework.Pass
	blocks []*ast.BlockStmt
}

// orderInsensitive reports whether the range statement's effect provably
// does not depend on iteration order.
func (c *checker) orderInsensitive(rng *ast.RangeStmt) bool {
	key := c.rangeVar(rng.Key)
	if c.sinkBody(rng.Body.List, key) {
		return true
	}
	return c.collectThenSort(rng)
}

// rangeVar resolves a range clause variable to its object (nil for _ or
// absent variables).
func (c *checker) rangeVar(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// sinkBody reports whether every statement is a commutative sink with
// respect to the map range keyed by key.
func (c *checker) sinkBody(stmts []ast.Stmt, key types.Object) bool {
	for _, s := range stmts {
		if !c.sinkStmt(s, key) {
			return false
		}
	}
	return true
}

func (c *checker) sinkStmt(s ast.Stmt, key types.Object) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		// x++ / x-- on integers commutes. (Pointers cannot be incremented in
		// Go, and float ++ is rare enough to reject with the float rule.)
		return c.isInteger(s.X)
	case *ast.AssignStmt:
		return c.sinkAssign(s, key)
	case *ast.ExprStmt:
		// delete(m, k) commutes (keys are unique per iteration).
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !c.sinkStmt(s.Init, key) {
			return false
		}
		if !c.pureCond(s.Cond) {
			return false
		}
		if !c.sinkBody(s.Body.List, key) {
			return false
		}
		if s.Else != nil {
			return c.sinkStmt(s.Else, key)
		}
		return true
	case *ast.BlockStmt:
		return c.sinkBody(s.List, key)
	case *ast.RangeStmt:
		// A nested loop over the iteration value is fine as long as its own
		// body still only feeds commutative sinks.
		return c.sinkBody(s.Body.List, key)
	case *ast.BranchStmt:
		// continue skips commutatively; break makes the result depend on
		// which keys were visited first.
		return s.Tok == token.CONTINUE && s.Label == nil
	default:
		// break, sends, calls, returns, plain assignments, go, defer, ...:
		// all can expose order.
		return false
	}
}

// sinkAssign classifies one assignment as a commutative sink.
func (c *checker) sinkAssign(s *ast.AssignStmt, key types.Object) bool {
	switch s.Tok {
	case token.DEFINE:
		// := introduces per-iteration locals that cannot escape the body; a
		// pure RHS (no calls or receives) has no order-visible effect.
		for _, rhs := range s.Rhs {
			if !c.pureCond(rhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		// Integer accumulation commutes; float accumulation rounds
		// per-order; string += concatenates in order.
		for _, lhs := range s.Lhs {
			if !c.isInteger(lhs) {
				return false
			}
		}
		for _, rhs := range s.Rhs {
			if !c.pureCond(rhs) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		for i, lhs := range s.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			rhs := s.Rhs[i]
			if !c.pureCond(rhs) {
				return false
			}
			// Idempotent set write: constant RHS means colliding keys write
			// equal values, so order cannot matter.
			if c.pass.TypesInfo.Types[rhs].Value != nil {
				continue
			}
			// Keyed write: the index involves the (unique) range key and the
			// RHS does not read the written container back (rejecting
			// accumulators like m2[k] = append(m2[k], v)).
			if key != nil && c.mentions(ix.Index, key) && !c.mentionsExpr(rhs, ix.X) {
				continue
			}
			return false
		}
		return true
	default:
		return false
	}
}

// pureCond reports whether an expression is free of calls (len, cap, and
// type conversions excepted) and channel receives. A call could consume
// shared mutable state — an RNG stream, an atomic — making even a
// set-write body order-dependent.
func (c *checker) pureCond(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := c.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}

// isInteger reports whether e has an integer type.
func (c *checker) isInteger(e ast.Expr) bool {
	t := c.pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// mentions reports whether obj is referenced anywhere in e.
func (c *checker) mentions(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// mentionsExpr reports whether the root object of container (an ident, or
// the base ident of a selector/index chain) is referenced in e — the
// self-reference test that rejects m[k] = append(m[k], v).
func (c *checker) mentionsExpr(e ast.Expr, container ast.Expr) bool {
	obj := c.rootObj(container)
	if obj == nil {
		return true // unresolvable container: be conservative
	}
	return c.mentions(e, obj)
}

// rootObj peels selectors, indexes, derefs, and slices down to the base
// identifier's object.
func (c *checker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return c.pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// collectThenSort recognizes the append-into-slice idiom whose order
// dependence a directly following sort erases:
//
//	for k := range m { s = append(s, k) }
//	slices.Sort(s)
func (c *checker) collectThenSort(rng *ast.RangeStmt) bool {
	target := c.appendOnlyTarget(rng.Body.List)
	if target == nil {
		return false
	}
	next := c.stmtAfter(rng)
	if next == nil {
		return false
	}
	call, ok := nodeExpr(next)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := fn.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := c.pass.TypesInfo.Uses[pkg].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort", "slices":
	default:
		return false
	}
	return len(call.Args) > 0 && c.rootObj(call.Args[0]) == target
}

// nodeExpr unwraps an expression statement to its call.
func nodeExpr(s ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	return call, ok
}

// appendOnlyTarget returns the single local slice variable the body appends
// to (s = append(s, ...)), possibly under pure-condition ifs; nil if the
// body does anything else.
func (c *checker) appendOnlyTarget(stmts []ast.Stmt) types.Object {
	var target types.Object
	var walk func([]ast.Stmt) bool
	walk = func(list []ast.Stmt) bool {
		for _, s := range list {
			switch s := s.(type) {
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE || s.Label != nil {
					return false
				}
			case *ast.IfStmt:
				if s.Init != nil || !c.pureCond(s.Cond) {
					return false
				}
				if !walk(s.Body.List) {
					return false
				}
				if s.Else != nil {
					if blk, ok := s.Else.(*ast.BlockStmt); !ok || !walk(blk.List) {
						return false
					}
				}
			case *ast.AssignStmt:
				if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return false
				}
				lhs, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return false
				}
				fid, ok := call.Fun.(*ast.Ident)
				if !ok || fid.Name != "append" {
					return false
				}
				if _, ok := c.pass.TypesInfo.Uses[fid].(*types.Builtin); !ok {
					return false
				}
				first, ok := call.Args[0].(*ast.Ident)
				if !ok || first.Name != lhs.Name {
					return false
				}
				obj := c.pass.TypesInfo.Uses[lhs]
				if obj == nil {
					obj = c.pass.TypesInfo.Defs[lhs]
				}
				if obj == nil || (target != nil && target != obj) {
					return false
				}
				target = obj
			default:
				return false
			}
		}
		return true
	}
	if !walk(stmts) {
		return nil
	}
	return target
}

// stmtAfter finds the statement immediately following s in its enclosing
// block, if any.
func (c *checker) stmtAfter(s ast.Stmt) ast.Stmt {
	for _, b := range c.blocks {
		for i, st := range b.List {
			if st == s && i+1 < len(b.List) {
				return b.List[i+1]
			}
		}
	}
	return nil
}
