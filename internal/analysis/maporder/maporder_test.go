package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer,
		"repro/internal/graph/gen", // gated: flagged, sink, and waived forms
		"repro/internal/adversary", // gated: schedule assembly must not leak map order
		"example.com/ungated",      // ungated: identical code, no findings
	)
}
