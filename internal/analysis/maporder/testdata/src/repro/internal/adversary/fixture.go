// Package adversary is a maporder fixture mirroring the gated import path
// repro/internal/adversary: perturbation decisions are pure hashes pinned
// by golden files, so schedule assembly must not leak map-iteration order.
package adversary

import "sort"

type crash struct{ node, round int }

// scheduleFromMap is the flagged form: emitting a crash schedule by
// ranging over a map would order Compile's sorted slice input — and hence
// the applied crash sequence — differently across processes.
func scheduleFromMap(rounds map[int]int) []crash {
	var out []crash
	for node, round := range rounds { // want `range over map in deterministic package`
		out = append(out, crash{node: node, round: round})
	}
	return out
}

// scheduleSorted collects then sorts: the order is erased before anyone
// can observe it, so there is nothing to flag.
func scheduleSorted(rounds map[int]int) []crash {
	nodes := make([]int, 0, len(rounds))
	for node := range rounds {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	out := make([]crash, 0, len(nodes))
	for _, node := range nodes {
		out = append(out, crash{node: node, round: rounds[node]})
	}
	return out
}

// maxCrashRound carries a justified waiver: suppressed.
func maxCrashRound(rounds map[int]int) int {
	last := -1
	//freelunch:orderok max-reduction, result independent of visit order
	for _, round := range rounds {
		if round > last {
			last = round
		}
	}
	return last
}
