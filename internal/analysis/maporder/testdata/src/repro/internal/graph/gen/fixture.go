// Package gen is a maporder fixture mirroring the gated import path
// repro/internal/graph/gen. The flagged cases include the exact shape of
// the preferentialAttachment map-order bug PR 8 fixed: emitting edges in
// map-iteration order made graph fingerprints differ across processes.
package gen

import (
	"slices"
	"sort"
)

type edge struct{ u, v int }

// prefAttachRegression reproduces the historical bug shape: picks were
// tracked in a map and edges emitted by ranging over it.
func prefAttachRegression(picks map[int]int) []edge {
	var out []edge
	for v, m := range picks { // want `range over map in deterministic package`
		for i := 0; i < m; i++ {
			out = append(out, edge{u: v, v: i})
		}
	}
	return out
}

// selfAppendAccumulator is the order-dependent keyed-write form: the RHS
// reads the written map back, so colliding slices build in visit order.
func selfAppendAccumulator(m map[int][]int) map[int][]int {
	grouped := make(map[int][]int)
	for k, vs := range m { // want `range over map in deterministic package`
		grouped[k%2] = append(grouped[k%2], vs...)
	}
	return grouped
}

// earlyBreak exposes order through which key is visited first.
func earlyBreak(m map[int]bool) int {
	found := -1
	for k := range m { // want `range over map in deterministic package`
		found = k
		break
	}
	return found
}

// floatAccumulate rounds differently per visit order.
func floatAccumulate(m map[int]float64) float64 {
	var sum float64
	for _, x := range m { // want `range over map in deterministic package`
		sum += x
	}
	return sum
}

// counters only feeds integer accumulation: order-insensitive, no finding.
func counters(m map[int]int) (int, int) {
	n, mask := 0, 0
	for k, v := range m {
		n += v
		n++
		mask |= k
	}
	return n, mask
}

// setWrites only performs idempotent constant and keyed writes.
func setWrites(m map[int]int) (map[int]bool, map[int]int) {
	seen := make(map[int]bool)
	double := make(map[int]int)
	for k, v := range m {
		seen[k] = true
		double[k] = v * 2
	}
	return seen, double
}

// guarded mixes pure conditions, := defines, continue, delete, and nested
// ranges — all recognized sinks.
func guarded(m map[int]map[int]int, drop map[int]bool, limits map[int]int) map[int]bool {
	out := make(map[int]bool)
	for k, inner := range m {
		if len(inner) == 0 {
			continue
		}
		if lim, ok := limits[k]; ok && lim > 0 {
			out[k] = true
		}
		for j := range inner {
			delete(drop, j)
		}
	}
	return out
}

// collectThenSort erases the order before anyone can observe it.
func collectThenSort(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// collectThenSortFunc uses package sort instead of slices.
func collectThenSortFunc(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectNoSort looks like collection but never sorts: flagged.
func collectNoSort(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // want `range over map in deterministic package`
		keys = append(keys, k)
	}
	return keys
}

// waived carries a justified waiver: suppressed.
func waived(m map[int]int) int {
	best := -1
	//freelunch:orderok max-reduction, result independent of visit order
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// bareWaiver omits the justification: the waiver itself is reported.
func bareWaiver(m map[int]int) int {
	best := -1
	//freelunch:orderok
	for _, v := range m { // want `waiver needs a justification`
		if v > best {
			best = v
		}
	}
	return best
}
