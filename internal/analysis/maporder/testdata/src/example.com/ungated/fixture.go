// Package ungated is outside contract.DeterministicPackages: map order is
// legitimate here (reporting and serving layers), so nothing is flagged.
package ungated

func emitInMapOrder(m map[int]int) []int {
	var out []int
	for k, v := range m {
		out = append(out, k, v)
	}
	return out
}
