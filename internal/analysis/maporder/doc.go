// Package maporder flags range statements over maps in the deterministic
// packages whose loop bodies could leak Go's randomized map iteration order
// into simulation outputs.
//
// # Contract
//
// Every scheme in this repository is pinned bit-identical by golden files,
// and the free-lunch comparison is only meaningful because each scheme's
// bill is a deterministic function of (graph, seed, options). Go randomizes
// map iteration order per run, so a `for k := range m` whose body's effect
// depends on visit order silently produces different executions on
// different runs — the exact bug class PR 8 fixed in preferentialAttachment,
// where edges were emitted in map order and graph fingerprints (cache
// identities) differed across processes.
//
// # What is allowed without a waiver
//
// A range over a map is reported unless the analyzer can see the body is
// order-insensitive. Recognized order-insensitive forms ("commutative
// sinks"):
//
//   - integer counter accumulation: x++, x--, x += e, x -= e, x |= e,
//     x &= e, x ^= e, x *= e (integer-typed only: float accumulation
//     rounds differently per order, string += concatenates in order);
//   - idempotent set writes: m2[k] = <constant> (conflicting keys write
//     equal values, so order cannot matter);
//   - keyed writes: m2[<expr containing the range key>] = rhs where rhs
//     does not mention m2 (range keys are unique, so each iteration writes
//     a distinct key; the self-reference exclusion rejects accumulating
//     forms like m2[k] = append(m2[k], v), which build order-dependent
//     slices — the preferentialAttachment shape);
//   - := definitions with call-free right-hand sides (per-iteration locals
//     cannot escape the body);
//   - delete(m2, k), continue, and if/else or nested range statements whose
//     conditions are call-free (len/cap and conversions excepted — a call
//     could consume shared state, e.g. an RNG stream) and whose bodies
//     recursively satisfy these rules;
//   - collect-then-sort: the body only appends to one local slice, and the
//     statement immediately after the range sorts that slice (slices.Sort*,
//     sort.Slice, sort.Sort, sort.Ints, ...).
//
// Everything else — above all sending messages (env.Send), appending to
// slices that are returned or stored, and early break — is reported.
//
// # Waiver
//
// A range whose order-insensitivity the analyzer cannot see carries an
// inline justification:
//
//	for v := range m { ... } //freelunch:orderok <why order cannot leak>
//
// (or the comment on the line directly above the range statement). The
// reason text is mandatory; a bare waiver is itself reported.
package maporder
