// Package stats provides the small numerical and formatting helpers used by
// the experiment harness: power-law exponent fits for checking the paper's
// asymptotic claims, simple aggregates, and plain-text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// FitPowerLaw fits y = c·x^a by least squares on (log x, log y) and returns
// the exponent a and the coefficient c. It panics on fewer than two points
// or non-positive values, which always indicates a harness bug.
func FitPowerLaw(xs, ys []float64) (exponent, coeff float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: FitPowerLaw needs >= 2 paired points")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: FitPowerLaw needs positive values")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b := linearFit(lx, ly)
	return a, math.Exp(b)
}

// linearFit returns slope and intercept of the least-squares line.
func linearFit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank on
// a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Table renders rows as an aligned plain-text table with a header rule,
// suitable for experiment logs and EXPERIMENTS.md.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
