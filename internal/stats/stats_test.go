package stats

import (
	"math"
	"strings"
	"testing"
)

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	a, c := FitPowerLaw(xs, ys)
	if math.Abs(a-1.5) > 1e-9 || math.Abs(c-3) > 1e-6 {
		t.Fatalf("fit = (%v, %v), want (1.5, 3)", a, c)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	xs := []float64{100, 200, 400, 800, 1600}
	ys := []float64{}
	for i, x := range xs {
		noise := 1 + 0.05*float64(i%2*2-1)
		ys = append(ys, 2*math.Pow(x, 1.2)*noise)
	}
	a, _ := FitPowerLaw(xs, ys)
	if math.Abs(a-1.2) > 0.05 {
		t.Fatalf("noisy fit exponent = %v", a)
	}
}

func TestFitPowerLawPanics(t *testing.T) {
	for _, tc := range [][2][]float64{
		{{1}, {1}},
		{{1, 2}, {1}},
		{{1, -2}, {1, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", tc)
				}
			}()
			FitPowerLaw(tc[0], tc[1])
		}()
	}
}

func TestLinearFitFlat(t *testing.T) {
	slope, intercept := linearFit([]float64{1, 1, 1}, []float64{2, 4, 6})
	if slope != 0 || intercept != 4 {
		t.Fatalf("degenerate fit = (%v, %v)", slope, intercept)
	}
}

func TestMeanMaxPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatal("mean")
	}
	if Max(xs) != 4 {
		t.Fatal("max")
	}
	if Percentile(xs, 50) != 2 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 4 || Percentile(xs, 0) != 1 {
		t.Fatal("extremes")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty inputs")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "bbb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "a    bbb") && !strings.Contains(out, "a  ") {
		t.Fatalf("unexpected table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
}

func TestF(t *testing.T) {
	if F(3) != "3" {
		t.Fatal(F(3))
	}
	if F(3.14159) != "3.142" {
		t.Fatal(F(3.14159))
	}
	if F(123456) != "123456" {
		t.Fatal(F(123456))
	}
	if F(123456.7) != "1.23e+05" {
		t.Fatal(F(123456.7))
	}
}
