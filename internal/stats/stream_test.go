package stats

import (
	"math"
	"reflect"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh ring: len=%d cap=%d", r.Len(), r.Cap())
	}
	if got := r.Tail(); len(got) != 0 {
		t.Fatalf("fresh ring tail = %v", got)
	}
	r.Push(1)
	r.Push(2)
	if got := r.Tail(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("partial tail = %v", got)
	}
	r.Push(3)
	if got := r.Tail(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("full tail = %v", got)
	}
	// Wrap: the oldest samples fall off, order stays oldest-first.
	r.Push(4)
	if got := r.Tail(); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("tail after one wrap = %v", got)
	}
	for v := 5; v <= 11; v++ {
		r.Push(v)
	}
	if got := r.Tail(); !reflect.DeepEqual(got, []int{9, 10, 11}) {
		t.Fatalf("tail after many wraps = %v", got)
	}
	if r.Len() != 3 {
		t.Fatalf("len after wraps = %d", r.Len())
	}
}

func TestRingClampsCapacity(t *testing.T) {
	r := NewRing[string](0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", r.Cap())
	}
	r.Push("a")
	r.Push("b")
	if got := r.Tail(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("tail = %v", got)
	}
}

func TestLogHistogramBucketBoundaries(t *testing.T) {
	// Every power of two starts a new bucket; the value just below it
	// belongs to the previous one. Zero and negatives fall in bucket 0.
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bounds are half-open, contiguous, and contain exactly the values
	// that index into them.
	for i := 0; i < logHistogramBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo >= hi {
			t.Fatalf("bucket %d: empty range [%d, %d)", i, lo, hi)
		}
		if BucketIndex(lo) != i {
			t.Fatalf("bucket %d: lo %d indexes to %d", i, lo, BucketIndex(lo))
		}
		if i < logHistogramBuckets-1 {
			if BucketIndex(hi-1) != i {
				t.Fatalf("bucket %d: hi-1 %d indexes to %d", i, hi-1, BucketIndex(hi-1))
			}
			nextLo, _ := BucketBounds(i + 1)
			if nextLo != hi {
				t.Fatalf("bucket %d..%d not contiguous: hi %d, next lo %d", i, i+1, hi, nextLo)
			}
		}
	}
}

func TestLogHistogramObserve(t *testing.T) {
	var h LogHistogram
	for _, v := range []int64{0, 1, 1, 3, 900} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 905 || h.Max() != 900 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	want := []HistBucket{
		{Lo: 0, Hi: 1, Count: 1},
		{Lo: 1, Hi: 2, Count: 2},
		{Lo: 2, Hi: 4, Count: 1},
		{Lo: 512, Hi: 1024, Count: 1},
	}
	if got := h.Buckets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
}
