package stats

// Streaming aggregates for long simulation runs: a fixed-capacity ring
// buffer and a log-bucketed histogram. Both hold O(1) memory in the number
// of observations, which is what lets the facade's metrics sink watch a
// 100·n-round gossip schedule without the unbounded per-round ledgers the
// protocol results would otherwise accumulate.

import "math/bits"

// Ring is a fixed-capacity ring buffer: Push beyond the capacity overwrites
// the oldest retained sample, so the buffer always holds the most recent
// Len() <= Cap() observations. The zero Ring is not usable; construct with
// NewRing.
type Ring[T any] struct {
	buf  []T
	next int // slot the next Push writes
	size int // retained samples, <= len(buf)
}

// NewRing returns an empty ring retaining at most capacity samples
// (capacity < 1 is clamped to 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, evicting the oldest sample once the ring is full.
func (r *Ring[T]) Push(v T) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
}

// Len returns the number of retained samples.
func (r *Ring[T]) Len() int { return r.size }

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Tail returns the retained samples, oldest first, in a fresh slice.
func (r *Ring[T]) Tail() []T {
	out := make([]T, 0, r.size)
	start := 0
	if r.size == len(r.buf) {
		start = r.next
	}
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// logHistogramBuckets covers every non-negative int64: bucket 0 plus one
// bucket per possible bit length (1..63).
const logHistogramBuckets = 64

// LogHistogram counts int64 observations in power-of-two buckets: bucket 0
// holds values <= 0 (e.g. zero-message rounds), bucket i >= 1 holds the
// half-open range [2^(i-1), 2^i). It needs no configuration and a fixed 64
// counters regardless of the observation range. The zero LogHistogram is
// ready to use.
type LogHistogram struct {
	counts [logHistogramBuckets]uint64
	n      uint64
	sum    int64
	max    int64
}

// BucketIndex returns the bucket an observation lands in.
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the half-open range [lo, hi) of bucket i. Bucket 0 is
// reported as the degenerate [0, 1); the top bucket's hi saturates at the
// int64 maximum.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i >= logHistogramBuckets-1 {
		return lo, int64(^uint64(0) >> 1)
	}
	return lo, int64(1) << i
}

// Observe records one value.
func (h *LogHistogram) Observe(v int64) {
	h.counts[BucketIndex(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 { return h.n }

// Sum returns the sum of all observations.
func (h *LogHistogram) Sum() int64 { return h.sum }

// Max returns the largest observation (0 before any Observe).
func (h *LogHistogram) Max() int64 { return h.max }

// HistBucket is one non-empty histogram cell: Count observations fell in the
// half-open range [Lo, Hi).
type HistBucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *LogHistogram) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}
