// Package sched provides the repository's shared scheduling primitives: a
// persistent fixed-range worker pool with a barrier per phase (the LOCAL
// engine's round machinery) and a transient work-stealing ParallelFor (the
// facade's sweep fan-out). It is a leaf package — stdlib imports only — so
// both internal/local and internal/core can build on one scheduler instead
// of maintaining private copies (the carried-forward ROADMAP item).
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent pool of workers, each owning a fixed contiguous index
// range of [0, n). Phases are broadcast over per-worker buffered channels and
// joined on a WaitGroup: a steady-state Dispatch performs no allocation and
// spawns no goroutines, which is what lets a simulator round stay at zero
// heap allocations. Ranges are static so a worker's range can double as a
// data shard (e.g. the LOCAL engine's receiver shards).
type Pool struct {
	wg     sync.WaitGroup
	cmds   []chan func(w, lo, hi int)
	lo, hi []int
	chunk  int
}

// NewPool creates a pool over [0, n). workers <= 0 means GOMAXPROCS; the
// count is clamped to n, so a pool over a small n has at most n workers (and
// a pool over n == 0 has none — Dispatch is then a no-op).
func NewPool(n, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{}
	p.chunk = (n + workers - 1) / workers
	if p.chunk < 1 {
		p.chunk = 1
	}
	for w := 0; w < workers; w++ {
		lo := w * p.chunk
		hi := lo + p.chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		p.lo = append(p.lo, lo)
		p.hi = append(p.hi, hi)
		p.cmds = append(p.cmds, make(chan func(w, lo, hi int), 1))
	}
	for w := range p.cmds {
		go p.work(w)
	}
	return p
}

// Workers returns the number of live workers (possibly fewer than requested
// when n is small).
func (p *Pool) Workers() int { return len(p.cmds) }

// Chunk returns the size of each worker's index range (the last range may be
// shorter). ShardOf(i) == i/Chunk() for every i the pool covers.
func (p *Pool) Chunk() int { return p.chunk }

// ShardOf returns the worker index owning i.
func (p *Pool) ShardOf(i int) int { return i / p.chunk }

// Dispatch runs fn(w, lo, hi) on every worker over its own range and blocks
// until all complete. fn must confine writes to per-worker state or to data
// indexed within [lo, hi).
func (p *Pool) Dispatch(fn func(w, lo, hi int)) {
	p.wg.Add(len(p.cmds))
	for _, c := range p.cmds {
		c <- fn
	}
	p.wg.Wait()
}

// Stop terminates the workers; it must be called exactly once, after the
// last Dispatch.
func (p *Pool) Stop() {
	for _, c := range p.cmds {
		close(c)
	}
}

func (p *Pool) work(w int) {
	for fn := range p.cmds[w] {
		fn(w, p.lo[w], p.hi[w])
		p.wg.Done()
	}
}

// ParallelFor runs fn(0), ..., fn(n-1) over a transient worker set. The
// workers knob follows the facade's concurrency convention: 0 runs inline
// sequentially, w > 0 uses w workers, w < 0 uses GOMAXPROCS workers. Results
// must be written to caller-owned, index-disjoint slots, which keeps the
// output deterministic regardless of scheduling.
//
// Cancellation is checked before every item, so a cancelled sweep stops
// within one item's work and returns ctx.Err(). When several items fail, the
// error of the lowest-indexed failing item that ran is returned (the
// sequential path's choice; under concurrency a later item may fail first,
// but the sweep keeps the smallest index observed).
func ParallelFor(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		stop      atomic.Bool
		completed atomic.Int64
		mu        sync.Mutex
		firstIdx  = n
		firstErr  error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					stop.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Cancellation only surfaces when it actually skipped work: a sweep
	// whose every item completed returns nil even if the context expired as
	// it finished, matching the sequential path.
	if int(completed.Load()) == n {
		return nil
	}
	return ctx.Err()
}
