package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestPoolCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		const n = 103
		p := NewPool(n, workers)
		hits := make([]int32, n)
		for round := 0; round < 3; round++ {
			p.Dispatch(func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
		}
		p.Stop()
		for i, h := range hits {
			if h != 3 {
				t.Fatalf("workers=%d: index %d visited %d times, want 3", workers, i, h)
			}
		}
	}
}

func TestPoolShardOfMatchesRanges(t *testing.T) {
	p := NewPool(100, 7)
	owner := make([]int, 100)
	p.Dispatch(func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			owner[i] = w
		}
	})
	p.Stop()
	for i, w := range owner {
		if got := p.ShardOf(i); got != w {
			t.Fatalf("ShardOf(%d) = %d, but worker %d owns it", i, got, w)
		}
	}
}

func TestPoolEmpty(t *testing.T) {
	p := NewPool(0, 4)
	if p.Workers() != 0 {
		t.Fatalf("empty pool has %d workers", p.Workers())
	}
	ran := false
	p.Dispatch(func(w, lo, hi int) { ran = true }) // must not hang
	p.Stop()
	if ran {
		t.Fatal("dispatch on empty pool ran a worker")
	}
}

func TestParallelForFirstError(t *testing.T) {
	errBoom := errors.New("boom")
	err := ParallelFor(context.Background(), 50, 4, func(i int) error {
		if i == 7 || i == 31 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("got %v, want %v", err, errBoom)
	}
}

func TestParallelForCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ParallelFor(ctx, 10, 2, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
