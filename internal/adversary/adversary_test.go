package adversary

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestDecisionsAreDeterministic(t *testing.T) {
	p := Profile{Seed: 42, DropRate: 0.3, DupRate: 0.2, DelayBound: 3}
	a, b := Compile(p, 7), Compile(p, 7)
	for round := 0; round < 20; round++ {
		for edge := graph.EdgeID(0); edge < 10; edge++ {
			for seq := int32(0); seq < 3; seq++ {
				if a.Drop(round, edge, 1, seq) != b.Drop(round, edge, 1, seq) {
					t.Fatalf("drop decision differs at (%d,%d,%d)", round, edge, seq)
				}
				if a.Duplicate(round, edge, 1, seq) != b.Duplicate(round, edge, 1, seq) {
					t.Fatalf("dup decision differs at (%d,%d,%d)", round, edge, seq)
				}
			}
			if a.Delay(edge) != b.Delay(edge) {
				t.Fatalf("delay differs on edge %d", edge)
			}
		}
	}
}

func TestRunSeedPerturbsDecisions(t *testing.T) {
	p := Profile{Seed: 42, DropRate: 0.5}
	a, b := Compile(p, 1), Compile(p, 2)
	differs := false
	for round := 0; round < 50 && !differs; round++ {
		for edge := graph.EdgeID(0); edge < 10; edge++ {
			if a.Drop(round, edge, 0, 0) != b.Drop(round, edge, 0, 0) {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Fatal("different run seeds produced identical drop sets")
	}
}

func TestReceiverDisambiguatesEdgeDirections(t *testing.T) {
	// Both endpoints of one edge can send their seq-0 message in the same
	// round; the receiver must be part of the decision key, or the two
	// directions would always share a fate.
	p := Profile{Seed: 9, DropRate: 0.5}
	a := Compile(p, 3)
	differs := false
	for round := 0; round < 100 && !differs; round++ {
		if a.Drop(round, 0, 0, 0) != a.Drop(round, 0, 1, 0) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("the two directions of an edge always share a drop fate")
	}
}

func TestRateExtremes(t *testing.T) {
	zero := Compile(Profile{Seed: 1}, 1)
	full := Compile(Profile{Seed: 1, DropRate: 1, DupRate: 1}, 1)
	for round := 0; round < 20; round++ {
		if zero.Drop(round, 0, 0, 0) || zero.Duplicate(round, 0, 0, 0) {
			t.Fatal("zero-rate profile perturbed a message")
		}
		if !full.Drop(round, 0, 0, 0) || !full.Duplicate(round, 0, 0, 0) {
			t.Fatal("rate-1 profile spared a message")
		}
	}
	if zero.Delay(0) != 0 {
		t.Fatal("zero delay bound delayed an edge")
	}
}

func TestDelayConstantPerEdgeAndBounded(t *testing.T) {
	a := Compile(Profile{Seed: 8, DelayBound: 4}, 5)
	if a.MaxDelay() != 4 {
		t.Fatalf("MaxDelay = %d, want 4", a.MaxDelay())
	}
	spread := map[int]bool{}
	for edge := graph.EdgeID(0); edge < 100; edge++ {
		d := a.Delay(edge)
		if d < 0 || d > 4 {
			t.Fatalf("delay %d outside [0,4]", d)
		}
		if a.Delay(edge) != d {
			t.Fatalf("edge %d delay is not constant", edge)
		}
		spread[d] = true
	}
	if len(spread) < 3 {
		t.Fatalf("100 edges hit only %d distinct delays; hashing looks degenerate", len(spread))
	}
}

func TestCrashesAtAndEventsAt(t *testing.T) {
	a := Compile(Profile{
		Crashes: []Crash{{Node: 9, Round: 4}, {Node: 2, Round: 1}, {Node: 5, Round: 1}},
		EdgeEvents: []EdgeEvent{
			{Round: 3, Op: DeleteEdge, U: 0, V: 1},
			{Round: 1, Op: InsertEdge, U: 2, V: 3},
			{Round: 3, Op: InsertEdge, U: 4, V: 5},
		},
	}, 0)
	if got := a.CrashesAt(1); !reflect.DeepEqual(got, []Crash{{Node: 2, Round: 1}, {Node: 5, Round: 1}}) {
		t.Fatalf("CrashesAt(1) = %v", got)
	}
	if got := a.CrashesAt(2); len(got) != 0 {
		t.Fatalf("CrashesAt(2) = %v, want empty", got)
	}
	if got := a.EventsAt(3); len(got) != 2 || got[0].Op != DeleteEdge || got[1].Op != InsertEdge {
		t.Fatalf("EventsAt(3) = %v, want profile order preserved", got)
	}
	if !a.HasEdgeEvents() {
		t.Fatal("HasEdgeEvents = false with scheduled events")
	}
}

func TestValidate(t *testing.T) {
	bad := []Profile{
		{DropRate: -0.1},
		{DropRate: 1.5},
		{DupRate: 2},
		{DelayBound: -1},
		{Crashes: []Crash{{Node: 0, Round: -1}}},
		{Crashes: []Crash{{Node: -2, Round: 0}}},
		{EdgeEvents: []EdgeEvent{{Round: -1, Op: InsertEdge, U: 0, V: 1}}},
		{EdgeEvents: []EdgeEvent{{Round: 0, Op: EdgeOp(9), U: 0, V: 1}}},
		{EdgeEvents: []EdgeEvent{{Round: 0, Op: InsertEdge, U: 3, V: 3}}},
		{EdgeEvents: []EdgeEvent{{Round: 0, Op: InsertEdge, U: -1, V: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("profile %d validated: %+v", i, p)
		}
	}
	good := Profile{DropRate: 0.5, DupRate: 1, DelayBound: 3,
		Crashes:    []Crash{{Node: 1, Round: 0}},
		EdgeEvents: []EdgeEvent{{Round: 2, Op: DeleteEdge, U: 0, V: 4}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.IsZero() {
		t.Fatal("perturbing profile reported IsZero")
	}
	if !(&Profile{Name: "x", Seed: 4}).IsZero() {
		t.Fatal("name/seed-only profile is not zero")
	}
}

func TestNamedRegistry(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no shipped profiles")
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate profile name %q", name)
		}
		seen[name] = true
		p, ok := Named(name)
		if !ok || p.Name != name {
			t.Fatalf("Named(%q) = %+v, %v", name, p, ok)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("shipped profile %q invalid: %v", name, err)
		}
	}
	if _, ok := Named("no-such-profile"); ok {
		t.Fatal("unknown profile resolved")
	}
	// The starvation profile the robustness tests depend on must stay total.
	p, ok := Named("blackout")
	if !ok || p.DropRate != 1 {
		t.Fatalf("blackout profile = %+v, %v; want DropRate 1", p, ok)
	}
}

func TestEdgeOpString(t *testing.T) {
	if InsertEdge.String() != "insert" || DeleteEdge.String() != "delete" {
		t.Fatalf("EdgeOp strings = %q/%q", InsertEdge.String(), DeleteEdge.String())
	}
}
