// Package adversary implements the pluggable network adversary the
// robustness experiments run the schemes against: a seeded, deterministic
// source of message drops, message duplication, crash-stop node failures,
// bounded per-edge delivery delays, and mid-run edge insertions/deletions.
//
// The paper's free-lunch claim — spanner-carried simulation cuts messages
// without losing rounds — is proved for a flawless synchronous network. The
// weak-LOCAL and full-information round-model literature (Hefetz–Kuhn–Maus–
// Steger; Balliu et al.) motivates exactly the perturbations modeled here,
// and this package supplies them as a profile the LOCAL engine consults at
// its delivery boundary.
//
// # Determinism
//
// Every adversarial decision is a pure hash of (profile seed, run seed,
// decision kind, round, edge, receiver, send order) through SplitMix64
// stream derivation — no mutable RNG state is consumed in decision order.
// Decisions therefore do not depend on engine choice, worker count, or
// delivery sharding: the sequential and concurrent engines at every worker
// count see the identical adversary, which is what keeps adversarial runs
// golden-pinnable. The package is bound by the repository's determinism
// contract (maporder, nowallclock).
//
// # Delay semantics
//
// Delays are per-edge constants: δ(e) = hash(seed, e) in [0, DelayBound].
// A message sent over e in round r arrives in round r+1+δ(e). Because every
// message on one edge is delayed by the same amount, per-edge FIFO order is
// automatic, and an inbox never interleaves same-edge messages from
// different send rounds.
package adversary

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Crash schedules a crash-stop failure: the node stops participating at the
// start of the given round (it does not step in that round, and messages
// already addressed to it are dropped — but still billed, as the model
// prescribes).
type Crash struct {
	Node  graph.NodeID `json:"node"`
	Round int          `json:"round"`
}

// EdgeOp is an EdgeEvent's operation.
type EdgeOp uint8

const (
	// InsertEdge adds a fresh edge between U and V (a new unique edge ID,
	// flowing through the CSR graph's incremental append path).
	InsertEdge EdgeOp = iota
	// DeleteEdge removes the lowest-ID edge between U and V. Deleting a pair
	// with no current edge is a no-op, so profiles stay graph-independent.
	DeleteEdge
)

// String returns the operation's wire name.
func (op EdgeOp) String() string {
	if op == DeleteEdge {
		return "delete"
	}
	return "insert"
}

// EdgeEvent schedules a topology mutation applied at the start of the given
// round, before any node steps: an inserted edge is usable by that round's
// sends, and messages still in flight over a deleted edge are dropped (and
// counted as adversary-induced drops).
type EdgeEvent struct {
	Round int          `json:"round"`
	Op    EdgeOp       `json:"op"`
	U     graph.NodeID `json:"u"`
	V     graph.NodeID `json:"v"`
}

// Profile is one adversary configuration: four composable perturbations plus
// the seed that makes them reproducible. The zero value is the null
// adversary (no perturbation at all).
type Profile struct {
	// Name labels the profile (golden files, benchmarks, request schemas).
	Name string `json:"name,omitempty"`
	// Seed salts every adversarial decision. Two profiles that differ only
	// in Seed drop/delay entirely different message sets.
	Seed uint64 `json:"seed,omitempty"`
	// DropRate is the per-message loss probability in [0, 1].
	DropRate float64 `json:"drop_rate,omitempty"`
	// DupRate is the per-message duplication probability in [0, 1]. A
	// duplicated message is delivered twice and billed twice.
	DupRate float64 `json:"dup_rate,omitempty"`
	// DelayBound bounds the per-edge delivery delay δ(e) ∈ [0, DelayBound].
	DelayBound int `json:"delay_bound,omitempty"`
	// Crashes are scheduled crash-stop failures. Entries naming nodes beyond
	// the run's graph are ignored, so profiles stay graph-independent.
	Crashes []Crash `json:"crashes,omitempty"`
	// EdgeEvents are scheduled topology mutations.
	EdgeEvents []EdgeEvent `json:"edge_events,omitempty"`
}

// IsZero reports whether the profile perturbs nothing.
func (p *Profile) IsZero() bool {
	return p.DropRate == 0 && p.DupRate == 0 && p.DelayBound == 0 &&
		len(p.Crashes) == 0 && len(p.EdgeEvents) == 0
}

// Validate rejects profiles no run could honor.
func (p *Profile) Validate() error {
	if p.DropRate < 0 || p.DropRate > 1 {
		return fmt.Errorf("adversary: drop rate %v outside [0,1]", p.DropRate)
	}
	if p.DupRate < 0 || p.DupRate > 1 {
		return fmt.Errorf("adversary: duplication rate %v outside [0,1]", p.DupRate)
	}
	if p.DelayBound < 0 {
		return fmt.Errorf("adversary: negative delay bound %d", p.DelayBound)
	}
	for i, c := range p.Crashes {
		if c.Round < 0 {
			return fmt.Errorf("adversary: crash %d scheduled at negative round %d", i, c.Round)
		}
		if c.Node < 0 {
			return fmt.Errorf("adversary: crash %d names negative node %d", i, c.Node)
		}
	}
	for i, ev := range p.EdgeEvents {
		if ev.Round < 0 {
			return fmt.Errorf("adversary: edge event %d scheduled at negative round %d", i, ev.Round)
		}
		if ev.Op != InsertEdge && ev.Op != DeleteEdge {
			return fmt.Errorf("adversary: edge event %d has unknown op %d", i, ev.Op)
		}
		if ev.U < 0 || ev.V < 0 {
			return fmt.Errorf("adversary: edge event %d names negative node (%d,%d)", i, ev.U, ev.V)
		}
		if ev.U == ev.V {
			return fmt.Errorf("adversary: edge event %d is a self-loop on node %d", i, ev.U)
		}
	}
	return nil
}

// Adversary is a compiled profile bound to one run's seed: the form the
// LOCAL engine consults. Compile once per run; the zero cost of every query
// is a handful of SplitMix64 mixes.
type Adversary struct {
	profile Profile
	root    xrand.RNG
	crashes []Crash     // sorted by (round, node)
	events  []EdgeEvent // stable-sorted by round (same-round order preserved)
}

// Decision-kind stream identifiers. Distinct constants keep the drop,
// duplication, and delay hash families independent.
const (
	kindDrop uint64 = iota + 1
	kindDup
	kindDelay
)

// Compile binds a validated profile to a run seed. Decisions depend on both
// seeds, so re-running the same profile under a different run seed perturbs
// a different message set, while (profile, run seed) pairs reproduce
// bit-identically.
func Compile(p Profile, runSeed uint64) *Adversary {
	a := &Adversary{
		profile: p,
		root:    xrand.New(p.Seed).Derived(runSeed),
		crashes: slices.Clone(p.Crashes),
		events:  slices.Clone(p.EdgeEvents),
	}
	slices.SortFunc(a.crashes, func(x, y Crash) int {
		if x.Round != y.Round {
			return x.Round - y.Round
		}
		return int(x.Node - y.Node)
	})
	slices.SortStableFunc(a.events, func(x, y EdgeEvent) int { return x.Round - y.Round })
	return a
}

// Profile returns the profile the adversary was compiled from.
func (a *Adversary) Profile() Profile { return a.profile }

// decision derives the pure per-message stream for one decision kind.
func (a *Adversary) decision(kind uint64, round int, edge graph.EdgeID, to graph.NodeID, seq int32) xrand.RNG {
	// (round, edge, seq) alone is not unique: both endpoints of an edge can
	// send their seq-0 message over it in the same round, so the receiver is
	// part of the key.
	r := a.root.Derived(kind)
	r = r.Derived(uint64(round))
	r = r.Derived(uint64(edge))
	return r.Derived(uint64(to)<<32 | uint64(uint32(seq)))
}

// Drop reports whether the identified message is lost in transit.
func (a *Adversary) Drop(round int, edge graph.EdgeID, to graph.NodeID, seq int32) bool {
	if a.profile.DropRate <= 0 {
		return false
	}
	r := a.decision(kindDrop, round, edge, to, seq)
	return r.Bernoulli(a.profile.DropRate)
}

// Duplicate reports whether the identified message is delivered (and billed)
// twice.
func (a *Adversary) Duplicate(round int, edge graph.EdgeID, to graph.NodeID, seq int32) bool {
	if a.profile.DupRate <= 0 {
		return false
	}
	r := a.decision(kindDup, round, edge, to, seq)
	return r.Bernoulli(a.profile.DupRate)
}

// Delay returns the edge's constant delivery delay δ(e) ∈ [0, DelayBound]:
// the number of extra rounds a message over e spends in flight.
func (a *Adversary) Delay(edge graph.EdgeID) int {
	if a.profile.DelayBound <= 0 {
		return 0
	}
	r := a.root.Derived(kindDelay)
	r = r.Derived(uint64(edge))
	return r.Intn(a.profile.DelayBound + 1)
}

// MaxDelay returns the profile's delay bound (the size of the engine's
// future-delivery ring).
func (a *Adversary) MaxDelay() int { return a.profile.DelayBound }

// HasEdgeEvents reports whether the profile mutates topology mid-run (the
// engine then runs on a private clone of the input graph and tolerates sends
// over vanished edges).
func (a *Adversary) HasEdgeEvents() bool { return len(a.events) > 0 }

// CrashesAt returns the crashes scheduled for the given round, sorted by
// node.
func (a *Adversary) CrashesAt(round int) []Crash {
	lo := sort.Search(len(a.crashes), func(i int) bool { return a.crashes[i].Round >= round })
	hi := sort.Search(len(a.crashes), func(i int) bool { return a.crashes[i].Round > round })
	return a.crashes[lo:hi]
}

// EventsAt returns the edge events scheduled for the given round, in profile
// order.
func (a *Adversary) EventsAt(round int) []EdgeEvent {
	lo := sort.Search(len(a.events), func(i int) bool { return a.events[i].Round >= round })
	hi := sort.Search(len(a.events), func(i int) bool { return a.events[i].Round > round })
	return a.events[lo:hi]
}

// named is the shipped profile registry, in a fixed order (Names must be
// deterministic, so this is a slice, not a map). Node and round numbers are
// chosen to be meaningful on the repository's golden and sweep graphs
// (36–41 nodes); crash entries beyond a smaller graph are skipped at run
// time by construction.
var named = []Profile{
	{Name: "drop10", Seed: 0xad5e01, DropRate: 0.10},
	{Name: "dup15", Seed: 0xad5e02, DupRate: 0.15},
	{Name: "delay2", Seed: 0xad5e03, DelayBound: 2},
	{Name: "crash2", Seed: 0xad5e04, Crashes: []Crash{{Node: 3, Round: 2}, {Node: 11, Round: 4}}},
	{Name: "dynamic", Seed: 0xad5e05, EdgeEvents: []EdgeEvent{
		{Round: 1, Op: InsertEdge, U: 1, V: 4},
		{Round: 2, Op: DeleteEdge, U: 0, V: 1},
		{Round: 3, Op: InsertEdge, U: 2, V: 9},
		{Round: 4, Op: DeleteEdge, U: 2, V: 9},
	}},
	{Name: "mixed", Seed: 0xad5e06, DropRate: 0.05, DupRate: 0.05, DelayBound: 1,
		Crashes: []Crash{{Node: 5, Round: 3}}},
	{Name: "blackout", Seed: 0xad5e07, DropRate: 1},
}

// Named returns the shipped profile with the given name.
func Named(name string) (Profile, bool) {
	for _, p := range named {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the shipped profile names in registry order.
func Names() []string {
	out := make([]string, len(named))
	for i, p := range named {
		out[i] = p.Name
	}
	return out
}
