package globalcompute

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func inputsMod(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64((i*7)%100 + 1)
	}
	return in
}

func oracle(in []int64, agg Aggregator) int64 {
	acc := in[0]
	for _, v := range in[1:] {
		acc = agg(acc, v)
	}
	return acc
}

func TestAggregators(t *testing.T) {
	if Sum(2, 3) != 5 || Min(2, 3) != 2 || Max(2, 3) != 3 {
		t.Fatal("aggregator basics")
	}
}

func TestDirectComputesAggregates(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":  gen.Path(30),
		"cycle": gen.Cycle(25),
		"gnp":   gen.ConnectedGNP(120, 0.05, xrand.New(1)),
		"grid":  gen.Grid(7, 7),
		"k1":    graph.New(1),
	} {
		in := inputsMod(g.NumNodes())
		diam := g.NumNodes() // safe bound
		for _, agg := range []Aggregator{Sum, Min, Max} {
			res, err := Direct(context.Background(), g, in, agg, diam, local.Config{Seed: 2})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := oracle(in, agg)
			for v, got := range res.Values {
				if got != want {
					t.Fatalf("%s node %d: got %d want %d", name, v, got, want)
				}
			}
		}
	}
}

func TestDirectRejectsBadInputs(t *testing.T) {
	if _, err := Direct(context.Background(), gen.Path(3), []int64{1}, Sum, 3, local.Config{}); err == nil {
		t.Fatal("short inputs accepted")
	}
}

func TestOverSpannerMatchesDirect(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.1, xrand.New(3))
	in := inputsMod(g.NumNodes())
	diam := g.Diameter()
	p := core.Default(1, 2)
	res, err := OverSpanner(context.Background(), g, in, Sum, diam, p, 7, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(in, Sum)
	for v, got := range res.Values {
		if got != want {
			t.Fatalf("node %d: got %d want %d", v, got, want)
		}
	}
	if res.SpannerRun.Messages == 0 {
		t.Fatal("spanner cost missing")
	}
	if res.HostEdges >= g.NumEdges() {
		t.Log("spanner did not sparsify (possible on sparse inputs)")
	}
}

func TestOverSpannerBeatsDirectOnDense(t *testing.T) {
	// The Section 7 claim: o(m) messages for a global function on a dense
	// graph. K_400's diameter is 1; direct pays Θ(D·m) on the wave alone.
	g := gen.Complete(400)
	in := inputsMod(g.NumNodes())
	p := core.Default(2, 8)
	p.C = 0.5
	res, err := OverSpanner(context.Background(), g, in, Max, 1, p, 9, local.Config{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Direct(context.Background(), g, in, Max, 1, local.Config{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(in, Max)
	for v := range res.Values {
		if res.Values[v] != want || direct.Values[v] != want {
			t.Fatal("wrong aggregate")
		}
	}
	if res.TotalMessages() >= direct.TotalMessages() {
		t.Fatalf("spanner pipeline (%d msgs) did not beat direct (%d msgs)",
			res.TotalMessages(), direct.TotalMessages())
	}
	t.Logf("spanner: %d msgs (%d spanner + %d agg) vs direct %d msgs",
		res.TotalMessages(), res.SpannerRun.Messages, res.Run.Messages, direct.TotalMessages())
}

func TestEnginesAgree(t *testing.T) {
	g := gen.ConnectedGNP(80, 0.08, xrand.New(4))
	in := inputsMod(g.NumNodes())
	a, err := Direct(context.Background(), g, in, Sum, g.NumNodes(), local.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Direct(context.Background(), g, in, Sum, g.NumNodes(), local.Config{Seed: 5, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Run.Messages != b.Run.Messages || a.Run.Rounds != b.Run.Rounds {
		t.Fatal("engines disagree")
	}
}

func TestWaveDeadlineTooShortFails(t *testing.T) {
	// A wave deadline below the diameter must be detected, not silently
	// produce wrong values.
	g := gen.Path(30) // diameter 29
	in := inputsMod(30)
	res, err := Direct(context.Background(), g, in, Min, 3, local.Config{})
	if err != nil {
		return // acceptable: explicit failure
	}
	// If it "succeeded", values must still be correct or the run flagged.
	want := oracle(in, Min)
	for _, got := range res.Values {
		if got != want {
			return // wrong values are possible but then err should... fail
		}
	}
	t.Log("short deadline happened to suffice (waves settle fast on paths)")
}

// TestConvergeCollectsTables drives the generic payload path the registry's
// "globalcompute" scheme uses: every node starts with a one-entry table and
// the merged table, returned at every node, must cover all nodes.
func TestConvergeCollectsTables(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.08, xrand.New(9))
	n := g.NumNodes()
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = map[graph.NodeID][]graph.EdgeID{graph.NodeID(v): nil}
	}
	merge := func(a, b any) any {
		ta := a.(map[graph.NodeID][]graph.EdgeID)
		for k, v := range b.(map[graph.NodeID][]graph.EdgeID) {
			ta[k] = v
		}
		return ta
	}
	rounds := 0
	cfg := local.Config{Seed: 2, OnRound: func(int, int64) { rounds++ }}
	vals, res, err := Converge(context.Background(), g, inputs, merge, g.Diameter(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, raw := range vals {
		table := raw.(map[graph.NodeID][]graph.EdgeID)
		if len(table) != n {
			t.Fatalf("node %d's table covers %d of %d nodes", v, len(table), n)
		}
	}
	if rounds != res.Rounds {
		t.Fatalf("OnRound saw %d rounds, result reports %d", rounds, res.Rounds)
	}
	if res.Messages == 0 {
		t.Fatal("convergecast sent no messages")
	}
}

// TestConvergeHonorsCancellation pins the ctx port: an already-cancelled
// context stops the protocol before any value is produced.
func TestConvergeHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.ConnectedGNP(60, 0.08, xrand.New(9))
	in := inputsMod(g.NumNodes())
	if _, err := Direct(ctx, g, in, Sum, g.NumNodes(), local.Config{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
