// Package globalcompute implements the extension sketched in the paper's
// concluding remarks (Section 7): with an o(m)-message spanner construction
// that does not increase the round complexity, *global* functions — values
// that depend on every node's input, such as a minimum, sum, or count — can
// be computed in O(diameter) rounds with o(m) messages:
//
//  1. build a spanner H of stretch α with algorithm Sampler (o(m) messages,
//     O(1) rounds);
//  2. elect the node with minimum ID as root and build a BFS tree of H by
//     flooding on H only — O(α·D) rounds, O(α·D·|S|) = o(m) messages;
//  3. convergecast the aggregate up the tree and broadcast the result down
//     — O(α·D) rounds, O(n) messages.
//
// The direct baseline floods the whole graph, paying Θ(D·m) messages.
package globalcompute

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
)

// Aggregator combines node inputs. It must be commutative and associative
// (the tree imposes an arbitrary combination order).
type Aggregator func(a, b int64) int64

// Sum aggregates by addition.
func Sum(a, b int64) int64 { return a + b }

// Min aggregates by minimum.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max aggregates by maximum.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Result is the outcome of a global computation.
type Result struct {
	// Values holds each node's learned aggregate (all equal on success).
	Values []int64
	// Run carries the aggregation protocol's cost (excluding spanner
	// construction, reported separately).
	Run local.Result
	// SpannerRun carries the spanner construction cost (zero when running
	// on the raw graph).
	SpannerRun local.Result
	// HostEdges is the edge count of the graph the protocol actually ran on.
	HostEdges int
}

// TotalMessages is the full pipeline's message bill.
func (r *Result) TotalMessages() int64 { return r.Run.Messages + r.SpannerRun.Messages }

// TotalRounds is the full pipeline's round bill.
func (r *Result) TotalRounds() int { return r.Run.Rounds + r.SpannerRun.Rounds }

// phases of the aggregation protocol; all nodes share the schedule bounds
// but progress is event-driven (BFS wave, then convergecast, then final
// broadcast), so the protocol is correct for any diameter and halts itself.
type gcMsg struct {
	Kind  gcKind
	Root  graph.NodeID
	Dist  int
	Value int64
}

type gcKind int

const (
	gcWave   gcKind = iota + 1 // BFS wave carrying the root identity
	gcParent                   // child -> parent tree registration
	gcAgg                      // aggregate moving up
	gcDone                     // result flooding down
)

// gcNode runs leader election by min-ID wave + BFS-tree aggregation.
//
// Wave phase: every node starts a wave for itself; waves carry (root, dist)
// and a node adopts the smallest root it has heard, re-flooding on
// improvement. After waveRounds rounds the true minimum has won everywhere
// (waveRounds must be at least the host diameter; we use an upper bound).
// Tree phase: each node's parent is the edge its winning wave arrived on;
// children register, then leaves start the convergecast. Done phase: the
// root floods the final value down the tree.
type gcNode struct {
	input      int64
	agg        Aggregator
	waveRounds int

	root     graph.NodeID
	dist     int
	parent   graph.EdgeID
	hasPar   bool
	children map[graph.EdgeID]bool
	pending  map[graph.EdgeID]bool // children that have not reported yet
	acc      int64
	sentUp   bool
	value    int64
	haveVal  bool
}

func (p *gcNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		p.root = env.ID()
		p.dist = 0
		p.acc = p.input
		p.children = make(map[graph.EdgeID]bool)
		p.flood(env, gcMsg{Kind: gcWave, Root: p.root, Dist: 0}, noEdge)
		return
	}
	improved := false
	var from graph.EdgeID
	var fromDist int
	for _, m := range inbox {
		msg := m.Payload.(gcMsg)
		switch msg.Kind {
		case gcWave:
			if msg.Root < p.root {
				p.root, p.dist = msg.Root, msg.Dist+1
				improved, from, fromDist = true, m.Edge, msg.Dist
			}
		case gcParent:
			p.children[m.Edge] = true
			if p.pending != nil {
				p.pending[m.Edge] = true
			}
		case gcAgg:
			p.acc = p.agg(p.acc, msg.Value)
			delete(p.pending, m.Edge)
		case gcDone:
			if !p.haveVal {
				p.haveVal = true
				p.value = msg.Value
				for e := range p.children {
					env.Send(e, gcMsg{Kind: gcDone, Value: p.value})
				}
				env.Halt()
				return
			}
		}
	}
	if improved {
		p.hasPar = true
		p.parent = from
		p.children = make(map[graph.EdgeID]bool) // stale subtree forgotten
		p.flood(env, gcMsg{Kind: gcWave, Root: p.root, Dist: fromDist + 1}, from)
	}
	// Wave settling deadline: register with the final parent, then start
	// the convergecast once every registered child has reported.
	if round == p.waveRounds {
		p.pending = make(map[graph.EdgeID]bool, len(p.children))
		for e := range p.children {
			p.pending[e] = true
		}
		if p.hasPar {
			env.Send(p.parent, gcMsg{Kind: gcParent})
		}
	}
	if round > p.waveRounds && p.pending != nil && len(p.pending) == 0 && !p.sentUp {
		p.sentUp = true
		if p.hasPar {
			env.Send(p.parent, gcMsg{Kind: gcAgg, Value: p.acc})
		} else {
			// Root: the aggregate is complete; flood the result.
			p.haveVal = true
			p.value = p.acc
			for e := range p.children {
				env.Send(e, gcMsg{Kind: gcDone, Value: p.value})
			}
			env.Halt()
		}
	}
}

// noEdge marks "no arrival edge" for the initial wave.
const noEdge = graph.EdgeID(-1)

func (p *gcNode) flood(env *local.Env, msg gcMsg, except graph.EdgeID) {
	for _, pt := range env.Ports() {
		if pt.Edge != except {
			env.Send(pt.Edge, msg)
		}
	}
}

// run executes the aggregation protocol on host. waveRounds must be an
// upper bound on host's diameter.
func run(host *graph.Graph, inputs []int64, agg Aggregator, waveRounds int, cfg local.Config) ([]int64, local.Result, error) {
	nodes := make([]*gcNode, host.NumNodes())
	cfg.MaxRounds = waveRounds*3 + host.NumNodes() + 16
	res, err := local.Run(host, func(v graph.NodeID) local.Protocol {
		nodes[v] = &gcNode{input: inputs[v], agg: agg, waveRounds: waveRounds}
		return nodes[v]
	}, cfg)
	if err != nil {
		return nil, res, err
	}
	if !res.Halted {
		return nil, res, fmt.Errorf("globalcompute: aggregation did not converge")
	}
	out := make([]int64, len(nodes))
	for v, nd := range nodes {
		if !nd.haveVal {
			return nil, res, fmt.Errorf("globalcompute: node %d finished without a value", v)
		}
		out[v] = nd.value
	}
	return out, res, nil
}

// Direct computes the aggregate by running the protocol on the raw graph:
// the Θ(D·m)-message baseline.
func Direct(g *graph.Graph, inputs []int64, agg Aggregator, diamBound int, cfg local.Config) (*Result, error) {
	if len(inputs) != g.NumNodes() {
		return nil, fmt.Errorf("globalcompute: %d inputs for %d nodes", len(inputs), g.NumNodes())
	}
	vals, runRes, err := run(g, inputs, agg, diamBound, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Values: vals, Run: runRes, HostEdges: g.NumEdges()}, nil
}

// OverSpanner computes the aggregate over a Sampler spanner: the paper's
// Section 7 pipeline. diamBound must upper-bound the diameter of g; the
// spanner's wave deadline is stretched by the certified stretch factor.
func OverSpanner(g *graph.Graph, inputs []int64, agg Aggregator, diamBound int, p core.Params, seed uint64, cfg local.Config) (*Result, error) {
	if len(inputs) != g.NumNodes() {
		return nil, fmt.Errorf("globalcompute: %d inputs for %d nodes", len(inputs), g.NumNodes())
	}
	sp, err := core.BuildDistributed(g, p, seed, cfg)
	if err != nil {
		return nil, err
	}
	h, err := g.SubgraphByEdges(sp.S)
	if err != nil {
		return nil, err
	}
	vals, runRes, err := run(h, inputs, agg, diamBound*sp.StretchBound(), cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Values: vals, Run: runRes, SpannerRun: sp.Run, HostEdges: h.NumEdges()}, nil
}
