// Package globalcompute implements the extension sketched in the paper's
// concluding remarks (Section 7): with an o(m)-message spanner construction
// that does not increase the round complexity, *global* functions — values
// that depend on every node's input, such as a minimum, sum, or count — can
// be computed in O(diameter) rounds with o(m) messages:
//
//  1. build a spanner H of stretch α with algorithm Sampler (o(m) messages,
//     O(1) rounds);
//  2. elect the node with minimum ID as root and build a BFS tree of H by
//     flooding on H only — O(α·D) rounds, O(α·D·|S|) = o(m) messages;
//  3. convergecast the aggregate up the tree and broadcast the result down
//     — O(α·D) rounds, O(n) messages.
//
// The direct baseline floods the whole graph, paying Θ(D·m) messages.
//
// The protocol is generic over the aggregated value: Converge runs it with
// an arbitrary commutative-associative merge over opaque payloads, which is
// what the registry's "globalcompute" scheme uses to convergecast every
// node's port list and replay arbitrary t-round algorithms from the merged
// table; Direct and OverSpanner keep the paper's int64 aggregation API on
// top of it. All entry points take a context (cancellation aborts within one
// node step) and honor local.Config.OnRound, so engine observers see every
// round of the wave, convergecast, and broadcast phases.
package globalcompute

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
)

// Aggregator combines node inputs. It must be commutative and associative
// (the tree imposes an arbitrary combination order).
type Aggregator func(a, b int64) int64

// Sum aggregates by addition.
func Sum(a, b int64) int64 { return a + b }

// Min aggregates by minimum.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max aggregates by maximum.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Result is the outcome of a global computation.
type Result struct {
	// Values holds each node's learned aggregate (all equal on success).
	Values []int64
	// Run carries the aggregation protocol's cost (excluding spanner
	// construction, reported separately).
	Run local.Result
	// SpannerRun carries the spanner construction cost (zero when running
	// on the raw graph).
	SpannerRun local.Result
	// HostEdges is the edge count of the graph the protocol actually ran on.
	HostEdges int
}

// TotalMessages is the full pipeline's message bill.
func (r *Result) TotalMessages() int64 { return r.Run.Messages + r.SpannerRun.Messages }

// TotalRounds is the full pipeline's round bill.
func (r *Result) TotalRounds() int { return r.Run.Rounds + r.SpannerRun.Rounds }

// phases of the aggregation protocol; all nodes share the schedule bounds
// but progress is event-driven (BFS wave, then convergecast, then final
// broadcast), so the protocol is correct for any diameter and halts itself.
type gcMsg struct {
	Kind  gcKind
	Root  graph.NodeID
	Dist  int
	Value any
}

type gcKind int

const (
	gcWave   gcKind = iota + 1 // BFS wave carrying the root identity
	gcParent                   // child -> parent tree registration
	gcAgg                      // aggregate moving up
	gcDone                     // result flooding down
)

// PayloadUnits implements local.Sizer: a kind word plus the kind-specific
// content — (root, dist) for waves, the carried value for aggregates and the
// final broadcast.
func (m gcMsg) PayloadUnits() int64 {
	switch m.Kind {
	case gcWave:
		return 3
	case gcAgg, gcDone:
		return 1 + valueUnits(m.Value)
	default:
		return 1
	}
}

// valueUnits sizes a carried aggregate in O(log n)-bit words: scalars are one
// word, a convergecast table of port lists costs one word per origin plus one
// per port.
func valueUnits(v any) int64 {
	switch t := v.(type) {
	case map[graph.NodeID][]graph.EdgeID:
		var u int64
		for _, ports := range t {
			u += 1 + int64(len(ports))
		}
		return u
	default:
		return 1
	}
}

// Merge combines two aggregate payloads. It must be commutative and
// associative up to the equality the caller cares about; it may mutate and
// return a, but must not retain b's substructure for later mutation.
type Merge func(a, b any) any

// gcNode runs leader election by min-ID wave + BFS-tree aggregation.
//
// Wave phase: every node starts a wave for itself; waves carry (root, dist)
// and a node adopts the smallest root it has heard, re-flooding on
// improvement. After waveRounds rounds the true minimum has won everywhere
// (waveRounds must be at least the host diameter; we use an upper bound).
// Tree phase: each node's parent is the edge its winning wave arrived on;
// children register, then leaves start the convergecast. Done phase: the
// root floods the final value down the tree.
type gcNode struct {
	input      any
	merge      Merge
	waveRounds int

	root     graph.NodeID
	dist     int
	parent   graph.EdgeID
	hasPar   bool
	children map[graph.EdgeID]bool
	pending  map[graph.EdgeID]bool // children that have not reported yet
	acc      any
	sentUp   bool
	value    any
	haveVal  bool
}

func (p *gcNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		p.root = env.ID()
		p.dist = 0
		p.acc = p.input
		p.children = make(map[graph.EdgeID]bool)
		p.flood(env, gcMsg{Kind: gcWave, Root: p.root, Dist: 0}, noEdge)
		return
	}
	improved := false
	var from graph.EdgeID
	var fromDist int
	for _, m := range inbox {
		msg := m.Payload.(gcMsg)
		switch msg.Kind {
		case gcWave:
			if msg.Root < p.root {
				p.root, p.dist = msg.Root, msg.Dist+1
				improved, from, fromDist = true, m.Edge, msg.Dist
			}
		case gcParent:
			p.children[m.Edge] = true
			if p.pending != nil {
				p.pending[m.Edge] = true
			}
		case gcAgg:
			// Once the accumulator has been sent up it is aliased by the
			// parent, which may be merging it this very round on another
			// worker — and a late aggregate (a child whose gcParent
			// registration was delayed past our report) is lost to the
			// global result regardless, so it must not be merged in place.
			if !p.sentUp {
				p.acc = p.merge(p.acc, msg.Value)
			}
			delete(p.pending, m.Edge)
		case gcDone:
			if !p.haveVal {
				p.haveVal = true
				p.value = msg.Value
				for _, e := range sortedChildren(p.children) {
					env.Send(e, gcMsg{Kind: gcDone, Value: p.value})
				}
				env.Halt()
				return
			}
		}
	}
	if improved {
		p.hasPar = true
		p.parent = from
		p.children = make(map[graph.EdgeID]bool) // stale subtree forgotten
		p.flood(env, gcMsg{Kind: gcWave, Root: p.root, Dist: fromDist + 1}, from)
	}
	// Wave settling deadline: register with the final parent, then start
	// the convergecast once every registered child has reported.
	if round == p.waveRounds {
		p.pending = make(map[graph.EdgeID]bool, len(p.children))
		for e := range p.children {
			p.pending[e] = true
		}
		if p.hasPar {
			env.Send(p.parent, gcMsg{Kind: gcParent})
		}
	}
	if round > p.waveRounds && p.pending != nil && len(p.pending) == 0 && !p.sentUp {
		p.sentUp = true
		if p.hasPar {
			env.Send(p.parent, gcMsg{Kind: gcAgg, Value: p.acc})
		} else {
			// Root: the aggregate is complete; flood the result.
			p.haveVal = true
			p.value = p.acc
			for _, e := range sortedChildren(p.children) {
				env.Send(e, gcMsg{Kind: gcDone, Value: p.value})
			}
			env.Halt()
		}
	}
}

// sortedChildren returns the child edge set in increasing edge-ID order.
// The gcDone fan-out iterates it instead of the map so the send sweep (and
// with it message sequence assignment) is the same in every run.
func sortedChildren(m map[graph.EdgeID]bool) []graph.EdgeID {
	ids := make([]graph.EdgeID, 0, len(m))
	for e := range m {
		ids = append(ids, e)
	}
	slices.Sort(ids)
	return ids
}

// noEdge marks "no arrival edge" for the initial wave.
const noEdge = graph.EdgeID(-1)

func (p *gcNode) flood(env *local.Env, msg gcMsg, except graph.EdgeID) {
	for _, pt := range env.Ports() {
		if pt.Edge != except {
			env.Send(pt.Edge, msg)
		}
	}
}

// Converge executes the wave/tree/convergecast/broadcast protocol on host
// with arbitrary payloads: node v starts with inputs[v], the root merges
// every input with merge, and the merged value is flooded back down so every
// node returns it. waveRounds must be an upper bound on host's diameter.
// Round events stream through cfg.OnRound; cancelling ctx aborts within one
// node step.
func Converge(ctx context.Context, host *graph.Graph, inputs []any, merge Merge, waveRounds int, cfg local.Config) ([]any, local.Result, error) {
	if len(inputs) != host.NumNodes() {
		return nil, local.Result{}, fmt.Errorf("globalcompute: %d inputs for %d nodes", len(inputs), host.NumNodes())
	}
	if waveRounds < 1 {
		waveRounds = 1
	}
	nodes := make([]*gcNode, host.NumNodes())
	cfg.MaxRounds = waveRounds*3 + host.NumNodes() + 16
	res, err := local.RunCtx(ctx, host, func(v graph.NodeID) local.Protocol {
		nodes[v] = &gcNode{input: inputs[v], merge: merge, waveRounds: waveRounds}
		return nodes[v]
	}, cfg)
	if err != nil {
		return nil, res, err
	}
	if !res.Halted {
		return nil, res, fmt.Errorf("globalcompute: aggregation did not converge")
	}
	out := make([]any, len(nodes))
	for v, nd := range nodes {
		if !nd.haveVal {
			return nil, res, fmt.Errorf("globalcompute: node %d finished without a value", v)
		}
		out[v] = nd.value
	}
	return out, res, nil
}

// DetectTermination is distributed termination detection over host's BFS
// tree, the reusable primitive behind the "gossip-converge" scheme: every
// node starts with a local completion predicate done[v], the min-ID wave
// elects a root and builds the tree, the predicates are convergecast up
// under logical AND, and the root broadcasts the verdict back down — the
// "halt" wave when it is true. The returned verdict is the unanimous AND
// (all nodes learn the same value by construction); Result carries the
// detection pass's full round and message bill, which callers should account
// as its own phase — knowing you are done is not free, and this is its
// price. waveRounds must upper-bound host's diameter; each control message
// carries O(1) words.
func DetectTermination(ctx context.Context, host *graph.Graph, done []bool, waveRounds int, cfg local.Config) (bool, local.Result, error) {
	if len(done) != host.NumNodes() {
		return false, local.Result{}, fmt.Errorf("globalcompute: %d predicates for %d nodes", len(done), host.NumNodes())
	}
	inputs := make([]any, len(done))
	for i, d := range done {
		inputs[i] = d
	}
	and := func(a, b any) any { return a.(bool) && b.(bool) }
	vals, res, err := Converge(ctx, host, inputs, and, waveRounds, cfg)
	if err != nil {
		return false, res, err
	}
	return vals[0].(bool), res, nil
}

// run is Converge specialized back to the paper's int64 aggregation.
func run(ctx context.Context, host *graph.Graph, inputs []int64, agg Aggregator, waveRounds int, cfg local.Config) ([]int64, local.Result, error) {
	boxed := make([]any, len(inputs))
	for i, v := range inputs {
		boxed[i] = v
	}
	vals, res, err := Converge(ctx, host, boxed, func(a, b any) any { return agg(a.(int64), b.(int64)) }, waveRounds, cfg)
	if err != nil {
		return nil, res, err
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = v.(int64)
	}
	return out, res, nil
}

// Direct computes the aggregate by running the protocol on the raw graph:
// the Θ(D·m)-message baseline.
func Direct(ctx context.Context, g *graph.Graph, inputs []int64, agg Aggregator, diamBound int, cfg local.Config) (*Result, error) {
	if len(inputs) != g.NumNodes() {
		return nil, fmt.Errorf("globalcompute: %d inputs for %d nodes", len(inputs), g.NumNodes())
	}
	vals, runRes, err := run(ctx, g, inputs, agg, diamBound, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Values: vals, Run: runRes, HostEdges: g.NumEdges()}, nil
}

// OverSpanner computes the aggregate over a Sampler spanner: the paper's
// Section 7 pipeline. diamBound must upper-bound the diameter of g; the
// spanner's wave deadline is stretched by the certified stretch factor.
func OverSpanner(ctx context.Context, g *graph.Graph, inputs []int64, agg Aggregator, diamBound int, p core.Params, seed uint64, cfg local.Config) (*Result, error) {
	if len(inputs) != g.NumNodes() {
		return nil, fmt.Errorf("globalcompute: %d inputs for %d nodes", len(inputs), g.NumNodes())
	}
	sp, err := core.BuildDistributedCtx(ctx, g, p, seed, cfg)
	if err != nil {
		return nil, err
	}
	h, err := g.SubgraphByEdges(sp.S)
	if err != nil {
		return nil, err
	}
	vals, runRes, err := run(ctx, h, inputs, agg, diamBound*sp.StretchBound(), cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Values: vals, Run: runRes, SpannerRun: sp.Run, HostEdges: h.NumEdges()}, nil
}
