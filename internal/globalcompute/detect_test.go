package globalcompute

import (
	"context"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func localCfg(concurrent bool) local.Config {
	return local.Config{Seed: 11, Concurrent: concurrent, Workers: 2}
}

// TestDetectTermination pins the termination-detection primitive: the
// convergecast-AND verdict is true exactly when every node's predicate is
// true, every control message is billed, and both engines agree on the bill.
func TestDetectTermination(t *testing.T) {
	g := gen.ConnectedGNP(40, 0.1, xrand.New(17))
	diam := g.Diameter()
	allDone := make([]bool, g.NumNodes())
	for i := range allDone {
		allDone[i] = true
	}

	ok, run, err := DetectTermination(context.Background(), g, allDone, diam, localCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("all-true predicates convergecast to a false verdict")
	}
	if run.Messages == 0 || run.Rounds == 0 {
		t.Fatalf("detection billed %d messages over %d rounds; knowing you're done is not free", run.Messages, run.Rounds)
	}

	okc, runc, err := DetectTermination(context.Background(), g, allDone, diam, localCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if okc != ok || runc.Messages != run.Messages || runc.Rounds != run.Rounds {
		t.Fatalf("engines disagree: (%v, %d msgs, %d rounds) vs (%v, %d, %d)",
			ok, run.Messages, run.Rounds, okc, runc.Messages, runc.Rounds)
	}

	// One straggler flips the verdict everywhere.
	notDone := make([]bool, g.NumNodes())
	copy(notDone, allDone)
	notDone[g.NumNodes()-1] = false
	ok, _, err = DetectTermination(context.Background(), g, notDone, diam, localCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a false predicate did not veto the AND")
	}

	if _, _, err := DetectTermination(context.Background(), g, make([]bool, 3), diam, localCfg(false)); err == nil {
		t.Fatal("mismatched predicate length not rejected")
	}
}
