package graph

import "fmt"

// StretchReport summarizes how well a subgraph H approximates distances in G.
type StretchReport struct {
	// MaxEdgeStretch is max over edges (u,v) of G of dist_H(u,v). By the
	// standard equivalence (paper, footnote 1), H is an α-spanner of G iff
	// MaxEdgeStretch <= α.
	MaxEdgeStretch int
	// MeanEdgeStretch is the average of dist_H(u,v) over edges of G.
	MeanEdgeStretch float64
	// Edges is the number of edges in H.
	Edges int
	// Connected reports whether H spans every component of G (for connected
	// G: whether H is connected).
	Connected bool
}

// EdgeStretch computes the stretch of the spanning subgraph H of g, defined
// per the standard equivalence as the maximum over edges (u,v) of g of the
// (u,v)-distance in H. bound, if positive, caps the per-source BFS depth as
// an optimization; distances exceeding bound are treated as failures
// (Connected=false, MaxEdgeStretch set to Unreachable).
//
// The computation runs one (bounded) BFS in H per node of g that has at
// least one incident g-edge, O(n · (n+|S|)) in the worst case but far less
// when bound is small, which it always is for spanner validation (the paper
// guarantees stretch ≤ 2·3^k − 1).
func EdgeStretch(g, h *Graph, bound int) (StretchReport, error) {
	if g.NumNodes() != h.NumNodes() {
		return StretchReport{}, fmt.Errorf("graph: node count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	rep := StretchReport{Edges: h.NumEdges(), Connected: true}
	var sum int64
	var count int64
	for v := 0; v < g.NumNodes(); v++ {
		// Consider each g-edge once, from its smaller endpoint.
		needs := false
		for _, half := range g.Incident(NodeID(v)) {
			if half.Peer > NodeID(v) {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		dist := h.BFS(NodeID(v), bound)
		for _, half := range g.Incident(NodeID(v)) {
			if half.Peer <= NodeID(v) {
				continue
			}
			d := dist[half.Peer]
			if d == Unreachable {
				rep.Connected = false
				rep.MaxEdgeStretch = Unreachable
				return rep, nil
			}
			if rep.MaxEdgeStretch != Unreachable && d > rep.MaxEdgeStretch {
				rep.MaxEdgeStretch = d
			}
			sum += int64(d)
			count++
		}
	}
	if count > 0 {
		rep.MeanEdgeStretch = float64(sum) / float64(count)
	}
	return rep, nil
}

// VerifySpanner checks that the edge set S (given by IDs) is a subset of g's
// edges and that the induced subgraph is an alpha-spanner of g. It returns
// the subgraph and a report. This is the oracle used by every spanner test.
func VerifySpanner(g *Graph, s map[EdgeID]bool, alpha int) (*Graph, StretchReport, error) {
	h, err := g.SubgraphByEdges(s)
	if err != nil {
		return nil, StretchReport{}, fmt.Errorf("spanner not a subgraph: %w", err)
	}
	rep, err := EdgeStretch(g, h, alpha)
	if err != nil {
		return nil, StretchReport{}, err
	}
	if !rep.Connected {
		return h, rep, fmt.Errorf("spanner does not span: some g-edge has no path of length ≤ %d", alpha)
	}
	if rep.MaxEdgeStretch > alpha {
		return h, rep, fmt.Errorf("stretch %d exceeds bound %d", rep.MaxEdgeStretch, alpha)
	}
	return h, rep, nil
}
