package graph

// Unreachable is the distance reported for nodes not reached by a bounded or
// disconnected search.
const Unreachable = -1

// BFS returns the distance from src to every node, or Unreachable for nodes
// in other components. maxDepth < 0 means unbounded; otherwise nodes farther
// than maxDepth are reported Unreachable.
func (g *Graph) BFS(src NodeID, maxDepth int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && dist[v] == maxDepth {
			continue
		}
		for _, h := range g.rows(v) {
			if dist[h.Peer] == Unreachable {
				dist[h.Peer] = dist[v] + 1
				queue = append(queue, h.Peer)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v, or Unreachable.
func (g *Graph) Dist(u, v NodeID) int {
	if u == v {
		return 0
	}
	return g.BFS(u, -1)[v]
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0, -1)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns a component label per node (labels are 0-based and
// dense) and the number of components.
func (g *Graph) Components() ([]int, int) {
	label := make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	var queue []NodeID
	for s := 0; s < g.n; s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = next
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.rows(v) {
				if label[h.Peer] == -1 {
					label[h.Peer] = next
					queue = append(queue, h.Peer)
				}
			}
		}
		next++
	}
	return label, next
}

// Eccentricity returns the maximum finite distance from v, or Unreachable if
// v reaches no other node in a graph with more than one node.
func (g *Graph) Eccentricity(v NodeID) int {
	dist := g.BFS(v, -1)
	ecc := 0
	reached := false
	for u, d := range dist {
		if NodeID(u) == v {
			continue
		}
		if d != Unreachable {
			reached = true
			if d > ecc {
				ecc = d
			}
		}
	}
	if !reached && g.n > 1 {
		return Unreachable
	}
	return ecc
}

// Diameter returns the exact diameter (max pairwise distance) of a connected
// graph by running a BFS from every node; it returns Unreachable for
// disconnected graphs. Intended for the modest graph sizes used in tests and
// experiments.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		dist := g.BFS(NodeID(v), -1)
		for _, d := range dist {
			if d == Unreachable {
				return Unreachable
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// DiameterLowerBound returns a cheap lower bound on the diameter via a double
// BFS sweep from src. For trees it is exact; for general graphs it is a lower
// bound that is usually tight in practice.
func (g *Graph) DiameterLowerBound(src NodeID) int {
	dist := g.BFS(src, -1)
	far, fd := src, 0
	for v, d := range dist {
		if d > fd {
			far, fd = NodeID(v), d
		}
	}
	dist = g.BFS(far, -1)
	best := 0
	for _, d := range dist {
		if d > best {
			best = d
		}
	}
	return best
}

// Ball returns the set of nodes within distance t of v (including v), the
// set B_{G,t}(v) from the paper's Section 6.
func (g *Graph) Ball(v NodeID, t int) []NodeID {
	dist := g.BFS(v, t)
	out := make([]NodeID, 0, 16)
	for u, d := range dist {
		if d != Unreachable {
			out = append(out, NodeID(u))
		}
	}
	return out
}
