package graph

import (
	"slices"
	"testing"
)

// buildRef constructs a reference adjacency incrementally — the semantics of
// the historical [][]Half representation — for comparison against the CSR
// rebuild.
func buildRef(n int, edges []Edge) [][]Half {
	adj := make([][]Half, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], Half{Edge: e.ID, Peer: e.V})
		adj[e.V] = append(adj[e.V], Half{Edge: e.ID, Peer: e.U})
	}
	return adj
}

// TestCSRMatchesIncrementalOrder pins the bit-identity contract: the lazy
// counting-sort rebuild must reproduce, for every node, exactly the incident
// list order that per-edge appends would have produced — including after
// interleaved reads (which force mid-construction rebuilds) and on
// multigraphs with parallel edges.
func TestCSRMatchesIncrementalOrder(t *testing.T) {
	g := New(7)
	add := func(id EdgeID, u, v NodeID) {
		t.Helper()
		if err := g.AddEdgeWithID(id, u, v); err != nil {
			t.Fatal(err)
		}
	}
	add(10, 0, 1)
	add(3, 1, 2) // out-of-order ID exercises the sorted-index insert path
	add(11, 2, 0)
	_ = g.Incident(1) // force a rebuild mid-construction
	add(12, 1, 2)     // parallel to edge 3
	add(5, 4, 5)
	add(13, 3, 4)

	ref := buildRef(g.NumNodes(), g.Edges())
	for v := 0; v < g.NumNodes(); v++ {
		got := g.Incident(NodeID(v))
		if !slices.Equal(got, ref[v]) {
			t.Fatalf("node %d incident order diverged:\n got %v\nwant %v", v, got, ref[v])
		}
		if g.Degree(NodeID(v)) != len(ref[v]) {
			t.Fatalf("node %d degree %d, want %d", v, g.Degree(NodeID(v)), len(ref[v]))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSREdgeIDIndex(t *testing.T) {
	g := New(5)
	ids := []EdgeID{40, 7, 22, 9, 41}
	for i, id := range ids {
		if err := g.AddEdgeWithID(id, NodeID(i%5), NodeID((i+1)%5)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		e, ok := g.EdgeByID(id)
		if !ok || e.ID != id {
			t.Fatalf("EdgeByID(%d) = %v, %v", id, e, ok)
		}
		if !g.HasEdgeID(id) {
			t.Fatalf("HasEdgeID(%d) = false", id)
		}
	}
	for _, id := range []EdgeID{0, 8, 23, 100} {
		if _, ok := g.EdgeByID(id); ok {
			t.Fatalf("EdgeByID(%d) found a phantom edge", id)
		}
	}
	if err := g.AddEdgeWithID(22, 0, 1); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	// A fresh auto ID must exceed the largest explicit ID ever used.
	if id := g.AddEdge(0, 2); id != 42 {
		t.Fatalf("AddEdge assigned %d, want 42", id)
	}
}

// TestCSRAccessorsAllocFree pins the satellite contract: Incident, EdgeByID,
// HasEdgeID, and Degree on a built CSR graph are allocation-free.
func TestCSRAccessorsAllocFree(t *testing.T) {
	g := New(100)
	for v := 0; v < 99; v++ {
		g.AddEdge(NodeID(v), NodeID(v+1))
	}
	g.AddEdge(0, 99)
	_ = g.Incident(0) // build the CSR rows outside the measured region

	var sink []Half
	if n := testing.AllocsPerRun(100, func() {
		sink = g.Incident(50)
	}); n != 0 {
		t.Fatalf("Incident allocates %v per call, want 0", n)
	}
	var sinkE Edge
	if n := testing.AllocsPerRun(100, func() {
		sinkE, _ = g.EdgeByID(42)
	}); n != 0 {
		t.Fatalf("EdgeByID allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = g.HasEdgeID(17)
		_ = g.Degree(50)
	}); n != 0 {
		t.Fatalf("HasEdgeID/Degree allocate %v per call, want 0", n)
	}
	_, _ = sink, sinkE
}

// TestSubgraphDeterministic pins that SubgraphByEdges is independent of map
// iteration order: edges land in ascending ID order.
func TestSubgraphDeterministic(t *testing.T) {
	g := New(6)
	for v := 0; v < 5; v++ {
		g.AddEdge(NodeID(v), NodeID(v+1))
	}
	keep := map[EdgeID]bool{3: true, 0: true, 4: true}
	var prev *Graph
	for i := 0; i < 5; i++ {
		h, err := g.SubgraphByEdges(keep)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && h.Fingerprint() != prev.Fingerprint() {
			t.Fatal("SubgraphByEdges fingerprint varies across calls")
		}
		wantIDs := []EdgeID{0, 3, 4}
		for j, e := range h.Edges() {
			if e.ID != wantIDs[j] {
				t.Fatalf("subgraph edge %d has ID %d, want %d (ascending order)", j, e.ID, wantIDs[j])
			}
		}
		prev = h
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.NumEdges() != 2 || c.NumEdges() != 3 {
		t.Fatalf("clone not independent: %d/%d edges", g.NumEdges(), c.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() == c.Fingerprint() {
		t.Fatal("diverged clone shares fingerprint")
	}
}

// TestConcurrentLazyRebuild hammers a dirty graph from many readers: the
// rebuild must happen exactly once, race-free (run under -race), and every
// reader must observe the full adjacency.
func TestConcurrentLazyRebuild(t *testing.T) {
	g := New(50)
	for v := 1; v < 50; v++ {
		g.AddEdge(0, NodeID(v))
	}
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func() {
			total := 0
			for v := 0; v < 50; v++ {
				total += len(g.Incident(NodeID(v)))
			}
			done <- total
		}()
	}
	for w := 0; w < 8; w++ {
		if total := <-done; total != 2*49 {
			t.Fatalf("reader saw %d halves, want %d", total, 2*49)
		}
	}
}
