package graph

import "fmt"

// Dropped marks a node that belongs to no cluster in a contraction
// assignment. In the paper's terms such a node is "unclustered" and does not
// appear in the next-level graph G_{j+1}.
const Dropped = -1

// Contract builds the cluster graph G(C) of the paper's Section 2: nodes of
// the result are the clusters, and every edge of g whose endpoints lie in two
// different clusters survives with its original edge ID (so the result is in
// general a multigraph even when g is simple). Edges with at least one
// endpoint in a dropped node, and intra-cluster edges, disappear.
//
// assign maps each node of g to a cluster index in [0, numClusters), or
// Dropped. Cluster indices must be dense: every value in [0, numClusters)
// must be used by at least one node.
func Contract(g *Graph, assign []int, numClusters int) (*Graph, error) {
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("graph: assignment covers %d of %d nodes", len(assign), g.NumNodes())
	}
	used := make([]bool, numClusters)
	for v, c := range assign {
		if c == Dropped {
			continue
		}
		if c < 0 || c >= numClusters {
			return nil, fmt.Errorf("graph: node %d assigned to cluster %d outside [0,%d)", v, c, numClusters)
		}
		used[c] = true
	}
	for c, ok := range used {
		if !ok {
			return nil, fmt.Errorf("graph: cluster %d is empty", c)
		}
	}
	out := New(numClusters)
	for _, e := range g.Edges() {
		cu, cv := assign[e.U], assign[e.V]
		if cu == Dropped || cv == Dropped || cu == cv {
			continue
		}
		if err := out.AddEdgeWithID(e.ID, NodeID(cu), NodeID(cv)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
