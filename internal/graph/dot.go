package graph

import (
	"fmt"
	"io"
	"sort"
)

// DOTOptions styles a Graphviz export.
type DOTOptions struct {
	// Name is the graph name in the DOT header.
	Name string
	// Highlight marks edges (e.g. a spanner) to draw bold red; the rest are
	// drawn light gray.
	Highlight map[EdgeID]bool
	// NodeLabel overrides node labels (nil: the node ID).
	NodeLabel func(NodeID) string
	// NodeGroup assigns a fill-color class per node (e.g. a cluster index);
	// -1 or nil means unstyled. Groups cycle through a small palette.
	NodeGroup func(NodeID) int
}

// dotPalette holds fill colors cycled by NodeGroup.
var dotPalette = []string{
	"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
	"#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
}

// WriteDOT renders the graph in Graphviz DOT format. Output is
// deterministic: nodes and edges are emitted in ascending order.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle fontsize=10];\n", name); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		label := fmt.Sprint(v)
		if opts.NodeLabel != nil {
			label = opts.NodeLabel(NodeID(v))
		}
		attrs := fmt.Sprintf("label=%q", label)
		if opts.NodeGroup != nil {
			if grp := opts.NodeGroup(NodeID(v)); grp >= 0 {
				attrs += fmt.Sprintf(" style=filled fillcolor=%q", dotPalette[grp%len(dotPalette)])
			}
		}
		if _, err := fmt.Fprintf(w, "  %d [%s];\n", v, attrs); err != nil {
			return err
		}
	}
	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].ID < edges[j].ID })
	for _, e := range edges {
		style := `color="#cccccc"`
		if opts.Highlight[e.ID] {
			style = `color="#d62728" penwidth=2.0`
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d [%s];\n", e.U, e.V, style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
