package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func mustAdd(t *testing.T, g *Graph, id EdgeID, u, v NodeID) {
	t.Helper()
	if err := g.AddEdgeWithID(id, u, v); err != nil {
		t.Fatalf("AddEdgeWithID(%d,%d,%d): %v", id, u, v, err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1)
	e, ok := g.EdgeByID(id)
	if !ok || e.U != 0 || e.V != 1 {
		t.Fatalf("EdgeByID(%d) = %+v, %v", id, e, ok)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("wrong degrees")
	}
	if e.Other(0) != 1 || e.Other(1) != 0 {
		t.Fatal("Other broken")
	}
}

func TestEdgeOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	Edge{ID: 1, U: 0, V: 1}.Other(5)
}

func TestSelfLoopRejected(t *testing.T) {
	g := New(2)
	err := g.AddEdgeWithID(0, 1, 1)
	if !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("want ErrSelfLoop, got %v", err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 7, 0, 1)
	err := g.AddEdgeWithID(7, 1, 2)
	if !errors.Is(err, ErrDuplicateEdgeID) {
		t.Fatalf("want ErrDuplicateEdgeID, got %v", err)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	g := New(2)
	if err := g.AddEdgeWithID(0, 0, 5); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("want ErrNoSuchNode, got %v", err)
	}
}

func TestAutoIDsSkipUsed(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 0, 1)
	mustAdd(t, g, 1, 1, 2)
	id := g.AddEdge(2, 3)
	if id != 2 {
		t.Fatalf("expected fresh ID 2, got %d", id)
	}
	mustAdd(t, g, 100, 0, 2)
	id = g.AddEdge(0, 3)
	if id != 101 {
		t.Fatalf("expected fresh ID 101, got %d", id)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(0, 1)
	if a == b {
		t.Fatal("parallel edges share an ID")
	}
	if g.NumEdges() != 2 || g.Degree(0) != 2 {
		t.Fatal("parallel edge not recorded")
	}
	if g.IsSimple() {
		t.Fatal("graph with parallel edges claims simple")
	}
	if g.SimpleEdgeCount() != 1 {
		t.Fatalf("SimpleEdgeCount = %d, want 1", g.SimpleEdgeCount())
	}
	ids := g.EdgesBetween(0, 1)
	if len(ids) != 2 {
		t.Fatalf("EdgesBetween = %v", ids)
	}
	if nbrs := g.Neighbors(0); len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("Neighbors collapses parallels wrongly: %v", nbrs)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatal("clone shares state with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphByEdges(t *testing.T) {
	g := New(4)
	e1 := g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	e3 := g.AddEdge(2, 3)
	h, err := g.SubgraphByEdges(map[EdgeID]bool{e1: true, e3: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.NumNodes() != 4 {
		t.Fatalf("subgraph has %d edges, %d nodes", h.NumEdges(), h.NumNodes())
	}
	if !h.HasEdgeID(e1) || !h.HasEdgeID(e3) {
		t.Fatal("subgraph lost an edge ID")
	}
	if _, err := g.SubgraphByEdges(map[EdgeID]bool{999: true}); err == nil {
		t.Fatal("unknown edge ID accepted")
	}
}

func TestBFSOnPath(t *testing.T) {
	g := New(5)
	for v := 0; v < 4; v++ {
		g.AddEdge(NodeID(v), NodeID(v+1))
	}
	dist := g.BFS(0, -1)
	for v, d := range dist {
		if d != v {
			t.Fatalf("dist[%d] = %d", v, d)
		}
	}
	bounded := g.BFS(0, 2)
	if bounded[2] != 2 || bounded[3] != Unreachable {
		t.Fatalf("bounded BFS wrong: %v", bounded)
	}
	if g.Dist(0, 4) != 4 || g.Dist(2, 2) != 0 {
		t.Fatal("Dist wrong")
	}
}

func TestComponentsAndConnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	label, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] || label[4] == label[0] {
		t.Fatalf("bad labels %v", label)
	}
	if g.Connected() {
		t.Fatal("disconnected graph claims connected")
	}
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if !g.Connected() {
		t.Fatal("connected graph claims disconnected")
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := New(4)
	for v := 0; v < 3; v++ {
		g.AddEdge(NodeID(v), NodeID(v+1))
	}
	if d := g.Diameter(); d != 3 {
		t.Fatalf("diameter = %d", d)
	}
	if e := g.Eccentricity(1); e != 2 {
		t.Fatalf("ecc(1) = %d", e)
	}
	if lb := g.DiameterLowerBound(1); lb != 3 {
		t.Fatalf("double sweep on path should be exact, got %d", lb)
	}
	lonely := New(2)
	if lonely.Diameter() != Unreachable {
		t.Fatal("disconnected diameter should be Unreachable")
	}
	if lonely.Eccentricity(0) != Unreachable {
		t.Fatal("ecc in disconnected graph should be Unreachable")
	}
}

func TestBall(t *testing.T) {
	g := New(6)
	for v := 0; v < 5; v++ {
		g.AddEdge(NodeID(v), NodeID(v+1))
	}
	ball := g.Ball(2, 1)
	if len(ball) != 3 {
		t.Fatalf("ball = %v", ball)
	}
}

func TestContractBasic(t *testing.T) {
	// Square 0-1-2-3-0 with clusters {0,1} and {2,3}.
	g := New(4)
	mustAdd(t, g, 10, 0, 1)
	mustAdd(t, g, 11, 1, 2)
	mustAdd(t, g, 12, 2, 3)
	mustAdd(t, g, 13, 3, 0)
	cg, err := Contract(g, []int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cg.NumNodes() != 2 {
		t.Fatalf("cluster graph nodes = %d", cg.NumNodes())
	}
	// Edges 11 and 13 cross; 10 and 12 are internal.
	if cg.NumEdges() != 2 || !cg.HasEdgeID(11) || !cg.HasEdgeID(13) {
		t.Fatalf("cluster graph edges wrong: %d", cg.NumEdges())
	}
	if cg.IsSimple() {
		t.Fatal("contraction should have produced parallel edges")
	}
}

func TestContractDropped(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 0, 1)
	mustAdd(t, g, 1, 1, 2)
	cg, err := Contract(g, []int{0, Dropped, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cg.NumEdges() != 0 {
		t.Fatal("edges touching dropped nodes must vanish")
	}
}

func TestContractErrors(t *testing.T) {
	g := New(2)
	mustAdd(t, g, 0, 0, 1)
	if _, err := Contract(g, []int{0}, 1); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Contract(g, []int{0, 5}, 2); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}
	if _, err := Contract(g, []int{0, 0}, 2); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestEdgeStretchIdentity(t *testing.T) {
	g := New(5)
	for v := 0; v < 4; v++ {
		g.AddEdge(NodeID(v), NodeID(v+1))
	}
	rep, err := EdgeStretch(g, g.Clone(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxEdgeStretch != 1 || rep.MeanEdgeStretch != 1 {
		t.Fatalf("identity subgraph stretch = %+v", rep)
	}
}

func TestEdgeStretchCycle(t *testing.T) {
	// Removing one edge of the n-cycle gives stretch n-1 on that edge.
	const n = 8
	g := New(n)
	var removed EdgeID
	for v := 0; v < n; v++ {
		id := g.AddEdge(NodeID(v), NodeID((v+1)%n))
		if v == n-1 {
			removed = id
		}
	}
	keep := make(map[EdgeID]bool)
	for _, e := range g.Edges() {
		if e.ID != removed {
			keep[e.ID] = true
		}
	}
	h, err := g.SubgraphByEdges(keep)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EdgeStretch(g, h, -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxEdgeStretch != n-1 {
		t.Fatalf("stretch = %d, want %d", rep.MaxEdgeStretch, n-1)
	}
	// With a bound below n-1 the check must fail as disconnected-within-bound.
	rep, err = EdgeStretch(g, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Connected {
		t.Fatal("bounded stretch should have reported failure")
	}
}

func TestVerifySpanner(t *testing.T) {
	const n = 8
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(NodeID(v), NodeID((v+1)%n))
	}
	all := make(map[EdgeID]bool)
	for _, e := range g.Edges() {
		all[e.ID] = true
	}
	if _, _, err := VerifySpanner(g, all, 1); err != nil {
		t.Fatalf("full graph is a 1-spanner: %v", err)
	}
	// Empty edge set is not a spanner of a cycle.
	if _, _, err := VerifySpanner(g, map[EdgeID]bool{}, 3); err == nil {
		t.Fatal("empty spanner accepted")
	}
}

func TestValidateCatchesNothingOnGenerated(t *testing.T) {
	rng := xrand.New(1)
	g := New(50)
	for i := 0; i < 200; i++ {
		u := NodeID(rng.Intn(50))
		v := NodeID(rng.Intn(50))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: contracting with the identity assignment preserves the edge
// multiset exactly.
func TestContractIdentityProperty(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw % 60)
		rng := xrand.New(seed)
		g := New(n)
		for i := 0; i < m; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v)
			}
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = i
		}
		cg, err := Contract(g, assign, n)
		if err != nil {
			return false
		}
		if cg.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !cg.HasEdgeID(e.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle-ish property along edges:
// |dist(u) - dist(v)| <= 1 for every edge (u,v) in a connected graph.
func TestBFSLipschitzProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := xrand.New(seed)
		g := New(n)
		// random connected graph: a tree plus extras
		for v := 1; v < n; v++ {
			g.AddEdge(NodeID(v), NodeID(rng.Intn(v)))
		}
		for i := 0; i < n; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v)
			}
		}
		dist := g.BFS(0, -1)
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeID(t *testing.T) {
	g := New(4)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(1, 2)
	c := g.AddEdge(2, 3)
	if err := g.RemoveEdgeID(b); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.HasEdgeID(b) {
		t.Fatalf("edge %d survived removal (%d edges)", b, g.NumEdges())
	}
	// Survivors keep IDs, endpoints, and insertion order.
	edges := g.Edges()
	if edges[0].ID != a || edges[1].ID != c {
		t.Fatalf("survivor order = %d,%d, want %d,%d", edges[0].ID, edges[1].ID, a, c)
	}
	if got, ok := g.EdgeByID(c); !ok || got.U != 2 || got.V != 3 {
		t.Fatalf("EdgeByID(%d) = %+v, %v after removal", c, got, ok)
	}
	// Adjacency rebuilds: node 1 and 2 each lost the removed edge.
	if len(g.Incident(1)) != 1 || len(g.Incident(2)) != 1 {
		t.Fatalf("incidence after removal: %v / %v", g.Incident(1), g.Incident(2))
	}
	// The freed ID is never reused.
	if d := g.AddEdge(0, 3); d <= c {
		t.Fatalf("re-add assigned stale ID %d (last was %d)", d, c)
	}
	if err := g.RemoveEdgeID(99); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("removing a missing edge: err = %v, want ErrNoSuchEdge", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeIDParallel(t *testing.T) {
	// Removing one of two parallel edges keeps the other deliverable.
	g := New(2)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(0, 1)
	if err := g.RemoveEdgeID(a); err != nil {
		t.Fatal(err)
	}
	between := g.EdgesBetween(0, 1)
	if len(between) != 1 || between[0] != b {
		t.Fatalf("EdgesBetween = %v, want [%d]", between, b)
	}
}
