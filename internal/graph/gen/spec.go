package gen

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Spec is the declarative graph-family descriptor: one value names any
// generated workload graph. It is the shared vocabulary of cmd/simulate's
// flags, the HTTP server's graph spec, cmd/bench's workloads, and Go
// callers — Build resolves it through one registry, so the surfaces cannot
// drift. The zero values of unused parameters are ignored by families that
// do not need them.
type Spec struct {
	// Family is the registry name: one of Families().
	Family string
	// N is the node count. Families with structural node counts normalize
	// it: hypercube rounds to the nearest power of two; grid and torus
	// derive a square side when Rows/Cols are unset.
	N int
	// Degree parameterizes degree-driven families: gnp's average degree
	// (when P is unset), regular's degree, pa's attachment count, and
	// expander's degree.
	Degree float64
	// P is gnp's edge probability; it takes precedence over Degree.
	P float64
	// M is gnm's exact edge count.
	M int
	// Rows and Cols override the square shape of grid and torus.
	Rows, Cols int
	// Seed seeds the family's private RNG stream; deterministic families
	// ignore it.
	Seed uint64
	// Path is the edgelist family's file path.
	Path string
}

// Key returns a canonical string form of the spec: equal keys mean equal
// graphs (generators are deterministic), so the key works as a cache
// identity. Only set fields are printed, in a fixed order.
func (s Spec) Key() string {
	var b strings.Builder
	b.WriteString(s.Family)
	if s.N > 0 {
		fmt.Fprintf(&b, "/n=%d", s.N)
	}
	if s.Degree != 0 {
		fmt.Fprintf(&b, "/deg=%g", s.Degree)
	}
	if s.P != 0 {
		fmt.Fprintf(&b, "/p=%g", s.P)
	}
	if s.M != 0 {
		fmt.Fprintf(&b, "/m=%d", s.M)
	}
	if s.Rows != 0 || s.Cols != 0 {
		fmt.Fprintf(&b, "/rows=%d/cols=%d", s.Rows, s.Cols)
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, "/seed=%d", s.Seed)
	}
	if s.Path != "" {
		fmt.Fprintf(&b, "/path=%s", s.Path)
	}
	return b.String()
}

// Family describes one registered graph family.
type Family struct {
	// Name is the registry key used in Spec.Family.
	Name string
	// Description is a one-line human-readable summary (flag help, API
	// listings).
	Description string
	// Seeded reports whether the family consumes Spec.Seed.
	Seeded bool

	build func(s Spec, rng *xrand.RNG) (*graph.Graph, error)
}

// registry holds every buildable family. Families validate their parameters
// and return errors (not panics): a Spec is external input — CLI flags, HTTP
// bodies — and a bad one must surface as a 400, not a crash.
var registry = map[string]Family{
	"complete": {
		Name: "complete", Description: "complete graph K_n",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) { return complete(s.N), nil },
	},
	"cycle": {
		Name: "cycle", Description: "n-cycle",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) { return cycle(s.N), nil },
	},
	"path": {
		Name: "path", Description: "path on n nodes",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) { return path(s.N), nil },
	},
	"star": {
		Name: "star", Description: "star: hub plus n-1 leaves",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) { return star(s.N), nil },
	},
	"grid": {
		Name: "grid", Description: "rows x cols grid (square side derived from n when unset)",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) {
			rows, cols, err := s.dims(1)
			if err != nil {
				return nil, err
			}
			return grid(rows, cols), nil
		},
	},
	"torus": {
		Name: "torus", Description: "rows x cols torus, wraparound grid (rows, cols >= 3)",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) {
			rows, cols, err := s.dims(3)
			if err != nil {
				return nil, err
			}
			return torus(rows, cols), nil
		},
	},
	"hypercube": {
		Name: "hypercube", Description: "d-dimensional hypercube on 2^d nodes (d = round(log2 n))",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) {
			if s.N < 1 {
				return nil, fmt.Errorf("gen: hypercube needs n >= 1, got %d", s.N)
			}
			return hypercube(int(math.Round(math.Log2(float64(s.N))))), nil
		},
	},
	"barbell": {
		Name: "barbell", Description: "two n/2-cliques joined by a 4-node path",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) {
			if s.N < 6 {
				return nil, fmt.Errorf("gen: barbell needs n >= 6, got %d", s.N)
			}
			return barbell(s.N/2, 4), nil
		},
	},
	"gnp": {
		Name: "gnp", Description: "Erdős–Rényi G(n,p), patched connected (p from P or Degree/(n-1))",
		Seeded: true,
		build: func(s Spec, rng *xrand.RNG) (*graph.Graph, error) {
			p := s.P
			if p == 0 {
				if s.N < 2 {
					return nil, fmt.Errorf("gen: gnp needs n >= 2 to derive p from degree, got n=%d", s.N)
				}
				p = s.Degree / float64(s.N-1)
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("gen: gnp probability %g outside [0,1]", p)
			}
			return Connectify(gnp(s.N, p, rng), rng), nil
		},
	},
	"gnm": {
		Name: "gnm", Description: "uniform graph with exactly m edges, patched connected",
		Seeded: true,
		build: func(s Spec, rng *xrand.RNG) (*graph.Graph, error) {
			if s.M < 0 || s.M > s.N*(s.N-1)/2 {
				return nil, fmt.Errorf("gen: gnm(%d,%d) needs 0 <= m <= n(n-1)/2", s.N, s.M)
			}
			return Connectify(gnm(s.N, s.M, rng), rng), nil
		},
	},
	"tree": {
		Name: "tree", Description: "uniformly random recursive tree",
		Seeded: true,
		build:  func(s Spec, rng *xrand.RNG) (*graph.Graph, error) { return randomTree(s.N, rng), nil },
	},
	"regular": {
		Name: "regular", Description: "random d-regular graph (pairing model), patched connected",
		Seeded: true,
		build: func(s Spec, rng *xrand.RNG) (*graph.Graph, error) {
			d := int(s.Degree)
			if d < 1 || d >= s.N || s.N*d%2 != 0 {
				return nil, fmt.Errorf("gen: regular needs 1 <= deg < n with n*deg even, got n=%d deg=%d", s.N, d)
			}
			return Connectify(randomRegular(s.N, d, rng), rng), nil
		},
	},
	"pa": {
		Name: "pa", Description: "Barabási–Albert preferential attachment (Degree = attachments per node)",
		Seeded: true,
		build: func(s Spec, rng *xrand.RNG) (*graph.Graph, error) {
			m := int(s.Degree)
			if m < 1 {
				m = 1
			}
			if s.N < m+1 {
				return nil, fmt.Errorf("gen: pa needs n >= deg+1, got n=%d deg=%d", s.N, m)
			}
			return preferentialAttachment(s.N, m, rng), nil
		},
	},
	"expander": {
		Name: "expander", Description: "random simple d-regular expander: Hamiltonian base cycle plus stub matching",
		Seeded: true,
		build: func(s Spec, rng *xrand.RNG) (*graph.Graph, error) {
			d := int(s.Degree)
			if d == 0 {
				d = 4
			}
			if s.N < 3 || d < 2 {
				return nil, fmt.Errorf("gen: expander needs n >= 3 and deg >= 2, got n=%d deg=%d", s.N, d)
			}
			if d%2 == 1 && s.N%2 == 1 {
				return nil, fmt.Errorf("gen: expander with odd degree %d needs even n, got n=%d", d, s.N)
			}
			if d >= s.N {
				return nil, fmt.Errorf("gen: expander needs deg < n for a simple graph, got n=%d deg=%d", s.N, d)
			}
			return expander(s.N, d, rng), nil
		},
	},
	"edgelist": {
		Name: "edgelist", Description: "real-world graph loaded from a whitespace edge-list file (Path)",
		build: func(s Spec, _ *xrand.RNG) (*graph.Graph, error) {
			if s.Path == "" {
				return nil, fmt.Errorf("gen: edgelist needs a file path")
			}
			return LoadEdgeListFile(s.Path)
		},
	},
}

// dims resolves a grid-like family's shape: explicit Rows/Cols when set,
// otherwise a square side derived from N, with a minimum side constraint.
func (s Spec) dims(minSide int) (rows, cols int, err error) {
	rows, cols = s.Rows, s.Cols
	if rows == 0 && cols == 0 {
		side := int(math.Sqrt(float64(s.N)))
		rows, cols = side, side
	}
	if rows < minSide || cols < minSide {
		return 0, 0, fmt.Errorf("gen: %s needs rows, cols >= %d, got %dx%d", s.Family, minSide, rows, cols)
	}
	return rows, cols, nil
}

// Families lists every registered family, sorted by name.
func Families() []Family {
	out := make([]Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames lists the registered family names, sorted (flag help text).
func FamilyNames() []string {
	fams := Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// Build materializes the spec through the family registry. The graph is
// deterministic in the spec: the family draws randomness from a private
// stream seeded by Spec.Seed exactly as the historical constructors did
// (rng := xrand.New(seed) per call), so specs and direct constructor calls
// produce bit-identical graphs.
func Build(spec Spec) (*graph.Graph, error) {
	f, ok := registry[spec.Family]
	if !ok {
		return nil, fmt.Errorf("gen: unknown family %q (have %s)", spec.Family, strings.Join(FamilyNames(), ", "))
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("gen: negative node count %d", spec.N)
	}
	return f.build(spec, xrand.New(spec.Seed))
}
