package gen

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestBuildMatchesConstructors pins the redesign's compatibility contract:
// a Spec builds the bit-identical graph (same fingerprint, hence same edge
// IDs in the same insertion order) as the historical constructor call it
// replaces, including RNG consumption order for seeded families.
func TestBuildMatchesConstructors(t *testing.T) {
	cases := []struct {
		spec Spec
		want uint64
	}{
		{Spec{Family: "complete", N: 30}, Complete(30).Fingerprint()},
		{Spec{Family: "cycle", N: 17}, Cycle(17).Fingerprint()},
		{Spec{Family: "path", N: 9}, Path(9).Fingerprint()},
		{Spec{Family: "star", N: 12}, Star(12).Fingerprint()},
		{Spec{Family: "grid", N: 30}, Grid(5, 5).Fingerprint()},
		{Spec{Family: "grid", Rows: 3, Cols: 7}, Grid(3, 7).Fingerprint()},
		{Spec{Family: "torus", Rows: 4, Cols: 5}, Torus(4, 5).Fingerprint()},
		{Spec{Family: "hypercube", N: 64}, Hypercube(6).Fingerprint()},
		{Spec{Family: "barbell", N: 20}, Barbell(10, 4).Fingerprint()},
		{Spec{Family: "gnp", N: 64, P: 0.08, Seed: 1}, ConnectedGNP(64, 0.08, xrand.New(1)).Fingerprint()},
		{
			Spec{Family: "gnp", N: 120, Degree: 6, Seed: 7},
			func() uint64 {
				rng := xrand.New(7)
				return Connectify(GNP(120, 6/float64(119), rng), rng).Fingerprint()
			}(),
		},
		{
			Spec{Family: "gnm", N: 40, M: 70, Seed: 3},
			func() uint64 {
				rng := xrand.New(3)
				return Connectify(GNM(40, 70, rng), rng).Fingerprint()
			}(),
		},
		{Spec{Family: "tree", N: 50, Seed: 9}, RandomTree(50, xrand.New(9)).Fingerprint()},
		{
			Spec{Family: "regular", N: 40, Degree: 4, Seed: 2},
			func() uint64 {
				rng := xrand.New(2)
				return Connectify(RandomRegular(40, 4, rng), rng).Fingerprint()
			}(),
		},
		{Spec{Family: "pa", N: 50, Degree: 3, Seed: 5}, PreferentialAttachment(50, 3, xrand.New(5)).Fingerprint()},
		{Spec{Family: "expander", N: 40, Degree: 4, Seed: 8}, Expander(40, 4, xrand.New(8)).Fingerprint()},
	}
	for _, c := range cases {
		g, err := Build(c.spec)
		if err != nil {
			t.Fatalf("Build(%+v): %v", c.spec, err)
		}
		if got := g.Fingerprint(); got != c.want {
			t.Errorf("Build(%+v) fingerprint %x, want %x (constructor path)", c.spec, got, c.want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Build(%+v): %v", c.spec, err)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	bad := []Spec{
		{Family: "nope", N: 10},
		{Family: "barbell", N: 4},
		{Family: "torus", N: 4}, // derived side 2 < 3
		{Family: "regular", N: 10, Degree: 11},
		{Family: "regular", N: 5, Degree: 3}, // odd n*d
		{Family: "pa", N: 3, Degree: 8},
		{Family: "gnp", N: 10, P: 1.5},
		{Family: "gnm", N: 5, M: 100},
		{Family: "expander", N: 9, Degree: 3}, // odd degree, odd n
		{Family: "edgelist"},                  // no path
		{Family: "complete", N: -1},
	}
	for _, s := range bad {
		if _, err := Build(s); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", s)
		}
	}
}

func TestFamiliesSortedAndComplete(t *testing.T) {
	names := FamilyNames()
	if !strings.Contains(strings.Join(names, ","), "gnp") {
		t.Fatalf("registry lost gnp: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("family names not sorted: %v", names)
		}
	}
	for _, f := range Families() {
		if f.Description == "" {
			t.Errorf("family %s has no description", f.Name)
		}
	}
}

func TestSpecKeyInjectiveOnSetFields(t *testing.T) {
	specs := []Spec{
		{Family: "gnp", N: 64, Degree: 8},
		{Family: "gnp", N: 64, Degree: 8, Seed: 1},
		{Family: "gnp", N: 64, P: 0.5},
		{Family: "grid", Rows: 4, Cols: 6},
		{Family: "grid", Rows: 6, Cols: 4},
		{Family: "gnm", N: 64, M: 100},
		{Family: "edgelist", Path: "x.txt"},
	}
	seen := map[string]bool{}
	for _, s := range specs {
		k := s.Key()
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestExpanderShape(t *testing.T) {
	for _, d := range []int{2, 3, 4, 5} {
		g, err := Build(Spec{Family: "expander", N: 64, Degree: float64(d), Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("expander d=%d disconnected", d)
		}
		// Simplicity is load-bearing: the distributed sampler refuses
		// multigraphs, so the family must never emit parallel edges.
		if !g.IsSimple() {
			t.Fatalf("expander d=%d is not simple", d)
		}
		if g.NumEdges() != 64*d/2 {
			t.Fatalf("expander d=%d has %d edges, want %d", d, g.NumEdges(), 64*d/2)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if got := g.Degree(graph.NodeID(v)); got != d {
				t.Fatalf("expander d=%d: node %d has degree %d", d, v, got)
			}
		}
		// The whole point: diameter far below a cycle's. A random 64-node
		// 4-regular circulant union has diameter ~log n; allow slack.
		if d >= 4 {
			if diam := g.Diameter(); diam > 12 {
				t.Fatalf("expander d=%d diameter %d, want <= 12", d, diam)
			}
		}
	}
}
