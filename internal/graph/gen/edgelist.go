package gen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// LoadEdgeList reads a real-world graph from a whitespace-separated edge
// list — the format of SNAP, Network Repository, and KONECT dumps:
//
//   - one edge per line: two integer node labels separated by whitespace
//     (extra columns, e.g. weights or timestamps, are ignored);
//   - blank lines and lines starting with '#' or '%' are comments;
//   - node labels are arbitrary non-negative integers and are relabeled
//     densely (0..n-1) in first-appearance order, so the same file always
//     yields the same graph and fingerprint;
//   - self-loops are dropped (the model's graphs have none) and duplicate
//     edges — either orientation — are collapsed, since raw dumps commonly
//     list both directions of an undirected edge.
//
// The reader streams: memory is O(nodes + edges) — the label table, the
// deduplication set, and the edge staging slice — independent of file size.
// Malformed lines are errors carrying their line number.
func LoadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	labels := make(map[int64]graph.NodeID)
	intern := func(raw string, line int) (graph.NodeID, error) {
		x, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("gen: edge list line %d: bad node label %q", line, raw)
		}
		if x < 0 {
			return 0, fmt.Errorf("gen: edge list line %d: negative node label %d", line, x)
		}
		if id, ok := labels[x]; ok {
			return id, nil
		}
		if len(labels) >= math.MaxInt32 {
			return 0, fmt.Errorf("gen: edge list line %d: node count exceeds int32 range", line)
		}
		id := graph.NodeID(len(labels))
		labels[x] = id
		return id, nil
	}
	type pair struct{ a, b graph.NodeID }
	seen := make(map[pair]bool)
	var edges []pair
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gen: edge list line %d: want at least 2 fields, got %d", line, len(fields))
		}
		u, err := intern(fields[0], line)
		if err != nil {
			return nil, err
		}
		v, err := intern(fields[1], line)
		if err != nil {
			return nil, err
		}
		if u == v {
			continue // self-loop: dropped
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			continue // duplicate (or reverse orientation): collapsed
		}
		seen[pair{a, b}] = true
		edges = append(edges, pair{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gen: edge list read: %w", err)
	}
	// The node count is known only now, so edges stage in one flat slice
	// before emission — still O(edges), and the graph's CSR core makes the
	// emission itself allocation-light.
	g := graph.NewWithCapacity(len(labels), len(edges))
	for _, e := range edges {
		g.AddEdge(e.a, e.b)
	}
	return g, nil
}

// LoadEdgeListFile is LoadEdgeList over a file path (the edgelist Spec
// family's loader).
func LoadEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gen: edge list: %w", err)
	}
	defer f.Close()
	g, err := LoadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return g, nil
}
