package gen

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func TestLoadEdgeListBasic(t *testing.T) {
	const in = `# SNAP-style header comment
% KONECT-style comment too

10 20
20 30 0.5 1234567
30 10
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes / %d edges, want 3/3", g.NumNodes(), g.NumEdges())
	}
	// Dense relabeling is first-appearance order: 10->0, 20->1, 30->2.
	e := g.Edges()
	if e[0].U != 0 || e[0].V != 1 || e[1].U != 1 || e[1].V != 2 || e[2].U != 2 || e[2].V != 0 {
		t.Fatalf("relabeling not first-appearance order: %+v", e)
	}
	if !g.Connected() {
		t.Fatal("triangle should be connected")
	}
}

func TestLoadEdgeListDropsLoopsAndDuplicates(t *testing.T) {
	const in = `1 2
2 1
1 2
3 3
2 3
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// 1-2 kept once (reverse and repeat collapsed), 3-3 dropped, 2-3 kept.
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes / %d edges, want 3/2", g.NumNodes(), g.NumEdges())
	}
	if !g.IsSimple() {
		t.Fatal("loader emitted parallel edges")
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []struct{ name, in, wantSub string }{
		{"one-field", "7\n", "line 1"},
		{"non-integer", "a b\n", "bad node label"},
		{"negative", "-1 2\n", "negative node label"},
		{"late-error", "1 2\n3 four\n", "line 2"},
	}
	for _, c := range cases {
		_, err := LoadEdgeList(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestLoadEdgeListDeterministic(t *testing.T) {
	const in = "5 9\n9 5\n1 5\n9 1\n# tail comment\n"
	a, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same input produced different fingerprints")
	}
}

func TestLoadEdgeListFileMissing(t *testing.T) {
	if _, err := LoadEdgeListFile("/nonexistent/definitely-not-here.txt"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestEdgelistSpecRoundTrip(t *testing.T) {
	path := t.TempDir() + "/g.txt"
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%10)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Build(Spec{Family: "edgelist", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	want := Cycle(10).Fingerprint()
	if g.Fingerprint() != want {
		t.Fatalf("loaded 10-cycle fingerprint %x, want %x", g.Fingerprint(), want)
	}
}

// FuzzLoadEdgeList drives the loader with arbitrary text. The invariants:
// it never panics, and on success the graph is internally consistent,
// simple, and loop-free — whatever garbage the file contained.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n% comment\n\n10 20 0.5\n")
	f.Add("1 1\n2 2\n")                 // all self-loops
	f.Add("1 2\n2 1\n1 2\n")            // duplicates both orientations
	f.Add("-1 2\n")                     // negative label
	f.Add("a b\n")                      // non-integer
	f.Add("7\n")                        // too few fields
	f.Add("99999999999999999999 1\n")   // overflows int64
	f.Add("0 9223372036854775807\n")    // max int64 label
	f.Add("1\t2\r\n3   4\n")            // tabs, CR, runs of spaces
	f.Add(strings.Repeat("1 2\n", 100)) // many duplicates
	f.Add("#\n#1 2\n%3 4\n")            // comments that look like edges
	f.Fuzz(func(t *testing.T, in string) {
		g, err := LoadEdgeList(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loader built inconsistent graph: %v", err)
		}
		if !g.IsSimple() {
			t.Fatal("loader built a multigraph despite dedup")
		}
		for _, e := range g.Edges() {
			if e.U == e.V {
				t.Fatalf("loader kept self-loop %+v", e)
			}
		}
		// Determinism: reloading the same bytes gives the same graph.
		h, err := LoadEdgeList(strings.NewReader(in))
		if err != nil {
			t.Fatalf("second load failed where first succeeded: %v", err)
		}
		if g.Fingerprint() != h.Fingerprint() {
			t.Fatal("non-deterministic load")
		}
	})
}
