package gen

import (
	"repro/internal/graph"
	"repro/internal/xrand"
)

// This file keeps the historical per-family constructors compiling as thin
// wrappers over the same implementations the Spec registry uses. They are
// deprecated in favor of Build, the single descriptor-driven entry point
// shared by the CLI flags and the HTTP graph spec — new call sites should
// construct a Spec so the three surfaces cannot drift. The wrappers are
// bit-identical to the originals: same construction order, same RNG
// consumption, same fingerprints.

// Complete returns the complete graph K_n.
//
// Deprecated: use Build(Spec{Family: "complete", N: n}).
func Complete(n int) *graph.Graph { return complete(n) }

// Cycle returns the n-cycle (n >= 3).
//
// Deprecated: use Build(Spec{Family: "cycle", N: n}).
func Cycle(n int) *graph.Graph { return cycle(n) }

// Path returns the path on n nodes.
//
// Deprecated: use Build(Spec{Family: "path", N: n}).
func Path(n int) *graph.Graph { return path(n) }

// Star returns the star with one hub (node 0) and n-1 leaves.
//
// Deprecated: use Build(Spec{Family: "star", N: n}).
func Star(n int) *graph.Graph { return star(n) }

// Grid returns the rows x cols grid graph.
//
// Deprecated: use Build(Spec{Family: "grid", Rows: rows, Cols: cols}).
func Grid(rows, cols int) *graph.Graph { return grid(rows, cols) }

// Torus returns the rows x cols torus (grid with wraparound); rows and cols
// must be at least 3 to avoid parallel edges.
//
// Deprecated: use Build(Spec{Family: "torus", Rows: rows, Cols: cols}).
func Torus(rows, cols int) *graph.Graph { return torus(rows, cols) }

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
//
// Deprecated: use Build(Spec{Family: "hypercube", N: 1 << d}).
func Hypercube(d int) *graph.Graph { return hypercube(d) }

// GNP returns an Erdős–Rényi G(n, p) graph.
//
// Deprecated: use Build(Spec{Family: "gnp", N: n, P: p, Seed: seed}), which
// also patches the result connected.
func GNP(n int, p float64, rng *xrand.RNG) *graph.Graph { return gnp(n, p, rng) }

// GNM returns a uniform graph with n nodes and exactly m distinct edges
// (no parallel edges). It panics if m exceeds n(n-1)/2.
//
// Deprecated: use Build(Spec{Family: "gnm", N: n, M: m, Seed: seed}), which
// also patches the result connected.
func GNM(n, m int, rng *xrand.RNG) *graph.Graph { return gnm(n, m, rng) }

// RandomTree returns a uniformly random recursive tree on n nodes: node v>0
// attaches to a uniform node in [0, v).
//
// Deprecated: use Build(Spec{Family: "tree", N: n, Seed: seed}).
func RandomTree(n int, rng *xrand.RNG) *graph.Graph { return randomTree(n, rng) }

// RandomRegular returns a d-regular graph on n nodes via the pairing model,
// retrying until the pairing is simple. n*d must be even and d < n.
//
// Deprecated: use Build(Spec{Family: "regular", N: n, Degree: float64(d),
// Seed: seed}), which also patches the result connected.
func RandomRegular(n, d int, rng *xrand.RNG) *graph.Graph { return randomRegular(n, d, rng) }

// Barbell returns two cliques of size cliqueN joined by a path of pathLen
// intermediate nodes.
//
// Deprecated: use Build(Spec{Family: "barbell", N: n}) for the standard
// (n/2, 4) shape; call this directly only for custom path lengths.
func Barbell(cliqueN, pathLen int) *graph.Graph { return barbell(cliqueN, pathLen) }

// PreferentialAttachment returns a Barabási–Albert graph: starting from a
// star on m+1 nodes, each new node attaches to m distinct existing nodes
// chosen proportionally to degree.
//
// Deprecated: use Build(Spec{Family: "pa", N: n, Degree: float64(m),
// Seed: seed}).
func PreferentialAttachment(n, m int, rng *xrand.RNG) *graph.Graph {
	return preferentialAttachment(n, m, rng)
}

// ConnectedGNP returns G(n, p) patched to be connected: one extra edge joins
// a random representative of each non-first component to a random node of
// the first component's BFS tree frontier. The patch adds at most
// (#components − 1) edges.
//
// Deprecated: use Build(Spec{Family: "gnp", N: n, P: p, Seed: seed}).
func ConnectedGNP(n int, p float64, rng *xrand.RNG) *graph.Graph {
	return Connectify(gnp(n, p, rng), rng)
}

// Expander returns a d-regular expander candidate on n nodes (see the
// "expander" Spec family for the construction).
//
// Deprecated: use Build(Spec{Family: "expander", N: n, Degree: float64(d),
// Seed: seed}).
func Expander(n, d int, rng *xrand.RNG) *graph.Graph { return expander(n, d, rng) }
