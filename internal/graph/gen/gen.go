// Package gen builds the graph families used as experiment workloads.
//
// Every generator is deterministic given its *xrand.RNG argument, so
// experiments and tests are reproducible. Generators that can produce
// disconnected graphs offer a Connected variant that patches components
// together with the minimum number of extra edges; the paper assumes a
// connected communication graph throughout.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *graph.Graph {
	g := graph.New(n)
	if n < 2 {
		return g
	}
	for v := 0; v < n; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	return g
}

// Path returns the path on n nodes.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	return g
}

// Star returns the star with one hub (node 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, graph.NodeID(v))
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus (grid with wraparound); rows and cols
// must be at least 3 to avoid parallel edges.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs rows, cols >= 3")
	}
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if u > v {
				g.AddEdge(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	return g
}

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, rng *xrand.RNG) *graph.Graph {
	g := graph.New(n)
	if p <= 0 {
		return g
	}
	if p >= 1 {
		return Complete(n)
	}
	// Geometric skipping (Batagelj–Brandes) for o(n^2) expected work on
	// sparse inputs.
	lnq := math.Log(1 - p)
	v, w := 1, -1
	for v < n {
		r := rng.Float64()
		w += 1 + int(math.Log(1-r)/lnq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			g.AddEdge(graph.NodeID(v), graph.NodeID(w))
		}
	}
	return g
}

// GNM returns a uniform graph with n nodes and exactly m distinct edges
// (no parallel edges). It panics if m exceeds n(n-1)/2.
func GNM(n, m int, rng *xrand.RNG) *graph.Graph {
	max := n * (n - 1) / 2
	if m > max {
		panic(fmt.Sprintf("gen: GNM(%d,%d) exceeds %d possible edges", n, m, max))
	}
	g := graph.New(n)
	type pair struct{ a, b graph.NodeID }
	seen := make(map[pair]bool, m)
	for g.NumEdges() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			continue
		}
		seen[pair{u, v}] = true
		g.AddEdge(u, v)
	}
	return g
}

// RandomTree returns a uniformly random recursive tree on n nodes: node v>0
// attaches to a uniform node in [0, v).
func RandomTree(n int, rng *xrand.RNG) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID(rng.Intn(v)))
	}
	return g
}

// RandomRegular returns a d-regular graph on n nodes via the pairing model,
// retrying until the pairing is simple. n*d must be even and d < n.
func RandomRegular(n, d int, rng *xrand.RNG) *graph.Graph {
	if n*d%2 != 0 || d >= n || d < 0 {
		panic(fmt.Sprintf("gen: invalid RandomRegular(%d,%d)", n, d))
	}
	for attempt := 0; ; attempt++ {
		if g, ok := tryPairing(n, d, rng); ok {
			return g
		}
		if attempt > 1000 {
			panic("gen: RandomRegular failed to produce a simple pairing")
		}
	}
}

func tryPairing(n, d int, rng *xrand.RNG) (*graph.Graph, bool) {
	stubs := make([]graph.NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	type pair struct{ a, b graph.NodeID }
	seen := make(map[pair]bool, n*d/2)
	g := graph.New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			return nil, false
		}
		seen[pair{a, b}] = true
		g.AddEdge(u, v)
	}
	return g, true
}

// Barbell returns two cliques of size cliqueN joined by a path of pathLen
// intermediate nodes. This is the canonical low-conductance graph on which
// gossip-based schemes suffer.
func Barbell(cliqueN, pathLen int) *graph.Graph {
	n := 2*cliqueN + pathLen
	g := graph.New(n)
	addClique := func(base int) {
		for u := 0; u < cliqueN; u++ {
			for v := u + 1; v < cliqueN; v++ {
				g.AddEdge(graph.NodeID(base+u), graph.NodeID(base+v))
			}
		}
	}
	addClique(0)
	addClique(cliqueN + pathLen)
	prev := graph.NodeID(cliqueN - 1) // a node of the left clique
	for i := 0; i < pathLen; i++ {
		next := graph.NodeID(cliqueN + i)
		g.AddEdge(prev, next)
		prev = next
	}
	g.AddEdge(prev, graph.NodeID(cliqueN+pathLen)) // into the right clique
	return g
}

// Community returns a planted-partition graph: blocks of size blockSize with
// intra-block edge probability pIn and inter-block probability pOut.
func Community(blocks, blockSize int, pIn, pOut float64, rng *xrand.RNG) *graph.Graph {
	n := blocks * blockSize
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/blockSize == v/blockSize {
				p = pIn
			}
			if rng.Bernoulli(p) {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return g
}

// PreferentialAttachment returns a Barabási–Albert graph: starting from a
// star on m+1 nodes, each new node attaches to m distinct existing nodes
// chosen proportionally to degree.
func PreferentialAttachment(n, m int, rng *xrand.RNG) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: invalid PreferentialAttachment(%d,%d)", n, m))
	}
	g := graph.New(n)
	// Repeated-endpoints list: picking a uniform element is degree-biased.
	var ends []graph.NodeID
	for v := 1; v <= m; v++ {
		g.AddEdge(0, graph.NodeID(v))
		ends = append(ends, 0, graph.NodeID(v))
	}
	for v := m + 1; v < n; v++ {
		targets := make(map[graph.NodeID]bool, m)
		for len(targets) < m {
			targets[ends[rng.Intn(len(ends))]] = true
		}
		for u := range targets {
			g.AddEdge(graph.NodeID(v), u)
			ends = append(ends, graph.NodeID(v), u)
		}
	}
	return g
}

// ConnectedGNP returns G(n, p) patched to be connected: one extra edge joins
// a random representative of each non-first component to a random node of
// the first component's BFS tree frontier. The patch adds at most
// (#components − 1) edges.
func ConnectedGNP(n int, p float64, rng *xrand.RNG) *graph.Graph {
	g := GNP(n, p, rng)
	return Connectify(g, rng)
}

// Connectify adds the minimum number of random edges to make g connected and
// returns g (mutated in place).
func Connectify(g *graph.Graph, rng *xrand.RNG) *graph.Graph {
	label, k := g.Components()
	if k <= 1 {
		return g
	}
	// Pick one random representative per component, then chain them.
	reps := make([]graph.NodeID, k)
	counts := make([]int, k)
	for v, c := range label {
		counts[c]++
		// Reservoir sampling: replace the representative with prob 1/count.
		if rng.Intn(counts[c]) == 0 {
			reps[c] = graph.NodeID(v)
		}
	}
	for i := 1; i < k; i++ {
		g.AddEdge(reps[i-1], reps[i])
	}
	return g
}

// Multi returns a multigraph: base graph g with every edge duplicated so that
// edge (u,v) appears with multiplicity mult(u,v). Used by the peeling
// ablation, which needs controlled edge multiplicities.
func Multi(g *graph.Graph, mult func(e graph.Edge) int) *graph.Graph {
	out := graph.New(g.NumNodes())
	for _, e := range g.Edges() {
		m := mult(e)
		if m < 1 {
			m = 1
		}
		for i := 0; i < m; i++ {
			out.AddEdge(e.U, e.V)
		}
	}
	return out
}
