// Package gen builds the graph families used as experiment workloads.
//
// The front door is the declarative Spec API: describe a family by name and
// parameters ({Family, N, Degree/P/M, Rows, Cols, Seed, Path}) and Build it.
// The registry behind it (Families) is shared by the CLI flags, the HTTP
// server's graph spec, and Go callers, so the three surfaces cannot drift.
// The historical per-family constructors (Complete, GNP, Grid, ...) survive
// in deprecated.go as thin wrappers over the same implementations.
//
// Every generator is deterministic given its seed (or *xrand.RNG argument),
// so experiments and tests are reproducible. Generators emit edges straight
// into the graph's CSR edge table — memory stays O(edges), with no
// intermediate adjacency structures — which is what makes million-node
// workloads practical. Families that can produce disconnected graphs are
// patched connected by Connectify with the minimum number of extra edges;
// the paper assumes a connected communication graph throughout.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// complete returns the complete graph K_n.
func complete(n int) *graph.Graph {
	g := graph.NewWithCapacity(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}

// cycle returns the n-cycle (n >= 3).
func cycle(n int) *graph.Graph {
	g := graph.NewWithCapacity(n, n)
	if n < 2 {
		return g
	}
	for v := 0; v < n; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	return g
}

// path returns the path on n nodes.
func path(n int) *graph.Graph {
	g := graph.NewWithCapacity(n, n-1)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	return g
}

// star returns the star with one hub (node 0) and n-1 leaves.
func star(n int) *graph.Graph {
	g := graph.NewWithCapacity(n, n-1)
	for v := 1; v < n; v++ {
		g.AddEdge(0, graph.NodeID(v))
	}
	return g
}

// grid returns the rows x cols grid graph.
func grid(rows, cols int) *graph.Graph {
	g := graph.NewWithCapacity(rows*cols, 2*rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// torus returns the rows x cols torus (grid with wraparound); rows and cols
// must be at least 3 to avoid parallel edges.
func torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs rows, cols >= 3")
	}
	g := graph.NewWithCapacity(rows*cols, 2*rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// hypercube returns the d-dimensional hypercube on 2^d nodes.
func hypercube(d int) *graph.Graph {
	n := 1 << d
	g := graph.NewWithCapacity(n, n*d/2)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if u > v {
				g.AddEdge(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	return g
}

// gnp returns an Erdős–Rényi G(n, p) graph.
func gnp(n int, p float64, rng *xrand.RNG) *graph.Graph {
	if p >= 1 {
		return complete(n)
	}
	g := graph.New(n)
	if p <= 0 {
		return g
	}
	// Geometric skipping (Batagelj–Brandes) for o(n^2) expected work on
	// sparse inputs.
	lnq := math.Log(1 - p)
	v, w := 1, -1
	for v < n {
		r := rng.Float64()
		w += 1 + int(math.Log(1-r)/lnq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			g.AddEdge(graph.NodeID(v), graph.NodeID(w))
		}
	}
	return g
}

// gnm returns a uniform graph with n nodes and exactly m distinct edges
// (no parallel edges). It panics if m exceeds n(n-1)/2.
func gnm(n, m int, rng *xrand.RNG) *graph.Graph {
	max := n * (n - 1) / 2
	if m > max {
		panic(fmt.Sprintf("gen: GNM(%d,%d) exceeds %d possible edges", n, m, max))
	}
	g := graph.NewWithCapacity(n, m)
	type pair struct{ a, b graph.NodeID }
	seen := make(map[pair]bool, m)
	for g.NumEdges() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			continue
		}
		seen[pair{u, v}] = true
		g.AddEdge(u, v)
	}
	return g
}

// randomTree returns a uniformly random recursive tree on n nodes: node v>0
// attaches to a uniform node in [0, v).
func randomTree(n int, rng *xrand.RNG) *graph.Graph {
	g := graph.NewWithCapacity(n, n-1)
	for v := 1; v < n; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID(rng.Intn(v)))
	}
	return g
}

// randomRegular returns a d-regular graph on n nodes via the pairing model,
// retrying until the pairing is simple. n*d must be even and d < n.
func randomRegular(n, d int, rng *xrand.RNG) *graph.Graph {
	if n*d%2 != 0 || d >= n || d < 0 {
		panic(fmt.Sprintf("gen: invalid RandomRegular(%d,%d)", n, d))
	}
	for attempt := 0; ; attempt++ {
		if g, ok := tryPairing(n, d, rng); ok {
			return g
		}
		if attempt > 1000 {
			panic("gen: RandomRegular failed to produce a simple pairing")
		}
	}
}

func tryPairing(n, d int, rng *xrand.RNG) (*graph.Graph, bool) {
	stubs := make([]graph.NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	type pair struct{ a, b graph.NodeID }
	seen := make(map[pair]bool, n*d/2)
	g := graph.NewWithCapacity(n, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			return nil, false
		}
		seen[pair{a, b}] = true
		g.AddEdge(u, v)
	}
	return g, true
}

// barbell returns two cliques of size cliqueN joined by a path of pathLen
// intermediate nodes. This is the canonical low-conductance graph on which
// gossip-based schemes suffer.
func barbell(cliqueN, pathLen int) *graph.Graph {
	n := 2*cliqueN + pathLen
	g := graph.NewWithCapacity(n, cliqueN*(cliqueN-1)+pathLen+1)
	addClique := func(base int) {
		for u := 0; u < cliqueN; u++ {
			for v := u + 1; v < cliqueN; v++ {
				g.AddEdge(graph.NodeID(base+u), graph.NodeID(base+v))
			}
		}
	}
	addClique(0)
	addClique(cliqueN + pathLen)
	prev := graph.NodeID(cliqueN - 1) // a node of the left clique
	for i := 0; i < pathLen; i++ {
		next := graph.NodeID(cliqueN + i)
		g.AddEdge(prev, next)
		prev = next
	}
	g.AddEdge(prev, graph.NodeID(cliqueN+pathLen)) // into the right clique
	return g
}

// preferentialAttachment returns a Barabási–Albert graph: starting from a
// star on m+1 nodes, each new node attaches to m distinct existing nodes
// chosen proportionally to degree.
func preferentialAttachment(n, m int, rng *xrand.RNG) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: invalid PreferentialAttachment(%d,%d)", n, m))
	}
	g := graph.NewWithCapacity(n, m+(n-m-1)*m)
	// Repeated-endpoints list: picking a uniform element is degree-biased.
	ends := make([]graph.NodeID, 0, 2*(m+(n-m-1)*m))
	for v := 1; v <= m; v++ {
		g.AddEdge(0, graph.NodeID(v))
		ends = append(ends, 0, graph.NodeID(v))
	}
	picked := make([]graph.NodeID, 0, m)
	for v := m + 1; v < n; v++ {
		// Track picks in first-draw order, not map order: the emitted edge
		// order (and hence the graph fingerprint) must be a deterministic
		// function of the RNG stream for Spec keys to be cache identities.
		targets := make(map[graph.NodeID]bool, m)
		picked = picked[:0]
		for len(picked) < m {
			u := ends[rng.Intn(len(ends))]
			if !targets[u] {
				targets[u] = true
				picked = append(picked, u)
			}
		}
		for _, u := range picked {
			g.AddEdge(graph.NodeID(v), u)
			ends = append(ends, graph.NodeID(v), u)
		}
	}
	return g
}

// expander returns a simple d-regular expander candidate on n >= 3 nodes: a
// uniformly random Hamiltonian base cycle (which alone guarantees
// connectivity) plus a stub-matching pass that pairs each node's remaining
// d-2 half-edges at random, deferring any pair that would create a self-loop
// or a parallel edge to the next shuffle. Random regular graphs of this kind
// are expanders with high probability, and the result is always simple, so
// every downstream consumer — including the distributed sampler, which
// refuses multigraphs — accepts it. If the repair loop wedges with only
// unusable stub pairs left (likelier as d approaches n), the whole build
// restarts from a fresh cycle; for the sparse regimes expanders are for
// (d << n) a restart is rare and the expected cost stays O(n*d).
func expander(n, d int, rng *xrand.RNG) *graph.Graph {
	if n < 3 || d < 2 {
		panic(fmt.Sprintf("gen: invalid expander(%d,%d): need n >= 3, d >= 2", n, d))
	}
	if d%2 == 1 && n%2 == 1 {
		panic(fmt.Sprintf("gen: expander(%d,%d): odd degree needs even n", n, d))
	}
	if d >= n {
		panic(fmt.Sprintf("gen: expander(%d,%d): simple d-regular needs d < n", n, d))
	}
	edgeKey := func(u, v graph.NodeID) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	perm := make([]graph.NodeID, n)
	stubs := make([]graph.NodeID, 0, n*(d-2))
	pending := make([]graph.NodeID, 0, n*(d-2))
restart:
	for {
		g := graph.NewWithCapacity(n, n*d/2)
		seen := make(map[uint64]bool, n*d/2)
		for i := range perm {
			perm[i] = graph.NodeID(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := 0; i < n; i++ {
			u, v := perm[i], perm[(i+1)%n]
			g.AddEdge(u, v)
			seen[edgeKey(u, v)] = true
		}
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for k := 2; k < d; k++ {
				stubs = append(stubs, graph.NodeID(v))
			}
		}
		for len(stubs) > 0 {
			rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
			pending = pending[:0]
			progress := false
			for i := 0; i+1 < len(stubs); i += 2 {
				u, v := stubs[i], stubs[i+1]
				if u == v || seen[edgeKey(u, v)] {
					pending = append(pending, u, v)
					continue
				}
				g.AddEdge(u, v)
				seen[edgeKey(u, v)] = true
				progress = true
			}
			stubs, pending = pending, stubs
			if !progress && len(stubs) > 0 && !stubsSuitable(stubs, seen, edgeKey) {
				continue restart
			}
		}
		return g
	}
}

// stubsSuitable reports whether some pair of remaining stubs can still form a
// new simple edge; when it cannot, the stub-matching pass is wedged and only
// a full restart can finish the graph.
func stubsSuitable(stubs []graph.NodeID, seen map[uint64]bool, edgeKey func(u, v graph.NodeID) uint64) bool {
	for i := 0; i < len(stubs); i++ {
		for j := i + 1; j < len(stubs); j++ {
			if stubs[i] != stubs[j] && !seen[edgeKey(stubs[i], stubs[j])] {
				return true
			}
		}
	}
	return false
}

// Community returns a planted-partition graph: blocks of size blockSize with
// intra-block edge probability pIn and inter-block probability pOut. It is a
// building block (no Spec family of its own): callers compose it with their
// own block heuristics.
func Community(blocks, blockSize int, pIn, pOut float64, rng *xrand.RNG) *graph.Graph {
	n := blocks * blockSize
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/blockSize == v/blockSize {
				p = pIn
			}
			if rng.Bernoulli(p) {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return g
}

// Connectify adds the minimum number of random edges to make g connected and
// returns g (mutated in place).
func Connectify(g *graph.Graph, rng *xrand.RNG) *graph.Graph {
	label, k := g.Components()
	if k <= 1 {
		return g
	}
	// Pick one random representative per component, then chain them.
	reps := make([]graph.NodeID, k)
	counts := make([]int, k)
	for v, c := range label {
		counts[c]++
		// Reservoir sampling: replace the representative with prob 1/count.
		if rng.Intn(counts[c]) == 0 {
			reps[c] = graph.NodeID(v)
		}
	}
	for i := 1; i < k; i++ {
		g.AddEdge(reps[i-1], reps[i])
	}
	return g
}

// Multi returns a multigraph: base graph g with every edge duplicated so that
// edge (u,v) appears with multiplicity mult(u,v). Used by the peeling
// ablation, which needs controlled edge multiplicities.
func Multi(g *graph.Graph, mult func(e graph.Edge) int) *graph.Graph {
	out := graph.New(g.NumNodes())
	for _, e := range g.Edges() {
		m := mult(e)
		if m < 1 {
			m = 1
		}
		for i := 0; i < m; i++ {
			out.AddEdge(e.U, e.V)
		}
	}
	return out
}
