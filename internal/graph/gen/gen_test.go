package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func validate(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	validate(t, g)
	if g.NumEdges() != 15 {
		t.Fatalf("K6 has %d edges", g.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(graph.NodeID(v)) != 5 {
			t.Fatalf("degree of %d is %d", v, g.Degree(graph.NodeID(v)))
		}
	}
	if g.Diameter() != 1 {
		t.Fatal("K6 diameter != 1")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(10)
	validate(t, g)
	if g.NumEdges() != 10 || g.Diameter() != 5 {
		t.Fatalf("C10: edges=%d diam=%d", g.NumEdges(), g.Diameter())
	}
}

func TestPathAndStar(t *testing.T) {
	p := Path(7)
	validate(t, p)
	if p.NumEdges() != 6 || p.Diameter() != 6 {
		t.Fatal("path wrong")
	}
	s := Star(7)
	validate(t, s)
	if s.NumEdges() != 6 || s.Diameter() != 2 || s.Degree(0) != 6 {
		t.Fatal("star wrong")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	validate(t, g)
	if g.NumNodes() != 20 {
		t.Fatal("grid node count")
	}
	if g.NumEdges() != 4*4+3*5 {
		t.Fatalf("grid edges = %d", g.NumEdges())
	}
	if g.Diameter() != 3+4 {
		t.Fatalf("grid diameter = %d", g.Diameter())
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 4)
	validate(t, g)
	if g.NumEdges() != 2*16 {
		t.Fatalf("torus edges = %d", g.NumEdges())
	}
	if !g.IsSimple() {
		t.Fatal("torus should be simple")
	}
	for v := 0; v < 16; v++ {
		if g.Degree(graph.NodeID(v)) != 4 {
			t.Fatal("torus not 4-regular")
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5)
	validate(t, g)
	if g.NumNodes() != 32 || g.NumEdges() != 5*16 {
		t.Fatal("hypercube size wrong")
	}
	if g.Diameter() != 5 {
		t.Fatalf("Q5 diameter = %d", g.Diameter())
	}
}

func TestGNPEdgeCases(t *testing.T) {
	rng := xrand.New(1)
	if GNP(50, 0, rng).NumEdges() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	g := GNP(20, 1, rng)
	if g.NumEdges() != 190 {
		t.Fatal("GNP(p=1) is not complete")
	}
}

func TestGNPDensity(t *testing.T) {
	rng := xrand.New(7)
	const n, p = 400, 0.05
	g := GNP(n, p, rng)
	validate(t, g)
	if !g.IsSimple() {
		t.Fatal("GNP produced parallel edges")
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if got < 0.8*want || got > 1.2*want {
		t.Fatalf("GNP edges = %v, want about %v", got, want)
	}
}

func TestGNM(t *testing.T) {
	rng := xrand.New(3)
	g := GNM(50, 200, rng)
	validate(t, g)
	if g.NumEdges() != 200 || !g.IsSimple() {
		t.Fatal("GNM wrong")
	}
}

func TestGNMPanicsWhenOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GNM over capacity did not panic")
		}
	}()
	GNM(4, 10, xrand.New(1))
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(64, xrand.New(5))
	validate(t, g)
	if g.NumEdges() != 63 || !g.Connected() {
		t.Fatal("random tree is not a tree")
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(40, 4, xrand.New(9))
	validate(t, g)
	if !g.IsSimple() {
		t.Fatal("pairing left parallel edges")
	}
	for v := 0; v < 40; v++ {
		if g.Degree(graph.NodeID(v)) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(graph.NodeID(v)))
		}
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(10, 5)
	validate(t, g)
	if g.NumNodes() != 25 {
		t.Fatal("barbell node count")
	}
	if !g.Connected() {
		t.Fatal("barbell disconnected")
	}
	wantEdges := 2*45 + 6
	if g.NumEdges() != wantEdges {
		t.Fatalf("barbell edges = %d, want %d", g.NumEdges(), wantEdges)
	}
}

func TestCommunity(t *testing.T) {
	rng := xrand.New(11)
	g := Community(4, 25, 0.5, 0.01, rng)
	validate(t, g)
	// Intra-block edges should dominate.
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if int(e.U)/25 == int(e.V)/25 {
			intra++
		} else {
			inter++
		}
	}
	if intra < 4*100 || inter > intra {
		t.Fatalf("community structure missing: intra=%d inter=%d", intra, inter)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(200, 3, xrand.New(13))
	validate(t, g)
	if !g.Connected() {
		t.Fatal("PA graph disconnected")
	}
	if g.NumEdges() != 3+(200-4)*3 {
		t.Fatalf("PA edges = %d", g.NumEdges())
	}
	// The hub should be much hotter than the median node.
	if g.Degree(0) < 10 {
		t.Fatalf("PA hub degree = %d, expected a hub", g.Degree(0))
	}
}

func TestConnectedGNP(t *testing.T) {
	// p low enough that plain GNP is disconnected whp.
	g := ConnectedGNP(300, 0.003, xrand.New(17))
	validate(t, g)
	if !g.Connected() {
		t.Fatal("ConnectedGNP is disconnected")
	}
}

func TestConnectifyNoop(t *testing.T) {
	g := Cycle(10)
	before := g.NumEdges()
	Connectify(g, xrand.New(1))
	if g.NumEdges() != before {
		t.Fatal("Connectify added edges to a connected graph")
	}
}

func TestMulti(t *testing.T) {
	base := Cycle(6)
	m := Multi(base, func(e graph.Edge) int { return int(e.U%3) + 1 })
	validate(t, m)
	if m.SimpleEdgeCount() != 6 {
		t.Fatal("Multi changed the simple structure")
	}
	if m.NumEdges() <= 6 {
		t.Fatal("Multi added no multiplicity")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := ConnectedGNP(100, 0.05, xrand.New(42))
	b := ConnectedGNP(100, 0.05, xrand.New(42))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("generator not deterministic")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}
