// Package graph implements the undirected multigraphs on which every other
// component of this repository operates.
//
// Two modelling choices mirror the paper exactly:
//
//   - Every edge carries a unique EdgeID known to both endpoints. This is the
//     paper's model assumption (strictly between KT0 and KT1) and the device
//     that lets a node recognize parallel edges leading to the same cluster.
//   - Graphs may contain parallel edges. The input communication graph is
//     simple, but the virtual graphs G_1, ..., G_k produced by cluster
//     contraction are genuinely multigraphs, and edge IDs persist across
//     contraction: an edge of G_j is an original edge of G_0 whose endpoints
//     fell into different clusters.
//
// Self-loops are rejected: an intra-cluster edge simply disappears from the
// contracted graph, which is how the paper defines the cluster graph.
package graph

import (
	"errors"
	"fmt"
	"slices"
)

// NodeID identifies a node. Nodes of a graph with n nodes are 0..n-1.
type NodeID int32

// EdgeID uniquely identifies an edge. IDs are arbitrary (not necessarily
// dense); both endpoints of an edge know its ID.
type EdgeID int64

// Half is one endpoint's view of an incident edge: the edge's unique ID and
// the node at the other end. In the KT0-with-edge-IDs model an algorithm may
// use Edge but must not look at Peer; the simulator enforces this by not
// exposing Peer to protocol code unless KT1 is enabled.
type Half struct {
	Edge EdgeID
	Peer NodeID
}

// Edge is an undirected edge with its unique ID.
type Edge struct {
	ID   EdgeID
	U, V NodeID
}

// Other returns the endpoint of e different from v. It panics if v is not an
// endpoint, which always indicates a bug in the caller.
func (e Edge) Other(v NodeID) NodeID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d=(%d,%d)", v, e.ID, e.U, e.V))
}

// Graph is an undirected multigraph. The zero value is an empty graph with no
// nodes; use New to create a graph with a fixed node count.
type Graph struct {
	n      int
	edges  []Edge
	byID   map[EdgeID]int // edge ID -> index into edges
	adj    [][]Half
	nextID EdgeID // smallest never-auto-assigned ID
}

// New returns an empty graph on n nodes (0..n-1) and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		n:    n,
		byID: make(map[EdgeID]int),
		adj:  make([][]Half, n),
	}
}

// ErrDuplicateEdgeID reports an attempt to reuse an edge ID.
var ErrDuplicateEdgeID = errors.New("graph: duplicate edge ID")

// ErrSelfLoop reports an attempt to add a self-loop.
var ErrSelfLoop = errors.New("graph: self-loop")

// ErrNoSuchNode reports an out-of-range node.
var ErrNoSuchNode = errors.New("graph: node out of range")

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges, counting parallel edges separately.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge adds an undirected edge between u and v with a fresh unique ID and
// returns that ID. Parallel edges are allowed; self-loops are not.
func (g *Graph) AddEdge(u, v NodeID) EdgeID {
	id := g.nextID
	for {
		if _, used := g.byID[id]; !used {
			break
		}
		id++
	}
	if err := g.AddEdgeWithID(id, u, v); err != nil {
		// Only self-loop or bad node can fail here; surface as panic since
		// AddEdge has no error return by design (generators guarantee inputs).
		panic(err)
	}
	return id
}

// AddEdgeWithID adds an undirected edge between u and v using the caller's
// edge ID. It fails if the ID is already in use, if u == v, or if either
// endpoint is out of range. This is the constructor used when building the
// contracted graphs G_j, whose edges keep their original IDs.
func (g *Graph) AddEdgeWithID(id EdgeID, u, v NodeID) error {
	if u == v {
		return fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, u, v)
	}
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return fmt.Errorf("%w: (%d,%d) in graph of %d nodes", ErrNoSuchNode, u, v, g.n)
	}
	if _, used := g.byID[id]; used {
		return fmt.Errorf("%w: %d", ErrDuplicateEdgeID, id)
	}
	g.byID[id] = len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v})
	g.adj[u] = append(g.adj[u], Half{Edge: id, Peer: v})
	g.adj[v] = append(g.adj[v], Half{Edge: id, Peer: u})
	if id >= g.nextID {
		g.nextID = id + 1
	}
	return nil
}

// Degree returns the number of edge endpoints at v (parallel edges counted
// with multiplicity).
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Incident returns v's incident half-edges. The returned slice is owned by
// the graph and must not be modified; callers that need to retain or mutate
// it must copy. This is a deliberate exception to copy-at-boundaries: the
// simulator iterates incident lists in its innermost loop.
func (g *Graph) Incident(v NodeID) []Half { return g.adj[v] }

// Edges returns all edges. The returned slice is owned by the graph and must
// not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeByID returns the edge with the given ID.
func (g *Graph) EdgeByID(id EdgeID) (Edge, bool) {
	i, ok := g.byID[id]
	if !ok {
		return Edge{}, false
	}
	return g.edges[i], true
}

// HasEdgeID reports whether an edge with the given ID exists.
func (g *Graph) HasEdgeID(id EdgeID) bool {
	_, ok := g.byID[id]
	return ok
}

// Neighbors returns the distinct neighbors of v in ascending order (parallel
// edges collapsed). The slice is freshly allocated — the only allocation the
// call makes: duplicates are removed by sorting in place and compacting, not
// through a scratch set.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[v]))
	for i, h := range g.adj[v] {
		out[i] = h.Peer
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// EdgesBetween returns the IDs of all parallel edges between u and v.
func (g *Graph) EdgesBetween(u, v NodeID) []EdgeID {
	var out []EdgeID
	for _, h := range g.adj[u] {
		if h.Peer == v {
			out = append(out, h.Edge)
		}
	}
	return out
}

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		if err := c.AddEdgeWithID(e.ID, e.U, e.V); err != nil {
			panic(err) // cannot happen: source graph is consistent
		}
	}
	return c
}

// SubgraphByEdges returns the spanning subgraph of g containing exactly the
// edges whose IDs appear in keep (same node set, edge IDs preserved).
// Unknown IDs in keep are an error: a spanner must be a subset of E.
func (g *Graph) SubgraphByEdges(keep map[EdgeID]bool) (*Graph, error) {
	h := New(g.n)
	for id := range keep {
		e, ok := g.EdgeByID(id)
		if !ok {
			return nil, fmt.Errorf("graph: edge %d not in graph", id)
		}
		if err := h.AddEdgeWithID(e.ID, e.U, e.V); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Fingerprint returns a 64-bit FNV-1a digest of the graph's structure: the
// node count followed by every edge's (ID, U, V) in insertion order. Two
// graphs built by the same construction sequence share a fingerprint, and
// any mutation (adding an edge) changes it, so it serves as the
// graph-identity component of cache keys. Callers guarding against the
// (astronomically unlikely) 64-bit collision should additionally key on
// NumNodes and NumEdges.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(g.n))
	for _, e := range g.edges {
		mix(uint64(e.ID))
		mix(uint64(e.U))
		mix(uint64(e.V))
	}
	return h
}

// SimpleEdgeCount returns the number of distinct node pairs connected by at
// least one edge (i.e. |E| of the underlying simple graph).
func (g *Graph) SimpleEdgeCount() int {
	type pair struct{ a, b NodeID }
	seen := make(map[pair]bool, len(g.edges))
	for _, e := range g.edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		seen[pair{a, b}] = true
	}
	return len(seen)
}

// IsSimple reports whether the graph has no parallel edges.
func (g *Graph) IsSimple() bool { return g.SimpleEdgeCount() == len(g.edges) }

// Validate checks internal consistency; it is used by tests and costs O(n+m).
func (g *Graph) Validate() error {
	if len(g.adj) != g.n {
		return fmt.Errorf("graph: adjacency size %d != n %d", len(g.adj), g.n)
	}
	halves := 0
	for v := range g.adj {
		halves += len(g.adj[v])
		for _, h := range g.adj[v] {
			e, ok := g.EdgeByID(h.Edge)
			if !ok {
				return fmt.Errorf("graph: node %d lists unknown edge %d", v, h.Edge)
			}
			if e.Other(NodeID(v)) != h.Peer {
				return fmt.Errorf("graph: node %d edge %d peer mismatch", v, h.Edge)
			}
		}
	}
	if halves != 2*len(g.edges) {
		return fmt.Errorf("graph: %d half-edges for %d edges", halves, len(g.edges))
	}
	return nil
}
