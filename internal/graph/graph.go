// Package graph implements the undirected multigraphs on which every other
// component of this repository operates.
//
// Two modelling choices mirror the paper exactly:
//
//   - Every edge carries a unique EdgeID known to both endpoints. This is the
//     paper's model assumption (strictly between KT0 and KT1) and the device
//     that lets a node recognize parallel edges leading to the same cluster.
//   - Graphs may contain parallel edges. The input communication graph is
//     simple, but the virtual graphs G_1, ..., G_k produced by cluster
//     contraction are genuinely multigraphs, and edge IDs persist across
//     contraction: an edge of G_j is an original edge of G_0 whose endpoints
//     fell into different clusters.
//
// Self-loops are rejected: an intra-cluster edge simply disappears from the
// contracted graph, which is how the paper defines the cluster graph.
//
// # Representation
//
// The graph is stored in CSR (compressed sparse row) form so million-node
// graphs fit in O(edges) memory with no per-node allocations:
//
//   - edges is the dense edge table in insertion order — the single source
//     of truth and the basis of Fingerprint;
//   - adjacency is one flat []Half backing array indexed by a rowStart
//     offset table; Incident(v) returns a subslice view, allocation-free;
//   - the EdgeID index is a sorted slice of edge-table positions searched by
//     binary search, not a map — ~4 bytes per edge instead of ~50, and
//     appends are O(1) for monotonically increasing IDs (the common case:
//     AddEdge auto-IDs, contraction, and sorted subgraph construction all
//     insert in ascending ID order).
//
// The CSR arrays are rebuilt lazily: mutation marks the graph dirty and the
// next adjacency read rebuilds the row structure in one O(n+m) counting-sort
// pass that reproduces per-node insertion order exactly, so executions and
// goldens are bit-identical to the historical [][]Half representation.
// Construction (m AddEdge calls, then reads) therefore costs O(n+m) total.
// The rebuild is guarded by a mutex behind an atomic fast path: concurrent
// readers of an already-built graph (engine shards share cached graphs) pay
// one atomic load.
//
// Old callers constructed graphs through this same API, so no builder type
// is needed: New (or NewWithCapacity to preallocate), AddEdge in a loop, and
// the first read assembles the CSR rows.
package graph

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node. Nodes of a graph with n nodes are 0..n-1.
type NodeID int32

// EdgeID uniquely identifies an edge. IDs are arbitrary (not necessarily
// dense); both endpoints of an edge know its ID.
type EdgeID int64

// Half is one endpoint's view of an incident edge: the edge's unique ID and
// the node at the other end. In the KT0-with-edge-IDs model an algorithm may
// use Edge but must not look at Peer; the simulator enforces this by not
// exposing Peer to protocol code unless KT1 is enabled.
type Half struct {
	Edge EdgeID
	Peer NodeID
}

// Edge is an undirected edge with its unique ID.
type Edge struct {
	ID   EdgeID
	U, V NodeID
}

// Other returns the endpoint of e different from v. It panics if v is not an
// endpoint, which always indicates a bug in the caller.
func (e Edge) Other(v NodeID) NodeID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d=(%d,%d)", v, e.ID, e.U, e.V))
}

// Graph is an undirected multigraph. The zero value is an empty graph with no
// nodes; use New to create a graph with a fixed node count.
//
// Graph is safe for concurrent reads once constructed; mutation must not
// race with reads or other mutations.
type Graph struct {
	n      int
	edges  []Edge  // dense edge table, insertion order
	byID   []int32 // edge-table indices sorted by ascending EdgeID
	nextID EdgeID  // smallest never-auto-assigned ID (== max assigned ID + 1)

	// CSR adjacency, rebuilt lazily on first read after a mutation.
	clean    atomic.Bool
	mu       sync.Mutex // serializes rebuilds among concurrent readers
	rowStart []int32    // len n+1; node v's halves are halves[rowStart[v]:rowStart[v+1]]
	halves   []Half     // one flat backing array for every incident list
}

// New returns an empty graph on n nodes (0..n-1) and no edges.
func New(n int) *Graph {
	return NewWithCapacity(n, 0)
}

// NewWithCapacity returns an empty graph on n nodes with the edge table
// preallocated for edgeCap edges. Generators that know their edge count use
// it to avoid append regrowth on million-edge builds.
func NewWithCapacity(n, edgeCap int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	g := &Graph{n: n}
	if edgeCap > 0 {
		g.edges = make([]Edge, 0, edgeCap)
		g.byID = make([]int32, 0, edgeCap)
	}
	return g
}

// ErrDuplicateEdgeID reports an attempt to reuse an edge ID.
var ErrDuplicateEdgeID = errors.New("graph: duplicate edge ID")

// ErrSelfLoop reports an attempt to add a self-loop.
var ErrSelfLoop = errors.New("graph: self-loop")

// ErrNoSuchNode reports an out-of-range node.
var ErrNoSuchNode = errors.New("graph: node out of range")

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges, counting parallel edges separately.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge adds an undirected edge between u and v with a fresh unique ID and
// returns that ID. Parallel edges are allowed; self-loops are not.
func (g *Graph) AddEdge(u, v NodeID) EdgeID {
	// nextID exceeds every ID ever used, so it is always fresh.
	id := g.nextID
	if err := g.AddEdgeWithID(id, u, v); err != nil {
		// Only self-loop or bad node can fail here; surface as panic since
		// AddEdge has no error return by design (generators guarantee inputs).
		panic(err)
	}
	return id
}

// AddEdgeWithID adds an undirected edge between u and v using the caller's
// edge ID. It fails if the ID is already in use, if u == v, or if either
// endpoint is out of range. This is the constructor used when building the
// contracted graphs G_j, whose edges keep their original IDs.
func (g *Graph) AddEdgeWithID(id EdgeID, u, v NodeID) error {
	if u == v {
		return fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, u, v)
	}
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return fmt.Errorf("%w: (%d,%d) in graph of %d nodes", ErrNoSuchNode, u, v, g.n)
	}
	if len(g.edges) >= math.MaxInt32 {
		panic("graph: edge count exceeds int32 index range")
	}
	idx := int32(len(g.edges))
	if id >= g.nextID {
		// Fast path: id is larger than every existing ID, so the sorted
		// index grows by appending. Every hot construction path lands here.
		g.byID = append(g.byID, idx)
		g.nextID = id + 1
	} else {
		pos, found := g.searchID(id)
		if found {
			return fmt.Errorf("%w: %d", ErrDuplicateEdgeID, id)
		}
		g.byID = slices.Insert(g.byID, pos, idx)
	}
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v})
	g.clean.Store(false)
	return nil
}

// searchID locates id in the sorted index: the insertion position and
// whether an edge with that ID exists.
func (g *Graph) searchID(id EdgeID) (int, bool) {
	return slices.BinarySearchFunc(g.byID, id, func(i int32, target EdgeID) int {
		return cmp.Compare(g.edges[i].ID, target)
	})
}

// rows returns the CSR row slice for v, rebuilding the adjacency structure
// if a mutation invalidated it. The fast path is one atomic load.
func (g *Graph) rows(v NodeID) []Half {
	if !g.clean.Load() {
		g.rebuild()
	}
	return g.halves[g.rowStart[v]:g.rowStart[v+1]]
}

// rebuild reassembles the CSR arrays from the edge table with a counting
// sort. Edges are placed in insertion order, so each node's incident list
// order is identical to what incremental appends would have produced — the
// property that keeps executions bit-identical across representations.
func (g *Graph) rebuild() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.clean.Load() {
		return // another reader rebuilt while we waited
	}
	if 2*len(g.edges) > math.MaxInt32 {
		panic("graph: half-edge count exceeds int32 index range")
	}
	if cap(g.rowStart) >= g.n+1 {
		g.rowStart = g.rowStart[:g.n+1]
		clear(g.rowStart)
	} else {
		g.rowStart = make([]int32, g.n+1)
	}
	for i := range g.edges {
		e := &g.edges[i]
		g.rowStart[e.U+1]++
		g.rowStart[e.V+1]++
	}
	for v := 0; v < g.n; v++ {
		g.rowStart[v+1] += g.rowStart[v]
	}
	if cap(g.halves) >= 2*len(g.edges) {
		g.halves = g.halves[:2*len(g.edges)]
	} else {
		g.halves = make([]Half, 2*len(g.edges))
	}
	next := make([]int32, g.n)
	copy(next, g.rowStart[:g.n])
	for i := range g.edges {
		e := &g.edges[i]
		g.halves[next[e.U]] = Half{Edge: e.ID, Peer: e.V}
		next[e.U]++
		g.halves[next[e.V]] = Half{Edge: e.ID, Peer: e.U}
		next[e.V]++
	}
	g.clean.Store(true)
}

// Degree returns the number of edge endpoints at v (parallel edges counted
// with multiplicity).
//
//freelunch:noalloc
func (g *Graph) Degree(v NodeID) int {
	if !g.clean.Load() {
		g.rebuild()
	}
	return int(g.rowStart[v+1] - g.rowStart[v])
}

// Incident returns v's incident half-edges — a view into the graph's flat
// CSR backing array. The returned slice is owned by the graph and must not
// be modified; callers that need to retain or mutate it must copy. This is a
// deliberate exception to copy-at-boundaries: the simulator iterates
// incident lists in its innermost loop, and the call is allocation-free.
//
//freelunch:noalloc
func (g *Graph) Incident(v NodeID) []Half { return g.rows(v) }

// Edges returns all edges in insertion order. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeByID returns the edge with the given ID. The lookup is a binary search
// over the sorted ID index: allocation-free, O(log m).
//
//freelunch:noalloc
func (g *Graph) EdgeByID(id EdgeID) (Edge, bool) {
	pos, found := g.searchID(id)
	if !found {
		return Edge{}, false
	}
	return g.edges[g.byID[pos]], true
}

// HasEdgeID reports whether an edge with the given ID exists.
func (g *Graph) HasEdgeID(id EdgeID) bool {
	_, found := g.searchID(id)
	return found
}

// Neighbors returns the distinct neighbors of v in ascending order (parallel
// edges collapsed). The slice is freshly allocated — the only allocation the
// call makes: duplicates are removed by sorting in place and compacting, not
// through a scratch set.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	row := g.rows(v)
	out := make([]NodeID, len(row))
	for i, h := range row {
		out[i] = h.Peer
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// EdgesBetween returns the IDs of all parallel edges between u and v.
func (g *Graph) EdgesBetween(u, v NodeID) []EdgeID {
	var out []EdgeID
	for _, h := range g.rows(u) {
		if h.Peer == v {
			out = append(out, h.Edge)
		}
	}
	return out
}

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	if g.n == 0 {
		return 0
	}
	if !g.clean.Load() {
		g.rebuild()
	}
	max := int32(0)
	for v := 0; v < g.n; v++ {
		if d := g.rowStart[v+1] - g.rowStart[v]; d > max {
			max = d
		}
	}
	return int(max)
}

// ErrNoSuchEdge reports a removal of an edge ID not in the graph.
var ErrNoSuchEdge = errors.New("graph: no such edge")

// RemoveEdgeID deletes the edge with the given ID. Later edges keep their
// IDs and their relative insertion order (the edge table is compacted, not
// reordered), and the ID is never reused: nextID only grows, so a graph that
// deletes and re-adds edges still assigns fresh IDs. The CSR adjacency is
// rebuilt lazily on the next read, exactly as after an insertion. This is
// the mutation path of the adversary layer's dynamic-topology events.
func (g *Graph) RemoveEdgeID(id EdgeID) error {
	pos, found := g.searchID(id)
	if !found {
		return fmt.Errorf("%w: %d", ErrNoSuchEdge, id)
	}
	idx := g.byID[pos]
	g.edges = slices.Delete(g.edges, int(idx), int(idx)+1)
	g.byID = slices.Delete(g.byID, pos, pos+1)
	// Edge-table positions after the removed edge shifted down by one.
	for i := range g.byID {
		if g.byID[i] > idx {
			g.byID[i]--
		}
	}
	g.clean.Store(false)
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return &Graph{
		n:      g.n,
		edges:  slices.Clone(g.edges),
		byID:   slices.Clone(g.byID),
		nextID: g.nextID,
		// CSR arrays stay unset; the clone rebuilds on first read.
	}
}

// SubgraphByEdges returns the spanning subgraph of g containing exactly the
// edges whose IDs appear in keep (same node set, edge IDs preserved, edges
// inserted in ascending ID order so the result is deterministic). Unknown
// IDs in keep are an error: a spanner must be a subset of E.
func (g *Graph) SubgraphByEdges(keep map[EdgeID]bool) (*Graph, error) {
	ids := make([]EdgeID, 0, len(keep))
	for id := range keep {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	h := NewWithCapacity(g.n, len(ids))
	for _, id := range ids {
		e, ok := g.EdgeByID(id)
		if !ok {
			return nil, fmt.Errorf("graph: edge %d not in graph", id)
		}
		if err := h.AddEdgeWithID(e.ID, e.U, e.V); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Fingerprint returns a 64-bit FNV-1a digest of the graph's structure: the
// node count followed by every edge's (ID, U, V) in insertion order. Two
// graphs built by the same construction sequence share a fingerprint, and
// any mutation (adding an edge) changes it, so it serves as the
// graph-identity component of cache keys. Callers guarding against the
// (astronomically unlikely) 64-bit collision should additionally key on
// NumNodes and NumEdges.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(g.n))
	for _, e := range g.edges {
		mix(uint64(e.ID))
		mix(uint64(e.U))
		mix(uint64(e.V))
	}
	return h
}

// SimpleEdgeCount returns the number of distinct node pairs connected by at
// least one edge (i.e. |E| of the underlying simple graph).
func (g *Graph) SimpleEdgeCount() int {
	type pair struct{ a, b NodeID }
	seen := make(map[pair]bool, len(g.edges))
	for _, e := range g.edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		seen[pair{a, b}] = true
	}
	return len(seen)
}

// IsSimple reports whether the graph has no parallel edges.
func (g *Graph) IsSimple() bool { return g.SimpleEdgeCount() == len(g.edges) }

// Validate checks internal consistency; it is used by tests and costs
// O(n + m log m).
func (g *Graph) Validate() error {
	if len(g.byID) != len(g.edges) {
		return fmt.Errorf("graph: ID index has %d entries for %d edges", len(g.byID), len(g.edges))
	}
	for i := 1; i < len(g.byID); i++ {
		if g.edges[g.byID[i-1]].ID >= g.edges[g.byID[i]].ID {
			return fmt.Errorf("graph: ID index out of order at position %d", i)
		}
	}
	halves := 0
	for v := 0; v < g.n; v++ {
		row := g.rows(NodeID(v))
		halves += len(row)
		for _, h := range row {
			e, ok := g.EdgeByID(h.Edge)
			if !ok {
				return fmt.Errorf("graph: node %d lists unknown edge %d", v, h.Edge)
			}
			if e.Other(NodeID(v)) != h.Peer {
				return fmt.Errorf("graph: node %d edge %d peer mismatch", v, h.Edge)
			}
		}
	}
	if halves != 2*len(g.edges) {
		return fmt.Errorf("graph: %d half-edges for %d edges", halves, len(g.edges))
	}
	return nil
}
