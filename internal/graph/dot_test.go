package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var b strings.Builder
	err := g.WriteDOT(&b, DOTOptions{
		Name:      "test",
		Highlight: map[EdgeID]bool{e1: true},
		NodeLabel: func(v NodeID) string { return "n" + string(rune('0'+v)) },
		NodeGroup: func(v NodeID) int { return int(v) % 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`graph "test" {`,
		`label="n0"`,
		"0 -- 1",
		"1 -- 2",
		"penwidth=2.0", // highlighted edge
		`color="#cccccc"`,
		"fillcolor=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	var b strings.Builder
	if err := g.WriteDOT(&b, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `graph "G" {`) {
		t.Fatal("default graph name missing")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var a, b strings.Builder
	if err := g.WriteDOT(&a, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&b, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("DOT output not deterministic")
	}
}
