package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro"
)

// namespace prefixes every exposed metric family.
const namespace = "freelunch"

// writeExposition renders the Prometheus text exposition: the server's own
// counters and gauges first, then the per-scheme MetricsSink families
// merged so each family's HELP/TYPE header appears exactly once even
// though every scheme contributes samples to it.
func (s *Server) writeExposition(w io.Writer) {
	for _, f := range s.serverFamilies() {
		writeFamily(w, f)
	}
	for _, f := range s.schemeFamilies() {
		writeFamily(w, f)
	}
}

// serverFamilies snapshots the service-level counters.
func (s *Server) serverFamilies() []repro.MetricFamily {
	fams := []repro.MetricFamily{
		{Name: "serve_requests_total", Type: "counter", Help: "HTTP requests served, by endpoint and status code."},
		{Name: "serve_simulate_total", Type: "counter", Help: "Simulation requests, by scheme and outcome."},
		{Name: "serve_rejections_total", Type: "counter", Help: "Requests rejected with 429 because a shard queue was full."},
		{Name: "serve_queue_depth", Type: "gauge", Help: "Jobs waiting in each shard queue."},
		{Name: "serve_queue_capacity", Type: "gauge", Help: "Per-shard queue capacity."},
		{Name: "serve_shards", Type: "gauge", Help: "Engine shards in the pool."},
		{Name: "serve_inflight", Type: "gauge", Help: "Simulation requests currently admitted (queued or running)."},
		{Name: "serve_spanner_cache_hits_total", Type: "counter", Help: "Successful runs that reused a cached stage-1 spanner (phase sampler(cached) on the bill)."},
		{Name: "serve_graph_cache_hits_total", Type: "counter", Help: "Requests whose generated graph came from the graph LRU."},
		{Name: "serve_graph_cache_misses_total", Type: "counter", Help: "Requests whose graph had to be built."},
		{Name: "serve_stream_dropped_events_total", Type: "counter", Help: "SSE progress events dropped because a stream consumer lagged."},
		{Name: "serve_draining", Type: "gauge", Help: "1 while the server is draining, 0 while serving."},
	}
	s.countMu.Lock()
	for _, k := range sortedKeys(s.httpRequests) {
		fams[0].Samples = append(fams[0].Samples, repro.MetricSample{
			Labels: []repro.MetricLabel{{Name: "endpoint", Value: k[0]}, {Name: "code", Value: k[1]}},
			Value:  float64(s.httpRequests[k]),
		})
	}
	for _, k := range sortedKeys(s.outcomes) {
		fams[1].Samples = append(fams[1].Samples, repro.MetricSample{
			Labels: []repro.MetricLabel{{Name: "scheme", Value: k[0]}, {Name: "outcome", Value: k[1]}},
			Value:  float64(s.outcomes[k]),
		})
	}
	s.countMu.Unlock()
	fams[2].Samples = scalar(float64(s.rejections.Load()))
	for i, depth := range s.pool.depths() {
		fams[3].Samples = append(fams[3].Samples, repro.MetricSample{
			Labels: []repro.MetricLabel{{Name: "shard", Value: strconv.Itoa(i)}},
			Value:  float64(depth),
		})
	}
	fams[4].Samples = scalar(float64(s.cfg.QueueDepth))
	fams[5].Samples = scalar(float64(s.cfg.Shards))
	fams[6].Samples = scalar(float64(s.inflight.Load()))
	fams[7].Samples = scalar(float64(s.spannerHits.Load()))
	fams[8].Samples = scalar(float64(s.graphHits.Load()))
	fams[9].Samples = scalar(float64(s.graphMisses.Load()))
	fams[10].Samples = scalar(float64(s.streamDrops.Load()))
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	fams[11].Samples = scalar(draining)
	return fams
}

// schemeFamilies merges every scheme sink's snapshot families by name, so
// the exposition carries one header per family with a sample per
// (scheme, phase).
func (s *Server) schemeFamilies() []repro.MetricFamily {
	s.sinksMu.Lock()
	names := make([]string, 0, len(s.sinks))
	snaps := make(map[string]repro.MetricsSnapshot, len(s.sinks))
	for name, sink := range s.sinks {
		names = append(names, name)
		snaps[name] = sink.Snapshot()
	}
	s.sinksMu.Unlock()
	sort.Strings(names)

	var (
		order  []string
		merged = make(map[string]*repro.MetricFamily)
	)
	for _, scheme := range names {
		fams := snaps[scheme].MetricFamilies(repro.MetricLabel{Name: "scheme", Value: scheme})
		for _, f := range fams {
			m, ok := merged[f.Name]
			if !ok {
				cp := f
				cp.Samples = append([]repro.MetricSample(nil), f.Samples...)
				merged[f.Name] = &cp
				order = append(order, f.Name)
				continue
			}
			m.Samples = append(m.Samples, f.Samples...)
		}
	}
	out := make([]repro.MetricFamily, 0, len(order))
	for _, name := range order {
		out = append(out, *merged[name])
	}
	return out
}

// scalar is a single unlabeled sample.
func scalar(v float64) []repro.MetricSample {
	return []repro.MetricSample{{Value: v}}
}

// sortedKeys returns the map's keys in lexicographic order so the
// exposition is deterministic.
func sortedKeys(m map[[2]string]int64) [][2]string {
	keys := make([][2]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// writeFamily renders one family: HELP and TYPE once, then each sample as
// name[suffix]{labels} value.
func writeFamily(w io.Writer, f repro.MetricFamily) {
	if len(f.Samples) == 0 {
		return
	}
	name := namespace + "_" + f.Name
	fmt.Fprintf(w, "# HELP %s %s\n", name, f.Help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, f.Type)
	for _, sm := range f.Samples {
		fmt.Fprintf(w, "%s%s%s %s\n", name, sm.Suffix, renderLabels(sm.Labels), formatValue(sm.Value))
	}
}

// renderLabels formats {k="v",...} with Prometheus label-value escaping
// (backslash, double quote, newline).
func renderLabels(labels []repro.MetricLabel) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest float form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
