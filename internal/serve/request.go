package serve

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// SimulateRequest is the POST /v1/simulate (and /v1/stream) body: which
// scheme to run, on what graph, simulating which algorithm, under which
// per-request budgets and knobs.
type SimulateRequest struct {
	Scheme    string     `json:"scheme"`
	Graph     GraphSpec  `json:"graph"`
	Algorithm AlgoSpec   `json:"algorithm"`
	Options   RunOptions `json:"options"`
	// IncludeOutputs echoes every node's output in the response. Off by
	// default: outputs are O(n) payload and most clients only want costs.
	IncludeOutputs bool `json:"include_outputs,omitempty"`
}

// GraphSpec selects a topology: either a named generator family with its
// parameters, or an inline edge list. Family names resolve through the gen
// package's Spec registry — the same one behind cmd/simulate's flags — so the
// two surfaces accept identical vocabularies. Generated graphs are
// deterministic in the normalized spec, so the server can cache them and —
// more importantly — identical specs from different clients fingerprint
// identically and share one engine shard's spanner cache.
type GraphSpec struct {
	// Family is a gen registry family (gen.FamilyNames()): complete, cycle,
	// path, star, grid, torus, hypercube, barbell, gnp, gnm, tree, regular,
	// pa, or expander. Empty selects the inline Edges; edgelist is refused
	// (the server does not read local files on clients' behalf).
	Family string  `json:"family,omitempty"`
	N      int     `json:"n,omitempty"`
	Deg    float64 `json:"deg,omitempty"` // gnp average degree; regular/expander degree; pa attachment count
	Seed   uint64  `json:"seed,omitempty"`
	// P overrides Deg with an explicit edge probability (gnp only).
	P float64 `json:"p,omitempty"`
	// M is gnm's exact edge count.
	M int `json:"m,omitempty"`
	// Rows and Cols override the square shape derived from N (grid/torus).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`

	// Nodes and Edges define an inline graph: Nodes vertices (0..Nodes-1)
	// and an undirected edge per [u, v] pair. Edge IDs are assigned in
	// list order, so the same list always fingerprints the same way.
	Nodes int      `json:"nodes,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`
}

// AlgoSpec selects the simulated t-round LOCAL algorithm.
type AlgoSpec struct {
	// Name is maxid, mis, coloring, or bfs. Empty means maxid.
	Name string `json:"name,omitempty"`
	// T is the round budget for maxid/bfs (default 4). Zero for
	// mis/coloring selects their whp-termination budgets.
	T int `json:"t,omitempty"`
	// Source is the BFS root (bfs only).
	Source int `json:"source,omitempty"`
}

// RunOptions are the per-request engine overrides. Zero values mean "engine
// default"; invalid values are rejected by the engine's own validation and
// surface as 400s.
type RunOptions struct {
	Seed           uint64  `json:"seed,omitempty"`
	Gamma          int     `json:"gamma,omitempty"`
	StageK         int     `json:"stage_k,omitempty"`
	Bandwidth      int     `json:"bandwidth,omitempty"`
	HybridFraction float64 `json:"hybrid_fraction,omitempty"`
	KT1            bool    `json:"kt1,omitempty"`
	// MaxRounds caps billed LOCAL rounds (ErrRoundBudget -> 422).
	MaxRounds int `json:"max_rounds,omitempty"`
	// DeadlineMS caps wall-clock time (ErrDeadline -> 504). Zero takes the
	// server's default; values above the server cap are clamped to it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Adversary subjects the run to a network perturbation profile: either
	// a shipped profile referenced by name alone ({"name": "drop10"}) or an
	// inline repro.AdversaryProfile (rates, delay bound, crash and
	// edge-event schedules). An unknown name or a malformed profile is a
	// 400; adversary-induced damage comes back in each phase's dropped and
	// duplicated fields.
	Adversary *repro.AdversaryProfile `json:"adversary,omitempty"`
}

// PhaseJSON is one pipeline stage of the response bill. Dropped and
// Duplicated are the adversary's honestly billed damage; both stay zero —
// and absent from the JSON — on flawless runs.
type PhaseJSON struct {
	Name       string  `json:"name"`
	Rounds     int     `json:"rounds"`
	Messages   int64   `json:"messages"`
	Dilation   float64 `json:"dilation,omitempty"`
	Dropped    int64   `json:"dropped,omitempty"`
	Duplicated int64   `json:"duplicated,omitempty"`
}

// SimulateResponse is the POST /v1/simulate reply.
type SimulateResponse struct {
	Scheme           string      `json:"scheme"`
	GraphNodes       int         `json:"graph_nodes"`
	GraphEdges       int         `json:"graph_edges"`
	GraphFingerprint string      `json:"graph_fingerprint"`
	Rounds           int         `json:"rounds"`
	Messages         int64       `json:"messages"`
	Phases           []PhaseJSON `json:"phases"`
	SpannerEdges     int         `json:"spanner_edges,omitempty"`
	StretchUsed      int         `json:"stretch_used,omitempty"`
	// SpannerCached reports whether this run reused a cached stage-1
	// spanner ("sampler(cached)" on the bill) instead of rebuilding it.
	SpannerCached bool `json:"spanner_cached"`
	// OutputsFNV fingerprints the node outputs (FNV-1a over their printed
	// forms) so clients can compare runs for fidelity without shipping O(n)
	// outputs; Outputs itself is present only when include_outputs is set.
	OutputsFNV string `json:"outputs_fnv"`
	Outputs    []any  `json:"outputs,omitempty"`
	ElapsedMS  int64  `json:"elapsed_ms"`
	ShardID    int    `json:"shard"`
}

// SchemeJSON is one GET /v1/schemes entry.
type SchemeJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// errBadRequest marks client errors (malformed graph/algorithm/options) so
// the handler can answer 400 instead of 500.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

func badRequestf(format string, args ...any) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

// buildGraph materializes the spec, enforcing the server's node budget.
func buildGraph(spec GraphSpec, maxNodes int) (*graph.Graph, error) {
	if len(spec.Edges) > 0 || spec.Nodes > 0 {
		if spec.Family != "" {
			return nil, badRequestf("graph: family %q and inline edges are mutually exclusive", spec.Family)
		}
		return buildInline(spec, maxNodes)
	}
	return buildFamily(spec, maxNodes)
}

// buildInline assembles a graph from an explicit edge list.
func buildInline(spec GraphSpec, maxNodes int) (*graph.Graph, error) {
	n := spec.Nodes
	for _, e := range spec.Edges {
		if e[0] >= n {
			n = e[0] + 1
		}
		if e[1] >= n {
			n = e[1] + 1
		}
	}
	if n < 2 {
		return nil, badRequestf("graph: inline graph needs at least 2 nodes")
	}
	if n > maxNodes {
		return nil, badRequestf("graph: %d nodes exceeds the server cap of %d", n, maxNodes)
	}
	g := graph.New(n)
	for i, e := range spec.Edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 {
			return nil, badRequestf("graph: edge %d (%d,%d) has a negative endpoint", i, u, v)
		}
		if u == v {
			return nil, badRequestf("graph: edge %d (%d,%d) is a self-loop", i, u, v)
		}
		g.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return g, nil
}

// familySpec normalizes the request into a gen.Spec: defaults applied
// (n=64, deg=8), structural node counts resolved the way the pre-registry
// server did (grid/torus sides clamped, hypercube dimension rounded), and
// the server's node budget enforced. The normalized spec — not the raw
// request — is the cache identity, so requests that denote the same graph
// share one cache entry.
func familySpec(spec GraphSpec, maxNodes int) (gen.Spec, error) {
	family := spec.Family
	if family == "" {
		family = "complete"
	}
	if family == "edgelist" {
		return gen.Spec{}, badRequestf("graph: edgelist is CLI-only; POST inline nodes/edges instead")
	}
	n := spec.N
	if n <= 0 {
		n = 64
	}
	if n > maxNodes {
		return gen.Spec{}, badRequestf("graph: n=%d exceeds the server cap of %d", n, maxNodes)
	}
	deg := spec.Deg
	if deg <= 0 {
		deg = 8
	}
	out := gen.Spec{Family: family, N: n, Seed: spec.Seed}
	switch family {
	case "gnp":
		out.P = spec.P
		if spec.P == 0 {
			out.Degree = deg
		}
	case "regular", "pa", "expander":
		out.Degree = deg
	case "gnm":
		out.M = spec.M
	case "grid", "torus":
		minSide := 2
		if family == "torus" {
			minSide = 3 // below 3 the wraparound duplicates edges
		}
		rows, cols := spec.Rows, spec.Cols
		if rows == 0 && cols == 0 {
			side := int(math.Sqrt(float64(n)))
			if side < minSide {
				side = minSide
			}
			rows, cols = side, side
		}
		if rows > 0 && cols > 0 && rows*cols > maxNodes {
			return gen.Spec{}, badRequestf("graph: %dx%d exceeds the server cap of %d nodes", rows, cols, maxNodes)
		}
		out.N, out.Rows, out.Cols = 0, rows, cols
	case "hypercube":
		d := int(math.Round(math.Log2(float64(n))))
		if d < 1 {
			d = 1
		}
		out.N = 1 << d
	}
	return out, nil
}

// buildFamily runs the named deterministic generator via the gen registry.
func buildFamily(spec GraphSpec, maxNodes int) (*graph.Graph, error) {
	s, err := familySpec(spec, maxNodes)
	if err != nil {
		return nil, err
	}
	g, err := gen.Build(s)
	if err != nil {
		return nil, badRequestf("graph: %v", err)
	}
	return g, nil
}

// specKey canonicalizes a generated-graph spec for the server's graph
// cache: the normalized gen.Spec's Key. Inline graphs return "" (uncached:
// arbitrary payloads would let clients grow the cache with garbage keys),
// as do invalid specs (buildFamily rejects them before caching matters).
func specKey(spec GraphSpec, maxNodes int) string {
	if len(spec.Edges) > 0 || spec.Nodes > 0 {
		return ""
	}
	s, err := familySpec(spec, maxNodes)
	if err != nil {
		return ""
	}
	return s.Key()
}

// buildSpec resolves the algorithm selection, clamping t to maxT.
func buildSpec(a AlgoSpec, n, maxT int) (repro.AlgorithmSpec, error) {
	t := a.T
	if t < 0 || t > maxT {
		return repro.AlgorithmSpec{}, badRequestf("algorithm: t=%d outside [0, %d]", a.T, maxT)
	}
	switch a.Name {
	case "", "maxid":
		if t == 0 {
			t = 4
		}
		return algorithms.MaxID(t), nil
	case "mis":
		if t == 0 {
			t = min(algorithms.MISRounds(n), maxT)
		}
		return algorithms.MIS(t), nil
	case "coloring":
		if t == 0 {
			t = min(algorithms.ColoringRounds(n), maxT)
		}
		return algorithms.Coloring(t), nil
	case "bfs":
		if t == 0 {
			t = 4
		}
		if a.Source < 0 || a.Source >= n {
			return repro.AlgorithmSpec{}, badRequestf("algorithm: bfs source %d outside [0, %d)", a.Source, n)
		}
		return algorithms.BFS(graph.NodeID(a.Source), t), nil
	default:
		return repro.AlgorithmSpec{}, badRequestf("algorithm: unknown name %q (maxid|mis|coloring|bfs)", a.Name)
	}
}

// extras translates the request's overrides into per-run engine options.
// The deadline is always set: defaultDeadline when the client names none,
// clamped to maxDeadline otherwise — no request runs unbounded. Adversary
// resolution happens here too: a name-only profile is looked up in the
// shipped registry, an inline profile is validated as-is, and either
// failure is a 400.
func (o RunOptions) extras(defaultDeadline, maxDeadline time.Duration) ([]repro.Option, error) {
	out := []repro.Option{repro.WithSeed(o.Seed)}
	if o.Gamma != 0 {
		out = append(out, repro.WithGamma(o.Gamma))
	}
	if o.StageK != 0 {
		out = append(out, repro.WithStageK(o.StageK))
	}
	if o.Bandwidth != 0 {
		out = append(out, repro.WithBandwidth(o.Bandwidth))
	}
	if o.HybridFraction != 0 {
		out = append(out, repro.WithHybridFraction(o.HybridFraction))
	}
	if o.KT1 {
		out = append(out, repro.WithKT1(true))
	}
	if o.MaxRounds != 0 {
		out = append(out, repro.WithMaxRounds(o.MaxRounds))
	}
	if o.Adversary != nil {
		p := *o.Adversary
		if p.Name != "" && p.IsZero() {
			named, ok := repro.NamedAdversary(p.Name)
			if !ok {
				return nil, badRequestf("options: unknown adversary profile %q (shipped: %v)",
					p.Name, repro.AdversaryProfiles())
			}
			p = named
		}
		if err := p.Validate(); err != nil {
			return nil, badRequestf("options: %v", err)
		}
		out = append(out, repro.WithAdversary(p))
	}
	d := time.Duration(o.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = defaultDeadline
	}
	if d > maxDeadline {
		d = maxDeadline
	}
	out = append(out, repro.WithDeadline(d))
	return out, nil
}

// graphCache is a small LRU of generated graphs keyed by canonical spec
// string. It exists for latency (skip regeneration), not correctness —
// generators are deterministic, so a miss rebuilds an identical graph with
// an identical fingerprint.
type graphCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *graphEntry
	byKey map[string]*list.Element
}

type graphEntry struct {
	key string
	g   *graph.Graph
}

func newGraphCache(capacity int) *graphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &graphCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached graph for key, marking it most recently used.
func (c *graphCache) get(key string) (*graph.Graph, bool) {
	if key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*graphEntry).g, true
}

// put inserts key -> g, evicting the least recently used entry past cap.
func (c *graphCache) put(key string, g *graph.Graph) {
	if key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*graphEntry).g = g
		return
	}
	c.byKey[key] = c.order.PushFront(&graphEntry{key: key, g: g})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*graphEntry).key)
	}
}

// listSchemes renders the registry for GET /v1/schemes.
func listSchemes() []SchemeJSON {
	schemes := repro.Schemes()
	out := make([]SchemeJSON, 0, len(schemes))
	for _, s := range schemes {
		out = append(out, SchemeJSON{Name: s.Name(), Description: s.Description()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
