package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro"
)

// Errors the pool reports to the HTTP layer.
var (
	// ErrQueueFull is backpressure: the target shard's bounded queue is at
	// capacity. The HTTP layer maps it to 429 with a Retry-After hint.
	ErrQueueFull = errors.New("serve: shard queue full")
	// ErrClosed means the pool is draining or drained and accepts no new
	// work. The HTTP layer maps it to 503.
	ErrClosed = errors.New("serve: pool closed")
)

// job is one unit of simulation work bound to the requesting client's
// context. The submitting handler blocks on done; the shard worker runs fn
// and closes done, recording a protocol panic (a programming error in
// simulated code, deliberately propagated by the simulator) instead of
// letting it kill the process.
type job struct {
	ctx      context.Context
	fn       func(ctx context.Context)
	done     chan struct{}
	panicked any
}

// shard is one engine plus its bounded work queue. All requests whose graph
// fingerprint routes here share the engine — and therefore its singleflight
// LRU spanner cache, which is the whole point: clients hitting the same
// topology amortize the stage-1 construction across requests.
type shard struct {
	id  int
	eng *repro.Engine

	mu     sync.RWMutex // guards closed vs. concurrent submits
	closed bool
	jobs   chan *job
}

// submit enqueues without blocking: a full queue is backpressure, not a
// wait. The read lock excludes a concurrent close, so the channel send
// cannot race the channel close.
func (s *shard) submit(j *job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// close stops intake. Jobs already queued still run to completion — each
// has a client handler blocked on it — which is what makes drain graceful.
func (s *shard) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.jobs)
}

// pool is the engine pool: shards engines, each with workers worker
// goroutines consuming its queue. Routing is by graph fingerprint, so one
// topology always lands on one engine regardless of which client sends it.
type pool struct {
	shards []*shard
	wg     sync.WaitGroup
}

// newPool builds shards engines via engine (called once per shard) and
// starts their workers.
func newPool(shards, queueDepth, workers int, engine func() *repro.Engine) *pool {
	if shards < 1 {
		shards = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if workers < 1 {
		workers = 1
	}
	p := &pool{}
	for i := 0; i < shards; i++ {
		sh := &shard{id: i, eng: engine(), jobs: make(chan *job, queueDepth)}
		p.shards = append(p.shards, sh)
		for w := 0; w < workers; w++ {
			p.wg.Add(1)
			go p.work(sh)
		}
	}
	return p
}

// shardFor routes a graph fingerprint to its shard.
func (p *pool) shardFor(fingerprint uint64) *shard {
	return p.shards[fingerprint%uint64(len(p.shards))]
}

// depths returns the live queue depth per shard (for the metrics gauge).
func (p *pool) depths() []int {
	out := make([]int, len(p.shards))
	for i, sh := range p.shards {
		out[i] = len(sh.jobs)
	}
	return out
}

// close drains the pool: intake stops immediately, queued jobs run to
// completion, workers exit, and close returns only when every worker has.
// Safe to call more than once.
func (p *pool) close() {
	for _, sh := range p.shards {
		sh.close()
	}
	p.wg.Wait()
}

// work is one shard worker: it consumes jobs until the shard closes and its
// queue is empty.
func (p *pool) work(sh *shard) {
	defer p.wg.Done()
	for j := range sh.jobs {
		runJob(j)
	}
}

// runJob executes one job, converting a simulated-protocol panic into a
// recorded failure: one poisonous request must not take the service down.
func runJob(j *job) {
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.panicked = fmt.Sprintf("%v", r)
		}
	}()
	j.fn(j.ctx)
}
