package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer boots a Server on an httptest listener. The returned
// cleanup drains the pool.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		hs.Close()
		svc.Close()
	})
	return svc, hs
}

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// postSimulate sends one simulate request and decodes the reply.
func postSimulate(t *testing.T, base string, body string) (int, *SimulateResponse, map[string]string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.Unmarshal(blob, &e)
		return resp.StatusCode, nil, e
	}
	var out SimulateResponse
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("decode response: %v\n%s", err, blob)
	}
	return resp.StatusCode, &out, nil
}

// scrapeMetric fetches /v1/metrics and returns the first sample value of
// the named (fully qualified) family.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.e+-]+)$`)
	m := re.FindSubmatch(blob)
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, blob)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// TestServeLoadSharedFingerprints is the service load test: dozens of
// concurrent clients hammering a handful of shared graph specs. Every
// request must succeed, responses for identical requests must agree
// bit-for-bit (outputs fingerprints), and after warmup the shared engines
// must be serving stage-1 spanners from cache.
func TestServeLoadSharedFingerprints(t *testing.T) {
	_, hs := newTestServer(t, Config{Shards: 2, QueueDepth: 64, Workers: 2, MaxNodes: 512})

	specs := []string{
		`{"scheme":"scheme1","graph":{"family":"gnp","n":72,"deg":6,"seed":1},"algorithm":{"name":"maxid","t":3}}`,
		`{"scheme":"scheme1","graph":{"family":"gnp","n":72,"deg":6,"seed":2},"algorithm":{"name":"maxid","t":3}}`,
		`{"scheme":"scheme2en","graph":{"family":"complete","n":32},"algorithm":{"name":"maxid","t":2}}`,
		`{"scheme":"hybrid","graph":{"family":"grid","n":36},"algorithm":{"name":"bfs","t":3}}`,
	}

	// Warm each spec once so the concurrent wave can hit warm caches.
	for _, spec := range specs {
		if code, _, e := postSimulate(t, hs.URL, spec); code != http.StatusOK {
			t.Fatalf("warmup %s: status %d (%v)", spec, code, e)
		}
	}

	const clients = 16
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fnvs = make(map[string]string) // spec -> outputs fingerprint
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				spec := specs[(c+i)%len(specs)]
				code, res, e := postSimulate(t, hs.URL, spec)
				if code != http.StatusOK {
					t.Errorf("client %d: status %d (%v)", c, code, e)
					return
				}
				mu.Lock()
				if prev, ok := fnvs[spec]; ok && prev != res.OutputsFNV {
					t.Errorf("client %d: outputs diverged for %s: %s vs %s", c, spec, prev, res.OutputsFNV)
				}
				fnvs[spec] = res.OutputsFNV
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if hits := scrapeMetric(t, hs.URL, "freelunch_serve_spanner_cache_hits_total"); hits == 0 {
		t.Fatalf("no spanner cache hits after %d warm requests on shared fingerprints", clients*3)
	}
	if ok := scrapeMetric(t, hs.URL, "freelunch_serve_simulate_total"); ok == 0 {
		t.Fatalf("no ok outcomes recorded")
	}
}

// TestServeBackpressure fills the single shard's queue deterministically
// (a worker pinned on a blocking job plus a queued one) and checks that the
// next request bounces with 429 and a Retry-After hint, then that the pool
// recovers once unblocked.
func TestServeBackpressure(t *testing.T) {
	svc, hs := newTestServer(t, Config{Shards: 1, QueueDepth: 1, Workers: 1, RetryAfter: 2 * time.Second})

	// The worker must never outlive the test blocked on release: a Fatal
	// below would otherwise wedge the cleanup's pool drain forever.
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	block := func(context.Context) { <-release }
	running := &job{ctx: context.Background(), fn: block, done: make(chan struct{})}
	queued := &job{ctx: context.Background(), fn: block, done: make(chan struct{})}
	sh := svc.pool.shards[0]
	if err := sh.submit(running); err != nil {
		t.Fatalf("submit running job: %v", err)
	}
	// Wait for the worker to dequeue it, freeing the one queue slot for the
	// second blocking job.
	waitUntil(t, "worker pickup", func() bool { return len(sh.jobs) == 0 })
	if err := sh.submit(queued); err != nil {
		t.Fatalf("submit queued job: %v", err)
	}

	body := `{"scheme":"direct","graph":{"family":"complete","n":16},"algorithm":{"t":2}}`
	resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with a full queue, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}

	unblock()
	<-running.done
	<-queued.done
	if code, _, e := postSimulate(t, hs.URL, body); code != http.StatusOK {
		t.Fatalf("after unblocking: status %d (%v)", code, e)
	}
	if rej := scrapeMetric(t, hs.URL, "freelunch_serve_rejections_total"); rej != 1 {
		t.Fatalf("rejections counter = %v, want 1", rej)
	}
}

// TestServeDrain checks the graceful-drain contract: work admitted before
// Close completes, work after Close bounces with 503, and the health probe
// flips to draining.
func TestServeDrain(t *testing.T) {
	svc, hs := newTestServer(t, Config{Shards: 1, QueueDepth: 4, Workers: 1})

	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	ran := false
	blocked := &job{ctx: context.Background(), done: make(chan struct{})}
	blocked.fn = func(context.Context) { <-release; ran = true }
	if err := svc.pool.shards[0].submit(blocked); err != nil {
		t.Fatalf("submit: %v", err)
	}

	closed := make(chan struct{})
	go func() { svc.Close(); close(closed) }()

	// Close must be waiting on the in-flight job, not abandoning it.
	select {
	case <-closed:
		t.Fatalf("Close returned while a job was still running")
	case <-time.After(20 * time.Millisecond):
	}
	unblock()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatalf("Close did not return after the blocking job finished")
	}
	<-blocked.done
	if !ran {
		t.Fatalf("queued job was dropped by drain instead of completing")
	}

	body := `{"scheme":"direct","graph":{"family":"complete","n":16},"algorithm":{"t":2}}`
	if code, _, _ := postSimulate(t, hs.URL, body); code != http.StatusServiceUnavailable {
		t.Fatalf("simulate while drained: status %d, want 503", code)
	}
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET /v1/healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: status %d, want 503", resp.StatusCode)
	}
	if d := scrapeMetric(t, hs.URL, "freelunch_serve_draining"); d != 1 {
		t.Fatalf("draining gauge = %v, want 1", d)
	}
}

// TestServeErrorMapping pins the HTTP status for each failure class.
func TestServeErrorMapping(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxNodes: 256, MaxT: 16})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown scheme", `{"scheme":"nope","graph":{"family":"complete","n":16}}`, http.StatusNotFound},
		{"malformed json", `{"scheme":`, http.StatusBadRequest},
		{"unknown field", `{"scheme":"direct","bogus":1}`, http.StatusBadRequest},
		{"unknown family", `{"scheme":"direct","graph":{"family":"mobius","n":16}}`, http.StatusBadRequest},
		{"self loop", `{"scheme":"direct","graph":{"edges":[[0,0]]}}`, http.StatusBadRequest},
		{"negative endpoint", `{"scheme":"direct","graph":{"edges":[[-1,2]]}}`, http.StatusBadRequest},
		{"over node cap", `{"scheme":"direct","graph":{"family":"complete","n":512}}`, http.StatusBadRequest},
		{"over round cap", `{"scheme":"direct","graph":{"family":"complete","n":16},"algorithm":{"t":64}}`, http.StatusBadRequest},
		{"unknown algorithm", `{"scheme":"direct","graph":{"family":"complete","n":16},"algorithm":{"name":"sat"}}`, http.StatusBadRequest},
		{"bad gamma", `{"scheme":"scheme1","graph":{"family":"complete","n":16},"options":{"gamma":-3}}`, http.StatusBadRequest},
		{"round budget", `{"scheme":"scheme1","graph":{"family":"gnp","n":120,"deg":6,"seed":9},"options":{"max_rounds":1}}`, http.StatusUnprocessableEntity},
		{"deadline", `{"scheme":"scheme1","graph":{"family":"gnp","n":200,"deg":8,"seed":11},"options":{"deadline_ms":1}}`, http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, e := postSimulate(t, hs.URL, tc.body)
			if code != tc.want {
				t.Fatalf("status %d, want %d (error: %v)", code, tc.want, e)
			}
		})
	}
}

// TestServeStreamSSE runs one simulation over /v1/stream and checks the
// event protocol: round progress frames followed by a terminal result frame
// that matches the non-streaming response shape.
func TestServeStreamSSE(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	body := `{"scheme":"scheme1","graph":{"family":"gnp","n":80,"deg":6,"seed":3},"algorithm":{"t":3}}`
	resp, err := http.Post(hs.URL+"/v1/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var rounds, phases int
	var result *SimulateResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "round":
				rounds++
			case "phase":
				phases++
			case "result":
				result = new(SimulateResponse)
				if err := json.Unmarshal([]byte(data), result); err != nil {
					t.Fatalf("result frame: %v\n%s", err, data)
				}
			case "error":
				t.Fatalf("error frame: %s", data)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if rounds == 0 {
		t.Fatalf("no round events streamed")
	}
	if phases == 0 {
		t.Fatalf("no phase events streamed")
	}
	if result == nil {
		t.Fatalf("stream ended without a result frame")
	}
	if result.Rounds == 0 || result.Messages == 0 {
		t.Fatalf("result frame carries no costs: %+v", result)
	}
}

// TestServeSchemesAndExposition covers the registry listing and the
// exposition invariant that each family header appears exactly once even
// with several schemes contributing samples.
func TestServeSchemesAndExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/schemes")
	if err != nil {
		t.Fatalf("GET /v1/schemes: %v", err)
	}
	var listing struct {
		Schemes []SchemeJSON `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if len(listing.Schemes) < 8 {
		t.Fatalf("only %d schemes listed", len(listing.Schemes))
	}

	for _, scheme := range []string{"scheme1", "gossip"} {
		body := fmt.Sprintf(`{"scheme":%q,"graph":{"family":"complete","n":24},"algorithm":{"t":2}}`, scheme)
		if code, _, e := postSimulate(t, hs.URL, body); code != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", scheme, code, e)
		}
	}
	mresp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	blob, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"freelunch_phase_rounds_total",
		"freelunch_phase_messages_total",
		"freelunch_phase_round_messages",
		"freelunch_serve_requests_total",
	} {
		if n := bytes.Count(blob, []byte("# TYPE "+family+" ")); n != 1 {
			t.Fatalf("family %s has %d TYPE headers, want exactly 1:\n%s", family, n, blob)
		}
	}
	// Both schemes' samples must sit under the one shared header.
	for _, scheme := range []string{"scheme1", "gossip"} {
		needle := []byte(`freelunch_phase_rounds_total{scheme="` + scheme + `"`)
		if !bytes.Contains(blob, needle) {
			t.Fatalf("no %s samples in exposition:\n%s", scheme, blob)
		}
	}
}

// TestServeDeterministicGraphCache checks that the generated-graph LRU
// serves repeat specs and that cached and rebuilt graphs fingerprint
// identically.
func TestServeDeterministicGraphCache(t *testing.T) {
	_, hs := newTestServer(t, Config{GraphCacheSize: 2})
	spec := `{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":7},"algorithm":{"t":2}}`
	_, first, _ := postSimulate(t, hs.URL, spec)
	_, second, _ := postSimulate(t, hs.URL, spec)
	if first.GraphFingerprint != second.GraphFingerprint {
		t.Fatalf("fingerprint changed across cache hit: %s vs %s", first.GraphFingerprint, second.GraphFingerprint)
	}
	if hits := scrapeMetric(t, hs.URL, "freelunch_serve_graph_cache_hits_total"); hits == 0 {
		t.Fatalf("no graph cache hits after identical specs")
	}
	// Evict by inserting two fresh specs, then re-request: a rebuilt graph
	// must fingerprint the same.
	for _, s := range []string{
		`{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":8},"algorithm":{"t":2}}`,
		`{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":9},"algorithm":{"t":2}}`,
	} {
		if code, _, e := postSimulate(t, hs.URL, s); code != http.StatusOK {
			t.Fatalf("evictor: status %d (%v)", code, e)
		}
	}
	_, third, _ := postSimulate(t, hs.URL, spec)
	if first.GraphFingerprint != third.GraphFingerprint {
		t.Fatalf("rebuilt graph fingerprints differently: %s vs %s", first.GraphFingerprint, third.GraphFingerprint)
	}
}

// TestServeAdversary covers the HTTP adversary surface: a named shipped
// profile perturbs the bill and attributes damage in the phase JSON, two
// clients under the same profile agree bit for bit, and both an unknown
// profile name and an invalid inline profile bounce with 400.
func TestServeAdversary(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	clean := `{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":7},"algorithm":{"t":3},"options":{"seed":5}}`
	named := `{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":7},"algorithm":{"t":3},"options":{"seed":5,"adversary":{"name":"drop10"}}}`

	code, base, e := postSimulate(t, hs.URL, clean)
	if code != http.StatusOK {
		t.Fatalf("clean run: status %d (%v)", code, e)
	}
	for _, ph := range base.Phases {
		if ph.Dropped != 0 || ph.Duplicated != 0 {
			t.Fatalf("flawless run attributed damage: %+v", ph)
		}
	}

	code, hit, e := postSimulate(t, hs.URL, named)
	if code != http.StatusOK {
		t.Fatalf("drop10 run: status %d (%v)", code, e)
	}
	var dropped int64
	for _, ph := range hit.Phases {
		dropped += ph.Dropped
	}
	if dropped == 0 {
		t.Fatalf("drop10 run attributed no dropped messages: %+v", hit.Phases)
	}
	// Determinism across requests: same profile, same seed, same answer.
	code, again, e := postSimulate(t, hs.URL, named)
	if code != http.StatusOK {
		t.Fatalf("drop10 rerun: status %d (%v)", code, e)
	}
	if again.OutputsFNV != hit.OutputsFNV || again.Messages != hit.Messages {
		t.Fatalf("adversarial rerun diverged: %s/%d vs %s/%d",
			again.OutputsFNV, again.Messages, hit.OutputsFNV, hit.Messages)
	}

	// An inline profile (no registry name) is honoured as-is.
	inline := `{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":7},"algorithm":{"t":3},"options":{"seed":5,"adversary":{"seed":9,"drop_rate":0.25}}}`
	code, inl, e := postSimulate(t, hs.URL, inline)
	if code != http.StatusOK {
		t.Fatalf("inline profile: status %d (%v)", code, e)
	}
	var inlineDropped int64
	for _, ph := range inl.Phases {
		inlineDropped += ph.Dropped
	}
	if inlineDropped == 0 {
		t.Fatal("inline quarter-drop profile attributed no damage")
	}

	// Client errors: unknown name and malformed inline profile are 400s.
	for name, body := range map[string]string{
		"unknown-name": `{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":7},"algorithm":{"t":3},"options":{"adversary":{"name":"no-such-profile"}}}`,
		"bad-rate":     `{"scheme":"direct","graph":{"family":"gnp","n":60,"deg":5,"seed":7},"algorithm":{"t":3},"options":{"adversary":{"drop_rate":1.5}}}`,
	} {
		code, _, e := postSimulate(t, hs.URL, body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%v), want 400", name, code, e)
		}
	}
}
