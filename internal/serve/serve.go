// Package serve is the long-running simulation service behind cmd/serve: an
// HTTP/JSON facade over the scheme registry with engine pooling,
// backpressure, and Prometheus-style metrics.
//
// Requests route through a pool of engines sharded by graph fingerprint, so
// every client working the same topology lands on the same engine and
// shares its singleflight stage-1 spanner cache — the service-level
// realization of the paper's amortization argument: the spanner is built
// once and every subsequent simulation on that graph pays only the
// collection phases. Each shard carries a bounded queue; a full queue
// answers 429 with a Retry-After hint instead of letting work pile up, and
// every run is bounded by a wall-clock deadline (WithDeadline) and an
// optional round budget (WithMaxRounds).
//
// Endpoints:
//
//	POST /v1/simulate  run one simulation, reply with the bill
//	POST /v1/stream    same, streaming live round progress as SSE
//	GET  /v1/schemes   list the registered schemes
//	GET  /v1/metrics   Prometheus text exposition (server + per-scheme)
//	GET  /v1/healthz   liveness/drain probe
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Config tunes a Server. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Shards is the number of pooled engines (default 4). Graphs route to
	// shards by fingerprint, so one topology always hits one engine.
	Shards int
	// QueueDepth bounds each shard's work queue (default 8); a submit
	// beyond it is rejected with 429.
	QueueDepth int
	// Workers is the number of concurrent runs per shard (default 1).
	Workers int
	// CacheSize is each shard engine's spanner cache capacity (default
	// repro.DefaultCacheSize).
	CacheSize int
	// Concurrency is each engine's simulator concurrency (default -1:
	// GOMAXPROCS workers).
	Concurrency int
	// MaxNodes caps requested graph sizes (default 4096) and MaxT caps
	// algorithm round budgets (default 64).
	MaxNodes int
	MaxT     int
	// GraphCacheSize bounds the generated-graph LRU (default 64).
	GraphCacheSize int
	// DefaultDeadline bounds runs whose request names no deadline (default
	// 30s); MaxDeadline clamps client-requested deadlines (default 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// MetricsTail sizes each per-scheme MetricsSink ring (default
	// repro.DefaultMetricsTail).
	MetricsTail int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.CacheSize <= 0 {
		c.CacheSize = repro.DefaultCacheSize
	}
	if c.Concurrency == 0 {
		c.Concurrency = -1
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 4096
	}
	if c.MaxT <= 0 {
		c.MaxT = 64
	}
	if c.GraphCacheSize <= 0 {
		c.GraphCacheSize = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the simulation service. Construct with New, mount Handler on an
// http.Server, and Close to drain.
type Server struct {
	cfg    Config
	pool   *pool
	graphs *graphCache
	mux    *http.ServeMux

	sinksMu sync.Mutex
	sinks   map[string]*repro.MetricsSink // per-scheme, feeds /v1/metrics

	draining  atomic.Bool
	closeOnce sync.Once

	// Server-level counters for the exposition.
	countMu      sync.Mutex
	httpRequests map[[2]string]int64 // {endpoint, code}
	outcomes     map[[2]string]int64 // {scheme, outcome}
	rejections   atomic.Int64
	spannerHits  atomic.Int64
	graphHits    atomic.Int64
	graphMisses  atomic.Int64
	streamDrops  atomic.Int64
	inflight     atomic.Int64
}

// New builds a Server: cfg.Shards engines (each configured with the shared
// cache/concurrency settings and ledger-free runs) plus their workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		graphs:       newGraphCache(cfg.GraphCacheSize),
		sinks:        make(map[string]*repro.MetricsSink),
		httpRequests: make(map[[2]string]int64),
		outcomes:     make(map[[2]string]int64),
	}
	s.pool = newPool(cfg.Shards, cfg.QueueDepth, cfg.Workers, func() *repro.Engine {
		return repro.NewEngine(
			repro.WithCacheSize(cfg.CacheSize),
			repro.WithConcurrency(cfg.Concurrency),
			// The service aggregates via MetricsSinks; per-round ledgers
			// would grow long-run memory for no reader.
			repro.WithRoundLedger(false),
		)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.count("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/stream", s.count("stream", s.handleStream))
	mux.HandleFunc("GET /v1/schemes", s.count("schemes", s.handleSchemes))
	mux.HandleFunc("GET /v1/metrics", s.count("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/healthz", s.count("healthz", s.handleHealthz))
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the service: new submissions are refused with 503 while jobs
// already queued run to completion. It returns once every worker has
// stopped. Call http.Server.Shutdown first so in-flight handlers (each
// waiting on a queued job) finish before their jobs' results have nowhere
// to go.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.pool.close()
	})
}

// sink returns (creating once) the MetricsSink aggregating the named
// scheme's runs.
func (s *Server) sink(scheme string) *repro.MetricsSink {
	s.sinksMu.Lock()
	defer s.sinksMu.Unlock()
	sk, ok := s.sinks[scheme]
	if !ok {
		sk = repro.NewMetricsSink(s.cfg.MetricsTail)
		s.sinks[scheme] = sk
	}
	return sk
}

// recordOutcome bumps the {scheme, outcome} counter.
func (s *Server) recordOutcome(scheme, outcome string) {
	s.countMu.Lock()
	s.outcomes[[2]string{scheme, outcome}]++
	s.countMu.Unlock()
}

// statusWriter records the response code for the request counter while
// passing Flush through for SSE.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// count wraps a handler with the per-endpoint request counter.
func (s *Server) count(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.countMu.Lock()
		s.httpRequests[[2]string{endpoint, strconv.Itoa(sw.code)}]++
		s.countMu.Unlock()
	}
}

// httpError is a JSON error reply with its status code decided.
type httpError struct {
	status  int
	message string
}

func (e *httpError) Error() string { return e.message }

// classify maps a simulation failure to (HTTP status, outcome label).
func classify(err error) (*httpError, string) {
	switch {
	case errors.Is(err, repro.ErrDeadline):
		return &httpError{http.StatusGatewayTimeout, err.Error()}, "deadline"
	case errors.Is(err, repro.ErrRoundBudget):
		return &httpError{http.StatusUnprocessableEntity, err.Error()}, "round_budget"
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in the nginx tradition.
		return &httpError{499, err.Error()}, "canceled"
	case errors.As(err, new(errBadRequest)):
		return &httpError{http.StatusBadRequest, err.Error()}, "bad_request"
	default:
		return &httpError{http.StatusInternalServerError, err.Error()}, "error"
	}
}

// writeJSON replies with v at the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError replies with a JSON error body.
func writeError(w http.ResponseWriter, he *httpError) {
	writeJSON(w, he.status, map[string]string{"error": he.message})
}

// maxRequestBody bounds inline edge lists (and everything else) a client
// can post.
const maxRequestBody = 8 << 20

// decodeRequest parses and sanity-checks a simulate/stream body.
func decodeRequest(r *http.Request) (*SimulateRequest, *httpError) {
	var req SimulateRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &httpError{http.StatusBadRequest, "body: " + err.Error()}
	}
	if req.Scheme == "" {
		req.Scheme = "scheme1"
	}
	return &req, nil
}

// prepared is a request resolved against the registry and pool: everything
// needed to enqueue the run.
type prepared struct {
	scheme      repro.Scheme
	graph       *repro.Graph
	fingerprint uint64
	spec        repro.AlgorithmSpec
	extras      []repro.Option
	shard       *shard
}

// prepare resolves the request — scheme lookup, graph build (through the
// LRU), algorithm spec, option overrides — and pre-validates the resulting
// option set against the scheme so malformed requests fail with 400 before
// consuming a queue slot.
func (s *Server) prepare(req *SimulateRequest) (*prepared, *httpError) {
	sch, err := repro.Lookup(req.Scheme)
	if err != nil {
		return nil, &httpError{http.StatusNotFound, err.Error()}
	}
	key := specKey(req.Graph, s.cfg.MaxNodes)
	g, ok := s.graphs.get(key)
	if ok {
		s.graphHits.Add(1)
	} else {
		s.graphMisses.Add(1)
		g, err = buildGraph(req.Graph, s.cfg.MaxNodes)
		if err != nil {
			he, _ := classify(err)
			return nil, he
		}
		s.graphs.put(key, g)
	}
	spec, err := buildSpec(req.Algorithm, g.NumNodes(), s.cfg.MaxT)
	if err != nil {
		he, _ := classify(err)
		return nil, he
	}
	fp := g.Fingerprint()
	sh := s.pool.shardFor(fp)
	extras, err := req.Options.extras(s.cfg.DefaultDeadline, s.cfg.MaxDeadline)
	if err != nil {
		he, _ := classify(err)
		return nil, he
	}
	opts := sh.eng.Options()
	for _, fn := range extras {
		fn(&opts)
	}
	if err := sch.Validate(&opts); err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	return &prepared{
		scheme:      sch,
		graph:       g,
		fingerprint: fp,
		spec:        spec,
		extras:      extras,
		shard:       sh,
	}, nil
}

// run enqueues the prepared request on its shard and waits for the result.
// The extra observer (SSE) is layered after the scheme's MetricsSink.
func (s *Server) run(ctx context.Context, p *prepared, scheme string, obs repro.Observer) (*repro.SimulationResult, *httpError) {
	if s.draining.Load() {
		return nil, &httpError{http.StatusServiceUnavailable, "server draining"}
	}
	extras := append([]repro.Option(nil), p.extras...)
	extras = append(extras, repro.WithObserver(s.sink(scheme)))
	if obs != nil {
		extras = append(extras, repro.WithObserver(obs))
	}
	var (
		res    *repro.SimulationResult
		runErr error
	)
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.fn = func(ctx context.Context) {
		res, runErr = p.shard.eng.RunSchemeWith(ctx, p.scheme, p.graph, p.spec, extras...)
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if err := p.shard.submit(j); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.rejections.Add(1)
			s.recordOutcome(scheme, "rejected")
			return nil, &httpError{http.StatusTooManyRequests, err.Error()}
		}
		return nil, &httpError{http.StatusServiceUnavailable, err.Error()}
	}
	<-j.done
	if j.panicked != nil {
		s.recordOutcome(scheme, "panic")
		return nil, &httpError{http.StatusInternalServerError, fmt.Sprintf("simulation panic: %v", j.panicked)}
	}
	if runErr != nil {
		he, outcome := classify(runErr)
		s.recordOutcome(scheme, outcome)
		return nil, he
	}
	s.recordOutcome(scheme, "ok")
	if spannerCached(res) {
		s.spannerHits.Add(1)
	}
	return res, nil
}

// spannerCached reports whether the run's bill shows a stage-1 cache hit.
func spannerCached(res *repro.SimulationResult) bool {
	for _, ph := range res.Phases {
		if ph.Name == "sampler(cached)" {
			return true
		}
	}
	return false
}

// response renders a result.
func (s *Server) response(req *SimulateRequest, p *prepared, res *repro.SimulationResult, elapsed time.Duration) *SimulateResponse {
	out := &SimulateResponse{
		Scheme:           res.Scheme,
		GraphNodes:       p.graph.NumNodes(),
		GraphEdges:       p.graph.NumEdges(),
		GraphFingerprint: fmt.Sprintf("%016x", p.fingerprint),
		Rounds:           res.Rounds,
		Messages:         res.Messages,
		SpannerEdges:     res.SpannerEdges,
		StretchUsed:      res.StretchUsed,
		SpannerCached:    spannerCached(res),
		OutputsFNV:       outputsFNV(res.Outputs),
		ElapsedMS:        elapsed.Milliseconds(),
		ShardID:          p.shard.id,
	}
	for _, ph := range res.Phases {
		out.Phases = append(out.Phases, PhaseJSON{
			Name: ph.Name, Rounds: ph.Rounds, Messages: ph.Messages, Dilation: ph.Dilation,
			Dropped: ph.Dropped, Duplicated: ph.Duplicated,
		})
	}
	if req.IncludeOutputs {
		out.Outputs = res.Outputs
	}
	return out
}

// outputsFNV fingerprints the node outputs for cheap cross-run fidelity
// checks.
func outputsFNV(outputs []any) string {
	h := fnv.New64a()
	for i, v := range outputs {
		fmt.Fprintf(h, "%d=%v;", i, v)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// handleSimulate is POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, &httpError{http.StatusServiceUnavailable, "server draining"})
		return
	}
	req, he := decodeRequest(r)
	if he != nil {
		writeError(w, he)
		return
	}
	p, he := s.prepare(req)
	if he != nil {
		writeError(w, he)
		return
	}
	start := time.Now()
	res, he := s.run(r.Context(), p, req.Scheme, nil)
	if he != nil {
		if he.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, s.response(req, p, res, time.Since(start)))
}

// streamEvent is one SSE frame's payload.
type streamEvent struct {
	kind string
	data any
}

// roundEvent / phaseEvent are the SSE data payloads.
type roundEvent struct {
	Phase    string `json:"phase"`
	Round    int    `json:"round"`
	Messages int64  `json:"messages"`
}

type phaseEvent struct {
	Phase    string  `json:"phase"`
	Rounds   int     `json:"rounds"`
	Messages int64   `json:"messages"`
	Dilation float64 `json:"dilation,omitempty"`
}

// handleStream is POST /v1/stream: the simulate pipeline with live Observer
// progress relayed as server-sent events. Round events are forwarded
// best-effort — a slow consumer drops rounds (counted in the exposition)
// rather than stalling the simulation.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, &httpError{http.StatusServiceUnavailable, "server draining"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &httpError{http.StatusInternalServerError, "streaming unsupported by this connection"})
		return
	}
	req, he := decodeRequest(r)
	if he != nil {
		writeError(w, he)
		return
	}
	p, he := s.prepare(req)
	if he != nil {
		writeError(w, he)
		return
	}

	events := make(chan streamEvent, 256)
	obs := repro.ObserverFuncs{
		OnRound: func(phase string, round int, messages int64) {
			select {
			case events <- streamEvent{"round", roundEvent{phase, round, messages}}:
			default:
				s.streamDrops.Add(1)
			}
		},
		OnPhase: func(c repro.PhaseCost) {
			select {
			case events <- streamEvent{"phase", phaseEvent{c.Name, c.Rounds, c.Messages, c.Dilation}}:
			default:
				s.streamDrops.Add(1)
			}
		},
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	start := time.Now()
	done := make(chan struct{})
	var (
		res   *repro.SimulationResult
		runHE *httpError
	)
	go func() {
		defer close(done)
		res, runHE = s.run(r.Context(), p, req.Scheme, obs)
	}()

	writeSSE := func(ev streamEvent) {
		blob, err := json.Marshal(ev.data)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.kind, blob)
		flusher.Flush()
	}
	for running := true; running; {
		select {
		case ev := <-events:
			writeSSE(ev)
		case <-done:
			running = false
		}
	}
	// The run finished; no observer will send again. Drain what's buffered
	// so the client sees the tail before the terminal event.
	for {
		select {
		case ev := <-events:
			writeSSE(ev)
			continue
		default:
		}
		break
	}
	if runHE != nil {
		writeSSE(streamEvent{"error", map[string]any{"status": runHE.status, "error": runHE.message}})
		return
	}
	writeSSE(streamEvent{"result", s.response(req, p, res, time.Since(start))})
}

// handleSchemes is GET /v1/schemes.
func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"schemes": listSchemes()})
}

// handleMetrics is GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.writeExposition(w)
}

// handleHealthz is GET /v1/healthz: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
