package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestDeriveStable(t *testing.T) {
	root := New(7)
	s1 := root.Derive(13)
	// Advancing the root must not change future derivations.
	root.Uint64()
	root.Uint64()
	s2 := New(7).Derive(13)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("Derive is not a pure function of (seed, stream) at step %d", i)
		}
	}
}

func TestDeriveIndependent(t *testing.T) {
	root := New(7)
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 512; stream++ {
		v := root.Derive(stream).Uint64()
		if seen[v] {
			t.Fatalf("streams collide on first output (stream=%d)", stream)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(10)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(2)
	for _, n := range []int64{1, 2, 1000, math.MaxInt32 + 5, math.MaxInt64} {
		for i := 0; i < 100; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	// Must not panic and must be deterministic.
	a := r.Uint64()
	var r2 RNG
	if a != r2.Uint64() {
		t.Fatal("zero-value RNG not deterministic")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000003)
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := New(31)
	const rate, trials = 2.0, 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%v) mean = %v, want %v", rate, mean, 1/rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}
