// Package xrand provides a small, fast, deterministic, splittable random
// number generator used throughout the repository.
//
// Distributed randomized algorithms in this codebase must behave identically
// under the sequential and the concurrent LOCAL engines, and across repeated
// runs with the same seed. math/rand's global functions are unsuitable for
// that (shared state, lock contention, no stable stream derivation), so every
// node derives its own private stream from a root seed and its node ID.
//
// The generator is SplitMix64 (Steele, Lea, Flood; "Fast splittable
// pseudorandom number generators", OOPSLA 2014): a 64-bit counter advanced by
// the golden-gamma constant and finalized by a variant of the MurmurHash3
// finalizer. It passes BigCrush when used as specified and, crucially, admits
// cheap, well-distributed stream splitting, which is exactly what a
// goroutine-per-node simulator needs.
package xrand

import "math"

// RNG is a deterministic pseudorandom number generator. The zero value is a
// valid generator seeded with 0; prefer New or Derive for explicit seeding.
//
// RNG is not safe for concurrent use; derive one stream per goroutine.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// golden gamma: 2^64 / phi, rounded to odd.
const gamma = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += gamma
	return mix64(r.state)
}

// Derive returns a new independent stream determined by the receiver's seed
// and the given stream identifier. Derive does not advance the receiver, so
// the mapping (seed, stream) -> RNG is stable: every node can be handed the
// same stream on every run regardless of scheduling.
func (r *RNG) Derive(stream uint64) *RNG {
	rng := r.Derived(stream)
	return &rng
}

// Derived is Derive returning the generator by value, for callers that embed
// per-node streams in flat arrays (a million-node simulation cannot afford a
// heap allocation per node's RNG).
func (r *RNG) Derived(stream uint64) RNG {
	// Mix the stream ID through two rounds so that adjacent node IDs yield
	// unrelated streams.
	return RNG{state: mix64(r.state+gamma) ^ mix64(stream*gamma+1)}
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mulHiLo(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mulHiLo returns the high and low 64 bits of a*b.
func mulHiLo(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with n <= 0")
	}
	if n <= math.MaxInt32 {
		return int64(r.Intn(int(n)))
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudorandom permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp called with rate <= 0")
	}
	return -math.Log(1-r.Float64()) / rate
}
