package broadcast

// Tests for the gossip early-stop machinery: the BallIndex that replaces
// per-call ball rebuilds in cover accounting, the tracker-driven
// GossipUntilCover/GossipUntilCovered entry points whose executed prefix
// must be bit-identical to the fixed schedule's, and the explicit
// min-semantics between a caller-provided round budget and the broadcast
// protocols' own schedule lengths.

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

// TestGossipUntilCoverMatchesGossip pins the tentpole equivalence: the
// early-stopped run reports exactly the full schedule's cover round, bills
// exactly the same messages through it, records identical arrivals up to the
// stop, and executes only cover+1 rounds — on both engines, with the ledger
// on and off.
func TestGossipUntilCoverMatchesGossip(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.08, xrand.New(9))
	const tBall = 2
	const schedule = 6000
	payloads := mkPayloads(g.NumNodes())
	bi := NewBallIndex(g, tBall)

	full, err := Gossip(context.Background(), g, payloads, schedule, local.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cover := CoverRound(g, full.Arrival, tBall)
	if cover < 0 {
		t.Fatalf("schedule of %d rounds did not cover the %d-balls", schedule, tBall)
	}
	wantBill := MessagesUpTo(full.Run, cover)

	for _, tc := range []struct {
		name string
		cfg  local.Config
	}{
		{"sequential", local.Config{Seed: 3}},
		{"sequential-noledger", local.Config{Seed: 3, NoLedger: true}},
		{"concurrent", local.Config{Seed: 3, Concurrent: true, Workers: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			early, got, err := GossipUntilCover(context.Background(), g, payloads, bi, schedule, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != cover {
				t.Fatalf("early stop reported cover round %d, full schedule says %d", got, cover)
			}
			if early.Run.Rounds != cover+1 {
				t.Fatalf("early stop executed %d rounds, want cover+1 = %d", early.Run.Rounds, cover+1)
			}
			bill, err := early.MessagesThrough(cover)
			if err != nil {
				t.Fatal(err)
			}
			if bill != wantBill {
				t.Fatalf("early-stopped bill %d != full-schedule bill %d", bill, wantBill)
			}
			// The executed prefix is the same execution: every arrival the
			// early run recorded matches the full run's round exactly.
			for v := range early.Arrival {
				for u, r := range early.Arrival[v] {
					if fr, ok := full.Arrival[v][u]; !ok || fr != r {
						t.Fatalf("node %d origin %d arrived at %d early, %d (ok=%v) full", v, u, r, fr, ok)
					}
				}
			}
		})
	}
}

// TestGossipUntilCoveredMatchesSortedCoverRounds pins the fractional variant
// hybrid's seeding stage rides: the stop round equals the need-th smallest
// per-node cover round of the full run.
func TestGossipUntilCoveredMatchesSortedCoverRounds(t *testing.T) {
	g := gen.ConnectedGNP(50, 0.1, xrand.New(21))
	const tBall = 2
	const schedule = 5000
	payloads := mkPayloads(g.NumNodes())
	bi := NewBallIndex(g, tBall)

	full, err := Gossip(context.Background(), g, payloads, schedule, local.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	perNode := bi.CoverRounds(full.Arrival)
	need := g.NumNodes() / 2
	// The need-th smallest completion round, computed the pedestrian way.
	want := -1
	for r := 0; r <= schedule; r++ {
		done := 0
		for _, cr := range perNode {
			if cr >= 0 && cr <= r {
				done++
			}
		}
		if done >= need {
			want = r
			break
		}
	}
	if want < 0 {
		t.Fatalf("full schedule never covered %d nodes", need)
	}

	_, got, err := GossipUntilCovered(context.Background(), g, payloads, bi, need, schedule, local.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("GossipUntilCovered stopped at round %d, want %d", got, want)
	}
}

// TestGossipUntilCoverBudgetExhausted: a schedule too short to cover must
// report -1, exactly like CoverRound on the truncated run.
func TestGossipUntilCoverBudgetExhausted(t *testing.T) {
	g := gen.ConnectedGNP(40, 0.1, xrand.New(5))
	bi := NewBallIndex(g, 3)
	res, cover, err := GossipUntilCover(context.Background(), g, mkPayloads(g.NumNodes()), bi, 1, local.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cover != -1 {
		t.Fatalf("1-round schedule reported cover %d, want -1", cover)
	}
	if got := CoverRound(g, res.Arrival, 3); got != -1 {
		t.Fatalf("CoverRound on the truncated run says %d, want -1", got)
	}
}

// TestBallIndexCoverRoundsAllocs is the allocation-regression pin for the
// CoverRounds satellite fix: querying a prebuilt index must not rebuild the
// balls (historically one BFS plus one slice and one map per node per call).
func TestBallIndexCoverRoundsAllocs(t *testing.T) {
	g := gen.ConnectedGNP(80, 0.06, xrand.New(4))
	res, err := Gossip(context.Background(), g, mkPayloads(g.NumNodes()), 400, local.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	bi := NewBallIndex(g, 2)
	allocs := testing.AllocsPerRun(20, func() {
		bi.CoverRounds(res.Arrival)
	})
	// One output slice; rebuilding ball membership would cost >= 2 allocs
	// per node (slice + set) and fail loudly.
	if allocs > 2 {
		t.Fatalf("BallIndex.CoverRounds allocates %.0f times per call, want <= 2", allocs)
	}
	// The index agrees with the rebuild-every-time wrapper.
	want := CoverRounds(g, res.Arrival, 2)
	got := bi.CoverRounds(res.Arrival)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: indexed cover round %d != recomputed %d", v, got[v], want[v])
		}
	}
}

// TestScheduleBudgetClamp pins the explicit interaction between a
// caller-provided round budget (cfg.MaxRounds) and the broadcast protocols'
// own schedules: the effective schedule is the min of the two, plus the
// final sendless halt round — on both engines, for both Flood and Gossip.
// Historically the protocols silently overwrote the caller's budget.
func TestScheduleBudgetClamp(t *testing.T) {
	g := gen.Grid(6, 6) // diameter 10: a 5-round flood is properly truncated by a budget of 3
	payloads := mkPayloads(g.NumNodes())
	cases := []struct {
		name       string
		budget     int // cfg.MaxRounds handed in by the caller
		schedule   int // the protocol's own rounds argument
		wantRounds int // executed rounds: min(budget,schedule)+1
	}{
		{"zero-budget-keeps-schedule", 0, 5, 6},
		{"budget-below-schedule-caps", 3, 5, 4},
		{"budget-equal-schedule", 5, 5, 6},
		{"budget-above-schedule", 100, 5, 6},
	}
	for _, eng := range []struct {
		name string
		cfg  local.Config
	}{
		{"sequential", local.Config{Seed: 1}},
		{"concurrent", local.Config{Seed: 1, Concurrent: true, Workers: 2}},
	} {
		for _, tc := range cases {
			t.Run(eng.name+"/flood/"+tc.name, func(t *testing.T) {
				cfg := eng.cfg
				cfg.MaxRounds = tc.budget
				res, err := Flood(context.Background(), g, payloads, tc.schedule, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Run.Rounds != tc.wantRounds {
					t.Fatalf("flood executed %d rounds, want %d", res.Run.Rounds, tc.wantRounds)
				}
				// A capped flood is a clean shorter flood: coverage equals
				// the balls of the effective radius, and all nodes halted.
				eff := min(tc.schedule, tc.wantRounds-1)
				for v := 0; v < g.NumNodes(); v++ {
					if want := len(g.Ball(graph.NodeID(v), eff)); len(res.Known[v]) != want {
						t.Fatalf("node %d knows %d rumors, radius-%d ball has %d", v, len(res.Known[v]), eff, want)
					}
				}
				if !res.Run.Halted {
					t.Fatal("capped flood did not halt cleanly")
				}
			})
			t.Run(eng.name+"/gossip/"+tc.name, func(t *testing.T) {
				cfg := eng.cfg
				cfg.MaxRounds = tc.budget
				res, err := Gossip(context.Background(), g, payloads, tc.schedule, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Run.Rounds != tc.wantRounds {
					t.Fatalf("gossip executed %d rounds, want %d", res.Run.Rounds, tc.wantRounds)
				}
				if !res.Run.Halted {
					t.Fatal("capped gossip did not halt cleanly")
				}
			})
		}
	}
}
