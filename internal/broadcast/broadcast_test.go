package broadcast

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func mkPayloads(n int) []any {
	p := make([]any, n)
	for i := range p {
		p[i] = i * 10
	}
	return p
}

func TestFloodExactBalls(t *testing.T) {
	g := gen.ConnectedGNP(120, 0.04, xrand.New(1))
	for _, tRounds := range []int{0, 1, 3} {
		res, err := Flood(context.Background(), g, mkPayloads(g.NumNodes()), tRounds, local.Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			ball := g.Ball(graph.NodeID(v), tRounds)
			if len(res.Known[v]) != len(ball) {
				t.Fatalf("t=%d node %d knows %d rumors, ball has %d",
					tRounds, v, len(res.Known[v]), len(ball))
			}
			dist := g.BFS(graph.NodeID(v), tRounds)
			for _, u := range ball {
				if res.Known[v][u] != int(u)*10 {
					t.Fatalf("payload corrupted: %v", res.Known[v][u])
				}
				if res.Arrival[v][u] != dist[u] {
					t.Fatalf("arrival %d != distance %d", res.Arrival[v][u], dist[u])
				}
			}
		}
	}
}

func TestFloodMessageCost(t *testing.T) {
	// Flooding for t rounds costs at most 2·t·|E| messages and at least |E|
	// (round 0 sends on every half-edge... each node sends its own rumor).
	g := gen.Grid(8, 8)
	const tr = 4
	res, err := Flood(context.Background(), g, mkPayloads(g.NumNodes()), tr, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hi := int64(2 * tr * g.NumEdges())
	if res.Run.Messages > hi {
		t.Fatalf("flood sent %d messages, cap %d", res.Run.Messages, hi)
	}
	if res.Run.Messages < int64(2*g.NumEdges()) {
		t.Fatalf("flood sent %d messages, expected at least one full sweep", res.Run.Messages)
	}
}

func TestFloodOnSpannerCoversBalls(t *testing.T) {
	// Flooding on a stretch-α spanner for α·t rounds must reach a superset
	// of every t-ball of g — the heart of the paper's simulation technique.
	g := gen.ConnectedGNP(150, 0.07, xrand.New(3))
	sp, err := core.Build(g, core.Default(2, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := graph.VerifySpanner(g, sp.S, sp.StretchBound())
	if err != nil {
		t.Fatal(err)
	}
	const tr = 2
	res, err := Flood(context.Background(), h, mkPayloads(g.NumNodes()), sp.StretchBound()*tr, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Ball(graph.NodeID(v), tr) {
			if _, ok := res.Known[v][u]; !ok {
				t.Fatalf("node %d missed rumor of %d (distance <= %d)", v, u, tr)
			}
		}
	}
	// And it should cost far fewer messages than flooding g directly when g
	// is dense relative to the spanner.
	direct, err := Flood(context.Background(), g, mkPayloads(g.NumNodes()), tr, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spanner flood: %d msgs, direct flood: %d msgs", res.Run.Messages, direct.Run.Messages)
}

func TestFloodValidation(t *testing.T) {
	if _, err := Flood(context.Background(), nil, nil, 1, local.Config{}); err == nil {
		t.Fatal("nil host accepted")
	}
	g := gen.Path(3)
	if _, err := Flood(context.Background(), g, make([]any, 2), 1, local.Config{}); err == nil {
		t.Fatal("short payloads accepted")
	}
	if _, err := Flood(context.Background(), g, make([]any, 3), -1, local.Config{}); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func TestGossipEventuallyCovers(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.15, xrand.New(4))
	const tr = 2
	res, err := Gossip(context.Background(), g, mkPayloads(g.NumNodes()), 400, local.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cover := CoverRound(g, res.Arrival, tr)
	if cover < 0 {
		t.Fatal("gossip did not cover t-balls within 400 rounds")
	}
	if cover <= tr {
		t.Fatalf("gossip covered in %d rounds; even flooding needs %d", cover, tr)
	}
	msgs := MessagesUpTo(res.Run, cover)
	if msgs <= 0 || msgs > int64(cover+1)*2*int64(g.NumNodes()) {
		t.Fatalf("gossip messages to cover = %d outside (0, 2n(r+1)]", msgs)
	}
}

// TestGossipNoLedgerBillingExact pins the compact arrival-round record: with
// the per-round ledger disabled, MessagesThrough must return exactly the
// prefix sums the ledger would have, at every round CoverRound/CoverRounds
// can name, on both engines — and the run must not retain PerRound.
func TestGossipNoLedgerBillingExact(t *testing.T) {
	g := gen.ConnectedGNP(40, 0.1, xrand.New(9))
	payloads := testPayloads(g.NumNodes())
	const rounds, t2 = 200, 2
	for _, concurrent := range []bool{false, true} {
		with, err := Gossip(context.Background(), g, payloads, rounds, local.Config{Seed: 4, Concurrent: concurrent})
		if err != nil {
			t.Fatal(err)
		}
		bare, err := Gossip(context.Background(), g, payloads, rounds, local.Config{Seed: 4, Concurrent: concurrent, NoLedger: true})
		if err != nil {
			t.Fatal(err)
		}
		if bare.Run.PerRound != nil {
			t.Fatalf("concurrent=%v: NoLedger gossip retained %d PerRound entries", concurrent, len(bare.Run.PerRound))
		}
		if bare.Run.Messages != with.Run.Messages || bare.Run.Rounds != with.Run.Rounds {
			t.Fatalf("concurrent=%v: totals drifted: %+v vs %+v", concurrent, bare.Run, with.Run)
		}
		// Every billing deadline any caller can derive — the global cover
		// round and every per-node cover round — must answer identically.
		deadlines := map[int]bool{CoverRound(g, with.Arrival, t2): true}
		for _, r := range CoverRounds(g, with.Arrival, t2) {
			deadlines[r] = true
		}
		for r := range deadlines {
			if r < 0 {
				t.Fatalf("concurrent=%v: gossip did not cover within %d rounds", concurrent, rounds)
			}
			want := MessagesUpTo(with.Run, r)
			got, err := bare.MessagesThrough(r)
			if err != nil {
				t.Fatalf("concurrent=%v: MessagesThrough(%d): %v", concurrent, r, err)
			}
			if got != want {
				t.Fatalf("concurrent=%v: MessagesThrough(%d) = %d, ledger says %d", concurrent, r, got, want)
			}
			// The ledgered result must answer through the same API.
			if lg, err := with.MessagesThrough(r); err != nil || lg != want {
				t.Fatalf("concurrent=%v: ledgered MessagesThrough(%d) = %d, %v", concurrent, r, lg, err)
			}
		}
		// A round past every arrival has no record: the error is loud, not
		// a silent underbill.
		if _, err := bare.MessagesThrough(rounds - 1); err == nil {
			maxArr := 0
			for _, m := range bare.Arrival {
				for _, r := range m {
					if r > maxArr {
						maxArr = r
					}
				}
			}
			if maxArr < rounds-1 {
				t.Fatalf("concurrent=%v: MessagesThrough(%d) beyond the last arrival (%d) did not error", concurrent, rounds-1, maxArr)
			}
		}
	}
}

func TestGossipMessagesPerRoundBounded(t *testing.T) {
	g := gen.ConnectedGNP(80, 0.1, xrand.New(5))
	res, err := Gossip(context.Background(), g, mkPayloads(g.NumNodes()), 50, local.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for r, c := range res.Run.PerRound {
		if c > 2*int64(g.NumNodes()) {
			t.Fatalf("round %d sent %d messages > 2n", r, c)
		}
	}
}

func TestGossipSlowOnBarbell(t *testing.T) {
	// Low conductance strangles gossip: the single bridge carries rumors
	// across at ~1 per round. This is the round blow-up the paper removes.
	g := gen.Barbell(20, 2) // 42 nodes
	const tr = 3
	gossip, err := Gossip(context.Background(), g, mkPayloads(g.NumNodes()), 2000, local.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	cover := CoverRound(g, gossip.Arrival, tr)
	if cover < 0 {
		t.Fatal("gossip never covered")
	}
	if cover < 3*tr {
		t.Fatalf("gossip covered a barbell in %d rounds; expected a clear blow-up over t=%d", cover, tr)
	}
}

func TestCoverRoundNotCovered(t *testing.T) {
	g := gen.Path(5)
	res, err := Gossip(context.Background(), g, mkPayloads(5), 0, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if CoverRound(g, res.Arrival, 2) != -1 {
		t.Fatal("zero-round gossip cannot cover 2-balls")
	}
}

func TestMessagesUpTo(t *testing.T) {
	run := local.Result{PerRound: []int64{5, 7, 11}}
	if MessagesUpTo(run, 1) != 12 {
		t.Fatal("prefix sum wrong")
	}
	if MessagesUpTo(run, 99) != 23 {
		t.Fatal("overflow horizon wrong")
	}
}
