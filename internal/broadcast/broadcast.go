// Package broadcast implements the t-local broadcast primitive of the
// paper's Section 6 — every node v delivers its message M_v to all nodes
// within distance t — in the three forms the experiments compare:
//
//   - Flood on the communication graph G itself: the direct baseline,
//     Θ(t·m) messages;
//   - Flood on a spanner H with stretch α for α·t rounds: the paper's
//     scheme, Θ(α·t·|S|) messages, reaching a superset of each t-ball;
//   - push–pull Gossip: the [Censor-Hillel et al.; Haeupler] family's
//     message profile (Θ(n) messages per round), whose round count we
//     measure empirically — it blows up with the graph's conductance, which
//     is exactly the behaviour the paper's introduction contrasts against.
package broadcast

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/local"
)

// Result is the outcome of a broadcast run.
type Result struct {
	// Known maps, per node, each heard origin to its payload.
	Known []map[graph.NodeID]any
	// Arrival maps, per node, each heard origin to the round it was first
	// heard (own rumor: round 0).
	Arrival []map[graph.NodeID]int
	// Run carries the LOCAL cost metrics.
	Run local.Result

	// cumAt records, for gossip runs with the per-round ledger disabled,
	// the cumulative message count through every round in which some node
	// first heard some origin. Billing deadlines (CoverRound, CoverRounds)
	// are always such arrival rounds, so this compact record — bounded by
	// the number of arrival events, independent of the schedule length —
	// answers every MessagesThrough query the ledger used to serve.
	cumAt map[int]int64
}

// MessagesThrough returns the cumulative number of messages sent through
// the given round (inclusive) — the billing primitive behind cover-round
// accounting. With the per-round ledger enabled it sums Run.PerRound
// exactly like MessagesUpTo; with the ledger disabled (local.Config's
// NoLedger) it consults the compact arrival-round record that Gossip
// maintains, which covers every round CoverRound or CoverRounds can
// return. Querying a round with no record is an error: it means the caller
// asked about a non-arrival round of a ledgerless run, which no billing
// path does.
func (r *Result) MessagesThrough(round int) (int64, error) {
	if r.cumAt == nil {
		if r.Run.PerRound == nil && r.Run.Rounds > 0 {
			// A ledgerless run with no arrival-round record (a flood, not a
			// gossip): there is nothing to bill against — error rather than
			// silently summing the missing ledger to 0.
			return 0, fmt.Errorf("broadcast: no per-round ledger and no arrival-round record (run with the ledger enabled to bill by round)")
		}
		return MessagesUpTo(r.Run, round), nil
	}
	if c, ok := r.cumAt[round]; ok {
		return c, nil
	}
	return 0, fmt.Errorf("broadcast: no cumulative message record at round %d (per-round ledger disabled; only arrival rounds are recorded)", round)
}

// rumor is one node's message in transit.
type rumor struct {
	Origin  graph.NodeID
	Payload any
}

// floodBatch is the set of rumors forwarded over one edge in one round. It
// travels as a *floodBatch: boxing a pointer into the payload interface is
// allocation-free, and a batch sent in round r is only ever read in round
// r+1, so the double-buffered sender can reuse its backing array from round
// r+2 on.
type floodBatch []rumor

// floodNode floods newly learned rumors to all neighbors each round. The
// outgoing batch is buffered by round parity: a batch sent in round r is
// read by receivers in round r+1 — or, under an adversary with delivery
// delays, as late as round r+1+B — so the buffer ring holds B+2 batches and
// the buffer of parity p is free for rewriting when p comes around again
// (after the longest possible in-flight lifetime has passed). The flawless
// network keeps the historical two buffers.
type floodNode struct {
	t       int
	self    any  // this node's own message M_v
	seed    bool // whether this node injects its own rumor
	known   map[graph.NodeID]any
	arrival map[graph.NodeID]int
	fresh   []floodBatch
}

func (p *floodNode) Step(env *local.Env, round int, inbox []local.Message) {
	cur := &p.fresh[round%len(p.fresh)]
	*cur = (*cur)[:0]
	if round == 0 {
		p.known = map[graph.NodeID]any{env.ID(): p.self}
		p.arrival = map[graph.NodeID]int{env.ID(): 0}
		if p.seed {
			*cur = append(*cur, rumor{Origin: env.ID(), Payload: p.self})
		}
	}
	for _, m := range inbox {
		for _, r := range *m.Payload.(*floodBatch) {
			if _, ok := p.known[r.Origin]; !ok {
				p.known[r.Origin] = r.Payload
				p.arrival[r.Origin] = round
				*cur = append(*cur, r)
			}
		}
	}
	if round >= p.t {
		env.Halt()
		return
	}
	if len(*cur) > 0 {
		for _, pt := range env.Ports() {
			env.Send(pt.Edge, cur)
		}
	}
}

// Flood floods each node's rumor (payloads[v], which may be nil) over host
// for exactly rounds rounds. After the run, node v knows the rumor of every
// node within host-distance rounds of v, with Arrival equal to that
// distance. Cancelling ctx aborts the underlying run.
func Flood(ctx context.Context, host *graph.Graph, payloads []any, rounds int, cfg local.Config) (*Result, error) {
	return FloodFrom(ctx, host, payloads, nil, rounds, cfg)
}

// FloodFrom is Flood restricted to a subset of sources: only nodes with
// seeds[v] true inject their own rumor (nil seeds means every node seeds,
// recovering Flood). Non-seeding nodes still forward everything they hear and
// still know their own payload, so the result's Known sets cover, for every
// node v, the rumor of every seeding node within host-distance rounds plus v
// itself. The hybrid scheme uses it to collect only the residue that its
// gossip stage left uncovered.
func FloodFrom(ctx context.Context, host *graph.Graph, payloads []any, seeds []bool, rounds int, cfg local.Config) (*Result, error) {
	if host == nil {
		return nil, fmt.Errorf("broadcast: nil host graph")
	}
	if len(payloads) != host.NumNodes() {
		return nil, fmt.Errorf("broadcast: %d payloads for %d nodes", len(payloads), host.NumNodes())
	}
	if seeds != nil && len(seeds) != host.NumNodes() {
		return nil, fmt.Errorf("broadcast: %d seed flags for %d nodes", len(seeds), host.NumNodes())
	}
	if rounds < 0 {
		return nil, fmt.Errorf("broadcast: negative round budget")
	}
	nodes := make([]*floodNode, host.NumNodes())
	rounds = clampSchedule(&cfg, rounds)
	parities := 2 + maxDelay(cfg)
	run, err := local.RunCtx(ctx, host, func(v graph.NodeID) local.Protocol {
		nd := &floodNode{
			t:     rounds,
			self:  payloads[v],
			seed:  seeds == nil || seeds[v],
			fresh: make([]floodBatch, parities),
		}
		nodes[v] = nd
		return nd
	}, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Run: run}
	for _, nd := range nodes {
		res.Known = append(res.Known, nd.known)
		res.Arrival = append(res.Arrival, nd.arrival)
	}
	return res, nil
}

// maxDelay is the configured adversary's delivery-delay bound (0 without an
// adversary): the extra payload-buffer lifetime the broadcast protocols must
// tolerate before reusing an in-flight envelope.
func maxDelay(cfg local.Config) int {
	if cfg.Adversary != nil {
		return cfg.Adversary.MaxDelay()
	}
	return 0
}

// clampSchedule reconciles a caller-provided round budget (cfg.MaxRounds)
// with a broadcast protocol's own schedule length: the effective schedule is
// the smaller of the two, and the engine bound is set to schedule+1 — the
// final round, in which nodes process their last inbox and halt without
// sending, rides on top of the schedule. This makes the interaction between
// the engine-level budget and the broadcast-internal schedule explicit
// (historically the protocols silently overwrote the caller's budget).
// Returns the effective schedule length.
func clampSchedule(cfg *local.Config, schedule int) int {
	if cfg.MaxRounds > 0 && cfg.MaxRounds < schedule {
		schedule = cfg.MaxRounds
	}
	cfg.MaxRounds = schedule + 1
	return schedule
}

// arrivalTracker centrally aggregates first-arrival events from all gossip
// nodes as they happen. The plain arrival counter lets a ledgerless run
// detect arrival rounds in O(1) per round (instead of scanning all n nodes'
// flags after every round); with a BallIndex attached it additionally
// maintains, per node, how many of that node's distance-t ball members are
// still unheard, and counts the nodes whose balls are complete — the
// early-stop condition checked after each round's barrier.
//
// Race discipline: arrivals and covered are atomics; left[v] is written only
// from node v's Step (each node is stepped by exactly one goroutine per
// round), and the coordinating goroutine reads the atomics only after the
// round's barrier.
type arrivalTracker struct {
	arrivals atomic.Int64
	covered  atomic.Int64
	ball     *BallIndex
	left     []int
}

func newArrivalTracker(n int, bi *BallIndex) *arrivalTracker {
	tr := &arrivalTracker{ball: bi}
	if bi != nil {
		tr.left = make([]int, n)
		for v := range tr.left {
			tr.left[v] = bi.Size(graph.NodeID(v))
		}
	}
	return tr
}

// learn records that node v first heard origin u (including its own rumor at
// round 0).
//
//freelunch:noalloc
func (tr *arrivalTracker) learn(v, u graph.NodeID) {
	tr.arrivals.Add(1)
	if tr.ball == nil || !tr.ball.Contains(v, u) {
		return
	}
	tr.left[v]--
	if tr.left[v] == 0 {
		tr.covered.Add(1)
	}
}

// gossipNode implements synchronous push–pull gossip: each round it pushes
// its full rumor set over one uniformly random incident edge and answers
// last round's pushes with its full set. The rumor snapshot and the
// push/pull envelopes are buffered by round parity — payloads sent in round
// r are read in round r+1 (or as late as r+1+B under an adversary with
// delay bound B, hence B+2 parities in the ring; two on the flawless
// network, as historically) and never later, so parity-p buffers are free
// for reuse when parity p recurs — and the envelopes travel as pointers,
// whose interface boxing is allocation-free. A steady-state gossip round
// therefore allocates only when the known set (and with it the snapshot
// buffer) grows.
type gossipNode struct {
	t       int
	track   *arrivalTracker
	known   map[graph.NodeID]any
	arrival map[graph.NodeID]int
	replyTo []graph.EdgeID
	push    []gossipPush
	pull    []gossipPull
}

type gossipPush struct{ Rumors []rumor }
type gossipPull struct{ Rumors []rumor }

func (p *gossipNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		p.known = map[graph.NodeID]any{env.ID(): nil} // payload patched by harness
		p.arrival = map[graph.NodeID]int{env.ID(): 0}
		p.track.learn(env.ID(), env.ID())
	}
	for _, m := range inbox {
		var rumors []rumor
		switch msg := m.Payload.(type) {
		case *gossipPush:
			rumors = msg.Rumors
			p.replyTo = append(p.replyTo, m.Edge)
		case *gossipPull:
			rumors = msg.Rumors
		}
		for _, r := range rumors {
			if _, ok := p.known[r.Origin]; !ok {
				p.known[r.Origin] = r.Payload
				p.arrival[r.Origin] = round
				p.track.learn(env.ID(), r.Origin)
			}
		}
	}
	if round >= p.t {
		env.Halt()
		return
	}
	parity := round % len(p.push)
	all := p.snapshot(parity)
	if len(p.replyTo) > 0 {
		pull := &p.pull[parity]
		pull.Rumors = all
		for _, e := range p.replyTo {
			env.Send(e, pull)
		}
		p.replyTo = p.replyTo[:0]
	}
	if env.Degree() > 0 {
		pt := env.Ports()[env.Rand().Intn(env.Degree())]
		push := &p.push[parity]
		push.Rumors = all
		env.Send(pt.Edge, push)
	}
}

// snapshot rebuilds the node's full rumor set into the parity's reusable
// buffer (the pull envelope of the same parity shares it; both are in
// flight for exactly one round).
func (p *gossipNode) snapshot(parity int) []rumor {
	out := p.pull[parity].Rumors[:0]
	//freelunch:orderok receivers fold Rumors into their known map (a set); emission order is never observed
	for o, pl := range p.known {
		out = append(out, rumor{Origin: o, Payload: pl})
	}
	p.pull[parity].Rumors = out
	return out
}

// Gossip runs push–pull gossip on host for exactly rounds rounds (choose a
// generous budget and use CoverRound to find when coverage was actually
// achieved). Message complexity is at most 2n per round by construction.
// Cancelling ctx aborts the underlying run.
func Gossip(ctx context.Context, host *graph.Graph, payloads []any, rounds int, cfg local.Config) (*Result, error) {
	res, _, err := gossipRun(ctx, host, payloads, rounds, cfg, nil, 0)
	return res, err
}

// GossipUntilCover is Gossip with central early stopping: the run executes
// the same schedule as Gossip(rounds) but ends the round loop the moment
// every node has heard the rumor of every member of its distance-t ball (per
// bi). The executed prefix is bit-identical to the full schedule's — per-node
// RNG streams depend only on (seed, id), and the stop check runs after the
// round's barrier — so arrivals, per-round bills, and MessagesThrough answers
// through the stop round all match Gossip's. The second return value is the
// cover round (equal to CoverRound on the full run), or -1 if the schedule
// ended before coverage.
func GossipUntilCover(ctx context.Context, host *graph.Graph, payloads []any, bi *BallIndex, rounds int, cfg local.Config) (*Result, int, error) {
	if bi == nil {
		return nil, 0, fmt.Errorf("broadcast: GossipUntilCover needs a ball index")
	}
	return gossipRun(ctx, host, payloads, rounds, cfg, bi, host.NumNodes())
}

// GossipUntilCovered is GossipUntilCover's fractional form: it stops as soon
// as at least target nodes hold their complete distance-t ball, returning
// the earliest round at which that held (-1 if never within the schedule).
// The hybrid scheme uses it to find its seeding deadline without simulating
// the schedule's dead tail.
func GossipUntilCovered(ctx context.Context, host *graph.Graph, payloads []any, bi *BallIndex, target, rounds int, cfg local.Config) (*Result, int, error) {
	if bi == nil {
		return nil, 0, fmt.Errorf("broadcast: GossipUntilCovered needs a ball index")
	}
	if target < 0 || target > host.NumNodes() {
		return nil, 0, fmt.Errorf("broadcast: cover target %d outside [0,%d]", target, host.NumNodes())
	}
	return gossipRun(ctx, host, payloads, rounds, cfg, bi, target)
}

// gossipRun is the shared gossip harness. With bi nil it runs the plain
// fixed schedule; with bi set it installs a StopWhen hook that ends the run
// at the first round after which at least target nodes' balls are complete,
// and returns that round (-1 if the schedule ended first).
func gossipRun(ctx context.Context, host *graph.Graph, payloads []any, rounds int, cfg local.Config, bi *BallIndex, target int) (*Result, int, error) {
	if host == nil {
		return nil, 0, fmt.Errorf("broadcast: nil host graph")
	}
	if len(payloads) != host.NumNodes() {
		return nil, 0, fmt.Errorf("broadcast: %d payloads for %d nodes", len(payloads), host.NumNodes())
	}
	if bi != nil && bi.Nodes() != host.NumNodes() {
		return nil, 0, fmt.Errorf("broadcast: ball index spans %d nodes, host has %d", bi.Nodes(), host.NumNodes())
	}
	nodes := make([]*gossipNode, host.NumNodes())
	rounds = clampSchedule(&cfg, rounds)
	parities := 2 + maxDelay(cfg)
	track := newArrivalTracker(host.NumNodes(), bi)
	if bi != nil {
		// The hook is a pure coverage check: the cover round itself is
		// recovered post-hoc from the recorded arrivals, so an adversary
		// that defers the stop (delayed messages in flight keep the
		// in-flight gate closed) cannot inflate the billed cover round.
		cfg.StopWhen = func(int, int64) bool {
			return track.covered.Load() >= int64(target)
		}
	}
	// With the per-round ledger disabled, record cumulative message counts
	// at arrival rounds so cover-round billing (MessagesThrough) stays exact
	// at O(1) memory in executed rounds. The tracker's arrival counter makes
	// the per-round check O(1): a round recorded an arrival iff the counter
	// moved since the previous barrier.
	var cumAt map[int]int64
	if cfg.NoLedger {
		cumAt = make(map[int]int64)
		inner := cfg.OnRound
		var cum, lastArrivals int64
		cfg.OnRound = func(r int, m int64) {
			cum += m
			if a := track.arrivals.Load(); a != lastArrivals {
				lastArrivals = a
				cumAt[r] = cum
			}
			if inner != nil {
				inner(r, m)
			}
		}
	}
	run, err := local.RunCtx(ctx, host, func(v graph.NodeID) local.Protocol {
		nd := &gossipNode{
			t:     rounds,
			track: track,
			push:  make([]gossipPush, parities),
			pull:  make([]gossipPull, parities),
		}
		nodes[v] = nd
		return nd
	}, cfg)
	if err != nil {
		return nil, 0, err
	}
	res := &Result{Run: run, cumAt: cumAt}
	for _, nd := range nodes {
		// Rumors travel as bare origins; rebind payloads from ground truth.
		for o := range nd.known {
			nd.known[o] = payloads[o]
		}
		res.Known = append(res.Known, nd.known)
		res.Arrival = append(res.Arrival, nd.arrival)
	}
	return res, coverAt(bi, res.Arrival, target), nil
}

// coverAt recovers the run's cover round from the recorded arrivals: the
// earliest round by which at least target nodes held their complete ball —
// the target-th smallest per-node cover round — or -1 if the schedule ended
// first. On a flawless network this equals the round the StopWhen hook fired
// on (the covered counter first reaches target at exactly that round);
// under an adversary it is the true coverage round even when delayed
// in-flight traffic forced the run past it.
func coverAt(bi *BallIndex, arrival []map[graph.NodeID]int, target int) int {
	if bi == nil {
		return -1
	}
	if target <= 0 {
		return 0
	}
	var covered []int
	for _, r := range bi.CoverRounds(arrival) {
		if r >= 0 {
			covered = append(covered, r)
		}
	}
	if len(covered) < target {
		return -1
	}
	slices.Sort(covered)
	return covered[target-1]
}

// CoverRound returns the earliest round by which every node had heard the
// rumor of every node in its distance-t ball of g, or -1 if the run ended
// before that. Combine with Result.Run.PerRound (see MessagesUpTo) to get
// the message cost of achieving t-local broadcast.
func CoverRound(g *graph.Graph, arrival []map[graph.NodeID]int, t int) int {
	worst := 0
	for _, r := range CoverRounds(g, arrival, t) {
		if r < 0 {
			return -1
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// CoverRounds returns, per node, the earliest round by which that node had
// heard the rumor of every node in its distance-t ball of g (-1 if the run
// ended before that). It is the per-node refinement of CoverRound: the hybrid
// scheme uses it to find the round at which a target fraction of nodes is
// covered. Callers querying the same (graph, t) repeatedly should build a
// BallIndex once and use its CoverRounds method — this wrapper rebuilds the
// ball membership on every call.
func CoverRounds(g *graph.Graph, arrival []map[graph.NodeID]int, t int) []int {
	return NewBallIndex(g, t).CoverRounds(arrival)
}

// BallIndex is the per-node distance-t ball membership of one graph,
// computed once (one truncated BFS per node) and reused across every query
// that needs it: CoverRounds calls, the gossip early-stop tracker's
// per-arrival checks, and hybrid's residue scan. Historically each
// CoverRounds call re-ran all n BFS traversals; hybrid's geometric retry
// loop multiplied that by every budget doubling. A BallIndex is immutable
// once built and safe for concurrent readers.
type BallIndex struct {
	t    int
	sets []map[graph.NodeID]bool
}

// NewBallIndex computes the distance-t ball of every node of g.
func NewBallIndex(g *graph.Graph, t int) *BallIndex {
	bi := &BallIndex{t: t, sets: make([]map[graph.NodeID]bool, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		ball := g.Ball(graph.NodeID(v), t)
		m := make(map[graph.NodeID]bool, len(ball))
		for _, u := range ball {
			m[u] = true
		}
		bi.sets[v] = m
	}
	return bi
}

// T returns the ball radius the index was built for.
func (bi *BallIndex) T() int { return bi.t }

// Nodes returns the number of nodes the index spans.
func (bi *BallIndex) Nodes() int { return len(bi.sets) }

// Size returns |B_{G,t}(v)|.
func (bi *BallIndex) Size(v graph.NodeID) int { return len(bi.sets[v]) }

// Contains reports whether u lies within distance t of v.
func (bi *BallIndex) Contains(v, u graph.NodeID) bool { return bi.sets[v][u] }

// Members returns v's ball membership set. The map is owned by the index
// and must not be mutated.
func (bi *BallIndex) Members(v graph.NodeID) map[graph.NodeID]bool { return bi.sets[v] }

// CoverRounds is CoverRounds against the prebuilt index: per node, the
// earliest round by which every ball member's rumor had arrived (-1 if the
// run ended before that). Beyond the one output slice it allocates nothing.
func (bi *BallIndex) CoverRounds(arrival []map[graph.NodeID]int) []int {
	out := make([]int, len(bi.sets))
	for v := range bi.sets {
		worst := 0
		//freelunch:orderok max-reduction with a missing-member early exit; the result is visit-order-independent
		for u := range bi.sets[v] {
			r, ok := arrival[v][u]
			if !ok {
				worst = -1
				break
			}
			if r > worst {
				worst = r
			}
		}
		out[v] = worst
	}
	return out
}

// MessagesUpTo sums per-round message counts through the given round
// (inclusive). Rounds beyond the recorded horizon are ignored.
func MessagesUpTo(run local.Result, round int) int64 {
	var total int64
	for r, c := range run.PerRound {
		if r > round {
			break
		}
		total += c
	}
	return total
}

// Payload sizes (local.Sizer): a rumor costs one word for its origin plus
// the size of its content (port lists count their length).

func rumorUnits(rs []rumor) int64 {
	var u int64
	for _, r := range rs {
		u += 1 + contentUnits(r.Payload)
	}
	return u
}

func contentUnits(p any) int64 {
	switch v := p.(type) {
	case []graph.EdgeID:
		return int64(len(v))
	case nil:
		return 0
	default:
		return 1
	}
}

// PayloadUnits implements local.Sizer for flood batches.
func (b *floodBatch) PayloadUnits() int64 { return rumorUnits(*b) }

// PayloadUnits implements local.Sizer.
func (m *gossipPush) PayloadUnits() int64 { return rumorUnits(m.Rumors) }

// PayloadUnits implements local.Sizer.
func (m *gossipPull) PayloadUnits() int64 { return rumorUnits(m.Rumors) }
