// Package broadcast implements the t-local broadcast primitive of the
// paper's Section 6 — every node v delivers its message M_v to all nodes
// within distance t — in the three forms the experiments compare:
//
//   - Flood on the communication graph G itself: the direct baseline,
//     Θ(t·m) messages;
//   - Flood on a spanner H with stretch α for α·t rounds: the paper's
//     scheme, Θ(α·t·|S|) messages, reaching a superset of each t-ball;
//   - push–pull Gossip: the [Censor-Hillel et al.; Haeupler] family's
//     message profile (Θ(n) messages per round), whose round count we
//     measure empirically — it blows up with the graph's conductance, which
//     is exactly the behaviour the paper's introduction contrasts against.
package broadcast

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
)

// Result is the outcome of a broadcast run.
type Result struct {
	// Known maps, per node, each heard origin to its payload.
	Known []map[graph.NodeID]any
	// Arrival maps, per node, each heard origin to the round it was first
	// heard (own rumor: round 0).
	Arrival []map[graph.NodeID]int
	// Run carries the LOCAL cost metrics.
	Run local.Result

	// cumAt records, for gossip runs with the per-round ledger disabled,
	// the cumulative message count through every round in which some node
	// first heard some origin. Billing deadlines (CoverRound, CoverRounds)
	// are always such arrival rounds, so this compact record — bounded by
	// the number of arrival events, independent of the schedule length —
	// answers every MessagesThrough query the ledger used to serve.
	cumAt map[int]int64
}

// MessagesThrough returns the cumulative number of messages sent through
// the given round (inclusive) — the billing primitive behind cover-round
// accounting. With the per-round ledger enabled it sums Run.PerRound
// exactly like MessagesUpTo; with the ledger disabled (local.Config's
// NoLedger) it consults the compact arrival-round record that Gossip
// maintains, which covers every round CoverRound or CoverRounds can
// return. Querying a round with no record is an error: it means the caller
// asked about a non-arrival round of a ledgerless run, which no billing
// path does.
func (r *Result) MessagesThrough(round int) (int64, error) {
	if r.cumAt == nil {
		if r.Run.PerRound == nil && r.Run.Rounds > 0 {
			// A ledgerless run with no arrival-round record (a flood, not a
			// gossip): there is nothing to bill against — error rather than
			// silently summing the missing ledger to 0.
			return 0, fmt.Errorf("broadcast: no per-round ledger and no arrival-round record (run with the ledger enabled to bill by round)")
		}
		return MessagesUpTo(r.Run, round), nil
	}
	if c, ok := r.cumAt[round]; ok {
		return c, nil
	}
	return 0, fmt.Errorf("broadcast: no cumulative message record at round %d (per-round ledger disabled; only arrival rounds are recorded)", round)
}

// rumor is one node's message in transit.
type rumor struct {
	Origin  graph.NodeID
	Payload any
}

// floodBatch is the set of rumors forwarded over one edge in one round. It
// travels as a *floodBatch: boxing a pointer into the payload interface is
// allocation-free, and a batch sent in round r is only ever read in round
// r+1, so the double-buffered sender can reuse its backing array from round
// r+2 on.
type floodBatch []rumor

// floodNode floods newly learned rumors to all neighbors each round. The
// outgoing batch is double-buffered by round parity: the batch in flight is
// read by receivers one round after it was sent, so the buffer of parity p
// is free for rewriting when parity p comes around again.
type floodNode struct {
	t       int
	self    any  // this node's own message M_v
	seed    bool // whether this node injects its own rumor
	known   map[graph.NodeID]any
	arrival map[graph.NodeID]int
	fresh   [2]floodBatch
}

func (p *floodNode) Step(env *local.Env, round int, inbox []local.Message) {
	cur := &p.fresh[round&1]
	*cur = (*cur)[:0]
	if round == 0 {
		p.known = map[graph.NodeID]any{env.ID(): p.self}
		p.arrival = map[graph.NodeID]int{env.ID(): 0}
		if p.seed {
			*cur = append(*cur, rumor{Origin: env.ID(), Payload: p.self})
		}
	}
	for _, m := range inbox {
		for _, r := range *m.Payload.(*floodBatch) {
			if _, ok := p.known[r.Origin]; !ok {
				p.known[r.Origin] = r.Payload
				p.arrival[r.Origin] = round
				*cur = append(*cur, r)
			}
		}
	}
	if round >= p.t {
		env.Halt()
		return
	}
	if len(*cur) > 0 {
		for _, pt := range env.Ports() {
			env.Send(pt.Edge, cur)
		}
	}
}

// Flood floods each node's rumor (payloads[v], which may be nil) over host
// for exactly rounds rounds. After the run, node v knows the rumor of every
// node within host-distance rounds of v, with Arrival equal to that
// distance. Cancelling ctx aborts the underlying run.
func Flood(ctx context.Context, host *graph.Graph, payloads []any, rounds int, cfg local.Config) (*Result, error) {
	return FloodFrom(ctx, host, payloads, nil, rounds, cfg)
}

// FloodFrom is Flood restricted to a subset of sources: only nodes with
// seeds[v] true inject their own rumor (nil seeds means every node seeds,
// recovering Flood). Non-seeding nodes still forward everything they hear and
// still know their own payload, so the result's Known sets cover, for every
// node v, the rumor of every seeding node within host-distance rounds plus v
// itself. The hybrid scheme uses it to collect only the residue that its
// gossip stage left uncovered.
func FloodFrom(ctx context.Context, host *graph.Graph, payloads []any, seeds []bool, rounds int, cfg local.Config) (*Result, error) {
	if host == nil {
		return nil, fmt.Errorf("broadcast: nil host graph")
	}
	if len(payloads) != host.NumNodes() {
		return nil, fmt.Errorf("broadcast: %d payloads for %d nodes", len(payloads), host.NumNodes())
	}
	if seeds != nil && len(seeds) != host.NumNodes() {
		return nil, fmt.Errorf("broadcast: %d seed flags for %d nodes", len(seeds), host.NumNodes())
	}
	if rounds < 0 {
		return nil, fmt.Errorf("broadcast: negative round budget")
	}
	nodes := make([]*floodNode, host.NumNodes())
	cfg.MaxRounds = rounds + 1
	run, err := local.RunCtx(ctx, host, func(v graph.NodeID) local.Protocol {
		nd := &floodNode{t: rounds, self: payloads[v], seed: seeds == nil || seeds[v]}
		nodes[v] = nd
		return nd
	}, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Run: run}
	for _, nd := range nodes {
		res.Known = append(res.Known, nd.known)
		res.Arrival = append(res.Arrival, nd.arrival)
	}
	return res, nil
}

// gossipNode implements synchronous push–pull gossip: each round it pushes
// its full rumor set over one uniformly random incident edge and answers
// last round's pushes with its full set. The rumor snapshot and the
// push/pull envelopes are double-buffered by round parity — payloads sent in
// round r are read in round r+1 and never later, so parity-p buffers are
// free for reuse when parity p recurs — and the envelopes travel as
// pointers, whose interface boxing is allocation-free. A steady-state gossip
// round therefore allocates only when the known set (and with it the
// snapshot buffer) grows.
type gossipNode struct {
	t       int
	known   map[graph.NodeID]any
	arrival map[graph.NodeID]int
	replyTo []graph.EdgeID
	push    [2]gossipPush
	pull    [2]gossipPull
	// heardNew is set whenever the node records a previously unknown
	// origin and cleared by the harness after each round; it lets a
	// ledgerless run detect arrival rounds centrally without retaining
	// per-round state. Each node only ever writes its own flag, so the
	// field is race-free even on the concurrent engine.
	heardNew bool
}

type gossipPush struct{ Rumors []rumor }
type gossipPull struct{ Rumors []rumor }

func (p *gossipNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		p.known = map[graph.NodeID]any{env.ID(): nil} // payload patched by harness
		p.arrival = map[graph.NodeID]int{env.ID(): 0}
		p.heardNew = true
	}
	for _, m := range inbox {
		var rumors []rumor
		switch msg := m.Payload.(type) {
		case *gossipPush:
			rumors = msg.Rumors
			p.replyTo = append(p.replyTo, m.Edge)
		case *gossipPull:
			rumors = msg.Rumors
		}
		for _, r := range rumors {
			if _, ok := p.known[r.Origin]; !ok {
				p.known[r.Origin] = r.Payload
				p.arrival[r.Origin] = round
				p.heardNew = true
			}
		}
	}
	if round >= p.t {
		env.Halt()
		return
	}
	all := p.snapshot(round & 1)
	if len(p.replyTo) > 0 {
		pull := &p.pull[round&1]
		pull.Rumors = all
		for _, e := range p.replyTo {
			env.Send(e, pull)
		}
		p.replyTo = p.replyTo[:0]
	}
	if env.Degree() > 0 {
		pt := env.Ports()[env.Rand().Intn(env.Degree())]
		push := &p.push[round&1]
		push.Rumors = all
		env.Send(pt.Edge, push)
	}
}

// snapshot rebuilds the node's full rumor set into the parity's reusable
// buffer (the pull envelope of the same parity shares it; both are in
// flight for exactly one round).
func (p *gossipNode) snapshot(parity int) []rumor {
	out := p.pull[parity].Rumors[:0]
	for o, pl := range p.known {
		out = append(out, rumor{Origin: o, Payload: pl})
	}
	p.pull[parity].Rumors = out
	return out
}

// Gossip runs push–pull gossip on host for exactly rounds rounds (choose a
// generous budget and use CoverRound to find when coverage was actually
// achieved). Message complexity is at most 2n per round by construction.
// Cancelling ctx aborts the underlying run.
func Gossip(ctx context.Context, host *graph.Graph, payloads []any, rounds int, cfg local.Config) (*Result, error) {
	if host == nil {
		return nil, fmt.Errorf("broadcast: nil host graph")
	}
	if len(payloads) != host.NumNodes() {
		return nil, fmt.Errorf("broadcast: %d payloads for %d nodes", len(payloads), host.NumNodes())
	}
	nodes := make([]*gossipNode, host.NumNodes())
	cfg.MaxRounds = rounds + 1
	// With the per-round ledger disabled, record cumulative message counts
	// at arrival rounds so cover-round billing (MessagesThrough) stays
	// exact at O(1) memory in executed rounds. The callback runs on the
	// run's coordinating goroutine after each round's barrier, so reading
	// and clearing the nodes' heardNew flags is race-free.
	var cumAt map[int]int64
	if cfg.NoLedger {
		cumAt = make(map[int]int64)
		inner := cfg.OnRound
		var cum int64
		cfg.OnRound = func(r int, m int64) {
			cum += m
			arrived := false
			for _, nd := range nodes {
				if nd.heardNew {
					nd.heardNew = false
					arrived = true
				}
			}
			if arrived {
				cumAt[r] = cum
			}
			if inner != nil {
				inner(r, m)
			}
		}
	}
	run, err := local.RunCtx(ctx, host, func(v graph.NodeID) local.Protocol {
		nd := &gossipNode{t: rounds}
		nodes[v] = nd
		return nd
	}, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Run: run, cumAt: cumAt}
	for _, nd := range nodes {
		// Rumors travel as bare origins; rebind payloads from ground truth.
		for o := range nd.known {
			nd.known[o] = payloads[o]
		}
		res.Known = append(res.Known, nd.known)
		res.Arrival = append(res.Arrival, nd.arrival)
	}
	return res, nil
}

// CoverRound returns the earliest round by which every node had heard the
// rumor of every node in its distance-t ball of g, or -1 if the run ended
// before that. Combine with Result.Run.PerRound (see MessagesUpTo) to get
// the message cost of achieving t-local broadcast.
func CoverRound(g *graph.Graph, arrival []map[graph.NodeID]int, t int) int {
	worst := 0
	for _, r := range CoverRounds(g, arrival, t) {
		if r < 0 {
			return -1
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// CoverRounds returns, per node, the earliest round by which that node had
// heard the rumor of every node in its distance-t ball of g (-1 if the run
// ended before that). It is the per-node refinement of CoverRound: the hybrid
// scheme uses it to find the round at which a target fraction of nodes is
// covered.
func CoverRounds(g *graph.Graph, arrival []map[graph.NodeID]int, t int) []int {
	out := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		worst := 0
		for _, u := range g.Ball(graph.NodeID(v), t) {
			r, ok := arrival[v][u]
			if !ok {
				worst = -1
				break
			}
			if r > worst {
				worst = r
			}
		}
		out[v] = worst
	}
	return out
}

// MessagesUpTo sums per-round message counts through the given round
// (inclusive). Rounds beyond the recorded horizon are ignored.
func MessagesUpTo(run local.Result, round int) int64 {
	var total int64
	for r, c := range run.PerRound {
		if r > round {
			break
		}
		total += c
	}
	return total
}

// Payload sizes (local.Sizer): a rumor costs one word for its origin plus
// the size of its content (port lists count their length).

func rumorUnits(rs []rumor) int64 {
	var u int64
	for _, r := range rs {
		u += 1 + contentUnits(r.Payload)
	}
	return u
}

func contentUnits(p any) int64 {
	switch v := p.(type) {
	case []graph.EdgeID:
		return int64(len(v))
	case nil:
		return 0
	default:
		return 1
	}
}

// PayloadUnits implements local.Sizer for flood batches.
func (b *floodBatch) PayloadUnits() int64 { return rumorUnits(*b) }

// PayloadUnits implements local.Sizer.
func (m *gossipPush) PayloadUnits() int64 { return rumorUnits(m.Rumors) }

// PayloadUnits implements local.Sizer.
func (m *gossipPull) PayloadUnits() int64 { return rumorUnits(m.Rumors) }
