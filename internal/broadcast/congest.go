package broadcast

// CONGEST-style bandwidth-budgeted t-local broadcast. FloodBudget performs
// the same hop-limited flood as Flood, but every directed edge may carry at
// most bw words per round (one CONGEST packet); a rumor whose payload exceeds
// the budget is split across consecutive rounds. The flood therefore takes
// more rounds than the unbudgeted one — the round dilation the LOCAL-vs-
// CONGEST comparison measures — while delivering exactly the same knowledge:
// every node still learns the rumor of every node within hop distance
// `rounds` on the host graph.
//
// The schedule is simulated centrally (not through the per-node LOCAL
// engine): per-edge FIFO queues with word-granular transmission are a
// transport-layer concern, and simulating them centrally keeps the
// accounting exact and the run deterministic. Costs are reported in the same
// units as the LOCAL engine: one message per directed edge per round that
// carried at least one word, payload units equal to the words sent.

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
)

// qitem is one rumor queued for transmission on a directed edge: the origin
// whose payload it carries and the hop count it will have on arrival.
type qitem struct {
	origin graph.NodeID
	hops   int
}

// edgeQueue is the transmission state of one directed edge: a FIFO of queued
// rumors and the number of words of the head rumor already sent.
type edgeQueue struct {
	items    []qitem
	headSent int64
}

// FloodBudget floods each node's rumor over host with per-edge bandwidth bw
// (in words per direction per round, bw >= 1). Rumors travel at most `rounds`
// hops, so the final Known sets equal Flood's at the same arguments; Arrival
// records the (possibly delayed) round of first hearing. cfg is honored for
// OnRound and NoLedger only — the schedule is deterministic and needs no
// seed. Cancelling ctx aborts between rounds.
//
// Because queueing can deliver a rumor first over a longer path, a node
// re-forwards a rumor whenever a copy arrives with a strictly smaller hop
// count; this keeps the hop-limited coverage exactly equal to the
// synchronous flood's, at the price of occasional duplicate transmissions.
func FloodBudget(ctx context.Context, host *graph.Graph, payloads []any, rounds, bw int, cfg local.Config) (*Result, error) {
	if host == nil {
		return nil, fmt.Errorf("broadcast: nil host graph")
	}
	if len(payloads) != host.NumNodes() {
		return nil, fmt.Errorf("broadcast: %d payloads for %d nodes", len(payloads), host.NumNodes())
	}
	if rounds < 0 {
		return nil, fmt.Errorf("broadcast: negative round budget")
	}
	if bw < 1 {
		return nil, fmt.Errorf("broadcast: bandwidth %d < 1 word per edge per round", bw)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := host.NumNodes()

	// cost is the word size of one queued rumor: one word for the origin plus
	// its payload content, exactly rumorUnits' accounting.
	cost := func(it qitem) int64 { return 1 + contentUnits(payloads[it.origin]) }

	// Directed edges, one queue each, in deterministic (node, port) order.
	nEdges := 0
	queueOf := make([]map[graph.EdgeID]int, n) // node -> edge ID -> queue index
	for v := 0; v < n; v++ {
		queueOf[v] = make(map[graph.EdgeID]int)
		for _, h := range host.Incident(graph.NodeID(v)) {
			queueOf[v][h.Edge] = nEdges
			nEdges++
		}
	}
	queues := make([]edgeQueue, nEdges)

	hops := make([]map[graph.NodeID]int, n) // best hop count per heard origin
	res := &Result{
		Known:   make([]map[graph.NodeID]any, n),
		Arrival: make([]map[graph.NodeID]int, n),
	}
	enqueue := func(v int, it qitem) {
		//freelunch:orderok queueOf[v] values are distinct queue indices, so the appends target disjoint queues
		for _, qi := range queueOf[v] {
			queues[qi].items = append(queues[qi].items, it)
		}
	}
	for v := 0; v < n; v++ {
		hops[v] = map[graph.NodeID]int{graph.NodeID(v): 0}
		res.Known[v] = map[graph.NodeID]any{graph.NodeID(v): payloads[v]}
		res.Arrival[v] = map[graph.NodeID]int{graph.NodeID(v): 0}
		if rounds > 0 {
			enqueue(v, qitem{origin: graph.NodeID(v), hops: 1})
		}
	}

	type arrival struct {
		at graph.NodeID
		it qitem
	}
	var arrivals []arrival
	pending := func() bool {
		for i := range queues {
			if len(queues[i].items) > 0 {
				return true
			}
		}
		return false
	}
	round := 0
	for pending() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		arrivals = arrivals[:0]
		var sent, units int64
		for v := 0; v < n; v++ {
			for _, h := range host.Incident(graph.NodeID(v)) {
				q := &queues[queueOf[v][h.Edge]]
				budget := int64(bw)
				var words int64
				for len(q.items) > 0 && budget > 0 {
					head := q.items[0]
					rem := cost(head) - q.headSent
					s := rem
					if s > budget {
						s = budget
					}
					budget -= s
					words += s
					q.headSent += s
					if q.headSent == cost(head) {
						arrivals = append(arrivals, arrival{at: h.Peer, it: head})
						q.items = q.items[1:]
						q.headSent = 0
					}
				}
				if words > 0 {
					sent++ // one CONGEST packet on this edge this round
					units += words
				}
			}
		}
		for _, a := range arrivals {
			v := int(a.at)
			best, heard := hops[v][a.it.origin]
			if heard && a.it.hops >= best {
				continue
			}
			hops[v][a.it.origin] = a.it.hops
			if !heard {
				res.Known[v][a.it.origin] = payloads[a.it.origin]
				res.Arrival[v][a.it.origin] = round + 1 // heard next round, as under the LOCAL engine
			}
			if a.it.hops < rounds {
				enqueue(v, qitem{origin: a.it.origin, hops: a.it.hops + 1})
			}
		}
		if !cfg.NoLedger {
			res.Run.PerRound = append(res.Run.PerRound, sent)
		}
		res.Run.Messages += sent
		res.Run.PayloadUnits += units
		res.Run.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(round, sent)
		}
		round++
	}
	// Bill the rest of the schedule. The LOCAL flood bills its full fixed
	// schedule (rounds+1 simulator rounds) even when traffic quiesces early —
	// nodes cannot detect global quiescence — and it bills the final round in
	// which the last messages are consumed. The budgeted schedule does the
	// same: at least the fixed schedule, more only when queues persisted
	// beyond it. Dilation relative to the LOCAL schedule is therefore always
	// >= 1, and with unbounded bandwidth the two schedules coincide exactly.
	target := rounds + 1
	if res.Run.Rounds+1 > target {
		target = res.Run.Rounds + 1
	}
	// Filler rounds share the main loop's invariant: the ledger slot
	// PerRound[r] and the OnRound round argument advance in lockstep, so a
	// billed round number always indexes its own ledger entry (and the
	// MessagesUpTo prefix sums stay aligned).
	for res.Run.Rounds < target {
		if !cfg.NoLedger {
			res.Run.PerRound = append(res.Run.PerRound, 0)
		}
		res.Run.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(round, 0)
		}
		round++
	}
	res.Run.Halted = true
	return res, nil
}
