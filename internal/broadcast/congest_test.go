package broadcast

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func testPayloads(n int) []any {
	out := make([]any, n)
	for v := 0; v < n; v++ {
		out[v] = []graph.EdgeID{graph.EdgeID(v), graph.EdgeID(v + n)}
	}
	return out
}

// TestFloodBudgetMatchesFlood pins the degenerate case: with bandwidth far
// above any payload, the budgeted flood must reproduce the LOCAL flood
// exactly — same knowledge, same arrival rounds, same round and message
// bill.
func TestFloodBudgetMatchesFlood(t *testing.T) {
	g := gen.ConnectedGNP(50, 0.1, xrand.New(3))
	payloads := testPayloads(g.NumNodes())
	const rounds = 4
	plain, err := Flood(context.Background(), g, payloads, rounds, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := FloodBudget(context.Background(), g, payloads, rounds, 1<<20, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Run.Rounds != plain.Run.Rounds || budgeted.Run.Messages != plain.Run.Messages {
		t.Fatalf("unbounded budget bill (%d rounds, %d msgs) != flood bill (%d, %d)",
			budgeted.Run.Rounds, budgeted.Run.Messages, plain.Run.Rounds, plain.Run.Messages)
	}
	if budgeted.Run.PayloadUnits != plain.Run.PayloadUnits {
		t.Fatalf("payload units %d != %d", budgeted.Run.PayloadUnits, plain.Run.PayloadUnits)
	}
	for v := range plain.Known {
		if len(budgeted.Known[v]) != len(plain.Known[v]) {
			t.Fatalf("node %d knows %d origins, flood knows %d", v, len(budgeted.Known[v]), len(plain.Known[v]))
		}
		for origin, r := range plain.Arrival[v] {
			if br, ok := budgeted.Arrival[v][origin]; !ok || br != r {
				t.Fatalf("node %d heard %d at round %d, flood at %d", v, origin, budgeted.Arrival[v][origin], r)
			}
		}
	}
}

// TestFloodBudgetSplitsAndCovers pins the CONGEST behaviour: a one-word cap
// must dilate the schedule (payloads are three words each) while still
// delivering exactly the hop-limited knowledge of the unbudgeted flood.
func TestFloodBudgetSplitsAndCovers(t *testing.T) {
	g := gen.ConnectedGNP(50, 0.1, xrand.New(3))
	payloads := testPayloads(g.NumNodes())
	const rounds = 4
	plain, err := Flood(context.Background(), g, payloads, rounds, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := FloodBudget(context.Background(), g, payloads, rounds, 1, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Run.Rounds <= plain.Run.Rounds {
		t.Fatalf("one-word cap did not dilate: %d rounds vs %d", narrow.Run.Rounds, plain.Run.Rounds)
	}
	for v := range plain.Known {
		if len(narrow.Known[v]) != len(plain.Known[v]) {
			t.Fatalf("node %d: budgeted flood knows %d origins, flood %d — bandwidth changed knowledge",
				v, len(narrow.Known[v]), len(plain.Known[v]))
		}
		for origin := range plain.Known[v] {
			if _, ok := narrow.Known[v][origin]; !ok {
				t.Fatalf("node %d lost origin %d under the one-word cap", v, origin)
			}
		}
	}
}

// TestFloodBudgetRejectsBadBandwidth covers the argument contract.
func TestFloodBudgetRejectsBadBandwidth(t *testing.T) {
	g := gen.Path(4)
	if _, err := FloodBudget(context.Background(), g, testPayloads(4), 2, 0, local.Config{}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

// TestFloodFromSeedsSubset pins the selective flood: only seeded origins
// circulate, every node still knows itself, and nil seeds means everyone.
func TestFloodFromSeedsSubset(t *testing.T) {
	g := gen.Cycle(8)
	payloads := testPayloads(8)
	seeds := make([]bool, 8)
	seeds[0], seeds[4] = true, true
	res, err := FloodFrom(context.Background(), g, payloads, seeds, 8, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		for origin := range res.Known[v] {
			if int(origin) != v && !seeds[origin] {
				t.Fatalf("node %d heard unseeded origin %d", v, origin)
			}
		}
		if _, ok := res.Known[v][graph.NodeID(v)]; !ok {
			t.Fatalf("node %d does not know itself", v)
		}
		for _, origin := range []graph.NodeID{0, 4} {
			if _, ok := res.Known[v][origin]; !ok {
				t.Fatalf("node %d missed seeded origin %d", v, origin)
			}
		}
	}
}
