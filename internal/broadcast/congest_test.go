package broadcast

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func testPayloads(n int) []any {
	out := make([]any, n)
	for v := 0; v < n; v++ {
		out[v] = []graph.EdgeID{graph.EdgeID(v), graph.EdgeID(v + n)}
	}
	return out
}

// TestFloodBudgetMatchesFlood pins the degenerate case: with bandwidth far
// above any payload, the budgeted flood must reproduce the LOCAL flood
// exactly — same knowledge, same arrival rounds, same round and message
// bill.
func TestFloodBudgetMatchesFlood(t *testing.T) {
	g := gen.ConnectedGNP(50, 0.1, xrand.New(3))
	payloads := testPayloads(g.NumNodes())
	const rounds = 4
	plain, err := Flood(context.Background(), g, payloads, rounds, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := FloodBudget(context.Background(), g, payloads, rounds, 1<<20, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Run.Rounds != plain.Run.Rounds || budgeted.Run.Messages != plain.Run.Messages {
		t.Fatalf("unbounded budget bill (%d rounds, %d msgs) != flood bill (%d, %d)",
			budgeted.Run.Rounds, budgeted.Run.Messages, plain.Run.Rounds, plain.Run.Messages)
	}
	if budgeted.Run.PayloadUnits != plain.Run.PayloadUnits {
		t.Fatalf("payload units %d != %d", budgeted.Run.PayloadUnits, plain.Run.PayloadUnits)
	}
	for v := range plain.Known {
		if len(budgeted.Known[v]) != len(plain.Known[v]) {
			t.Fatalf("node %d knows %d origins, flood knows %d", v, len(budgeted.Known[v]), len(plain.Known[v]))
		}
		for origin, r := range plain.Arrival[v] {
			if br, ok := budgeted.Arrival[v][origin]; !ok || br != r {
				t.Fatalf("node %d heard %d at round %d, flood at %d", v, origin, budgeted.Arrival[v][origin], r)
			}
		}
	}
}

// TestFloodBudgetSplitsAndCovers pins the CONGEST behaviour: a one-word cap
// must dilate the schedule (payloads are three words each) while still
// delivering exactly the hop-limited knowledge of the unbudgeted flood.
func TestFloodBudgetSplitsAndCovers(t *testing.T) {
	g := gen.ConnectedGNP(50, 0.1, xrand.New(3))
	payloads := testPayloads(g.NumNodes())
	const rounds = 4
	plain, err := Flood(context.Background(), g, payloads, rounds, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := FloodBudget(context.Background(), g, payloads, rounds, 1, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Run.Rounds <= plain.Run.Rounds {
		t.Fatalf("one-word cap did not dilate: %d rounds vs %d", narrow.Run.Rounds, plain.Run.Rounds)
	}
	for v := range plain.Known {
		if len(narrow.Known[v]) != len(plain.Known[v]) {
			t.Fatalf("node %d: budgeted flood knows %d origins, flood %d — bandwidth changed knowledge",
				v, len(narrow.Known[v]), len(plain.Known[v]))
		}
		for origin := range plain.Known[v] {
			if _, ok := narrow.Known[v][origin]; !ok {
				t.Fatalf("node %d lost origin %d under the one-word cap", v, origin)
			}
		}
	}
}

// TestFloodBudgetRoundIndexConsistency is the filler-round regression test:
// the budgeted flood appends zero-message filler rounds to pad its schedule,
// and every billed round number must stay aligned across the three views of
// the run — the OnRound stream, the PerRound ledger position, and the
// MessagesUpTo prefix sums — with no off-by-one between them.
func TestFloodBudgetRoundIndexConsistency(t *testing.T) {
	// One-word bandwidth with three-word payloads forces splitting (queues
	// drain late), and a path keeps traffic sparse enough that trailing
	// filler rounds are certain to appear.
	g := gen.Path(6)
	payloads := testPayloads(6)
	const rounds, bw = 5, 1
	var seenRounds []int
	var seenMsgs []int64
	res, err := FloodBudget(context.Background(), g, payloads, rounds, bw, local.Config{
		OnRound: func(r int, m int64) {
			seenRounds = append(seenRounds, r)
			seenMsgs = append(seenMsgs, m)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seenRounds) != res.Run.Rounds || len(res.Run.PerRound) != res.Run.Rounds {
		t.Fatalf("observer saw %d rounds, ledger has %d, result bills %d",
			len(seenRounds), len(res.Run.PerRound), res.Run.Rounds)
	}
	var cum int64
	for i := range seenRounds {
		if seenRounds[i] != i {
			t.Fatalf("OnRound fired for round %d at position %d", seenRounds[i], i)
		}
		if seenMsgs[i] != res.Run.PerRound[i] {
			t.Fatalf("round %d: observer saw %d messages, ledger slot has %d", i, seenMsgs[i], res.Run.PerRound[i])
		}
		cum += seenMsgs[i]
		if got := MessagesUpTo(res.Run, i); got != cum {
			t.Fatalf("MessagesUpTo(%d) = %d, observer cumulative is %d", i, got, cum)
		}
	}
	if cum != res.Run.Messages {
		t.Fatalf("stream sums to %d messages, result bills %d", cum, res.Run.Messages)
	}
	// The dilated schedule must end in at least one genuine filler round
	// (zero messages) and still bill at least the LOCAL flood's rounds+1.
	if res.Run.Rounds < rounds+1 {
		t.Fatalf("billed %d rounds, below the %d-round LOCAL schedule", res.Run.Rounds, rounds+1)
	}
	if last := res.Run.PerRound[res.Run.Rounds-1]; last != 0 {
		t.Fatalf("final round carried %d messages, want a zero filler round", last)
	}
	// Arrival rounds must stay consistent with the ledger positions: a
	// rumor heard at round r rode messages billed in slot r-1.
	for v := range res.Arrival {
		for origin, r := range res.Arrival[v] {
			if int(origin) == v {
				continue
			}
			if r < 1 || r > res.Run.Rounds {
				t.Fatalf("node %d heard %d at round %d, outside the billed schedule [1,%d]", v, origin, r, res.Run.Rounds)
			}
			if res.Run.PerRound[r-1] == 0 {
				t.Fatalf("node %d heard %d at round %d but ledger slot %d is a zero round", v, origin, r, r-1)
			}
		}
	}
}

// TestFloodBudgetNoLedger pins the ledger opt-out on the centrally simulated
// CONGEST schedule: PerRound stays nil while the OnRound stream, the round
// count, and all totals are unchanged.
func TestFloodBudgetNoLedger(t *testing.T) {
	g := gen.ConnectedGNP(40, 0.1, xrand.New(3))
	payloads := testPayloads(g.NumNodes())
	const rounds, bw = 4, 1
	var ledgerStream, bareStream []int64
	with, err := FloodBudget(context.Background(), g, payloads, rounds, bw, local.Config{
		OnRound: func(r int, m int64) { ledgerStream = append(ledgerStream, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := FloodBudget(context.Background(), g, payloads, rounds, bw, local.Config{
		NoLedger: true,
		OnRound:  func(r int, m int64) { bareStream = append(bareStream, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Run.PerRound != nil {
		t.Fatalf("NoLedger run retained %d PerRound entries", len(bare.Run.PerRound))
	}
	if bare.Run.Rounds != with.Run.Rounds || bare.Run.Messages != with.Run.Messages ||
		bare.Run.PayloadUnits != with.Run.PayloadUnits {
		t.Fatalf("totals drifted without the ledger: %+v vs %+v", bare.Run, with.Run)
	}
	if len(bareStream) != len(ledgerStream) {
		t.Fatalf("stream length drifted: %d vs %d", len(bareStream), len(ledgerStream))
	}
	for i := range bareStream {
		if bareStream[i] != ledgerStream[i] {
			t.Fatalf("round %d: stream %d vs %d", i, bareStream[i], ledgerStream[i])
		}
	}
}

// TestFloodBudgetRejectsBadBandwidth covers the argument contract.
func TestFloodBudgetRejectsBadBandwidth(t *testing.T) {
	g := gen.Path(4)
	if _, err := FloodBudget(context.Background(), g, testPayloads(4), 2, 0, local.Config{}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

// TestFloodFromSeedsSubset pins the selective flood: only seeded origins
// circulate, every node still knows itself, and nil seeds means everyone.
func TestFloodFromSeedsSubset(t *testing.T) {
	g := gen.Cycle(8)
	payloads := testPayloads(8)
	seeds := make([]bool, 8)
	seeds[0], seeds[4] = true, true
	res, err := FloodFrom(context.Background(), g, payloads, seeds, 8, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		for origin := range res.Known[v] {
			if int(origin) != v && !seeds[origin] {
				t.Fatalf("node %d heard unseeded origin %d", v, origin)
			}
		}
		if _, ok := res.Known[v][graph.NodeID(v)]; !ok {
			t.Fatalf("node %d does not know itself", v)
		}
		for _, origin := range []graph.NodeID{0, 4} {
			if _, ok := res.Known[v][origin]; !ok {
				t.Fatalf("node %d missed seeded origin %d", v, origin)
			}
		}
	}
}
