package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Level records everything algorithm Sampler did at one level of the cluster
// hierarchy. Indexes are nodes of the level graph G_j (which are clusters of
// original nodes for j > 0).
type Level struct {
	// J is the level index, 0..K.
	J int
	// G is the level graph G_j. G_0 is the input; later levels are cluster
	// graphs whose edges keep their original IDs and are in general parallel.
	G *graph.Graph
	// Threshold and SamplesPerTrial are the level's resolved parameters.
	Threshold       int
	SamplesPerTrial int
	// CenterProb is p_j = n^{-2^j δ} (meaningless at level K, where no
	// centers are drawn).
	CenterProb float64

	// F contains, per node v of G_j, the edges F_v added to the spanner.
	F [][]graph.EdgeID
	// Light marks nodes that discovered their entire neighborhood.
	Light []bool
	// Heavy marks nodes that discovered at least Threshold distinct
	// neighbors without exhausting their edges.
	Heavy []bool
	// Center marks the nodes drawn as cluster centers (nil at level K).
	Center []bool
	// Assign maps each node of G_j to its cluster index in V_{j+1}, or
	// graph.Dropped for unclustered nodes (nil at level K).
	Assign []int
	// OrigMembers lists, per node v of G_j, the original (level-0) nodes of
	// the cluster C_j(v).
	OrigMembers [][]graph.NodeID

	// Trials and Samples count executed trials and drawn query edges; in the
	// distributed implementation every sample is a query message, so Samples
	// is the centralized proxy for query-message cost.
	Trials  int64
	Samples int64
	// FailSafe counts nodes rescued by the exhaustive-query fail-safe (see
	// Params.FailSafe); under the paper's whp analysis this is 0.
	FailSafe int
	// EdgesAdded is the number of spanner edges contributed by this level.
	EdgesAdded int

	// Per-node working state carried from step 1 into step 2.
	queried []map[graph.NodeID]graph.EdgeID // v -> (neighbor -> query edge)
	nbhd    []*neighborhood
}

// noNode marks "no such node" in neighbor-valued lookups.
const noNode = graph.NodeID(-1)

// Result is the output of algorithm Sampler.
type Result struct {
	// S is the spanner edge set (IDs refer to the input graph).
	S map[graph.EdgeID]bool
	// Levels records the hierarchy, index = level.
	Levels []*Level
	// Params echoes the parameters used.
	Params Params
	// TotalSamples aggregates Level.Samples (centralized message proxy).
	TotalSamples int64
	// FailSafeNodes aggregates Level.FailSafe.
	FailSafeNodes int
}

// StretchBound returns the certified stretch 2·3^K − 1.
func (r *Result) StretchBound() int { return r.Params.StretchBound() }

// Build runs the centralized Sampler of the paper's Section 3 on the simple
// connected graph g and returns the spanner and the full hierarchy trace.
// The run is deterministic given seed.
func Build(g *graph.Graph, p Params, seed uint64) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	n := g.NumNodes()
	res := &Result{S: make(map[graph.EdgeID]bool), Params: p}
	rng := xrand.New(seed).Derive(0xC0DE)

	cur := g
	origMembers := make([][]graph.NodeID, n)
	for v := range origMembers {
		origMembers[v] = []graph.NodeID{graph.NodeID(v)}
	}

	for j := 0; j <= p.K; j++ {
		lvl := &Level{
			J:               j,
			G:               cur,
			Threshold:       p.threshold(j, n),
			SamplesPerTrial: p.samplesPerTrial(j, n),
			CenterProb:      p.centerProb(j, n),
			OrigMembers:     origMembers,
		}
		res.Levels = append(res.Levels, lvl)
		levelRNG := rng.Derive(uint64(j))
		runClusterStep1(lvl, p, levelRNG.Derive(0x51))

		if j < p.K {
			markCentersAndCluster(lvl, p, levelRNG.Derive(0xCE))
		} else {
			finalLevelFailSafe(lvl, p)
		}

		// Collect this level's F into S.
		before := len(res.S)
		for _, fv := range lvl.F {
			for _, e := range fv {
				res.S[e] = true
			}
		}
		lvl.EdgesAdded = len(res.S) - before
		res.TotalSamples += lvl.Samples
		res.FailSafeNodes += lvl.FailSafe

		if j == p.K {
			break
		}
		numClusters := 0
		for _, c := range lvl.Assign {
			if c != graph.Dropped && c+1 > numClusters {
				numClusters = c + 1
			}
		}
		next, err := graph.Contract(cur, lvl.Assign, numClusters)
		if err != nil {
			return nil, fmt.Errorf("core: level %d contraction: %w", j, err)
		}
		nextMembers := make([][]graph.NodeID, numClusters)
		for v, c := range lvl.Assign {
			if c != graph.Dropped {
				nextMembers[c] = append(nextMembers[c], origMembers[v]...)
			}
		}
		cur = next
		origMembers = nextMembers
	}
	return res, nil
}

// neighborhood is the per-node sampling state: the unexplored edge pool X_v
// with O(1) uniform sampling and O(parallel-edges) removal of a neighbor's
// edge bundle.
type neighborhood struct {
	pool  []graph.EdgeID                  // unexplored edges, unordered
	pos   map[graph.EdgeID]int            // edge -> index in pool
	byNbr map[graph.NodeID][]graph.EdgeID // neighbor -> its parallel edges
	nbrOf map[graph.EdgeID]graph.NodeID   // edge -> far endpoint
}

func newNeighborhood(g *graph.Graph, v graph.NodeID) *neighborhood {
	inc := g.Incident(v)
	nb := &neighborhood{
		pool:  make([]graph.EdgeID, 0, len(inc)),
		pos:   make(map[graph.EdgeID]int, len(inc)),
		byNbr: make(map[graph.NodeID][]graph.EdgeID),
		nbrOf: make(map[graph.EdgeID]graph.NodeID, len(inc)),
	}
	for _, h := range inc {
		nb.pos[h.Edge] = len(nb.pool)
		nb.pool = append(nb.pool, h.Edge)
		nb.byNbr[h.Peer] = append(nb.byNbr[h.Peer], h.Edge)
		nb.nbrOf[h.Edge] = h.Peer
	}
	return nb
}

// sample returns a uniform unexplored edge (with replacement); ok is false
// when the pool is empty.
func (nb *neighborhood) sample(rng *xrand.RNG) (graph.EdgeID, bool) {
	if len(nb.pool) == 0 {
		return 0, false
	}
	return nb.pool[rng.Intn(len(nb.pool))], true
}

// removeOne deletes a single edge from the pool (the no-peeling ablation
// path; see Params.DisablePeeling).
func (nb *neighborhood) removeOne(e graph.EdgeID) {
	i, ok := nb.pos[e]
	if !ok {
		return
	}
	last := len(nb.pool) - 1
	moved := nb.pool[last]
	nb.pool[i] = moved
	nb.pos[moved] = i
	nb.pool = nb.pool[:last]
	delete(nb.pos, e)
	u := nb.nbrOf[e]
	rest := nb.byNbr[u][:0]
	for _, other := range nb.byNbr[u] {
		if other != e {
			rest = append(rest, other)
		}
	}
	if len(rest) == 0 {
		delete(nb.byNbr, u)
	} else {
		nb.byNbr[u] = rest
	}
}

// peel removes every edge leading to u from the pool ("peeling off" the
// neighbor in the paper's terminology).
func (nb *neighborhood) peel(u graph.NodeID) {
	for _, e := range nb.byNbr[u] {
		i, ok := nb.pos[e]
		if !ok {
			continue
		}
		last := len(nb.pool) - 1
		moved := nb.pool[last]
		nb.pool[i] = moved
		nb.pos[moved] = i
		nb.pool = nb.pool[:last]
		delete(nb.pos, e)
	}
	delete(nb.byNbr, u)
}

// remainingNeighbors returns the unqueried neighbors, sorted for
// determinism.
func (nb *neighborhood) remainingNeighbors() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(nb.byNbr))
	for u := range nb.byNbr {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runClusterStep1 executes the first step of procedure Cluster_j (the
// iterative edge-sampling trials) for every node of the level graph.
func runClusterStep1(lvl *Level, p Params, rng *xrand.RNG) {
	g := lvl.G
	nj := g.NumNodes()
	lvl.F = make([][]graph.EdgeID, nj)
	lvl.Light = make([]bool, nj)
	lvl.Heavy = make([]bool, nj)
	lvl.queried = make([]map[graph.NodeID]graph.EdgeID, nj)
	lvl.nbhd = make([]*neighborhood, nj)
	for v := 0; v < nj; v++ {
		nodeRNG := rng.Derive(uint64(v))
		nb := newNeighborhood(g, graph.NodeID(v))
		lvl.nbhd[v] = nb
		queried := make(map[graph.NodeID]graph.EdgeID)
		lvl.queried[v] = queried

		for trial := 0; trial < 2*p.H && len(lvl.F[v]) < lvl.Threshold && len(nb.pool) > 0; trial++ {
			lvl.Trials++
			// Draw the whole trial's samples from the start-of-trial pool
			// (the paper draws all of F'_v before the peeling loop), then
			// peel in draw order.
			drawn := make([]graph.EdgeID, 0, lvl.SamplesPerTrial)
			for s := 0; s < lvl.SamplesPerTrial; s++ {
				e, ok := nb.sample(nodeRNG)
				if !ok {
					break
				}
				drawn = append(drawn, e)
				lvl.Samples++
			}
			for _, e := range drawn {
				if len(lvl.F[v]) >= lvl.Threshold {
					// Budget reached: the while-condition of the paper's
					// Pseudocode 2 caps |F_v| at the threshold; without the
					// cap a single trial's sample overshoot (factor
					// n^{1/h}·log²n) would void the Lemma 10 size bound.
					break
				}
				if _, present := nb.pos[e]; !present {
					// The neighbor behind e was peeled earlier in this
					// trial; a with-replacement duplicate or parallel edge.
					continue
				}
				u := nb.nbrOf[e]
				if _, dup := queried[u]; dup {
					// Reachable only with peeling disabled (E10 ablation):
					// the duplicate neighbor wastes the sample.
					nb.removeOne(e)
					continue
				}
				queried[u] = e
				lvl.F[v] = append(lvl.F[v], e)
				if p.DisablePeeling {
					nb.removeOne(e)
				} else {
					nb.peel(u)
				}
			}
		}
		if len(nb.pool) == 0 {
			lvl.Light[v] = true
		} else if len(queried) >= lvl.Threshold {
			lvl.Heavy[v] = true
		}
	}
}

// exhaust makes node v light by querying one edge per remaining neighbor
// (the fail-safe path; in the distributed implementation this costs one
// query message per remaining unexplored edge).
func (lvl *Level) exhaust(v int) {
	nb := lvl.nbhd[v]
	for _, u := range nb.remainingNeighbors() {
		e := nb.byNbr[u][0]
		lvl.queried[v][u] = e
		lvl.F[v] = append(lvl.F[v], e)
		lvl.Samples += int64(len(nb.byNbr[u]))
		nb.peel(u)
	}
	lvl.Light[v] = true
	lvl.Heavy[v] = false
	lvl.FailSafe++
}

// markCentersAndCluster executes the second step of Cluster_j: draw centers,
// apply the fail-safe to would-be-unclustered non-light nodes, and merge
// every non-center with a queried center into that center's cluster.
func markCentersAndCluster(lvl *Level, p Params, rng *xrand.RNG) {
	nj := lvl.G.NumNodes()
	lvl.Center = make([]bool, nj)
	for v := 0; v < nj; v++ {
		lvl.Center[v] = rng.Derive(uint64(v)).Bernoulli(lvl.CenterProb)
	}
	if p.FailSafe {
		for v := 0; v < nj; v++ {
			if lvl.Center[v] || lvl.Light[v] {
				continue
			}
			if lvl.queriedCenter(v) == noNode {
				lvl.exhaust(v)
			}
		}
	}
	lvl.Assign = make([]int, nj)
	next := 0
	for v := 0; v < nj; v++ {
		if lvl.Center[v] {
			lvl.Assign[v] = next
			next++
		} else {
			lvl.Assign[v] = graph.Dropped
		}
	}
	for v := 0; v < nj; v++ {
		if lvl.Center[v] {
			continue
		}
		if u := lvl.queriedCenter(v); u != noNode {
			lvl.Assign[v] = lvl.Assign[u]
		}
	}
}

// queriedCenter returns the smallest queried center of v, or noNode if none
// (the paper allows an arbitrary choice; smallest makes runs reproducible).
func (lvl *Level) queriedCenter(v int) graph.NodeID {
	best := noNode
	for u := range lvl.queried[v] {
		if lvl.Center[u] && (best == noNode || u < best) {
			best = u
		}
	}
	return best
}

// finalLevelFailSafe enforces the paper's Lemma 6 corollary ("every node in
// G_k is light") deterministically when the fail-safe is on: any level-K
// node still holding unexplored edges queries them all.
func finalLevelFailSafe(lvl *Level, p Params) {
	if !p.FailSafe {
		return
	}
	for v := 0; v < lvl.G.NumNodes(); v++ {
		if !lvl.Light[v] {
			lvl.exhaust(v)
		}
	}
}
