package core

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// ValidateHierarchy checks the structural invariants the paper's analysis
// relies on, against the original input graph g:
//
//   - every spanner edge is an edge of g (S ⊆ E);
//   - at every level, clusters are pairwise disjoint sets of original nodes
//     and each cluster contains exactly one center;
//   - the subgraph of H = (V, S) induced by each cluster C_j(v) is connected
//     with diameter ≤ 3^j − 1 (Lemma 8);
//   - with the fail-safe enabled, every unclustered node is light (the
//     premise of Theorem 9's stretch argument).
//
// It returns nil if all invariants hold.
func (r *Result) ValidateHierarchy(g *graph.Graph) error {
	for id := range r.S {
		if !g.HasEdgeID(id) {
			return fmt.Errorf("core: spanner edge %d not in input graph", id)
		}
	}
	h, err := g.SubgraphByEdges(r.S)
	if err != nil {
		return err
	}
	for _, lvl := range r.Levels {
		if err := validateLevel(lvl, g, h, r.Params); err != nil {
			return fmt.Errorf("level %d: %w", lvl.J, err)
		}
	}
	return nil
}

func validateLevel(lvl *Level, g, h *graph.Graph, p Params) error {
	// Disjointness of the level's clusters over original nodes.
	seen := make(map[graph.NodeID]int, g.NumNodes())
	for v, members := range lvl.OrigMembers {
		if len(members) == 0 {
			return fmt.Errorf("node %d has no members", v)
		}
		for _, m := range members {
			if prev, dup := seen[m]; dup {
				return fmt.Errorf("original node %d in clusters %d and %d", m, prev, v)
			}
			seen[m] = v
		}
	}
	// Lemma 8: induced diameter bound.
	bound := pow3(lvl.J) - 1
	for v, members := range lvl.OrigMembers {
		if d := inducedDiameter(h, members); d < 0 || d > bound {
			return fmt.Errorf("cluster %d induced diameter %d exceeds 3^%d-1 = %d", v, d, lvl.J, bound)
		}
	}
	// One center per next-level cluster, and unclustered ⇒ light when the
	// fail-safe is on.
	if lvl.Assign != nil {
		centersPerCluster := make(map[int]int)
		for v, c := range lvl.Assign {
			if c == graph.Dropped {
				if p.FailSafe && !lvl.Light[v] {
					return fmt.Errorf("unclustered node %d is not light", v)
				}
				continue
			}
			if lvl.Center[v] {
				centersPerCluster[c]++
			}
		}
		for c, count := range centersPerCluster {
			if count != 1 {
				return fmt.Errorf("cluster %d has %d centers", c, count)
			}
		}
		for v, c := range lvl.Assign {
			if c != graph.Dropped && centersPerCluster[c] == 0 {
				return fmt.Errorf("node %d assigned to centerless cluster %d", v, c)
			}
		}
	} else if p.FailSafe {
		// Final level: everyone is unclustered and must be light.
		for v, light := range lvl.Light {
			if !light {
				return fmt.Errorf("final-level node %d is not light", v)
			}
		}
	}
	return nil
}

// inducedDiameter returns the diameter of the subgraph of h induced by the
// given members, or -1 if that subgraph is disconnected.
func inducedDiameter(h *graph.Graph, members []graph.NodeID) int {
	if len(members) == 1 {
		return 0
	}
	inSet := make(map[graph.NodeID]bool, len(members))
	for _, m := range members {
		inSet[m] = true
	}
	diam := 0
	for _, src := range members {
		dist := map[graph.NodeID]int{src: 0}
		queue := []graph.NodeID{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, half := range h.Incident(v) {
				if !inSet[half.Peer] {
					continue
				}
				if _, ok := dist[half.Peer]; !ok {
					dist[half.Peer] = dist[v] + 1
					queue = append(queue, half.Peer)
				}
			}
		}
		if len(dist) != len(members) {
			return -1
		}
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Trace renders a human-readable level-by-level account of the run — the
// textual counterpart of the paper's Figure 1. Intended for small graphs.
func (r *Result) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampler k=%d h=%d  (stretch bound %d, size exponent %.3f)\n",
		r.Params.K, r.Params.H, r.StretchBound(), r.Params.PredictedSizeExponent())
	for _, lvl := range r.Levels {
		fmt.Fprintf(&b, "level %d: |V_%d|=%d |E_%d|=%d  threshold=%d samples/trial=%d p_j=%.4f\n",
			lvl.J, lvl.J, lvl.G.NumNodes(), lvl.J, lvl.G.NumEdges(),
			lvl.Threshold, lvl.SamplesPerTrial, lvl.CenterProb)
		light, heavy := 0, 0
		for v := range lvl.Light {
			if lvl.Light[v] {
				light++
			}
			if lvl.Heavy[v] {
				heavy++
			}
		}
		fmt.Fprintf(&b, "  light=%d heavy=%d trials=%d samples=%d failsafe=%d spanner+=%d\n",
			light, heavy, lvl.Trials, lvl.Samples, lvl.FailSafe, lvl.EdgesAdded)
		if lvl.Assign != nil {
			clusters := make(map[int][]int)
			dropped := 0
			for v, c := range lvl.Assign {
				if c == graph.Dropped {
					dropped++
				} else {
					clusters[c] = append(clusters[c], v)
				}
			}
			fmt.Fprintf(&b, "  centers->clusters=%d unclustered=%d\n", len(clusters), dropped)
			if lvl.G.NumNodes() <= 32 {
				for c := 0; c < len(clusters); c++ {
					fmt.Fprintf(&b, "    C%d: %v\n", c, clusters[c])
				}
			}
		}
	}
	fmt.Fprintf(&b, "spanner size |S|=%d\n", len(r.S))
	return b.String()
}
