// Package core implements algorithm Sampler from "Message Reduction in the
// LOCAL Model Is a Free Lunch" (Bitton, Emek, Izumi, Kutten; DISC 2019): a
// randomized spanner construction with constant stretch, near-linear size,
// and — in its distributed form — o(m) message complexity with no round
// blow-up.
//
// The package provides two interchangeable implementations:
//
//   - Build: the centralized reference implementation of Section 3, used for
//     spanner-quality experiments and as the oracle against which the
//     distributed version is validated;
//   - BuildDistributed: the LOCAL-model implementation of Section 5, which
//     simulates each virtual node of the cluster hierarchy by
//     broadcast/convergecast over its cluster tree and realizes the paper's
//     O(3^k·h) round and Õ(n^{1+δ+1/h}) message bounds.
package core

import (
	"fmt"
	"math"
)

// Params are the knobs of algorithm Sampler.
//
// The paper's thresholds carry whp-machinery constants: a node aims to find
// c·n^{2^j·δ}·log n neighbors per level and samples c²·n^{2^j·δ+1/h}·log³ n
// query edges per trial. Those powers of log n exist to drive the failure
// probability below n^{-c}; at experiment scale (n in the thousands) using
// the analysis constants verbatim would make every node query essentially
// its whole neighborhood and the spanner degenerate to the input graph.
// Params therefore exposes the constants and the log exponents; Default uses
// log-power 1 for both (the standard empirical scaling), and Paper restores
// the paper's log¹/log³ exponents.
type Params struct {
	// K is the paper's k: number of contraction levels, 1 ≤ K. The stretch
	// bound is 2·3^K − 1 and the size exponent is 1 + 1/(2^{K+1}−1).
	K int
	// H is the paper's h: each level runs at most 2·H sampling trials, and
	// the per-trial sample count carries a factor n^{1/H}. Larger H means
	// more rounds and fewer messages.
	H int
	// C scales the target neighbor count ("threshold"):
	//   threshold_j = max(1, ceil(C · n^{2^j·δ} · log2(n)^ThresholdLogPow)).
	C float64
	// CSample scales the per-trial sample count:
	//   samples_j = max(1, ceil(CSample · n^{2^j·δ + 1/H} · log2(n)^SampleLogPow)).
	// Zero means C·C, the paper's coupling.
	CSample float64
	// ThresholdLogPow and SampleLogPow are the log2(n) exponents in the two
	// quantities above. The paper uses 1 and 3.
	ThresholdLogPow int
	SampleLogPow    int
	// FailSafe guarantees the stretch bound deterministically: a node that
	// finishes its trials neither light (all neighbors found) nor merged
	// into a cluster queries its remaining unexplored edges exhaustively,
	// making it light. The paper instead argues this case away whp
	// (Lemmas 5–6); FailSafe converts the whp guarantee into a worst-case
	// one at the cost of extra messages in the rare failure event. Results
	// report how often it fires so experiments can quote the whp behaviour.
	FailSafe bool
	// DisablePeeling is an ablation knob (experiment E10): when set, a
	// queried neighbor's parallel edges are NOT removed from the unexplored
	// pool — only the sampled edge itself is — so high-multiplicity
	// neighbors keep swallowing samples. This is exactly the failure mode
	// the paper's iterative peeling idea exists to prevent (Section 1.3).
	// Supported by the centralized implementation only.
	DisablePeeling bool
}

// Default returns the parameters used by the experiments: constants 1,
// log-power 1, fail-safe on.
func Default(k, h int) Params {
	return Params{K: k, H: h, C: 1, ThresholdLogPow: 1, SampleLogPow: 1, FailSafe: true}
}

// Paper returns parameters with the paper's asymptotic forms (log n and
// log³ n) and confidence constant c. Intended for small-n sanity runs; see
// the Params doc comment for why experiments scale the log powers down.
func Paper(k, h int, c float64) Params {
	return Params{K: k, H: h, C: c, ThresholdLogPow: 1, SampleLogPow: 3, FailSafe: false}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("core: K = %d, need K >= 1", p.K)
	}
	if p.H < 1 {
		return fmt.Errorf("core: H = %d, need H >= 1", p.H)
	}
	if p.C <= 0 {
		return fmt.Errorf("core: C = %v, need C > 0", p.C)
	}
	if p.CSample < 0 {
		return fmt.Errorf("core: CSample = %v, need CSample >= 0", p.CSample)
	}
	if p.ThresholdLogPow < 0 || p.SampleLogPow < 0 {
		return fmt.Errorf("core: negative log powers")
	}
	return nil
}

// Delta returns δ = 1/(2^{K+1} − 1), the spanner's size exponent surplus.
func (p Params) Delta() float64 { return 1 / float64((int64(1)<<(p.K+1))-1) }

// Epsilon returns 1/H, the message exponent surplus.
func (p Params) Epsilon() float64 { return 1 / float64(p.H) }

// StretchBound returns the worst-case stretch 2·3^K − 1 certified by
// Theorem 9.
func (p Params) StretchBound() int { return 2*pow3(p.K) - 1 }

// pow3 returns 3^j for small j.
func pow3(j int) int {
	out := 1
	for i := 0; i < j; i++ {
		out *= 3
	}
	return out
}

// logn returns log2(n) clamped below at 1 so thresholds stay monotone for
// tiny graphs.
func logn(n int) float64 { return math.Max(1, math.Log2(float64(n))) }

// centerProb returns p_j = n^{-2^j·δ}, the level-j center-marking
// probability.
func (p Params) centerProb(j, n int) float64 {
	return math.Pow(float64(n), -float64(int64(1)<<j)*p.Delta())
}

// threshold returns the level-j target neighbor count
// min-capped at 1: ceil(C · n^{2^j·δ} · log2(n)^ThresholdLogPow).
func (p Params) threshold(j, n int) int {
	v := p.C * math.Pow(float64(n), float64(int64(1)<<j)*p.Delta()) * math.Pow(logn(n), float64(p.ThresholdLogPow))
	return atLeast1(v)
}

// samplesPerTrial returns the level-j per-trial query-edge sample count
// ceil(CSample · n^{2^j·δ + 1/H} · log2(n)^SampleLogPow).
func (p Params) samplesPerTrial(j, n int) int {
	cs := p.CSample
	if cs == 0 {
		cs = p.C * p.C
	}
	v := cs * math.Pow(float64(n), float64(int64(1)<<j)*p.Delta()+p.Epsilon()) * math.Pow(logn(n), float64(p.SampleLogPow))
	return atLeast1(v)
}

func atLeast1(v float64) int {
	iv := int(math.Ceil(v))
	if iv < 1 {
		return 1
	}
	return iv
}

// PredictedSizeExponent returns 1 + δ, the exponent of the paper's Õ(n^{1+δ})
// spanner size bound; experiment E1 fits measured sizes against it.
func (p Params) PredictedSizeExponent() float64 { return 1 + p.Delta() }

// PredictedMessageExponent returns 1 + δ + 1/H from Theorem 11.
func (p Params) PredictedMessageExponent() float64 { return 1 + p.Delta() + p.Epsilon() }

// PredictedRounds returns the Theorem 11 round bound shape 3^K·(2H+O(1)) —
// we use the exact per-level accounting of the distributed implementation:
// each of the K+1 levels runs at most 2H trials, each trial costing a
// constant number of cluster-tree broadcast/convergecast sessions of depth
// ≤ 3^j, plus a constant number of sessions for cluster formation.
func (p Params) PredictedRounds() int {
	total := 0
	for j := 0; j <= p.K; j++ {
		depth := pow3(j)
		perTrial := 2*depth + 4  // convergecast + broadcast + query + reply
		formation := 6*depth + 6 // center draw, probe, join, tree rebuild
		total += 2*p.H*perTrial + formation
	}
	return total
}
