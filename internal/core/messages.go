package core

import (
	"sort"

	"repro/internal/graph"
)

// boundary is an immutable cluster-boundary set shared by reference between
// a cluster's members and, crucially, inside messages: the LOCAL model does
// not charge for message size, and sharing the canonical set avoids copying
// potentially large edge lists per query reply. All receivers treat it as
// read-only.
type boundary struct {
	list []graph.EdgeID // sorted
	set  map[graph.EdgeID]bool
}

func newBoundary(edges []graph.EdgeID) *boundary {
	b := &boundary{
		list: append([]graph.EdgeID(nil), edges...),
		set:  make(map[graph.EdgeID]bool, len(edges)),
	}
	sort.Slice(b.list, func(i, j int) bool { return b.list[i] < b.list[j] })
	for _, e := range b.list {
		b.set[e] = true
	}
	return b
}

func (b *boundary) contains(e graph.EdgeID) bool { return b != nil && b.set[e] }

// Message payloads of the distributed Sampler. Every type is dispatched on
// receipt by type, not by phase, which makes the state machine robust to
// scheduling slack. Slices inside messages are read-only for receivers.

// mTrial flows down the cluster tree at each trial: the root's sampled query
// edges plus spanner-edge additions decided since the previous broadcast.
type mTrial struct {
	Samples []graph.EdgeID
	FAdds   []graph.EdgeID
	Idle    bool // the root finished early; no queries this trial
}

// mQuery asks the far endpoint of a sampled edge to identify its cluster.
type mQuery struct{}

// mReply answers a query (and a fail-safe query). B carries the replying
// cluster's full boundary — the device that lets the querier peel off every
// parallel edge to that cluster at once. A nil B means "peel only the query
// edge" (level 0, where the input graph is simple and the boundary is
// redundant). IsCenter is meaningful only for fail-safe replies, which
// happen after center coins are public knowledge inside each cluster.
type mReply struct {
	Root     graph.NodeID
	Dead     bool
	IsCenter bool
	B        *boundary
}

// mAccept tells the far endpoint of an edge that the edge joined the
// spanner.
type mAccept struct{}

// replyItem is a (query edge, reply) pair aggregated up the tree.
type replyItem struct {
	Edge     graph.EdgeID
	Root     graph.NodeID
	Dead     bool
	IsCenter bool
	B        *boundary
}

// mConvReply carries aggregated query replies toward the root.
type mConvReply struct{ Items []replyItem }

// mCenter flows down after the trials: the cluster's center coin, the edges
// over which to probe queried clusters for their center status, and F
// additions from the final trial.
type mCenter struct {
	IsCenter bool
	Probes   []graph.EdgeID
	FAdds    []graph.EdgeID
}

// mProbe asks a queried cluster whether it is a center.
type mProbe struct{}

// mProbeReply answers a probe.
type mProbeReply struct {
	Root     graph.NodeID
	IsCenter bool
}

type probeItem struct {
	Edge     graph.EdgeID
	Root     graph.NodeID
	IsCenter bool
}

// mConvProbe carries aggregated probe replies toward the root.
type mConvProbe struct{ Items []probeItem }

// mFS flows down when the fail-safe fires: every remaining unexplored edge
// is to be queried exhaustively.
type mFS struct{ Edges []graph.EdgeID }

// mFSQuery is the fail-safe variant of mQuery (answered by mReply with
// IsCenter set).
type mFSQuery struct{}

// mConvFS carries aggregated fail-safe replies toward the root.
type mConvFS struct{ Items []replyItem }

// decision is a cluster's fate at the end of a level.
type decision int

const (
	decNone   decision = iota
	decCenter          // survives as a level-(j+1) node
	decJoin            // merges into a neighboring center
	decDead            // unclustered: stops participating, answers queries forever
)

// mDecide flows down the tree with the root's verdict. For decJoin the owner
// of JoinEdge ships the cluster boundary across it next phase.
type mDecide struct {
	Decision decision
	JoinEdge graph.EdgeID
	FAdds    []graph.EdgeID
}

// mJoin crosses the join edge into the center cluster.
type mJoin struct {
	JoinerRoot graph.NodeID
	B          *boundary
}

type joinItem struct {
	Edge graph.EdgeID
	B    *boundary
}

// mConvJoin carries accepted joins toward the center root.
type mConvJoin struct{ Items []joinItem }

// mNewCluster floods the merged cluster: new root, new boundary, and hop
// depth. Receipt re-roots joiner trees automatically (first-arrival edge
// becomes the parent).
type mNewCluster struct {
	Root  graph.NodeID
	B     *boundary
	Depth int
}

// mFlush is the final-level broadcast of the last F additions.
type mFlush struct{ FAdds []graph.EdgeID }

// Payload sizes (local.Sizer): one unit per O(log n)-bit word — an edge ID,
// a node ID, a flag. Shared *boundary references count their full list
// length: sharing is a simulator optimization, but the model "transmits"
// the set.

func blen(b *boundary) int64 {
	if b == nil {
		return 0
	}
	return int64(len(b.list))
}

// PayloadUnits implements local.Sizer.
func (m mTrial) PayloadUnits() int64 {
	return 1 + int64(len(m.Samples)) + int64(len(m.FAdds))
}

// PayloadUnits implements local.Sizer.
func (m mReply) PayloadUnits() int64 { return 3 + blen(m.B) }

// PayloadUnits implements local.Sizer.
func (m mConvReply) PayloadUnits() int64 {
	var u int64
	for _, it := range m.Items {
		u += 4 + blen(it.B)
	}
	return 1 + u
}

// PayloadUnits implements local.Sizer.
func (m mCenter) PayloadUnits() int64 {
	return 1 + int64(len(m.Probes)) + int64(len(m.FAdds))
}

// PayloadUnits implements local.Sizer.
func (m mProbeReply) PayloadUnits() int64 { return 2 }

// PayloadUnits implements local.Sizer.
func (m mConvProbe) PayloadUnits() int64 { return 1 + 3*int64(len(m.Items)) }

// PayloadUnits implements local.Sizer.
func (m mFS) PayloadUnits() int64 { return 1 + int64(len(m.Edges)) }

// PayloadUnits implements local.Sizer.
func (m mConvFS) PayloadUnits() int64 {
	var u int64
	for _, it := range m.Items {
		u += 4 + blen(it.B)
	}
	return 1 + u
}

// PayloadUnits implements local.Sizer.
func (m mDecide) PayloadUnits() int64 { return 2 + int64(len(m.FAdds)) }

// PayloadUnits implements local.Sizer.
func (m mJoin) PayloadUnits() int64 { return 2 + blen(m.B) }

// PayloadUnits implements local.Sizer.
func (m mConvJoin) PayloadUnits() int64 {
	var u int64
	for _, it := range m.Items {
		u += 2 + blen(it.B)
	}
	return 1 + u
}

// PayloadUnits implements local.Sizer.
func (m mNewCluster) PayloadUnits() int64 { return 3 + blen(m.B) }

// PayloadUnits implements local.Sizer.
func (m mFlush) PayloadUnits() int64 { return 1 + int64(len(m.FAdds)) }
