package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/local"
)

// This file implements the paper's Section 5: the LOCAL-model realization of
// algorithm Sampler. Each virtual node of the level graph G_j is a cluster
// of original nodes; its local actions are simulated by broadcast and
// convergecast sessions over the cluster's spanning tree (depth ≤ 3^j − 1 by
// Lemma 8), on a global lockstep schedule (see schedule.go).
//
// Three devices keep the message complexity at Õ(n^{1+δ+1/h}) — see
// DESIGN.md §3 for why each is faithful to the paper:
//
//  1. query replies carry the replying cluster's entire boundary edge-ID
//     set (one message — LOCAL does not bound message size), letting the
//     querier peel every parallel edge to that cluster at once;
//  2. merged clusters compute their new boundary with the "count-one" rule —
//     an edge ID appearing in two constituent boundaries became internal —
//     so no per-edge communication is ever needed;
//  3. clusters that stop participating ("unclustered"/dead) never announce
//     their death on their boundary; staleness is discovered lazily by the
//     DEAD query reply, which also carries the dead cluster's final boundary
//     for bulk peeling.

// noEdge marks "no edge" in tree bookkeeping; the distributed Sampler
// requires non-negative edge IDs.
const noEdge = graph.EdgeID(-1)

// Counter names used in local.Result.Counters.
const (
	CntQuery  = "sampler.query"  // trial + fail-safe query messages
	CntReply  = "sampler.reply"  // their replies
	CntTree   = "sampler.tree"   // broadcast/convergecast/flood traffic
	CntAccept = "sampler.accept" // spanner-membership notifications
	CntProbe  = "sampler.probe"  // center-status probes + replies
	CntJoin   = "sampler.join"   // cluster-merge messages
)

// DistResult is the outcome of the distributed Sampler.
type DistResult struct {
	// S is the spanner edge set, assembled from the endpoints' local
	// knowledge (every edge of S is known to both its endpoints).
	S map[graph.EdgeID]bool
	// FDecided is the union of F-sets decided by cluster roots; it must
	// equal S (checked by tests).
	FDecided map[graph.EdgeID]bool
	// Run carries the LOCAL-model cost metrics (rounds, messages, counters).
	Run local.Result
	// ScheduleRounds is the fixed global schedule length (the run uses
	// exactly this many rounds).
	ScheduleRounds int
	// Params echoes the parameters.
	Params Params

	nodes []*distNode // retained for white-box tests
}

// StretchBound returns the certified stretch 2·3^K − 1.
func (r *DistResult) StretchBound() int { return r.Params.StretchBound() }

// BuildDistributed runs the distributed Sampler on g under the LOCAL
// simulator and returns the spanner with full cost accounting. It is
// BuildDistributedCtx with an uncancellable context.
func BuildDistributed(g *graph.Graph, p Params, seed uint64, cfg local.Config) (*DistResult, error) {
	return BuildDistributedCtx(context.Background(), g, p, seed, cfg)
}

// BuildDistributedCtx is BuildDistributed with cancellation: cancelling ctx
// aborts the underlying LOCAL run mid-round.
func BuildDistributedCtx(ctx context.Context, g *graph.Graph, p Params, seed uint64, cfg local.Config) (*DistResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	for _, e := range g.Edges() {
		if e.ID < 0 {
			return nil, fmt.Errorf("core: distributed Sampler requires non-negative edge IDs (got %d)", e.ID)
		}
	}
	if !g.IsSimple() {
		// The paper's communication graph is simple (multiplicities arise
		// only in the virtual level graphs); the level-0 reply optimization
		// (nil boundary) depends on it.
		return nil, fmt.Errorf("core: distributed Sampler requires a simple input graph")
	}
	sched := buildSchedule(p)
	nodes := make([]*distNode, g.NumNodes())
	cfg.Seed = seed
	cfg.MaxRounds = sched.total + 1
	run, err := local.RunCtx(ctx, g, func(v graph.NodeID) local.Protocol {
		nd := &distNode{sched: sched, p: p, id: v}
		nodes[v] = nd
		return nd
	}, cfg)
	if err != nil {
		return nil, err
	}
	if !run.Halted {
		return nil, fmt.Errorf("core: distributed Sampler did not halt within its schedule (%d rounds)", sched.total)
	}
	res := &DistResult{
		S:              make(map[graph.EdgeID]bool),
		FDecided:       make(map[graph.EdgeID]bool),
		Run:            run,
		ScheduleRounds: sched.total,
		Params:         p,
		nodes:          nodes,
	}
	for _, nd := range nodes {
		for e := range nd.inS {
			res.S[e] = true
		}
		for _, e := range nd.fDecided {
			res.FDecided[e] = true
		}
	}
	return res, nil
}

// distNode is the per-node protocol state machine.
type distNode struct {
	sched    *schedule
	p        Params
	id       graph.NodeID
	phaseIdx int
	inited   bool

	myEdges map[graph.EdgeID]bool // my incident edges (immutable after init)

	// Cluster membership (current level).
	dead          bool
	isRoot        bool
	hasParent     bool
	parent        graph.EdgeID
	tree          map[graph.EdgeID]bool // my incident cluster-tree edges
	depth         int
	clusterRoot   graph.NodeID
	cb            *boundary
	centerCluster bool
	decis         decision

	// Root-only level state.
	x             *edgePool
	fCount        int
	queried       map[graph.NodeID]graph.EdgeID
	queriedCenter map[graph.NodeID]bool
	fPending      []graph.EdgeID
	sampleOrder   []graph.EdgeID
	fsOrder       []graph.EdgeID
	isCenterFlag  bool
	pendingNewB   *boundary

	// Member transients (prepared by broadcast receipt, consumed by the
	// following send slot).
	mySamples     []graph.EdgeID
	myProbes      []graph.EdgeID
	myFS          []graph.EdgeID
	accepts       []graph.EdgeID
	sendJoin      bool
	joinEdge      graph.EdgeID
	acceptedJoins []graph.EdgeID
	floodSeen     bool

	// Convergecast state.
	convWaiting int
	convSent    bool
	itemsReply  []replyItem
	itemsProbe  []probeItem
	itemsJoin   []joinItem

	// Outputs.
	inS      map[graph.EdgeID]bool
	fDecided []graph.EdgeID
}

var _ local.Protocol = (*distNode)(nil)

// Step drives the node through the global schedule. Per round: advance the
// phase pointer, run entry actions, process the inbox (message-type
// dispatch), then convergecast post-processing and exit assertions. The
// schedule guarantees every message arrives within the phase that consumes
// it (see schedule.go for the round accounting).
func (nd *distNode) Step(env *local.Env, round int, inbox []local.Message) {
	if !nd.inited {
		nd.init(env)
	}
	idx, ph := nd.sched.at(round, nd.phaseIdx)
	nd.phaseIdx = idx

	if round == ph.start {
		nd.enterPhase(env, ph)
	}
	for _, m := range inbox {
		nd.handleMessage(env, ph, m)
	}
	nd.convMaybeComplete(env, ph)
	if round == ph.start+ph.dur-1 {
		nd.exitPhase(env, ph)
	}
	if round == nd.sched.total-1 {
		env.Halt()
	}
}

// init sets up the level-0 singleton cluster: every node is its own root,
// its boundary is its incident edge set, and its tree is empty.
func (nd *distNode) init(env *local.Env) {
	nd.inited = true
	ports := env.Ports()
	nd.myEdges = make(map[graph.EdgeID]bool, len(ports))
	edges := make([]graph.EdgeID, 0, len(ports))
	for _, pt := range ports {
		nd.myEdges[pt.Edge] = true
		edges = append(edges, pt.Edge)
	}
	nd.isRoot = true
	nd.clusterRoot = nd.id
	nd.tree = make(map[graph.EdgeID]bool)
	nd.cb = newBoundary(edges)
	nd.resetRootLevelState()
	nd.inS = make(map[graph.EdgeID]bool)
}

func (nd *distNode) resetRootLevelState() {
	nd.x = newEdgePool(nd.cb.list)
	nd.fCount = 0
	nd.queried = make(map[graph.NodeID]graph.EdgeID)
	nd.queriedCenter = make(map[graph.NodeID]bool)
	nd.sampleOrder = nil
	nd.fsOrder = nil
	nd.isCenterFlag = false
	nd.pendingNewB = nil
	nd.decis = decNone
}

// children returns the number of tree children (tree edges minus parent).
func (nd *distNode) children() int {
	n := len(nd.tree)
	if nd.hasParent {
		n--
	}
	return n
}

// ---------------------------------------------------------------- entry ---

func (nd *distNode) enterPhase(env *local.Env, ph phase) {
	switch ph.kind {
	case phTrialBcast:
		if nd.isRoot && !nd.dead {
			nd.rootTrialBcast(env, ph)
		}
	case phTrialConv, phProbeConv, phFSConv, phJoinConv:
		if !nd.dead {
			nd.convWaiting = nd.children()
			nd.convSent = false
			nd.itemsReply = nil
			nd.itemsProbe = nil
			nd.itemsJoin = nil
		}
	case phTrialQuery, phFSQuery:
		nd.flushAccepts(env)
		if !nd.dead {
			edges := nd.mySamples
			kind := any(mQuery{})
			if ph.kind == phFSQuery {
				edges = nd.myFS
				kind = mFSQuery{}
			}
			for _, e := range edges {
				env.Send(e, kind)
				env.Count(CntQuery, 1)
			}
			nd.mySamples = nil
			nd.myFS = nil
		}
	case phCenterBcast:
		if nd.isRoot && !nd.dead {
			nd.rootCenterBcast(env, ph)
		}
	case phProbeSend:
		nd.flushAccepts(env)
		if !nd.dead {
			for _, e := range nd.myProbes {
				env.Send(e, mProbe{})
				env.Count(CntProbe, 1)
			}
			nd.myProbes = nil
		}
	case phFSBcast:
		if nd.isRoot && !nd.dead {
			nd.rootFSBcast(env, ph)
		}
	case phDecideBcast:
		if nd.isRoot && !nd.dead {
			nd.rootDecideBcast(env, ph)
		}
	case phJoinSend:
		nd.flushAccepts(env)
		if nd.sendJoin {
			env.Send(nd.joinEdge, mJoin{JoinerRoot: nd.clusterRoot, B: nd.cb})
			env.Count(CntJoin, 1)
			nd.sendJoin = false
		}
	case phNewCluster:
		nd.floodSeen = false
		if nd.isRoot && !nd.dead && nd.decis == decCenter {
			nd.rootNewClusterFlood(env)
		}
	case phFlushBcast:
		if nd.isRoot && !nd.dead {
			msg := mFlush{FAdds: nd.fPending}
			nd.fPending = nil
			nd.handleFlush(env, msg)
			nd.forwardDown(env, noEdge, msg)
		}
	case phFlushAccept:
		nd.flushAccepts(env)
	}
}

// flushAccepts notifies far endpoints of newly decided spanner edges. Dead
// nodes still flush: their final F additions arrive with the DEAD verdict.
func (nd *distNode) flushAccepts(env *local.Env) {
	for _, e := range nd.accepts {
		env.Send(e, mAccept{})
		env.Count(CntAccept, 1)
	}
	nd.accepts = nil
}

// forwardDown relays a broadcast payload over every tree edge except the one
// it arrived on (noEdge for the root: send to all children).
func (nd *distNode) forwardDown(env *local.Env, from graph.EdgeID, payload any) {
	for e := range nd.tree {
		if e != from {
			env.Send(e, payload)
			env.Count(CntTree, 1)
		}
	}
}

// ----------------------------------------------------------- root entry ---

func (nd *distNode) rootTrialBcast(env *local.Env, ph phase) {
	idle := nd.fCount >= nd.p.threshold(ph.level, nEstimate(env)) || nd.x.empty()
	var samples []graph.EdgeID
	if !idle {
		count := nd.p.samplesPerTrial(ph.level, nEstimate(env))
		samples = make([]graph.EdgeID, 0, count)
		for i := 0; i < count; i++ {
			e, ok := nd.x.sample(env.Rand())
			if !ok {
				break
			}
			samples = append(samples, e)
		}
	}
	nd.sampleOrder = samples
	msg := mTrial{Samples: samples, FAdds: nd.fPending, Idle: idle}
	nd.fPending = nil
	nd.handleTrial(env, msg)
	nd.forwardDown(env, noEdge, msg)
}

func (nd *distNode) rootCenterBcast(env *local.Env, ph phase) {
	nd.isCenterFlag = env.Rand().Bernoulli(nd.p.centerProb(ph.level, nEstimate(env)))
	probes := make([]graph.EdgeID, 0, len(nd.queried))
	for _, e := range nd.queried {
		probes = append(probes, e)
	}
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
	msg := mCenter{IsCenter: nd.isCenterFlag, Probes: probes, FAdds: nd.fPending}
	nd.fPending = nil
	nd.handleCenter(env, msg)
	nd.forwardDown(env, noEdge, msg)
}

func (nd *distNode) rootFSBcast(env *local.Env, ph phase) {
	need := nd.p.FailSafe && !nd.x.empty()
	if need && ph.level < nd.p.K {
		// Only a node that would otherwise end up unclustered-and-not-light
		// needs rescuing: non-center, unexplored edges remaining, and no
		// center among its queried neighbors.
		if nd.isCenterFlag || nd.anyQueriedCenter() {
			need = false
		}
	}
	if need {
		nd.fsOrder = nd.x.snapshot()
	} else {
		nd.fsOrder = nil
	}
	msg := mFS{Edges: nd.fsOrder}
	nd.handleFS(env, msg)
	nd.forwardDown(env, noEdge, msg)
}

func (nd *distNode) anyQueriedCenter() bool {
	for _, isC := range nd.queriedCenter {
		if isC {
			return true
		}
	}
	return false
}

func (nd *distNode) rootDecideBcast(env *local.Env, ph phase) {
	var msg mDecide
	switch {
	case nd.isCenterFlag:
		msg = mDecide{Decision: decCenter}
	default:
		// Join the smallest queried center, if any (the paper allows an
		// arbitrary choice; smallest keeps runs reproducible).
		target := noNode
		for u, isC := range nd.queriedCenter {
			if isC && (target == noNode || u < target) {
				target = u
			}
		}
		if target != noNode {
			msg = mDecide{Decision: decJoin, JoinEdge: nd.queried[target]}
		} else {
			msg = mDecide{Decision: decDead}
		}
	}
	msg.FAdds = nd.fPending
	nd.fPending = nil
	nd.handleDecide(env, msg)
	nd.forwardDown(env, noEdge, msg)
}

func (nd *distNode) rootNewClusterFlood(env *local.Env) {
	if nd.pendingNewB == nil {
		panic(fmt.Sprintf("core: node %d: center root has no merged boundary", nd.id))
	}
	nd.cb = nd.pendingNewB
	for _, e := range nd.acceptedJoins {
		nd.tree[e] = true
	}
	nd.acceptedJoins = nil
	nd.depth = 0
	nd.resetRootLevelState()
	for e := range nd.tree {
		env.Send(e, mNewCluster{Root: nd.id, B: nd.cb, Depth: 0})
		env.Count(CntTree, 1)
	}
}

// -------------------------------------------------------------- receipt ---

func (nd *distNode) handleMessage(env *local.Env, ph phase, m local.Message) {
	switch msg := m.Payload.(type) {
	case mTrial:
		nd.handleTrial(env, msg)
		nd.forwardDown(env, m.Edge, msg)
	case mQuery:
		env.Send(m.Edge, nd.composeReply(ph, false))
		env.Count(CntReply, 1)
	case mFSQuery:
		env.Send(m.Edge, nd.composeReply(ph, true))
		env.Count(CntReply, 1)
	case mReply:
		nd.itemsReply = append(nd.itemsReply, replyItem{
			Edge: m.Edge, Root: msg.Root, Dead: msg.Dead, IsCenter: msg.IsCenter, B: msg.B,
		})
	case mAccept:
		nd.inS[m.Edge] = true
	case mConvReply:
		nd.itemsReply = append(nd.itemsReply, msg.Items...)
		nd.convWaiting--
	case mCenter:
		nd.handleCenter(env, msg)
		nd.forwardDown(env, m.Edge, msg)
	case mProbe:
		// A probe travels over an F-edge of the probing cluster, so this
		// edge is in the spanner; record that before answering.
		nd.inS[m.Edge] = true
		env.Send(m.Edge, mProbeReply{Root: nd.clusterRoot, IsCenter: nd.centerCluster})
		env.Count(CntProbe, 1)
	case mProbeReply:
		nd.itemsProbe = append(nd.itemsProbe, probeItem{Edge: m.Edge, Root: msg.Root, IsCenter: msg.IsCenter})
	case mConvProbe:
		nd.itemsProbe = append(nd.itemsProbe, msg.Items...)
		nd.convWaiting--
	case mFS:
		nd.handleFS(env, msg)
		nd.forwardDown(env, m.Edge, msg)
	case mConvFS:
		nd.itemsReply = append(nd.itemsReply, msg.Items...)
		nd.convWaiting--
	case mDecide:
		nd.handleDecide(env, msg)
		nd.forwardDown(env, m.Edge, msg)
	case mJoin:
		nd.acceptedJoins = append(nd.acceptedJoins, m.Edge)
		nd.itemsJoin = append(nd.itemsJoin, joinItem{Edge: m.Edge, B: msg.B})
	case mConvJoin:
		nd.itemsJoin = append(nd.itemsJoin, msg.Items...)
		nd.convWaiting--
	case mNewCluster:
		nd.handleNewCluster(env, m.Edge, msg)
	case mFlush:
		nd.handleFlush(env, msg)
		nd.forwardDown(env, m.Edge, msg)
	default:
		panic(fmt.Sprintf("core: node %d: unexpected message %T in phase %v", nd.id, m.Payload, ph))
	}
}

// composeReply answers a (fail-safe) query: my cluster's identity, vital
// status, and boundary. At level 0 the input graph is simple and no node is
// dead, so the boundary is omitted — the querier peels just the query edge.
func (nd *distNode) composeReply(ph phase, fs bool) mReply {
	b := nd.cb
	if ph.level == 0 && !nd.dead {
		b = nil
	}
	isCenter := false
	if fs {
		isCenter = nd.centerCluster && !nd.dead
	}
	return mReply{Root: nd.clusterRoot, Dead: nd.dead, IsCenter: isCenter, B: b}
}

// markFAdds records newly decided spanner edges incident to this node and
// queues far-endpoint notifications.
func (nd *distNode) markFAdds(fAdds []graph.EdgeID) {
	for _, e := range fAdds {
		if nd.myEdges[e] {
			nd.inS[e] = true
			nd.accepts = append(nd.accepts, e)
		}
	}
}

// ownIncident filters a broadcast edge list down to this node's own edges,
// deduplicated, preserving order.
func (nd *distNode) ownIncident(edges []graph.EdgeID) []graph.EdgeID {
	var out []graph.EdgeID
	seen := make(map[graph.EdgeID]bool)
	for _, e := range edges {
		if nd.myEdges[e] && !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func (nd *distNode) handleTrial(env *local.Env, m mTrial) {
	nd.markFAdds(m.FAdds)
	nd.mySamples = nd.ownIncident(m.Samples)
}

func (nd *distNode) handleCenter(env *local.Env, m mCenter) {
	nd.markFAdds(m.FAdds)
	nd.centerCluster = m.IsCenter
	nd.myProbes = nd.ownIncident(m.Probes)
}

func (nd *distNode) handleFS(env *local.Env, m mFS) {
	nd.myFS = nd.ownIncident(m.Edges)
}

func (nd *distNode) handleDecide(env *local.Env, m mDecide) {
	nd.markFAdds(m.FAdds)
	nd.decis = m.Decision
	switch m.Decision {
	case decDead:
		nd.dead = true // cb is frozen as the final boundary
	case decJoin:
		if nd.myEdges[m.JoinEdge] {
			nd.sendJoin = true
			nd.joinEdge = m.JoinEdge
		}
	}
}

func (nd *distNode) handleNewCluster(env *local.Env, from graph.EdgeID, m mNewCluster) {
	if nd.floodSeen {
		panic(fmt.Sprintf("core: node %d: duplicate new-cluster flood", nd.id))
	}
	nd.floodSeen = true
	newTree := make(map[graph.EdgeID]bool, len(nd.tree)+len(nd.acceptedJoins)+1)
	for e := range nd.tree {
		newTree[e] = true
	}
	for _, e := range nd.acceptedJoins {
		newTree[e] = true
	}
	newTree[from] = true
	for e := range newTree {
		if e != from {
			env.Send(e, mNewCluster{Root: m.Root, B: m.B, Depth: m.Depth + 1})
			env.Count(CntTree, 1)
		}
	}
	nd.tree = newTree
	nd.hasParent = true
	nd.parent = from
	nd.depth = m.Depth + 1
	nd.clusterRoot = m.Root
	nd.cb = m.B
	nd.isRoot = false
	nd.acceptedJoins = nil
	nd.decis = decNone
	nd.x = nil
	nd.queried = nil
	nd.queriedCenter = nil
	nd.pendingNewB = nil
}

func (nd *distNode) handleFlush(env *local.Env, m mFlush) {
	nd.markFAdds(m.FAdds)
}

// -------------------------------------------------------- convergecasts ---

// convMaybeComplete fires once all children reported during a convergecast
// phase: members forward their aggregate to the parent; the root finalizes.
func (nd *distNode) convMaybeComplete(env *local.Env, ph phase) {
	switch ph.kind {
	case phTrialConv, phProbeConv, phFSConv, phJoinConv:
	default:
		return
	}
	if nd.dead || nd.convSent || nd.convWaiting > 0 {
		return
	}
	nd.convSent = true
	if !nd.isRoot {
		var payload any
		switch ph.kind {
		case phTrialConv:
			payload = mConvReply{Items: nd.itemsReply}
		case phProbeConv:
			payload = mConvProbe{Items: nd.itemsProbe}
		case phFSConv:
			payload = mConvFS{Items: nd.itemsReply}
		case phJoinConv:
			payload = mConvJoin{Items: nd.itemsJoin}
		}
		env.Send(nd.parent, payload)
		env.Count(CntTree, 1)
		return
	}
	switch ph.kind {
	case phTrialConv:
		nd.finalizeTrialConv(env, ph)
	case phProbeConv:
		nd.finalizeProbeConv()
	case phFSConv:
		nd.finalizeFSConv(env, ph)
	case phJoinConv:
		nd.finalizeJoinConv()
	}
}

// finalizeTrialConv is the root's reduction of a trial: process replies in
// draw order, peel replying clusters out of X_v, and grow F up to the
// threshold budget — the exact logic of the centralized Cluster_j step 1.
func (nd *distNode) finalizeTrialConv(env *local.Env, ph phase) {
	byEdge := make(map[graph.EdgeID]replyItem, len(nd.itemsReply))
	for _, it := range nd.itemsReply {
		byEdge[it.Edge] = it
	}
	threshold := nd.p.threshold(ph.level, nEstimate(env))
	for _, e := range nd.sampleOrder {
		if !nd.x.contains(e) {
			continue // peeled earlier in this trial (parallel duplicate)
		}
		it, ok := byEdge[e]
		if !ok {
			panic(fmt.Sprintf("core: root %d: no reply for sampled edge %d", nd.id, e))
		}
		if it.Dead {
			nd.peelReply(e, it)
			continue
		}
		if it.Root == nd.id {
			panic(fmt.Sprintf("core: root %d: boundary contains intra-cluster edge %d", nd.id, e))
		}
		if nd.fCount >= threshold {
			break // budget reached; mirrors the centralized cap
		}
		if _, dup := nd.queried[it.Root]; dup {
			panic(fmt.Sprintf("core: root %d: cluster %d re-discovered; peeling failed", nd.id, it.Root))
		}
		nd.addF(it.Root, e)
		nd.peelReply(e, it)
	}
	nd.sampleOrder = nil
}

func (nd *distNode) addF(root graph.NodeID, e graph.EdgeID) {
	nd.queried[root] = e
	nd.fCount++
	nd.fPending = append(nd.fPending, e)
	nd.fDecided = append(nd.fDecided, e)
}

func (nd *distNode) peelReply(e graph.EdgeID, it replyItem) {
	if it.B != nil {
		nd.x.removeAll(it.B.list)
	} else {
		nd.x.remove(e)
	}
}

func (nd *distNode) finalizeProbeConv() {
	for _, it := range nd.itemsProbe {
		if _, known := nd.queried[it.Root]; !known {
			panic(fmt.Sprintf("core: root %d: probe reply from unknown cluster %d", nd.id, it.Root))
		}
		nd.queriedCenter[it.Root] = it.IsCenter
	}
}

// finalizeFSConv is the fail-safe reduction: every remaining edge was
// queried, so peel everything and record every newly discovered neighbor
// (no budget cap — the point is to become light).
func (nd *distNode) finalizeFSConv(env *local.Env, ph phase) {
	if len(nd.fsOrder) == 0 {
		return
	}
	byEdge := make(map[graph.EdgeID]replyItem, len(nd.itemsReply))
	for _, it := range nd.itemsReply {
		byEdge[it.Edge] = it
	}
	for _, e := range nd.fsOrder {
		if !nd.x.contains(e) {
			continue
		}
		it, ok := byEdge[e]
		if !ok {
			panic(fmt.Sprintf("core: root %d: no fail-safe reply for edge %d", nd.id, e))
		}
		if !it.Dead {
			nd.addF(it.Root, e)
			nd.queriedCenter[it.Root] = it.IsCenter
		}
		nd.peelReply(e, it)
	}
	if !nd.x.empty() {
		panic(fmt.Sprintf("core: root %d: fail-safe left %d unexplored edges", nd.id, nd.x.size()))
	}
	nd.fsOrder = nil
}

// finalizeJoinConv merges the accepted joiners' boundaries with the center's
// own using the count-one rule: an edge ID contributed by two constituent
// boundaries has both endpoints inside the merged cluster and disappears.
func (nd *distNode) finalizeJoinConv() {
	if nd.decis != decCenter {
		nd.itemsJoin = nil // stale aggregates at a joining/dying old root
		return
	}
	counts := make(map[graph.EdgeID]int, len(nd.cb.list))
	for _, e := range nd.cb.list {
		counts[e]++
	}
	for _, it := range nd.itemsJoin {
		for _, e := range it.B.list {
			counts[e]++
		}
	}
	var edges []graph.EdgeID
	for e, c := range counts {
		if c == 1 {
			edges = append(edges, e)
		}
	}
	nd.pendingNewB = newBoundary(edges)
	nd.itemsJoin = nil
}

// ----------------------------------------------------------------- exit ---

// exitPhase asserts schedule invariants at phase boundaries: convergecasts
// must have completed, and a fail-safe run must have emptied the pool.
func (nd *distNode) exitPhase(env *local.Env, ph phase) {
	switch ph.kind {
	case phTrialConv, phProbeConv, phFSConv, phJoinConv:
		if !nd.dead && !nd.convSent {
			panic(fmt.Sprintf("core: node %d: convergecast %v incomplete (%d children missing)",
				nd.id, ph, nd.convWaiting))
		}
	}
}

// nEstimate derives the node-count estimate the protocol parameterizes
// itself with. The paper's model assumption (i) grants every node an
// O(1)-approximate upper bound on log n (equivalently a poly(n) upper bound
// on n), not n itself; deriving the estimate from Env.LogN honors that —
// under local.Config.LogNSlack > 1 every node consistently overestimates n
// and the construction degrades gracefully (larger thresholds, valid
// spanner), which TestDistributedLogNSlackRobust verifies.
func nEstimate(env *local.Env) int {
	return int(math.Pow(2, env.LogN()) + 0.5)
}
