package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func buildDist(t *testing.T, g *graph.Graph, p Params, seed uint64) *DistResult {
	t.Helper()
	res, err := BuildDistributed(g, p, seed, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func verifyDist(t *testing.T, g *graph.Graph, res *DistResult) graph.StretchReport {
	t.Helper()
	_, rep, err := graph.VerifySpanner(g, res.S, res.StretchBound())
	if err != nil {
		t.Fatalf("distributed spanner invalid: %v", err)
	}
	return rep
}

func TestDistributedTinyGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"single": graph.New(1),
		"pair":   gen.Path(2),
		"tri":    gen.Cycle(3),
		"star":   gen.Star(6),
		"k5":     gen.Complete(5),
	} {
		res := buildDist(t, g, Default(1, 1), 3)
		if g.NumEdges() > 0 {
			verifyDist(t, g, res)
		}
		if !res.Run.Halted {
			t.Fatalf("%s: did not halt", name)
		}
	}
}

func TestDistributedMatchesScheduleRounds(t *testing.T) {
	g := gen.ConnectedGNP(100, 0.1, xrand.New(1))
	p := Default(2, 2)
	res := buildDist(t, g, p, 7)
	if res.Run.Rounds != res.ScheduleRounds {
		t.Fatalf("rounds = %d, schedule = %d", res.Run.Rounds, res.ScheduleRounds)
	}
	// The schedule length is the Theorem 11 round complexity: O(3^K · H).
	if res.ScheduleRounds > 40*pow3(p.K)*p.H {
		t.Fatalf("schedule %d rounds is out of the O(3^k h) ballpark", res.ScheduleRounds)
	}
}

func TestDistributedSpannerValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k, h int
	}{
		{"gnp-k1", gen.ConnectedGNP(200, 0.06, xrand.New(2)), 1, 2},
		{"gnp-k2", gen.ConnectedGNP(200, 0.06, xrand.New(2)), 2, 2},
		{"grid", gen.Grid(10, 10), 2, 1},
		{"hypercube", gen.Hypercube(7), 2, 2},
		{"complete", gen.Complete(80), 2, 2},
		{"barbell", gen.Barbell(15, 4), 1, 2},
		{"pa", gen.PreferentialAttachment(150, 3, xrand.New(4)), 2, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := buildDist(t, tc.g, Default(tc.k, tc.h), 11)
			verifyDist(t, tc.g, res)
		})
	}
}

func TestDistributedSEqualsFDecided(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.08, xrand.New(5))
	res := buildDist(t, g, Default(2, 2), 13)
	if len(res.S) != len(res.FDecided) {
		t.Fatalf("|S| = %d but |FDecided| = %d", len(res.S), len(res.FDecided))
	}
	for e := range res.S {
		if !res.FDecided[e] {
			t.Fatalf("edge %d known to endpoints but never decided by a root", e)
		}
	}
}

func TestDistributedBothEndpointsKnow(t *testing.T) {
	g := gen.ConnectedGNP(120, 0.08, xrand.New(6))
	res := buildDist(t, g, Default(1, 2), 17)
	for e := range res.S {
		ge, _ := g.EdgeByID(e)
		knows := 0
		for _, v := range []graph.NodeID{ge.U, ge.V} {
			if res.nodes[v].inS[e] {
				knows++
			}
		}
		if knows != 2 {
			t.Fatalf("edge %d known to %d of 2 endpoints", e, knows)
		}
	}
	// And no node claims a non-incident or non-spanner edge.
	for v, nd := range res.nodes {
		for e := range nd.inS {
			if !res.S[e] {
				t.Fatalf("node %d claims unknown spanner edge %d", v, e)
			}
			ge, _ := g.EdgeByID(e)
			if ge.U != graph.NodeID(v) && ge.V != graph.NodeID(v) {
				t.Fatalf("node %d claims non-incident edge %d", v, e)
			}
		}
	}
}

func TestDistributedEnginesAgree(t *testing.T) {
	g := gen.ConnectedGNP(100, 0.08, xrand.New(7))
	p := Default(2, 2)
	seq, err := BuildDistributed(g, p, 21, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	con, err := BuildDistributed(g, p, 21, local.Config{Concurrent: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.S) != len(con.S) {
		t.Fatalf("engines disagree on |S|: %d vs %d", len(seq.S), len(con.S))
	}
	for e := range seq.S {
		if !con.S[e] {
			t.Fatal("engines disagree on spanner membership")
		}
	}
	if seq.Run.Messages != con.Run.Messages {
		t.Fatalf("engines disagree on messages: %d vs %d", seq.Run.Messages, con.Run.Messages)
	}
}

func TestDistributedDeterministic(t *testing.T) {
	g := gen.Grid(8, 8)
	a := buildDist(t, g, Default(2, 2), 5)
	b := buildDist(t, g, Default(2, 2), 5)
	if len(a.S) != len(b.S) || a.Run.Messages != b.Run.Messages {
		t.Fatal("distributed build not deterministic")
	}
}

func TestDistributedRejectsMultigraph(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if _, err := BuildDistributed(g, Default(1, 1), 1, local.Config{}); err == nil {
		t.Fatal("multigraph accepted")
	}
}

func TestDistributedMessageAccounting(t *testing.T) {
	g := gen.ConnectedGNP(200, 0.1, xrand.New(8))
	res := buildDist(t, g, Default(2, 2), 9)
	var byKind int64
	for _, k := range []string{CntQuery, CntReply, CntTree, CntAccept, CntProbe, CntJoin} {
		byKind += res.Run.Counters[k]
	}
	if byKind != res.Run.Messages {
		t.Fatalf("counters sum to %d but runtime counted %d messages", byKind, res.Run.Messages)
	}
	if res.Run.Counters[CntQuery] == 0 || res.Run.Counters[CntTree] == 0 {
		t.Fatalf("expected nonzero query and tree traffic: %+v", res.Run.Counters)
	}
	// Every query gets exactly one reply.
	if res.Run.Counters[CntQuery] != res.Run.Counters[CntReply] {
		t.Fatalf("queries %d != replies %d", res.Run.Counters[CntQuery], res.Run.Counters[CntReply])
	}
}

func TestDistributedSendsFewerMessagesThanEdgesOnDenseGraph(t *testing.T) {
	// The free-lunch headline: message complexity o(m) on dense graphs. At
	// experiment scale the polylog factors need n in the several hundreds
	// before the crossover appears (EXPERIMENTS.md E4/E11 chart the full
	// curve); K_500 with h=8 sits comfortably past it.
	g := gen.Complete(500) // m = 124750
	p := Default(2, 8)
	p.C = 0.5
	res := buildDist(t, g, p, 3)
	verifyDist(t, g, res)
	m := int64(g.NumEdges())
	if res.Run.Messages >= m {
		t.Fatalf("distributed Sampler sent %d messages on a graph with %d edges; want o(m)",
			res.Run.Messages, m)
	}
}

func TestDistributedMessageExponent(t *testing.T) {
	// Messages should scale like n^{1+δ+1/h} (up to log factors), far below
	// n^2 on complete graphs. Check the measured exponent between two sizes.
	p := Default(2, 4)
	sizes := []int{120, 240}
	var msgs [2]float64
	for i, n := range sizes {
		res := buildDist(t, gen.Complete(n), p, 7)
		msgs[i] = float64(res.Run.Messages)
	}
	got := math.Log(msgs[1]/msgs[0]) / math.Log(float64(sizes[1])/float64(sizes[0]))
	if got > 1.9 {
		t.Fatalf("measured message exponent %.2f looks like Theta(m)=n^2, want ~%.2f",
			got, p.PredictedMessageExponent())
	}
}

func TestDistributedAgainstCentralizedQuality(t *testing.T) {
	// The two implementations should produce spanners of comparable size on
	// the same graph (not identical — RNG consumption differs).
	g := gen.ConnectedGNP(300, 0.08, xrand.New(10))
	p := Default(2, 2)
	cent := buildOn(t, g, p, 31)
	dist := buildDist(t, g, p, 31)
	cs, ds := float64(len(cent.S)), float64(len(dist.S))
	if ds > 3*cs || cs > 3*ds {
		t.Fatalf("size mismatch: centralized %v vs distributed %v", cs, ds)
	}
}

func TestScheduleWellFormed(t *testing.T) {
	for k := 1; k <= 3; k++ {
		for h := 1; h <= 3; h++ {
			s := buildSchedule(Default(k, h))
			prevEnd := 0
			for _, ph := range s.phases {
				if ph.start != prevEnd {
					t.Fatalf("k=%d h=%d: gap before %v", k, h, ph)
				}
				if ph.dur < 1 {
					t.Fatalf("zero-duration phase %v", ph)
				}
				prevEnd = ph.start + ph.dur
			}
			if prevEnd != s.total {
				t.Fatalf("schedule total mismatch")
			}
			// Round complexity shape: O(3^k · h).
			if s.total > 50*pow3(k)*h {
				t.Fatalf("k=%d h=%d: %d rounds exceeds O(3^k h) shape", k, h, s.total)
			}
		}
	}
}

func TestScheduleAtPanicsBeyondEnd(t *testing.T) {
	s := buildSchedule(Default(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic past schedule end")
		}
	}()
	s.at(s.total, 0)
}

func BenchmarkBuildDistributedK2(b *testing.B) {
	g := gen.ConnectedGNP(500, 0.05, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDistributed(g, Default(2, 2), uint64(i), local.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDistributedWordComplexityExceedsMessages(t *testing.T) {
	// Query replies carry whole boundary sets, so word counts must strictly
	// dominate message counts — and on dense graphs sit at Ω(m) even while
	// messages are o(m) (experiment E13 charts this).
	g := gen.Complete(200)
	p := Default(2, 4)
	p.C = 0.5
	res := buildDist(t, g, p, 3)
	if res.Run.PayloadUnits <= res.Run.Messages {
		t.Fatalf("payload units %d <= messages %d", res.Run.PayloadUnits, res.Run.Messages)
	}
	if res.Run.PayloadUnits < int64(g.NumEdges()) {
		t.Fatalf("payload units %d below m=%d: boundary accounting broken", res.Run.PayloadUnits, g.NumEdges())
	}
}

func TestDistributedLogNSlackRobust(t *testing.T) {
	// Model assumption (i): nodes know only an O(1)-approximate upper bound
	// on log n. With slack the protocol must still emit a valid spanner —
	// just a denser one (thresholds grow with the overestimate).
	g := gen.ConnectedGNP(150, 0.1, xrand.New(12))
	p := Default(1, 2)
	exact, err := BuildDistributed(g, p, 5, local.Config{})
	if err != nil {
		t.Fatal(err)
	}
	slacked, err := BuildDistributed(g, p, 5, local.Config{LogNSlack: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*DistResult{"exact": exact, "slack": slacked} {
		if _, _, err := graph.VerifySpanner(g, res.S, res.StretchBound()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if len(slacked.S) < len(exact.S) {
		t.Fatalf("overestimating n should not shrink the spanner: %d < %d",
			len(slacked.S), len(exact.S))
	}
}

func TestDistributedPropertyRandomGraphs(t *testing.T) {
	// Protocol-level property test: random graphs, seeds, and parameters
	// must always yield a valid spanner; the state machine's internal
	// assertions (convergecast completion, boundary consistency, fail-safe
	// postconditions) panic on any violation.
	check := func(seed uint64, nRaw, kRaw, hRaw uint8) bool {
		n := int(nRaw%50) + 4
		k := int(kRaw%2) + 1
		h := int(hRaw%2) + 1
		rng := xrand.New(seed)
		g := gen.Connectify(gen.GNP(n, 0.2, rng), rng)
		res, err := BuildDistributed(g, Default(k, h), seed^0x5A5A, local.Config{})
		if err != nil {
			t.Log(err)
			return false
		}
		_, _, err = graph.VerifySpanner(g, res.S, res.StretchBound())
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
