package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// ParallelFor runs fn(0), ..., fn(n-1) over a worker pool. The workers knob
// follows the facade's concurrency convention: 0 runs inline sequentially,
// w > 0 uses w workers, w < 0 uses GOMAXPROCS workers. Results must be
// written to caller-owned, index-disjoint slots, which keeps the output
// deterministic regardless of scheduling.
//
// Cancellation is checked before every item, so a cancelled sweep stops
// within one item's work and returns ctx.Err(). When several items fail, the
// error of the lowest-indexed failing item that ran is returned (the
// sequential path's choice; under concurrency a later item may fail first,
// but the sweep keeps the smallest index observed).
func ParallelFor(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		stop      atomic.Bool
		completed atomic.Int64
		mu        sync.Mutex
		firstIdx  = n
		firstErr  error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					stop.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Cancellation only surfaces when it actually skipped work: a sweep
	// whose every item completed returns nil even if the context expired as
	// it finished, matching the sequential path.
	if int(completed.Load()) == n {
		return nil
	}
	return ctx.Err()
}

// edgePool is the distributed root's view of X_v: the cluster's unexplored
// boundary edges, supporting O(1) uniform sampling (with replacement) and
// O(1) removal. Unlike the centralized neighborhood structure, the root does
// NOT know which cluster an edge leads to — that is the whole point of the
// algorithm — so removal happens by explicit edge sets carried in query
// replies.
type edgePool struct {
	list []graph.EdgeID
	pos  map[graph.EdgeID]int
}

// newEdgePool builds a pool over the given edges. The input is copied and
// sorted so pool evolution is deterministic.
func newEdgePool(edges []graph.EdgeID) *edgePool {
	p := &edgePool{
		list: append([]graph.EdgeID(nil), edges...),
		pos:  make(map[graph.EdgeID]int, len(edges)),
	}
	sort.Slice(p.list, func(i, j int) bool { return p.list[i] < p.list[j] })
	for i, e := range p.list {
		p.pos[e] = i
	}
	return p
}

func (p *edgePool) empty() bool { return len(p.list) == 0 }
func (p *edgePool) size() int   { return len(p.list) }

// contains reports whether e is still unexplored.
func (p *edgePool) contains(e graph.EdgeID) bool {
	_, ok := p.pos[e]
	return ok
}

// sample returns a uniform unexplored edge; ok is false on an empty pool.
func (p *edgePool) sample(rng *xrand.RNG) (graph.EdgeID, bool) {
	if len(p.list) == 0 {
		return 0, false
	}
	return p.list[rng.Intn(len(p.list))], true
}

// remove deletes e if present.
func (p *edgePool) remove(e graph.EdgeID) {
	i, ok := p.pos[e]
	if !ok {
		return
	}
	last := len(p.list) - 1
	moved := p.list[last]
	p.list[i] = moved
	p.pos[moved] = i
	p.list = p.list[:last]
	delete(p.pos, e)
}

// removeAll deletes every listed edge that is present (peeling a replying
// cluster's boundary out of X_v).
func (p *edgePool) removeAll(edges []graph.EdgeID) {
	for _, e := range edges {
		p.remove(e)
	}
}

// snapshot returns the remaining edges in sorted order (used by the
// fail-safe broadcast, whose content must be deterministic).
func (p *edgePool) snapshot() []graph.EdgeID {
	out := append([]graph.EdgeID(nil), p.list...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
