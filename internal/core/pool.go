package core

import (
	"context"
	"sort"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// ParallelFor runs fn(0), ..., fn(n-1) over a worker pool. The workers knob
// follows the facade's concurrency convention: 0 runs inline sequentially,
// w > 0 uses w workers, w < 0 uses GOMAXPROCS workers. Results must be
// written to caller-owned, index-disjoint slots, which keeps the output
// deterministic regardless of scheduling.
//
// It delegates to the shared scheduler in internal/sched — the same package
// that backs the LOCAL engine's worker pool — and is re-exported here so the
// facade's existing call sites keep compiling. See sched.ParallelFor for the
// cancellation and first-error semantics.
func ParallelFor(ctx context.Context, n, workers int, fn func(i int) error) error {
	return sched.ParallelFor(ctx, n, workers, fn)
}

// edgePool is the distributed root's view of X_v: the cluster's unexplored
// boundary edges, supporting O(1) uniform sampling (with replacement) and
// O(1) removal. Unlike the centralized neighborhood structure, the root does
// NOT know which cluster an edge leads to — that is the whole point of the
// algorithm — so removal happens by explicit edge sets carried in query
// replies.
type edgePool struct {
	list []graph.EdgeID
	pos  map[graph.EdgeID]int
}

// newEdgePool builds a pool over the given edges. The input is copied and
// sorted so pool evolution is deterministic.
func newEdgePool(edges []graph.EdgeID) *edgePool {
	p := &edgePool{
		list: append([]graph.EdgeID(nil), edges...),
		pos:  make(map[graph.EdgeID]int, len(edges)),
	}
	sort.Slice(p.list, func(i, j int) bool { return p.list[i] < p.list[j] })
	for i, e := range p.list {
		p.pos[e] = i
	}
	return p
}

func (p *edgePool) empty() bool { return len(p.list) == 0 }
func (p *edgePool) size() int   { return len(p.list) }

// contains reports whether e is still unexplored.
func (p *edgePool) contains(e graph.EdgeID) bool {
	_, ok := p.pos[e]
	return ok
}

// sample returns a uniform unexplored edge; ok is false on an empty pool.
func (p *edgePool) sample(rng *xrand.RNG) (graph.EdgeID, bool) {
	if len(p.list) == 0 {
		return 0, false
	}
	return p.list[rng.Intn(len(p.list))], true
}

// remove deletes e if present.
func (p *edgePool) remove(e graph.EdgeID) {
	i, ok := p.pos[e]
	if !ok {
		return
	}
	last := len(p.list) - 1
	moved := p.list[last]
	p.list[i] = moved
	p.pos[moved] = i
	p.list = p.list[:last]
	delete(p.pos, e)
}

// removeAll deletes every listed edge that is present (peeling a replying
// cluster's boundary out of X_v).
func (p *edgePool) removeAll(edges []graph.EdgeID) {
	for _, e := range edges {
		p.remove(e)
	}
}

// snapshot returns the remaining edges in sorted order (used by the
// fail-safe broadcast, whose content must be deterministic).
func (p *edgePool) snapshot() []graph.EdgeID {
	out := append([]graph.EdgeID(nil), p.list...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
