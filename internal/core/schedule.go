package core

import "fmt"

// The distributed Sampler runs on a global, deterministic round schedule
// computed identically by every node from the public parameters (n, K, H).
// Each level j is a fixed sequence of phases; tree-bound phases (broadcast,
// convergecast, flood) are allotted the worst-case cluster-tree depth
// 3^j − 1 plus one round, so all clusters stay in lockstep regardless of
// their actual shape. Clusters that finished early simply idle through
// their slots — this preserves the paper's O(3^k·h) round bound while the
// message bound benefits from early termination.

type phaseKind int

const (
	phTrialBcast  phaseKind = iota + 1 // root draws samples; list flows down the tree
	phTrialQuery                       // edge owners send QUERY over sampled edges
	phTrialReply                       // query receivers answer with (root, dead?, boundary)
	phTrialConv                        // replies convergecast to the root, which peels and grows F
	phCenterBcast                      // root flips the center coin; flag + probe list flow down
	phProbeSend                        // owners probe queried clusters for center status
	phProbeReply                       // probed nodes answer (root, isCenter)
	phProbeConv                        // probe answers convergecast to the root
	phFSBcast                          // fail-safe: root ships its remaining unexplored edges down
	phFSQuery                          // owners query every remaining edge
	phFSReply                          // receivers answer (root, dead?, isCenter, boundary)
	phFSConv                           // answers convergecast; root becomes light
	phDecideBcast                      // root's verdict (center/join/dead) flows down
	phJoinSend                         // the join-edge owner ships the joiner's boundary across
	phJoinConv                         // accepted joins convergecast to the center root
	phNewCluster                       // new-cluster flood: root ID, boundary, re-rooted tree
	phFlushBcast                       // final level: last F additions flow down
	phFlushAccept                      // owners notify far endpoints of spanner membership
)

var phaseNames = map[phaseKind]string{
	phTrialBcast: "trial-bcast", phTrialQuery: "trial-query", phTrialReply: "trial-reply",
	phTrialConv: "trial-conv", phCenterBcast: "center-bcast", phProbeSend: "probe-send",
	phProbeReply: "probe-reply", phProbeConv: "probe-conv", phFSBcast: "fs-bcast",
	phFSQuery: "fs-query", phFSReply: "fs-reply", phFSConv: "fs-conv",
	phDecideBcast: "decide-bcast", phJoinSend: "join-send", phJoinConv: "join-conv",
	phNewCluster: "new-cluster", phFlushBcast: "flush-bcast", phFlushAccept: "flush-accept",
}

func (k phaseKind) String() string { return phaseNames[k] }

// phase is one schedule entry. Rounds [start, start+dur) belong to it.
type phase struct {
	kind  phaseKind
	level int
	trial int // trial index for trial phases, -1 otherwise
	start int
	dur   int
}

func (p phase) String() string {
	return fmt.Sprintf("L%d %s t%d [%d,%d)", p.level, p.kind, p.trial, p.start, p.start+p.dur)
}

// schedule is the shared immutable phase table.
type schedule struct {
	phases []phase
	total  int // total rounds
}

// buildSchedule lays out the global phase table for the given parameters.
func buildSchedule(p Params) *schedule {
	s := &schedule{}
	add := func(kind phaseKind, level, trial, dur int) {
		s.phases = append(s.phases, phase{kind: kind, level: level, trial: trial, start: s.total, dur: dur})
		s.total += dur
	}
	for j := 0; j <= p.K; j++ {
		d := pow3(j) - 1 // worst-case tree depth at this level (Lemma 8)
		tree := d + 1    // rounds for a broadcast or convergecast session
		for t := 0; t < 2*p.H; t++ {
			add(phTrialBcast, j, t, tree)
			add(phTrialQuery, j, t, 1)
			add(phTrialReply, j, t, 1)
			add(phTrialConv, j, t, tree)
		}
		if j < p.K {
			add(phCenterBcast, j, -1, tree)
			add(phProbeSend, j, -1, 1)
			add(phProbeReply, j, -1, 1)
			add(phProbeConv, j, -1, tree)
			add(phFSBcast, j, -1, tree)
			add(phFSQuery, j, -1, 1)
			add(phFSReply, j, -1, 1)
			add(phFSConv, j, -1, tree)
			add(phDecideBcast, j, -1, tree)
			add(phJoinSend, j, -1, 1)
			add(phJoinConv, j, -1, tree)
			add(phNewCluster, j, -1, pow3(j+1)) // depth 3^{j+1}-1, plus one
		} else {
			add(phFSBcast, j, -1, tree)
			add(phFSQuery, j, -1, 1)
			add(phFSReply, j, -1, 1)
			add(phFSConv, j, -1, tree)
			add(phFlushBcast, j, -1, tree)
			add(phFlushAccept, j, -1, 1)
		}
	}
	return s
}

// at returns the phase containing the given round; idxHint is the caller's
// last known index (phases only move forward).
func (s *schedule) at(round, idxHint int) (int, phase) {
	i := idxHint
	for i < len(s.phases) && round >= s.phases[i].start+s.phases[i].dur {
		i++
	}
	if i >= len(s.phases) {
		panic(fmt.Sprintf("core: round %d beyond schedule end %d", round, s.total))
	}
	if round < s.phases[i].start {
		panic(fmt.Sprintf("core: round %d precedes phase %v (hint %d)", round, s.phases[i], idxHint))
	}
	return i, s.phases[i]
}
