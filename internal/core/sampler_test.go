package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Default(1, 1), true},
		{Default(3, 8), true},
		{Paper(2, 4, 0.5), true},
		{Params{K: 0, H: 1, C: 1}, false},
		{Params{K: 1, H: 0, C: 1}, false},
		{Params{K: 1, H: 1, C: 0}, false},
		{Params{K: 1, H: 1, C: 1, CSample: -1}, false},
		{Params{K: 1, H: 1, C: 1, ThresholdLogPow: -1}, false},
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestParamsDerived(t *testing.T) {
	p := Default(1, 2)
	if p.Delta() != 1.0/3 {
		t.Fatalf("delta = %v", p.Delta())
	}
	if p.Epsilon() != 0.5 {
		t.Fatalf("epsilon = %v", p.Epsilon())
	}
	if p.StretchBound() != 5 {
		t.Fatalf("stretch bound = %d", p.StretchBound())
	}
	p2 := Default(2, 4)
	if p2.Delta() != 1.0/7 {
		t.Fatalf("delta(k=2) = %v", p2.Delta())
	}
	if p2.StretchBound() != 17 {
		t.Fatalf("stretch bound(k=2) = %d", p2.StretchBound())
	}
	if got := p2.PredictedSizeExponent(); math.Abs(got-(1+1.0/7)) > 1e-12 {
		t.Fatalf("size exponent = %v", got)
	}
	if got := p2.PredictedMessageExponent(); math.Abs(got-(1+1.0/7+0.25)) > 1e-12 {
		t.Fatalf("msg exponent = %v", got)
	}
}

func TestCenterProbMonotone(t *testing.T) {
	p := Default(3, 4)
	n := 10000
	prev := 1.0
	for j := 0; j < 3; j++ {
		pj := p.centerProb(j, n)
		if pj <= 0 || pj >= 1 {
			t.Fatalf("p_%d = %v out of (0,1)", j, pj)
		}
		if pj >= prev {
			t.Fatalf("p_%d = %v not decreasing", j, pj)
		}
		prev = pj
	}
}

func TestThresholdGrowsWithLevel(t *testing.T) {
	p := Default(3, 4)
	n := 10000
	prev := 0
	for j := 0; j <= 3; j++ {
		th := p.threshold(j, n)
		if th <= prev {
			t.Fatalf("threshold_%d = %d not increasing (prev %d)", j, th, prev)
		}
		prev = th
	}
}

func buildOn(t *testing.T, g *graph.Graph, p Params, seed uint64) *Result {
	t.Helper()
	res, err := Build(g, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func verify(t *testing.T, g *graph.Graph, res *Result) graph.StretchReport {
	t.Helper()
	if err := res.ValidateHierarchy(g); err != nil {
		t.Fatalf("hierarchy invalid: %v", err)
	}
	_, rep, err := graph.VerifySpanner(g, res.S, res.StretchBound())
	if err != nil {
		t.Fatalf("spanner invalid: %v", err)
	}
	return rep
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, Default(1, 1), 1); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Build(gen.Cycle(5), Params{}, 1); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestBuildOnTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Path(2), gen.Cycle(3), gen.Star(5), gen.Complete(4)} {
		res := buildOn(t, g, Default(1, 1), 7)
		verify(t, g, res)
	}
}

func TestBuildSingleNodeAndEmpty(t *testing.T) {
	res := buildOn(t, graph.New(1), Default(1, 2), 1)
	if len(res.S) != 0 {
		t.Fatal("single node produced edges")
	}
	res = buildOn(t, graph.New(0), Default(1, 2), 1)
	if len(res.S) != 0 {
		t.Fatal("empty graph produced edges")
	}
}

func TestBuildGNPAllKs(t *testing.T) {
	g := gen.ConnectedGNP(400, 0.08, xrand.New(3))
	for k := 1; k <= 3; k++ {
		for _, h := range []int{1, 3} {
			res := buildOn(t, g, Default(k, h), uint64(10*k+h))
			rep := verify(t, g, res)
			if rep.MaxEdgeStretch > res.StretchBound() {
				t.Fatalf("k=%d h=%d stretch %d > bound %d", k, h, rep.MaxEdgeStretch, res.StretchBound())
			}
			if len(res.Levels) != k+1 {
				t.Fatalf("k=%d: %d levels", k, len(res.Levels))
			}
		}
	}
}

func TestBuildStructuredGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":      gen.Grid(12, 12),
		"torus":     gen.Torus(8, 8),
		"hypercube": gen.Hypercube(7),
		"barbell":   gen.Barbell(20, 6),
		"complete":  gen.Complete(60),
		"pa":        gen.PreferentialAttachment(300, 3, xrand.New(9)),
	}
	for name, g := range graphs {
		res := buildOn(t, g, Default(2, 2), 11)
		rep := verify(t, g, res)
		if rep.Edges > g.NumEdges() {
			t.Fatalf("%s: spanner larger than graph", name)
		}
	}
}

func TestSpannerSparsifiesDenseGraph(t *testing.T) {
	// On a complete graph the spanner must be much smaller than m.
	g := gen.Complete(400) // m = 79800
	res := buildOn(t, g, Default(2, 2), 5)
	verify(t, g, res)
	if len(res.S)*4 > g.NumEdges() {
		t.Fatalf("spanner has %d of %d edges; expected strong sparsification", len(res.S), g.NumEdges())
	}
}

func TestDeterminism(t *testing.T) {
	g := gen.ConnectedGNP(200, 0.05, xrand.New(1))
	a := buildOn(t, g, Default(2, 3), 42)
	b := buildOn(t, g, Default(2, 3), 42)
	if len(a.S) != len(b.S) {
		t.Fatalf("sizes differ: %d vs %d", len(a.S), len(b.S))
	}
	for e := range a.S {
		if !b.S[e] {
			t.Fatal("edge sets differ for identical seeds")
		}
	}
	c := buildOn(t, g, Default(2, 3), 43)
	diff := 0
	for e := range a.S {
		if !c.S[e] {
			diff++
		}
	}
	if diff == 0 && len(a.S) == len(c.S) {
		t.Log("warning: different seeds produced identical spanners (possible but unlikely)")
	}
}

func TestHierarchyPopulationShrinks(t *testing.T) {
	g := gen.ConnectedGNP(1000, 0.05, xrand.New(2))
	res := buildOn(t, g, Default(2, 2), 3)
	for j := 1; j < len(res.Levels); j++ {
		if res.Levels[j].G.NumNodes() >= res.Levels[j-1].G.NumNodes() {
			t.Fatalf("level %d did not shrink: %d -> %d", j,
				res.Levels[j-1].G.NumNodes(), res.Levels[j].G.NumNodes())
		}
	}
}

func TestLemma4Concentration(t *testing.T) {
	// n_j should stay within [n·p̂_{j-1}/2, 3n·p̂_{j-1}/2] whp. We allow a
	// slightly wider factor-2 margin since our n is modest.
	g := gen.ConnectedGNP(3000, 0.02, xrand.New(4))
	p := Default(2, 2)
	res := buildOn(t, g, p, 9)
	n := float64(g.NumNodes())
	for j := 1; j < len(res.Levels); j++ {
		phat := 1.0
		for i := 0; i < j; i++ {
			phat *= p.centerProb(i, g.NumNodes())
		}
		nj := float64(res.Levels[j].G.NumNodes())
		lo, hi := n*phat/4, n*phat*3
		if nj < lo || nj > hi {
			t.Fatalf("level %d population %v outside [%v, %v] (Lemma 4 band x2)", j, nj, lo, hi)
		}
	}
}

func TestLightHeavyDichotomy(t *testing.T) {
	g := gen.ConnectedGNP(500, 0.1, xrand.New(5))
	res := buildOn(t, g, Default(2, 3), 6)
	for _, lvl := range res.Levels {
		for v := range lvl.Light {
			if lvl.Light[v] && lvl.Heavy[v] {
				t.Fatalf("level %d node %d both light and heavy", lvl.J, v)
			}
		}
	}
	// Final level: all light (guaranteed by fail-safe, Lemma 6 whp).
	last := res.Levels[len(res.Levels)-1]
	for v, light := range last.Light {
		if !light {
			t.Fatalf("final-level node %d not light", v)
		}
	}
}

func TestNoFailSafeStillValidSubsetProperty(t *testing.T) {
	// Without the fail-safe the stretch bound holds only whp; the spanner
	// must still be a subgraph and the hierarchy must still be disjoint.
	g := gen.ConnectedGNP(300, 0.06, xrand.New(8))
	p := Default(2, 2)
	p.FailSafe = false
	res := buildOn(t, g, p, 2)
	for e := range res.S {
		if !g.HasEdgeID(e) {
			t.Fatal("spanner edge outside graph")
		}
	}
	for _, lvl := range res.Levels {
		seen := map[graph.NodeID]bool{}
		for _, ms := range lvl.OrigMembers {
			for _, m := range ms {
				if seen[m] {
					t.Fatal("clusters overlap")
				}
				seen[m] = true
			}
		}
	}
}

func TestMultigraphInputHandled(t *testing.T) {
	// Sampler's key idea is handling multiplicities; feed it a multigraph
	// directly (as would arise mid-hierarchy).
	base := gen.Cycle(30)
	g := gen.Multi(base, func(e graph.Edge) int { return 1 + int(e.ID%5)*10 })
	res := buildOn(t, g, Default(1, 2), 13)
	verify(t, g, res)
	// Spanner should not collect parallel duplicates beyond one per queried
	// neighbor pair... duplicates are possible across levels but the count
	// must stay near the simple edge count, far below the multigraph size.
	if len(res.S) > 3*base.NumEdges() {
		t.Fatalf("spanner kept %d of %d multigraph edges", len(res.S), g.NumEdges())
	}
}

func TestPeelingLimitsSamplesOnSkewedMultiplicities(t *testing.T) {
	// One neighbor owns 99% of the edges. Peeling should still discover the
	// other neighbors quickly; without peeling the skewed neighbor would
	// swallow nearly every sample (the ablation experiment quantifies this).
	g := graph.New(12)
	hub := graph.NodeID(0)
	for i := 0; i < 1000; i++ {
		g.AddEdge(hub, 1) // massive multiplicity toward node 1
	}
	for v := graph.NodeID(2); v < 12; v++ {
		g.AddEdge(hub, v)
	}
	res := buildOn(t, g, Default(1, 4), 3)
	verify(t, g, res)
	// Node 0 must have discovered all 11 distinct neighbors (it is light at
	// some level or the fail-safe fired; either way F covers them).
	found := map[graph.NodeID]bool{}
	for e := range res.S {
		ge, _ := g.EdgeByID(e)
		if ge.U == hub || ge.V == hub {
			found[ge.Other(hub)] = true
		}
	}
	if len(found) != 11 {
		t.Fatalf("hub discovered %d of 11 neighbors", len(found))
	}
}

func TestTraceRenders(t *testing.T) {
	g := gen.Grid(4, 4)
	res := buildOn(t, g, Default(1, 1), 1)
	s := res.Trace()
	if len(s) == 0 {
		t.Fatal("empty trace")
	}
}

// Property test: for random connected graphs and parameter draws, the
// spanner is always valid with bounded stretch (fail-safe on).
func TestSpannerAlwaysValidProperty(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw, hRaw uint8) bool {
		n := int(nRaw%60) + 5
		k := int(kRaw%3) + 1
		h := int(hRaw%3) + 1
		rng := xrand.New(seed)
		g := gen.Connectify(gen.GNP(n, 0.15, rng), rng)
		res, err := Build(g, Default(k, h), seed^0xABCD)
		if err != nil {
			return false
		}
		if err := res.ValidateHierarchy(g); err != nil {
			t.Logf("hierarchy: %v", err)
			return false
		}
		_, _, err = graph.VerifySpanner(g, res.S, res.StretchBound())
		if err != nil {
			t.Logf("spanner: %v", err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildK2(b *testing.B) {
	g := gen.ConnectedGNP(2000, 0.05, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Default(2, 3), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
