// Package algorithms provides the t-round LOCAL algorithms used as
// simulation targets for the paper's message-reduction schemes (Section 6):
// t-hop maximum ID, Luby's maximal independent set, randomized
// (Δ+1)-coloring, and BFS layering.
//
// Every algorithm conforms to the contract the schemes need: it runs for a
// fixed, publicly known round budget T (halting exactly at round T), and its
// behaviour depends only on the node's identity, its incident edge IDs, its
// private random stream, and its inbox — precisely the initial knowledge
// whose t-ball the simulation collects and replays.
package algorithms

import (
	"math"

	"repro/internal/graph"
	"repro/internal/local"
)

// Spec packages an algorithm for the simulation engine: a round budget, a
// protocol factory, and an output extractor.
type Spec struct {
	// Name identifies the algorithm in experiment tables.
	Name string
	// T is the fixed round budget; instances halt at round T.
	T int
	// New builds the protocol instance for a node. The simulation replays
	// collected balls on concurrent workers, so New (and Output) may be
	// invoked from multiple goroutines at once and must not mutate state
	// shared across calls.
	New func(v graph.NodeID) local.Protocol
	// Output extracts a node's final output from its protocol instance. The
	// returned value must be comparable with == for fidelity checks.
	Output func(p local.Protocol) any
}

// ------------------------------------------------------------- max ID ---

// MaxIDNode floods the largest identity seen; after T rounds Best is the
// maximum ID in the node's T-ball. Its exact output oracle (a BFS) makes it
// the canonical fidelity check for the simulation engine.
type MaxIDNode struct {
	T    int
	Best graph.NodeID

	// boxed caches Best converted to the payload interface, re-boxed only
	// when Best changes: Best stabilizes within a few rounds, after which
	// the node's per-round sends allocate nothing.
	boxed any
}

var _ local.Protocol = (*MaxIDNode)(nil)

// Step implements local.Protocol.
func (p *MaxIDNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		p.Best = env.ID()
	}
	for _, m := range inbox {
		if v := m.Payload.(graph.NodeID); v > p.Best {
			p.Best = v
		}
	}
	if round == p.T {
		env.Halt()
		return
	}
	if p.boxed == nil || p.boxed.(graph.NodeID) != p.Best {
		p.boxed = p.Best
	}
	for _, pt := range env.Ports() {
		env.Send(pt.Edge, p.boxed)
	}
}

// MaxID returns the t-hop maximum-ID spec.
func MaxID(t int) Spec {
	return Spec{
		Name:   "maxid",
		T:      t,
		New:    func(graph.NodeID) local.Protocol { return &MaxIDNode{T: t} },
		Output: func(p local.Protocol) any { return p.(*MaxIDNode).Best },
	}
}

// ----------------------------------------------------------------- MIS ---

// MISState is a node's final MIS status.
type MISState int

const (
	// MISUndecided means the round budget expired before the node settled
	// (happens with probability 1/poly(n) for the default budget).
	MISUndecided MISState = iota
	// MISIn means the node joined the independent set.
	MISIn
	// MISOut means a neighbor joined.
	MISOut
)

func (s MISState) String() string {
	return [...]string{"undecided", "in", "out"}[s]
}

// MISNode runs Luby's algorithm: each 2-round iteration, undecided nodes
// draw a random priority; local maxima join the set and knock their
// neighbors out.
type MISNode struct {
	T     int
	State MISState

	prio   uint64
	active bool // drew a priority this iteration
}

var _ local.Protocol = (*MISNode)(nil)

type misPrio struct {
	P  uint64
	ID graph.NodeID
}
type misJoined struct{}

// Step implements local.Protocol. Inbox ingestion precedes the budget check
// so that messages landing exactly at round T still update the final state.
func (p *MISNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round%2 == 0 {
		// Round A: ingest join announcements, then draw and share priority.
		for _, m := range inbox {
			if _, ok := m.Payload.(misJoined); ok && p.State == MISUndecided {
				p.State = MISOut
			}
		}
		if round >= p.T {
			env.Halt()
			return
		}
		p.active = false
		if p.State != MISUndecided {
			return
		}
		p.prio = env.Rand().Uint64()
		p.active = true
		for _, pt := range env.Ports() {
			env.Send(pt.Edge, misPrio{P: p.prio, ID: env.ID()})
		}
		return
	}
	// Round B: local maxima join.
	if p.active {
		win := true
		me := misPrio{P: p.prio, ID: env.ID()}
		for _, m := range inbox {
			if other, ok := m.Payload.(misPrio); ok && misLess(me, other) {
				win = false
			}
		}
		if win {
			p.State = MISIn
			if round < p.T {
				for _, pt := range env.Ports() {
					env.Send(pt.Edge, misJoined{})
				}
			}
		}
	}
	if round >= p.T {
		env.Halt()
	}
}

// misLess orders priorities lexicographically by (P, ID); IDs are unique so
// ties cannot deadlock.
func misLess(a, b misPrio) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	return a.ID < b.ID
}

// MISRounds returns the default budget: c·log2(n) iterations of 2 rounds.
func MISRounds(n int) int {
	return 2 * (4*int(math.Ceil(math.Log2(math.Max(2, float64(n))))) + 2)
}

// MIS returns the Luby MIS spec with round budget t (use MISRounds for the
// default whp-termination budget).
func MIS(t int) Spec {
	return Spec{
		Name:   "mis",
		T:      t,
		New:    func(graph.NodeID) local.Protocol { return &MISNode{T: t} },
		Output: func(p local.Protocol) any { return p.(*MISNode).State },
	}
}

// ------------------------------------------------------------ coloring ---

// ColorNode runs randomized (Δ+1)-coloring: each 2-round iteration an
// uncolored node proposes a random color from its remaining palette; the
// largest-ID proposer of each color in a neighborhood keeps it.
type ColorNode struct {
	T     int
	Color int // 0 = undecided; final colors are 1..deg+1

	proposal int
	taken    map[int]bool
}

var _ local.Protocol = (*ColorNode)(nil)

type colorProp struct {
	C  int
	ID graph.NodeID
}
type colorFinal struct{ C int }

// Step implements local.Protocol. Inbox ingestion precedes the budget check
// so that messages landing exactly at round T still update the final state.
func (p *ColorNode) Step(env *local.Env, round int, inbox []local.Message) {
	if p.taken == nil {
		p.taken = make(map[int]bool)
	}
	if round%2 == 0 {
		// Round A: ingest finalized neighbor colors, then propose.
		for _, m := range inbox {
			if f, ok := m.Payload.(colorFinal); ok {
				p.taken[f.C] = true
			}
		}
		if round >= p.T {
			env.Halt()
			return
		}
		p.proposal = 0
		if p.Color != 0 {
			return
		}
		palette := make([]int, 0, env.Degree()+1)
		for c := 1; c <= env.Degree()+1; c++ {
			if !p.taken[c] {
				palette = append(palette, c)
			}
		}
		if len(palette) == 0 {
			// Cannot happen: at most deg neighbors can finalize.
			panic("algorithms: empty palette")
		}
		p.proposal = palette[env.Rand().Intn(len(palette))]
		for _, pt := range env.Ports() {
			env.Send(pt.Edge, colorProp{C: p.proposal, ID: env.ID()})
		}
		return
	}
	// Round B: keep the proposal if every same-color proposer has smaller ID.
	if p.proposal != 0 {
		win := true
		for _, m := range inbox {
			if prop, ok := m.Payload.(colorProp); ok && prop.C == p.proposal && prop.ID > env.ID() {
				win = false
			}
		}
		if win {
			p.Color = p.proposal
			if round < p.T {
				for _, pt := range env.Ports() {
					env.Send(pt.Edge, colorFinal{C: p.Color})
				}
			}
		}
	}
	if round >= p.T {
		env.Halt()
	}
}

// ColoringRounds returns the default whp budget, like MISRounds.
func ColoringRounds(n int) int { return MISRounds(n) }

// Coloring returns the randomized (Δ+1)-coloring spec with budget t.
func Coloring(t int) Spec {
	return Spec{
		Name:   "coloring",
		T:      t,
		New:    func(graph.NodeID) local.Protocol { return &ColorNode{T: t} },
		Output: func(p local.Protocol) any { return p.(*ColorNode).Color },
	}
}

// ---------------------------------------------------------- BFS layers ---

// Unreached is the BFS output for nodes farther than T from the source.
const Unreached = -1

// BFSNode computes the node's hop distance from the source (the node with
// ID == Source) up to T.
type BFSNode struct {
	T      int
	Source graph.NodeID
	Dist   int

	started bool
}

var _ local.Protocol = (*BFSNode)(nil)

type bfsWave struct{ D int }

// Step implements local.Protocol. Inbox ingestion precedes the budget check
// so that a wave landing exactly at round T still sets the distance.
func (p *BFSNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		p.Dist = Unreached
		if env.ID() == p.Source {
			p.Dist = 0
		}
	}
	for _, m := range inbox {
		if w, ok := m.Payload.(bfsWave); ok && p.Dist == Unreached {
			p.Dist = w.D + 1
		}
	}
	if round >= p.T {
		env.Halt()
		return
	}
	if p.Dist != Unreached && !p.started {
		p.started = true
		for _, pt := range env.Ports() {
			env.Send(pt.Edge, bfsWave{D: p.Dist})
		}
	}
}

// BFS returns the BFS-layering spec from the given source with budget t.
func BFS(source graph.NodeID, t int) Spec {
	return Spec{
		Name:   "bfs",
		T:      t,
		New:    func(graph.NodeID) local.Protocol { return &BFSNode{T: t, Source: source} },
		Output: func(p local.Protocol) any { return p.(*BFSNode).Dist },
	}
}
