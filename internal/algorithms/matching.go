package algorithms

import (
	"repro/internal/graph"
	"repro/internal/local"
)

// MatchNode computes a maximal matching in the Israeli–Itai style: each
// 3-round iteration, every unmatched node flips a fair coin to act as either
// proposer or acceptor. Proposers propose over one random incident edge not
// known to lead to a matched node; acceptors accept the smallest-edge-ID
// proposal. Because the roles are exclusive within an iteration, a node can
// never match on two edges at once. Newly matched nodes announce "taken" to
// all neighbors at the start of the next iteration and fall silent.
//
// The Matched output is the edge ID the node matched over, or NoMatch for
// exposed nodes.
type MatchNode struct {
	T       int
	Matched graph.EdgeID

	taken     map[graph.EdgeID]bool
	proposer  bool
	proposed  graph.EdgeID
	announced bool
}

// NoMatch is the output of nodes the matching left exposed.
const NoMatch = graph.EdgeID(-1)

var _ local.Protocol = (*MatchNode)(nil)

type matchPropose struct{}
type matchAccept struct{}
type matchTaken struct{}

// Step implements local.Protocol. Rounds cycle through propose (0 mod 3),
// accept (1 mod 3), and settle (2 mod 3). Taken-announcements are ingested
// in every round: they are sent at propose rounds and so arrive at accept
// rounds.
func (p *MatchNode) Step(env *local.Env, round int, inbox []local.Message) {
	if round == 0 {
		p.Matched = NoMatch
		p.taken = make(map[graph.EdgeID]bool)
	}
	for _, m := range inbox {
		if _, ok := m.Payload.(matchTaken); ok {
			p.taken[m.Edge] = true
		}
	}
	switch round % 3 {
	case 0: // announce own match; propose
		if round >= p.T {
			env.Halt()
			return
		}
		if p.Matched != NoMatch {
			if !p.announced {
				p.announced = true
				for _, pt := range env.Ports() {
					env.Send(pt.Edge, matchTaken{})
				}
			}
			return
		}
		p.proposer = false
		candidates := p.openEdges(env)
		if len(candidates) == 0 {
			return // exposed: every neighbor is matched
		}
		if env.Rand().Bool() {
			p.proposer = true
			p.proposed = candidates[env.Rand().Intn(len(candidates))]
			env.Send(p.proposed, matchPropose{})
		}
	case 1: // acceptors take the best proposal
		if p.Matched != NoMatch || p.proposer {
			if round >= p.T {
				env.Halt()
			}
			return
		}
		best := NoMatch
		for _, m := range inbox {
			if _, ok := m.Payload.(matchPropose); ok {
				if best == NoMatch || m.Edge < best {
					best = m.Edge
				}
			}
		}
		if best != NoMatch {
			p.Matched = best
			env.Send(best, matchAccept{})
		}
		if round >= p.T {
			env.Halt()
		}
	case 2: // proposers learn their fate
		if p.proposer && p.Matched == NoMatch {
			for _, m := range inbox {
				if _, ok := m.Payload.(matchAccept); ok && m.Edge == p.proposed {
					p.Matched = p.proposed
				}
			}
		}
		p.proposer = false
		if round >= p.T {
			env.Halt()
		}
	}
}

// openEdges lists incident edges not known to lead to a matched node.
func (p *MatchNode) openEdges(env *local.Env) []graph.EdgeID {
	var out []graph.EdgeID
	for _, pt := range env.Ports() {
		if !p.taken[pt.Edge] {
			out = append(out, pt.Edge)
		}
	}
	return out
}

// MatchingRounds returns the default whp budget (a multiple of 3 with room
// for the trailing announcement round).
func MatchingRounds(n int) int {
	iters := 6*ceilLog2(n) + 6
	return 3 * iters
}

func ceilLog2(n int) int {
	b, v := 0, 1
	for v < n {
		v <<= 1
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}

// Matching returns the maximal-matching spec with budget t.
func Matching(t int) Spec {
	return Spec{
		Name:   "matching",
		T:      t,
		New:    func(graph.NodeID) local.Protocol { return &MatchNode{T: t} },
		Output: func(p local.Protocol) any { return p.(*MatchNode).Matched },
	}
}
