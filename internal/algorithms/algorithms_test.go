package algorithms

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

// runSpec executes a spec directly on g and returns per-node outputs.
func runSpec(t *testing.T, g *graph.Graph, spec Spec, seed uint64) []any {
	t.Helper()
	protos := make([]local.Protocol, g.NumNodes())
	res, err := local.Run(g, func(v graph.NodeID) local.Protocol {
		protos[v] = spec.New(v)
		return protos[v]
	}, local.Config{Seed: seed, MaxRounds: spec.T + 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("%s did not halt in %d rounds", spec.Name, spec.T)
	}
	out := make([]any, len(protos))
	for v, p := range protos {
		out[v] = spec.Output(p)
	}
	return out
}

func TestMaxIDMatchesOracle(t *testing.T) {
	for _, tRounds := range []int{0, 1, 3, 7} {
		g := gen.ConnectedGNP(120, 0.03, xrand.New(1))
		out := runSpec(t, g, MaxID(tRounds), 5)
		for v := 0; v < g.NumNodes(); v++ {
			want := graph.NodeID(0)
			for _, u := range g.Ball(graph.NodeID(v), tRounds) {
				if u > want {
					want = u
				}
			}
			if out[v].(graph.NodeID) != want {
				t.Fatalf("t=%d node %d: got %v want %v", tRounds, v, out[v], want)
			}
		}
	}
}

func TestMISValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.ConnectedGNP(200, 0.05, xrand.New(2))},
		{"complete", gen.Complete(50)},
		{"cycle", gen.Cycle(101)},
		{"star", gen.Star(40)},
		{"isolated-ish", gen.Path(2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			out := runSpec(t, g, MIS(MISRounds(g.NumNodes())), 7)
			// All decided (whp with the default budget).
			for v, o := range out {
				if o.(MISState) == MISUndecided {
					t.Fatalf("node %d undecided", v)
				}
			}
			// Independence.
			for _, e := range g.Edges() {
				if out[e.U].(MISState) == MISIn && out[e.V].(MISState) == MISIn {
					t.Fatalf("adjacent nodes %d,%d both in MIS", e.U, e.V)
				}
			}
			// Maximality: every OUT node has an IN neighbor.
			for v, o := range out {
				if o.(MISState) != MISOut {
					continue
				}
				hasIn := false
				for _, u := range g.Neighbors(graph.NodeID(v)) {
					if out[u].(MISState) == MISIn {
						hasIn = true
						break
					}
				}
				if !hasIn {
					t.Fatalf("out-node %d has no in-neighbor", v)
				}
			}
		})
	}
}

func TestMISIsolatedNodeJoins(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	out := runSpec(t, g, MIS(MISRounds(3)), 3)
	if out[2].(MISState) != MISIn {
		t.Fatal("isolated node must join the MIS")
	}
}

func TestColoringValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.ConnectedGNP(150, 0.06, xrand.New(3))},
		{"complete", gen.Complete(40)},
		{"grid", gen.Grid(9, 9)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			out := runSpec(t, g, Coloring(ColoringRounds(g.NumNodes())), 9)
			for v, o := range out {
				c := o.(int)
				if c == 0 {
					t.Fatalf("node %d uncolored", v)
				}
				if c > g.Degree(graph.NodeID(v))+1 {
					t.Fatalf("node %d color %d exceeds deg+1", v, c)
				}
			}
			for _, e := range g.Edges() {
				if out[e.U].(int) == out[e.V].(int) {
					t.Fatalf("edge (%d,%d) monochromatic", e.U, e.V)
				}
			}
		})
	}
}

func TestBFSMatchesOracle(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.04, xrand.New(4))
	for _, tRounds := range []int{0, 2, 5, 50} {
		out := runSpec(t, g, BFS(0, tRounds), 11)
		dist := g.BFS(0, tRounds)
		for v := 0; v < g.NumNodes(); v++ {
			want := dist[v]
			if want == graph.Unreachable {
				want = Unreached
			}
			if out[v].(int) != want {
				t.Fatalf("t=%d node %d: got %v want %v", tRounds, v, out[v], want)
			}
		}
	}
}

func TestSpecsDeterministic(t *testing.T) {
	g := gen.ConnectedGNP(80, 0.08, xrand.New(5))
	for _, spec := range []Spec{MaxID(3), MIS(MISRounds(80)), Coloring(ColoringRounds(80)), BFS(0, 6)} {
		a := runSpec(t, g, spec, 17)
		b := runSpec(t, g, spec, 17)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("%s: node %d differs across identical runs", spec.Name, v)
			}
		}
	}
}

func TestMISRoundsGrowsLogarithmically(t *testing.T) {
	if MISRounds(16) >= MISRounds(1<<20) {
		t.Fatal("MISRounds not increasing")
	}
	if MISRounds(2) < 2 {
		t.Fatal("degenerate budget")
	}
}

func TestMatchingValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.ConnectedGNP(200, 0.05, xrand.New(6))},
		{"complete", gen.Complete(41)}, // odd: one node must stay exposed
		{"cycle", gen.Cycle(50)},
		{"star", gen.Star(30)},
		{"path2", gen.Path(2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			out := runSpec(t, g, Matching(MatchingRounds(g.NumNodes())), 13)
			// Consistency: a matched node's partner reports the same edge,
			// and matched edges are disjoint.
			matchedEdges := map[graph.EdgeID]int{}
			for v, o := range out {
				e := o.(graph.EdgeID)
				if e == NoMatch {
					continue
				}
				ge, ok := g.EdgeByID(e)
				if !ok {
					t.Fatalf("node %d matched on unknown edge %d", v, e)
				}
				if ge.U != graph.NodeID(v) && ge.V != graph.NodeID(v) {
					t.Fatalf("node %d matched on non-incident edge", v)
				}
				if out[ge.Other(graph.NodeID(v))].(graph.EdgeID) != e {
					t.Fatalf("node %d and partner disagree on edge %d", v, e)
				}
				matchedEdges[e]++
			}
			for e, c := range matchedEdges {
				if c != 2 {
					t.Fatalf("edge %d claimed by %d endpoints", e, c)
				}
			}
			// Maximality: every edge has a matched endpoint.
			for _, e := range g.Edges() {
				if out[e.U].(graph.EdgeID) == NoMatch && out[e.V].(graph.EdgeID) == NoMatch {
					t.Fatalf("edge (%d,%d) has both endpoints exposed", e.U, e.V)
				}
			}
		})
	}
}

func TestMatchingFidelityUnderSimulation(t *testing.T) {
	// Matching is the fourth simulation target; its replay must match the
	// direct run exactly (exercised again at scheme level in simulate).
	g := gen.ConnectedGNP(60, 0.1, xrand.New(7))
	spec := Matching(MatchingRounds(60))
	a := runSpec(t, g, spec, 21)
	b := runSpec(t, g, spec, 21)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("matching not deterministic")
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Fatalf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
