package repro

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func TestBuildSpannerDefaults(t *testing.T) {
	g := gen.ConnectedGNP(200, 0.06, xrand.New(1))
	sp, err := BuildSpanner(g, SpannerOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sp.StretchBound != 17 { // defaults K=2
		t.Fatalf("default stretch bound = %d", sp.StretchBound)
	}
	max, err := sp.Verify(g)
	if err != nil {
		t.Fatal(err)
	}
	if max > sp.StretchBound {
		t.Fatalf("stretch %d > bound", max)
	}
	h, err := sp.Subgraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != len(sp.Edges) {
		t.Fatal("subgraph size mismatch")
	}
}

func TestBuildSpannerDistributed(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.08, xrand.New(2))
	sp, err := BuildSpanner(g, SpannerOptions{K: 1, H: 2, Seed: 5, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rounds == 0 || sp.Messages == 0 {
		t.Fatal("distributed build reported no costs")
	}
	if _, err := sp.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateScheme1MatchesDirect(t *testing.T) {
	g := gen.ConnectedGNP(80, 0.08, xrand.New(3))
	spec := MaxID(3)
	const seed = 7
	direct, err := RunDirect(g, spec, seed, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateScheme1(g, spec, 1, seed, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Outputs {
		if direct.Outputs[v] != sim.Outputs[v] {
			t.Fatalf("node %d: %v != %v", v, direct.Outputs[v], sim.Outputs[v])
		}
	}
	if len(sim.Phases) != 2 {
		t.Fatal("phase accounting missing")
	}
}

func TestSimulateScheme2MatchesDirect(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.12, xrand.New(4))
	spec := MIS(MISRounds(60))
	const seed = 9
	direct, err := RunDirect(g, spec, seed, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateScheme2(g, spec, 1, 2, seed, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Outputs {
		if direct.Outputs[v] != sim.Outputs[v] {
			t.Fatalf("node %d: %v != %v", v, direct.Outputs[v], sim.Outputs[v])
		}
	}
}

func TestFacadeValidation(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // multigraph
	if _, err := BuildSpanner(g, SpannerOptions{Distributed: true}); err == nil {
		t.Fatal("distributed build accepted a multigraph")
	}
}

func TestSimulateScheme2ENMatchesDirect(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.12, xrand.New(5))
	spec := MaxID(2)
	const seed = 15
	direct, err := RunDirect(g, spec, seed, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateScheme2EN(g, spec, 1, 2, seed, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Outputs {
		if direct.Outputs[v] != sim.Outputs[v] {
			t.Fatalf("node %d: %v != %v", v, direct.Outputs[v], sim.Outputs[v])
		}
	}
	if len(sim.Phases) != 3 {
		t.Fatal("scheme2 phase accounting")
	}
}
