package repro

import (
	"strconv"
	"sync"

	"repro/internal/stats"
)

// DefaultMetricsTail is the per-phase ring-buffer capacity of a MetricsSink
// constructed with a non-positive tail size: enough recent rounds to see
// what a long schedule was doing when something went wrong, small enough
// that a sink watching a 100·n-round gossip run stays bounded.
const DefaultMetricsTail = 64

// HistBucket is one non-empty cell of a log-bucketed histogram: Count
// rounds whose message count fell in the half-open range [Lo, Hi).
type HistBucket = stats.HistBucket

// RoundSample is one retained round observation in a MetricsSink's tail.
type RoundSample struct {
	Round    int   `json:"round"`
	Messages int64 `json:"messages"`
}

// PhaseMetrics is the bounded per-phase aggregate a MetricsSink maintains.
type PhaseMetrics struct {
	// Name is the phase label ("sampler", "collect", "gossip", ...).
	Name string `json:"name"`
	// Rounds and Messages aggregate every RoundCompleted event observed
	// for the phase (across all runs sharing the sink).
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	// MaxRoundMessages is the largest single-round message count observed.
	MaxRoundMessages int64 `json:"max_round_messages"`
	// Completions counts PhaseCompleted events; BilledRounds and
	// BilledMessages sum their PhaseCost — the amounts the runs actually
	// charged, which for gossip-backed phases can be less than the
	// executed totals above.
	Completions    int   `json:"completions"`
	BilledRounds   int   `json:"billed_rounds"`
	BilledMessages int64 `json:"billed_messages"`
	// Histogram buckets the per-round message counts by powers of two.
	Histogram []HistBucket `json:"histogram,omitempty"`
	// Tail holds the most recent rounds, oldest first, capped at the
	// sink's ring capacity.
	Tail []RoundSample `json:"tail,omitempty"`
}

// MetricsSnapshot is a point-in-time copy of a MetricsSink's state. It
// shares no memory with the sink, so it stays valid while runs continue.
type MetricsSnapshot struct {
	// Phases lists the per-phase aggregates in first-observation order.
	Phases []PhaseMetrics `json:"phases"`
	// TotalRounds and TotalMessages sum the executed per-round stream
	// across all phases.
	TotalRounds   int   `json:"total_rounds"`
	TotalMessages int64 `json:"total_messages"`
}

// MetricsSink is an Observer that reduces the RoundCompleted stream to
// bounded per-phase statistics: totals, a log-bucketed histogram of
// per-round message counts, and a fixed-capacity ring of the most recent
// rounds. Its memory is O(phases · tail) regardless of how many rounds a
// run executes, which makes it the streaming replacement for the per-round
// ledgers that WithRoundLedger(false) drops — a long-schedule run keeps
// full aggregate observability at O(1) memory in executed rounds.
//
// A MetricsSink is safe for concurrent use: the Observer contract delivers
// events from each run's coordinating goroutine, so a sink shared by
// concurrent Runs sees concurrent callbacks, and Snapshot may be called at
// any time from any goroutine while runs are in flight.
type MetricsSink struct {
	mu     sync.Mutex
	tail   int
	phases map[string]*phaseAgg
	order  []string
}

// phaseAgg is one phase's live aggregate.
type phaseAgg struct {
	rounds         int
	messages       int64
	completions    int
	billedRounds   int
	billedMessages int64
	hist           stats.LogHistogram
	ring           *stats.Ring[RoundSample]
}

// NewMetricsSink returns an empty sink whose per-phase ring buffers retain
// the given number of most recent rounds (non-positive means
// DefaultMetricsTail). Register it with WithObserver.
func NewMetricsSink(tail int) *MetricsSink {
	if tail <= 0 {
		tail = DefaultMetricsTail
	}
	return &MetricsSink{tail: tail, phases: make(map[string]*phaseAgg)}
}

// phase returns (creating on first sight) the named phase's aggregate. The
// caller must hold s.mu.
func (s *MetricsSink) phase(name string) *phaseAgg {
	p, ok := s.phases[name]
	if !ok {
		p = &phaseAgg{ring: stats.NewRing[RoundSample](s.tail)}
		s.phases[name] = p
		s.order = append(s.order, name)
	}
	return p
}

// RoundCompleted implements Observer.
func (s *MetricsSink) RoundCompleted(phase string, round int, messages int64) {
	s.mu.Lock()
	p := s.phase(phase)
	p.rounds++
	p.messages += messages
	p.hist.Observe(messages)
	p.ring.Push(RoundSample{Round: round, Messages: messages})
	s.mu.Unlock()
}

// PhaseCompleted implements Observer.
func (s *MetricsSink) PhaseCompleted(cost PhaseCost) {
	s.mu.Lock()
	p := s.phase(cost.Name)
	p.completions++
	p.billedRounds += cost.Rounds
	p.billedMessages += cost.Messages
	s.mu.Unlock()
}

// Snapshot returns a self-contained copy of the sink's current state.
func (s *MetricsSink) Snapshot() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := MetricsSnapshot{Phases: make([]PhaseMetrics, 0, len(s.order))}
	for _, name := range s.order {
		p := s.phases[name]
		snap.Phases = append(snap.Phases, PhaseMetrics{
			Name:             name,
			Rounds:           p.rounds,
			Messages:         p.messages,
			MaxRoundMessages: p.hist.Max(),
			Completions:      p.completions,
			BilledRounds:     p.billedRounds,
			BilledMessages:   p.billedMessages,
			Histogram:        p.hist.Buckets(),
			Tail:             p.ring.Tail(),
		})
		snap.TotalRounds += p.rounds
		snap.TotalMessages += p.messages
	}
	return snap
}

// Reset clears every aggregate, keeping the configured tail capacity.
func (s *MetricsSink) Reset() {
	s.mu.Lock()
	s.phases = make(map[string]*phaseAgg)
	s.order = nil
	s.mu.Unlock()
}

// MetricLabel is one label pair of an exposition sample.
type MetricLabel struct {
	Name, Value string
}

// MetricSample is one sample of a metric family: an optional name suffix
// (histogram series use "_bucket", "_sum", "_count"), its label pairs, and
// the value.
type MetricSample struct {
	Suffix string
	Labels []MetricLabel
	Value  float64
}

// MetricFamily is one Prometheus-style metric family derived from a
// snapshot: a bare name (no namespace prefix), its type and help text, and
// its samples. Encoders prepend their namespace and render the text
// exposition; see internal/serve for the HTTP endpoint that does.
type MetricFamily struct {
	Name    string // e.g. "phase_rounds_total"
	Type    string // "counter", "gauge", or "histogram"
	Help    string
	Samples []MetricSample
}

// MetricFamilies maps the snapshot onto Prometheus-style metric families,
// attaching base labels (e.g. {scheme="scheme1"}) to every sample alongside
// the per-phase "phase" label. The phase label values are the Observer
// phase names (see Observer's documented list: "direct", "sampler",
// "sampler(cached)", "simulate-bs"/"simulate-en", "collect",
// "collect(congest)", "collect(residue)", "gossip(seed)", "gossip",
// "globalcast"). The log-bucketed per-round message histogram becomes a
// cumulative Prometheus histogram: each [lo, hi) power-of-two bucket turns
// into the inclusive upper bound le = hi−1 (message counts are integers),
// with _sum the executed messages and _count the executed rounds.
func (s MetricsSnapshot) MetricFamilies(base ...MetricLabel) []MetricFamily {
	labels := func(phase string) []MetricLabel {
		out := make([]MetricLabel, 0, len(base)+1)
		out = append(out, base...)
		return append(out, MetricLabel{Name: "phase", Value: phase})
	}
	fams := []MetricFamily{
		{Name: "phase_rounds_total", Type: "counter", Help: "LOCAL rounds executed, by pipeline phase."},
		{Name: "phase_messages_total", Type: "counter", Help: "Messages sent, by pipeline phase."},
		{Name: "phase_completions_total", Type: "counter", Help: "Pipeline stage completions, by phase."},
		{Name: "phase_billed_rounds_total", Type: "counter", Help: "Rounds billed by completed stages (gossip-backed phases may bill less than they execute)."},
		{Name: "phase_billed_messages_total", Type: "counter", Help: "Messages billed by completed stages."},
		{Name: "phase_round_messages_max", Type: "gauge", Help: "Largest single-round message count observed, by phase."},
		{Name: "phase_round_messages", Type: "histogram", Help: "Per-round message counts, log-bucketed by powers of two."},
	}
	for _, p := range s.Phases {
		l := labels(p.Name)
		fams[0].Samples = append(fams[0].Samples, MetricSample{Labels: l, Value: float64(p.Rounds)})
		fams[1].Samples = append(fams[1].Samples, MetricSample{Labels: l, Value: float64(p.Messages)})
		fams[2].Samples = append(fams[2].Samples, MetricSample{Labels: l, Value: float64(p.Completions)})
		fams[3].Samples = append(fams[3].Samples, MetricSample{Labels: l, Value: float64(p.BilledRounds)})
		fams[4].Samples = append(fams[4].Samples, MetricSample{Labels: l, Value: float64(p.BilledMessages)})
		fams[5].Samples = append(fams[5].Samples, MetricSample{Labels: l, Value: float64(p.MaxRoundMessages)})
		var cum uint64
		for _, b := range p.Histogram {
			cum += b.Count
			le := append(append([]MetricLabel(nil), l...), MetricLabel{Name: "le", Value: formatLE(b.Hi - 1)})
			fams[6].Samples = append(fams[6].Samples, MetricSample{Suffix: "_bucket", Labels: le, Value: float64(cum)})
		}
		inf := append(append([]MetricLabel(nil), l...), MetricLabel{Name: "le", Value: "+Inf"})
		fams[6].Samples = append(fams[6].Samples,
			MetricSample{Suffix: "_bucket", Labels: inf, Value: float64(p.Rounds)},
			MetricSample{Suffix: "_sum", Labels: l, Value: float64(p.Messages)},
			MetricSample{Suffix: "_count", Labels: l, Value: float64(p.Rounds)})
	}
	return fams
}

// formatLE renders a histogram bucket's inclusive upper bound.
func formatLE(v int64) string {
	return strconv.FormatInt(v, 10)
}
