// Command vetsuite is the repository's custom vet tool: a multichecker over
// the freelunchvet analyzers (internal/analysis/...), which machine-enforce
// the determinism, hot-path, and concurrency contracts that keep every
// scheme's goldens bit-identical.
//
// It speaks the `go vet -vettool` unit-checker protocol, so the normal
// invocation is through the go command, which handles package loading,
// export data, and caching:
//
//	go build -o /tmp/vetsuite ./cmd/vetsuite
//	go vet -vettool=/tmp/vetsuite ./...
//
// Run `vetsuite help` for the list of analyzers and the contract each one
// enforces. Findings are suppressed only by an inline //freelunch:* waiver
// carrying a justification; see internal/analysis/contract.
//
// The protocol, in brief: the go command first invokes the tool with
// -V=full (a content hash used as the analysis cache key) and -flags (the
// tool's flag inventory), then once per package with a JSON config file
// argument describing the package's sources and the export data of its
// dependencies. Diagnostics go to stderr as file:line:col: messages; exit
// status 2 signals findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/inboxretain"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/noallocpath"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/observergoroutine"
)

// analyzers is the suite, in reporting order.
var analyzers = []*framework.Analyzer{
	maporder.Analyzer,
	nowallclock.Analyzer,
	noallocpath.Analyzer,
	observergoroutine.Analyzer,
	inboxretain.Analyzer,
}

func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			printVersion()
			return
		case "-flags":
			// No tool-specific flags: every analyzer always runs.
			fmt.Println("[]")
			return
		case "help", "-h", "--help":
			printHelp()
			return
		}
		if strings.HasSuffix(args[0], ".cfg") {
			os.Exit(checkPackage(args[0]))
		}
	}
	fmt.Fprintf(os.Stderr, "vetsuite: run via `go vet -vettool=$(go build -o /tmp/vetsuite ./cmd/vetsuite && echo /tmp/vetsuite) ./...`, or `vetsuite help`\n")
	os.Exit(1)
}

// printVersion emits the tool identity the go command hashes into its
// analysis cache key. Hashing the executable itself means a rebuilt tool
// (new or changed analyzers) invalidates cached vet results, while an
// identical binary reuses them.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h.Sum(nil))
}

func printHelp() {
	fmt.Println("vetsuite: the freelunch contract analyzers")
	fmt.Println()
	for _, a := range analyzers {
		fmt.Printf("  %-18s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Waive a finding with an inline //freelunch:<kind>ok <justification> comment;")
	fmt.Println("see internal/analysis/contract for the directive reference.")
}

// config mirrors the JSON schema the go command writes for a unit-checker
// invocation (x/tools go/analysis/unitchecker.Config).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// checkPackage runs the suite over one package per the config file and
// returns the process exit code.
func checkPackage(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetsuite: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vetsuite: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The tool keeps no cross-package facts, so dependency passes (the go
	// command runs them in case the tool needs facts) only have to produce
	// their (empty) facts file.
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintf(os.Stderr, "vetsuite: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "vetsuite: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vetsuite: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	type finding struct {
		pos  token.Position
		name string
		msg  string
	}
	var findings []finding
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d framework.Diagnostic) {
				findings = append(findings, finding{pos: fset.Position(d.Pos), name: a.Name, msg: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "vetsuite: analyzer %s: %v\n", a.Name, err)
			return 1
		}
	}
	if len(findings) == 0 {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.pos, f.name, f.msg)
	}
	return 2
}

// writeVetx writes the (empty) facts file the go command expects at the
// configured path.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, nil, 0o666)
}

// typecheck type-checks the package. Imports resolve through the export
// data files the go command listed in the config; if that fails (e.g. an
// export data format this toolchain's go/importer cannot read), it falls
// back to re-typechecking dependencies from source, which is slower but
// needs nothing beyond GOROOT and the module itself.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *config) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tc := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err == nil {
		return pkg, info, nil
	}

	// Fallback: source importer (resolves via go/build + the go command).
	clear(info.Types)
	clear(info.Defs)
	clear(info.Uses)
	clear(info.Selections)
	clear(info.Scopes)
	tc = &types.Config{
		Importer:  importer.ForCompiler(fset, "source", nil),
		GoVersion: cfg.GoVersion,
	}
	pkg, srcErr := tc.Check(cfg.ImportPath, fset, files, info)
	if srcErr != nil {
		return nil, nil, err // report the export-data error, it is primary
	}
	return pkg, info, nil
}
