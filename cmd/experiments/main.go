// Command experiments regenerates the paper's evaluation: it runs every
// experiment in DESIGN.md §4 and prints the measurement tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-progress] [-run E4,E7]
//
// With -progress, experiments that drive simulation pipelines stream their
// per-phase costs live through the observer hook instead of staying silent
// until the table prints.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run bench-scale configurations")
	progress := flag.Bool("progress", false, "stream live per-phase pipeline progress")
	only := flag.String("run", "", "comma-separated experiment IDs (default all)")
	flag.Parse()

	if *progress {
		experiments.Progress = func(format string, args ...any) {
			fmt.Printf("   | "+format+"\n", args...)
		}
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	failed := 0
	for _, ex := range experiments.All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		start := time.Now()
		rep := ex.Run(*quick)
		fmt.Println(rep)
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed their shape checks\n", failed)
		os.Exit(1)
	}
}
