// Command experiments regenerates the paper's evaluation: it runs every
// experiment in DESIGN.md §4 and prints the measurement tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-progress] [-run E4,E7] [-longrun N]
//
// With -progress, experiments that drive simulation pipelines stream their
// per-phase costs live through the observer hook instead of staying silent
// until the table prints.
//
// With -longrun N the suite is skipped and a single N-round gossip schedule
// runs with the per-round ledger disabled (WithRoundLedger(false)) and a
// streaming MetricsSink attached — the O(1)-memory regime for schedules far
// beyond what the PerRound ledgers can afford — and the sink's JSON snapshot
// is printed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/graph/gen"
)

func main() {
	quick := flag.Bool("quick", false, "run bench-scale configurations")
	progress := flag.Bool("progress", false, "stream live per-phase pipeline progress")
	only := flag.String("run", "", "comma-separated experiment IDs (default all)")
	longrun := flag.Int("longrun", 0, "run one N-round gossip schedule with the ledger disabled and print the MetricsSink snapshot, instead of the suite")
	flag.Parse()

	if *longrun > 0 {
		runLong(*longrun)
		return
	}

	if *progress {
		experiments.Progress = func(format string, args ...any) {
			fmt.Printf("   | "+format+"\n", args...)
		}
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	failed := 0
	for _, ex := range experiments.All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		start := time.Now()
		rep := ex.Run(*quick)
		fmt.Println(rep)
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed their shape checks\n", failed)
		os.Exit(1)
	}
}

// runLong is the long-run mode: a gossip schedule of the requested length
// on a fixed sparse graph, executed at O(1) memory in rounds (ledger off),
// observed only through the bounded metrics sink. It demonstrates — and
// gives a CLI probe for — the regime the sink was built for: schedules far
// longer than the per-round ledgers could afford to retain.
func runLong(rounds int) {
	g, err := gen.Build(gen.Spec{Family: "gnp", N: 64, P: 0.08, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sink := repro.NewMetricsSink(0)
	eng := repro.NewEngine(
		repro.WithSeed(1),
		repro.WithConcurrency(-1),
		repro.WithMaxRounds(rounds),
		repro.WithRoundLedger(false),
		repro.WithObserver(sink),
	)
	start := time.Now()
	res, err := eng.Run(context.Background(), "gossip", g, repro.MaxID(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("long run: gossip schedule of %d rounds on n=%d m=%d (ledger disabled, %.1fs)\n",
		rounds, g.NumNodes(), g.NumEdges(), time.Since(start).Seconds())
	fmt.Printf("billed: cover round %d, %d messages\n", res.Rounds, res.Messages)
	blob, err := json.MarshalIndent(sink.Snapshot(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics snapshot:\n%s\n", blob)
}
