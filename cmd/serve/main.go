// Command serve runs the long-running simulation service: an HTTP/JSON
// daemon over the scheme registry with engine pooling, backpressure, and a
// Prometheus-style metrics endpoint.
//
//	serve -addr :8080 -shards 4 -queue 8
//
// Clients POST simulation requests to /v1/simulate (or /v1/stream for live
// SSE progress), list schemes at /v1/schemes, and scrape /v1/metrics.
// Requests for the same topology land on the same pooled engine, so its
// stage-1 spanner cache amortizes across clients — the paper's free-lunch
// argument as a service property.
//
// SIGINT/SIGTERM drains gracefully: intake stops (new requests get 503,
// the health probe flips to draining), in-flight and queued runs complete,
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		shards     = flag.Int("shards", 4, "engine shards; graphs route to shards by fingerprint")
		queue      = flag.Int("queue", 8, "per-shard queue depth; beyond it requests get 429")
		workers    = flag.Int("workers", 1, "concurrent runs per shard")
		cacheSize  = flag.Int("cache", 0, "spanner cache entries per shard engine (0 = default)")
		maxNodes   = flag.Int("maxnodes", 4096, "largest graph a request may ask for")
		maxT       = flag.Int("maxt", 64, "largest algorithm round budget a request may ask for")
		deadline   = flag.Duration("deadline", 30*time.Second, "default per-run wall-clock budget")
		maxDL      = flag.Duration("maxdeadline", 2*time.Minute, "cap on client-requested deadlines")
		drainGrace = flag.Duration("draingrace", time.Minute, "how long shutdown waits for in-flight runs")
	)
	flag.Parse()

	svc := serve.New(serve.Config{
		Shards:          *shards,
		QueueDepth:      *queue,
		Workers:         *workers,
		CacheSize:       *cacheSize,
		MaxNodes:        *maxNodes,
		MaxT:            *maxT,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDL,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}

	// The "listening on" line is the startup handshake scripts key on (the
	// CI smoke test reads the bound port from it), so it goes to stdout
	// before any request is served.
	fmt.Printf("listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain order matters: Shutdown first, so every handler still waiting
	// on a queued job gets to finish and write its response, then Close the
	// pool (which refuses new work and runs the queue dry).
	log.Println("draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	svc.Close()
	log.Println("drained")
}
