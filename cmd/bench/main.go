// Command bench runs the repository's performance benchmarks and emits a
// machine-readable snapshot — the repo's perf trajectory format. Each
// invocation runs `go test -bench` with -benchmem, parses every benchmark
// line into {name, iterations, metrics} (ns/op, B/op, allocs/op, plus any
// custom metrics like msgs/op or ledgerB/op), and writes them as JSON.
//
// The committed baseline lives at BENCH_10.json (regenerate with
// `go run ./cmd/bench`); CI runs the same entry point on every commit and
// archives the JSON, so any two commits' perf can be diffed structurally.
//
// -ceiling turns the run into a regression gate: it fails the process when a
// benchmark's gated metric exceeds its committed ceiling. Entries are
// "Name=max" (gating allocs/op, the default metric) or "Name:metric=max"
// for any reported metric — CI uses the allocs/op form to pin the message
// plane's allocation budget (reintroducing per-message boxing costs
// ~1 alloc/message and blows the ceiling immediately; ordinary noise does
// not) and the B/op + ns/op forms to pin the million-node flood round's
// O(edges) footprint and wall-clock smoke bound.
//
// Besides the main and steady-state series, a third pass runs the
// million-node scale benchmark (-millionbench, a few iterations: one Run
// executes all of them, so per-round cost is measured without paying the
// graph build per iteration).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	Schema     int         `json:"schema"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	BenchRegex string      `json:"bench_regex"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, so names are stable across machines.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in. It is per benchmark, not
	// per snapshot: one cmd/bench run concatenates several go test passes
	// (the main series and the steady-state series run in different
	// packages).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for the reported measurement.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line:
	// the standard ns/op, B/op, allocs/op and any ReportMetric extras.
	Metrics map[string]float64 `json:"metrics"`
}

// defaultBench covers the registry-enumerated scheme benchmarks, the local
// engine hot-path benchmarks, the long-run memory benchmark, and the
// building-block micro-benchmarks — the perf surface of the simulator,
// without the E* experiment shape checks (those are correctness reproductions,
// not perf probes).
const defaultBench = "BenchmarkSchemes|BenchmarkLocalEngine|BenchmarkLongGossipMemory|BenchmarkSampler|BenchmarkCollectOnSpanner|BenchmarkReplay"

var procsSuffix = regexp.MustCompile(`-\d+$`)

// resultLine matches a benchmark result line (name, iterations, metrics).
// Benchmarked code printing to stdout can interleave arbitrary text with the
// result lines — such lines are context, not results, and must be skipped,
// not parse errors.
var resultLine = regexp.MustCompile(`^Benchmark\S+\s+\d+\s`)

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package to benchmark")
	steadyBench := flag.String("steadybench", "BenchmarkBusyRound", "steady-state benchmark regex (empty disables the pass)")
	steadyTime := flag.String("steadytime", "20000x", "benchtime for the steady-state pass (long enough to amortize setup to 0 allocs/op)")
	steadyPkg := flag.String("steadypkg", "./internal/local", "package for the steady-state pass")
	millionBench := flag.String("millionbench", "BenchmarkMillionNodeFloodRound", "million-node scale benchmark regex (empty disables the pass)")
	millionTime := flag.String("milliontime", "16x", "benchtime for the million-node pass (iterations share one Run's setup)")
	millionPkg := flag.String("millionpkg", "./internal/local", "package for the million-node pass")
	out := flag.String("out", "BENCH_10.json", "output JSON path (- for stdout)")
	raw := flag.String("raw", "", "optionally also write the raw go test output to this path")
	ceiling := flag.String("ceiling", "", "regression gate: comma-separated Name=max (allocs/op) or Name:metric=max pairs; exit non-zero when exceeded")
	diffOld := flag.String("diff", "", "diff mode: compare this baseline snapshot against the snapshot named by the positional arg (`bench -diff old.json new.json`) instead of running benchmarks; exit non-zero on regression")
	tolNS := flag.Float64("tolns", 8, "diff mode: max allowed ns/op ratio new/old (wall time is noisy across machine classes)")
	tolB := flag.Float64("tolb", 2, "diff mode: max allowed B/op ratio new/old")
	tolAllocs := flag.Float64("tolallocs", 0, "diff mode: max allowed allocs/op increase over baseline (allocation counts are deterministic)")
	flag.Parse()

	if *diffOld != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-diff needs exactly one positional argument: bench -diff old.json new.json"))
		}
		tol := diffTolerances{nsRatio: *tolNS, bytesRatio: *tolB, allocsDelta: *tolAllocs}
		if err := runDiff(*diffOld, flag.Arg(0), tol); err != nil {
			fatal(err)
		}
		return
	}

	ceilings, err := parseCeilings(*ceiling)
	if err != nil {
		fatal(err)
	}

	output, err := runBench(*bench, *benchtime, *pkg)
	if err != nil {
		fatal(err)
	}
	// The steady-state pass runs the per-round benchmarks for enough rounds
	// that setup amortizes to 0 allocs/op: it measures (and lets -ceiling
	// gate) the marginal cost of a busy round, which a single-iteration
	// pass cannot see under the run's setup allocations.
	if *steadyBench != "" {
		steady, serr := runBench(*steadyBench, *steadyTime, *steadyPkg)
		if serr != nil {
			fatal(serr)
		}
		output += steady
	}
	// The million-node pass prices a flood round at the scale target the CSR
	// core exists for. Few iterations suffice: the benchmark executes all of
	// b.N rounds inside one Run, so setup amortizes across them and B/op
	// approaches the steady-state (near-zero) footprint from above.
	if *millionBench != "" {
		million, merr := runBench(*millionBench, *millionTime, *millionPkg)
		if merr != nil {
			fatal(merr)
		}
		output += million
	}
	if *raw != "" {
		if err := os.WriteFile(*raw, []byte(output), 0o644); err != nil {
			fatal(err)
		}
	}

	snap, err := parse(output)
	if err != nil {
		fatal(err)
	}
	snap.BenchRegex = *bench
	snap.Benchtime = *benchtime

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: %d benchmarks recorded\n", len(snap.Benchmarks))

	if err := gate(snap, ceilings); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// runBench executes one `go test -bench` pass and returns its stdout.
func runBench(bench, benchtime, pkg string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	output, err := cmd.Output()
	if err != nil {
		os.Stdout.Write(output)
		return "", fmt.Errorf("go test -bench %s %s failed: %w", bench, pkg, err)
	}
	return string(output), nil
}

// parse extracts header context and benchmark result lines from go test
// -bench output.
func parse(output string) (*Snapshot, error) {
	snap := &Snapshot{Schema: 1}
	pkg := ""
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case resultLine.MatchString(line):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			b.Pkg = pkg
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in go test output")
	}
	return snap, nil
}

// parseLine parses one result line: name, iteration count, then
// "value unit" pairs. Trailing text that stops parsing as metric pairs is
// ignored (it is interleaved program output, not part of the result); the
// iteration count is guaranteed numeric by the resultLine filter.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("malformed iteration count in %q: %w", line, err)
	}
	b := Benchmark{
		Name:       procsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// ceilingSpec is one -ceiling entry: a benchmark name, the metric it gates
// (allocs/op unless "Name:metric=max" names another), and the maximum.
type ceilingSpec struct {
	name   string
	metric string
	max    float64
}

// parseCeilings parses "Name=max,Name:metric=max" into gate entries.
func parseCeilings(s string) ([]ceilingSpec, error) {
	var out []ceilingSpec
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("malformed -ceiling entry %q (want Name=max or Name:metric=max)", pair)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed -ceiling value in %q: %w", pair, err)
		}
		metric := "allocs/op"
		if n, m, hasMetric := strings.Cut(name, ":"); hasMetric {
			name, metric = n, m
		}
		out = append(out, ceilingSpec{name: name, metric: metric, max: v})
	}
	return out, nil
}

// gate enforces metric ceilings. Every named ceiling must match at least
// one recorded benchmark — a renamed benchmark must not silently disarm its
// gate.
func gate(snap *Snapshot, ceilings []ceilingSpec) error {
	if len(ceilings) == 0 {
		return nil
	}
	var violations []string
	for _, c := range ceilings {
		matched := false
		for _, b := range snap.Benchmarks {
			if b.Name != c.name {
				continue
			}
			matched = true
			got, ok := b.Metrics[c.metric]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s reported no %s (run with -benchmem)", c.name, c.metric))
				continue
			}
			if got > c.max {
				violations = append(violations, fmt.Sprintf("%s: %.0f %s exceeds ceiling %.0f", c.name, got, c.metric, c.max))
			}
		}
		if !matched {
			violations = append(violations, fmt.Sprintf("ceiling names unknown benchmark %q", c.name))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("ceiling gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}
