// Command bench runs the repository's performance benchmarks and emits a
// machine-readable snapshot — the repo's perf trajectory format. Each
// invocation runs `go test -bench` with -benchmem, parses every benchmark
// line into {name, iterations, metrics} (ns/op, B/op, allocs/op, plus any
// custom metrics like msgs/op or ledgerB/op), and writes them as JSON.
//
// The committed baseline lives at BENCH_7.json (regenerate with
// `go run ./cmd/bench`); CI runs the same entry point on every commit and
// archives the JSON, so any two commits' perf can be diffed structurally.
//
// -ceiling turns the run into a regression gate: it fails the process when a
// benchmark's allocs/op exceeds its committed ceiling, which is how CI pins
// the message plane's allocation budget (reintroducing per-message boxing
// costs ~1 alloc/message and blows the ceiling immediately; ordinary noise
// does not).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	Schema     int         `json:"schema"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	BenchRegex string      `json:"bench_regex"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, so names are stable across machines.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in. It is per benchmark, not
	// per snapshot: one cmd/bench run concatenates several go test passes
	// (the main series and the steady-state series run in different
	// packages).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for the reported measurement.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line:
	// the standard ns/op, B/op, allocs/op and any ReportMetric extras.
	Metrics map[string]float64 `json:"metrics"`
}

// defaultBench covers the registry-enumerated scheme benchmarks, the local
// engine hot-path benchmarks, the long-run memory benchmark, and the
// building-block micro-benchmarks — the perf surface of the simulator,
// without the E* experiment shape checks (those are correctness reproductions,
// not perf probes).
const defaultBench = "BenchmarkSchemes|BenchmarkLocalEngine|BenchmarkLongGossipMemory|BenchmarkSampler|BenchmarkCollectOnSpanner|BenchmarkReplay"

var procsSuffix = regexp.MustCompile(`-\d+$`)

// resultLine matches a benchmark result line (name, iterations, metrics).
// Benchmarked code printing to stdout can interleave arbitrary text with the
// result lines — such lines are context, not results, and must be skipped,
// not parse errors.
var resultLine = regexp.MustCompile(`^Benchmark\S+\s+\d+\s`)

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package to benchmark")
	steadyBench := flag.String("steadybench", "BenchmarkBusyRound", "steady-state benchmark regex (empty disables the pass)")
	steadyTime := flag.String("steadytime", "20000x", "benchtime for the steady-state pass (long enough to amortize setup to 0 allocs/op)")
	steadyPkg := flag.String("steadypkg", "./internal/local", "package for the steady-state pass")
	out := flag.String("out", "BENCH_7.json", "output JSON path (- for stdout)")
	raw := flag.String("raw", "", "optionally also write the raw go test output to this path")
	ceiling := flag.String("ceiling", "", "allocation gate: comma-separated name=maxAllocsPerOp pairs; exit non-zero when exceeded")
	diffOld := flag.String("diff", "", "diff mode: compare this baseline snapshot against the snapshot named by the positional arg (`bench -diff old.json new.json`) instead of running benchmarks; exit non-zero on regression")
	tolNS := flag.Float64("tolns", 8, "diff mode: max allowed ns/op ratio new/old (wall time is noisy across machine classes)")
	tolB := flag.Float64("tolb", 2, "diff mode: max allowed B/op ratio new/old")
	tolAllocs := flag.Float64("tolallocs", 0, "diff mode: max allowed allocs/op increase over baseline (allocation counts are deterministic)")
	flag.Parse()

	if *diffOld != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-diff needs exactly one positional argument: bench -diff old.json new.json"))
		}
		tol := diffTolerances{nsRatio: *tolNS, bytesRatio: *tolB, allocsDelta: *tolAllocs}
		if err := runDiff(*diffOld, flag.Arg(0), tol); err != nil {
			fatal(err)
		}
		return
	}

	ceilings, err := parseCeilings(*ceiling)
	if err != nil {
		fatal(err)
	}

	output, err := runBench(*bench, *benchtime, *pkg)
	if err != nil {
		fatal(err)
	}
	// The steady-state pass runs the per-round benchmarks for enough rounds
	// that setup amortizes to 0 allocs/op: it measures (and lets -ceiling
	// gate) the marginal cost of a busy round, which a single-iteration
	// pass cannot see under the run's setup allocations.
	if *steadyBench != "" {
		steady, serr := runBench(*steadyBench, *steadyTime, *steadyPkg)
		if serr != nil {
			fatal(serr)
		}
		output += steady
	}
	if *raw != "" {
		if err := os.WriteFile(*raw, []byte(output), 0o644); err != nil {
			fatal(err)
		}
	}

	snap, err := parse(output)
	if err != nil {
		fatal(err)
	}
	snap.BenchRegex = *bench
	snap.Benchtime = *benchtime

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: %d benchmarks recorded\n", len(snap.Benchmarks))

	if err := gate(snap, ceilings); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// runBench executes one `go test -bench` pass and returns its stdout.
func runBench(bench, benchtime, pkg string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	output, err := cmd.Output()
	if err != nil {
		os.Stdout.Write(output)
		return "", fmt.Errorf("go test -bench %s %s failed: %w", bench, pkg, err)
	}
	return string(output), nil
}

// parse extracts header context and benchmark result lines from go test
// -bench output.
func parse(output string) (*Snapshot, error) {
	snap := &Snapshot{Schema: 1}
	pkg := ""
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case resultLine.MatchString(line):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			b.Pkg = pkg
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in go test output")
	}
	return snap, nil
}

// parseLine parses one result line: name, iteration count, then
// "value unit" pairs. Trailing text that stops parsing as metric pairs is
// ignored (it is interleaved program output, not part of the result); the
// iteration count is guaranteed numeric by the resultLine filter.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("malformed iteration count in %q: %w", line, err)
	}
	b := Benchmark{
		Name:       procsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// parseCeilings parses "name=max,name=max" into a map.
func parseCeilings(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("malformed -ceiling entry %q (want name=maxAllocs)", pair)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed -ceiling value in %q: %w", pair, err)
		}
		out[name] = v
	}
	return out, nil
}

// gate enforces allocs/op ceilings. Every named ceiling must match at least
// one recorded benchmark — a renamed benchmark must not silently disarm its
// gate.
func gate(snap *Snapshot, ceilings map[string]float64) error {
	if len(ceilings) == 0 {
		return nil
	}
	var violations []string
	for name, max := range ceilings {
		matched := false
		for _, b := range snap.Benchmarks {
			if b.Name != name {
				continue
			}
			matched = true
			got, ok := b.Metrics["allocs/op"]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s reported no allocs/op (run with -benchmem)", name))
				continue
			}
			if got > max {
				violations = append(violations, fmt.Sprintf("%s: %.0f allocs/op exceeds ceiling %.0f", name, got, max))
			}
		}
		if !matched {
			violations = append(violations, fmt.Sprintf("ceiling names unknown benchmark %q", name))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("allocation gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}
