package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// diffTolerances are the per-metric regression thresholds for -diff.
// ns/op and B/op are ratio gates (new/old must stay at or under the factor:
// wall-time is noisy across machine classes, bytes much less so), while
// allocs/op is an absolute gate (allocation counts are deterministic, so
// even +tol allocs is a real structural change).
type diffTolerances struct {
	nsRatio     float64 // new ns/op may be at most old * nsRatio
	bytesRatio  float64 // new B/op may be at most old * bytesRatio
	allocsDelta float64 // new allocs/op may be at most old + allocsDelta
}

// diffSnapshots compares two snapshots benchmark by benchmark and returns
// the human-readable report plus the list of regressions. Benchmarks are
// matched by (pkg, name); ones present on only one side are reported but
// never fail the gate — adding or retiring a benchmark is not a perf
// regression.
func diffSnapshots(oldSnap, newSnap *Snapshot, tol diffTolerances) (report string, regressions []string) {
	type key struct{ pkg, name string }
	oldBy := make(map[key]Benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldBy[key{b.Pkg, b.Name}] = b
	}
	var sb strings.Builder
	seen := make(map[key]bool, len(newSnap.Benchmarks))
	for _, nb := range newSnap.Benchmarks {
		k := key{nb.Pkg, nb.Name}
		seen[k] = true
		ob, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(&sb, "  %-40s new benchmark (no baseline)\n", nb.Name)
			continue
		}
		line, bad := diffOne(ob, nb, tol)
		fmt.Fprintf(&sb, "  %-40s %s\n", nb.Name, line)
		if bad != "" {
			regressions = append(regressions, fmt.Sprintf("%s: %s", nb.Name, bad))
		}
	}
	var removed []string
	for k := range oldBy {
		if !seen[k] {
			removed = append(removed, k.name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(&sb, "  %-40s removed (present only in baseline)\n", name)
	}
	return sb.String(), regressions
}

// diffOne compares one benchmark pair and returns its report line plus a
// non-empty violation description when a tolerance is exceeded.
func diffOne(ob, nb Benchmark, tol diffTolerances) (line, violation string) {
	var parts, bad []string
	ratio := func(metric string) (oldV, newV, r float64, ok bool) {
		oldV, okO := ob.Metrics[metric]
		newV, okN := nb.Metrics[metric]
		if !okO || !okN {
			return 0, 0, 0, false
		}
		if oldV == 0 {
			// A zero baseline cannot express a ratio; treat any nonzero new
			// value as an explicit comparison instead of dividing by zero.
			return oldV, newV, 1, true
		}
		return oldV, newV, newV / oldV, true
	}
	if oldV, newV, r, ok := ratio("ns/op"); ok {
		parts = append(parts, fmt.Sprintf("ns/op %.0f -> %.0f (%.2fx)", oldV, newV, r))
		if r > tol.nsRatio {
			bad = append(bad, fmt.Sprintf("ns/op %.2fx over the %.2fx tolerance", r, tol.nsRatio))
		}
	}
	if oldV, newV, r, ok := ratio("B/op"); ok {
		parts = append(parts, fmt.Sprintf("B/op %.0f -> %.0f (%.2fx)", oldV, newV, r))
		if newV > oldV*tol.bytesRatio && newV-oldV > 64 {
			// The absolute floor keeps tiny baselines (a few bytes) from
			// flagging constant-size jitter as a ratio blowout.
			bad = append(bad, fmt.Sprintf("B/op %.2fx over the %.2fx tolerance", r, tol.bytesRatio))
		}
	}
	if oldV, okO := ob.Metrics["allocs/op"]; okO {
		if newV, okN := nb.Metrics["allocs/op"]; okN {
			parts = append(parts, fmt.Sprintf("allocs/op %.0f -> %.0f", oldV, newV))
			if newV > oldV+tol.allocsDelta {
				bad = append(bad, fmt.Sprintf("allocs/op %.0f exceeds baseline %.0f + %.0f", newV, oldV, tol.allocsDelta))
			}
		}
	}
	if len(parts) == 0 {
		return "no shared metrics", ""
	}
	return strings.Join(parts, "  "), strings.Join(bad, "; ")
}

// loadSnapshot reads one bench JSON file.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &snap, nil
}

// runDiff is the -diff entry point: load, compare, report, and exit
// non-zero when any tolerance is exceeded.
func runDiff(oldPath, newPath string, tol diffTolerances) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	report, regressions := diffSnapshots(oldSnap, newSnap, tol)
	fmt.Fprintf(os.Stderr, "bench diff: %s -> %s\n%s", oldPath, newPath, report)
	if len(regressions) > 0 {
		return fmt.Errorf("perf regression gate failed:\n  %s", strings.Join(regressions, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "bench diff: within tolerances")
	return nil
}
