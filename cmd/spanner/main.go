// Command spanner builds a spanner with algorithm Sampler on a generated
// graph and reports size, measured stretch, and (in distributed mode) round
// and message costs.
//
// Usage:
//
//	spanner -graph gnp -n 500 -deg 20 -k 2 -h 4 -c 0.5 -seed 1 -distributed
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	var (
		kind        = flag.String("graph", "gnp", "graph family: "+strings.Join(gen.FamilyNames(), "|")+"|community")
		n           = flag.Int("n", 500, "node count (rounded per family)")
		deg         = flag.Float64("deg", 16, "average degree for gnp")
		k           = flag.Int("k", 2, "Sampler level parameter (stretch 2·3^k−1)")
		h           = flag.Int("h", 4, "Sampler trial parameter")
		c           = flag.Float64("c", 1, "confidence constant")
		seed        = flag.Uint64("seed", 1, "random seed")
		distributed = flag.Bool("distributed", false, "run the LOCAL-model protocol")
		repeat      = flag.Int("repeat", 1, "build this many times through one engine (distributed mode); repeats hit the spanner cache")
		trace       = flag.Bool("trace", false, "print the level-by-level hierarchy trace")
	)
	flag.Parse()

	// Ctrl-C cancels the distributed protocol mid-round.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g := makeGraph(*kind, *n, *deg, *seed)
	fmt.Printf("graph: %s  n=%d m=%d\n", *kind, g.NumNodes(), g.NumEdges())

	p := core.Default(*k, *h)
	p.C = *c
	if *distributed && *repeat > 1 {
		// Repeated builds through one engine demonstrate the amortized
		// construction: the first build runs the protocol, the rest are
		// cache hits resolved without a single sampler round.
		var phase string
		eng := repro.NewEngine(
			repro.WithSeed(*seed),
			repro.WithConcurrency(-1),
			repro.WithSpannerParams(*k, *h, *c),
			repro.WithObserver(repro.ObserverFuncs{
				OnPhase: func(cost repro.PhaseCost) { phase = cost.Name },
			}),
		)
		var last *repro.Spanner
		for i := 0; i < *repeat; i++ {
			start := time.Now()
			sp, err := eng.BuildSpanner(ctx, g)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("build %d: %-15s |S|=%d stretch<=%d rounds=%d messages=%d wall=%s\n",
				i+1, phase, len(sp.Edges), sp.StretchBound, sp.Rounds, sp.Messages,
				time.Since(start).Round(time.Microsecond))
			last = sp
		}
		// Same guard as the single-build path: the (cached) spanner must
		// verify against its certificate.
		report(g, last.Edges, last.StretchBound)
		return
	}
	if *distributed {
		res, err := core.BuildDistributedCtx(ctx, g, p, *seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		report(g, res.S, res.StretchBound())
		fmt.Printf("rounds: %d  messages: %d (%.2f per edge)\n",
			res.Run.Rounds, res.Run.Messages, float64(res.Run.Messages)/float64(g.NumEdges()))
		for _, key := range []string{core.CntQuery, core.CntReply, core.CntTree, core.CntProbe, core.CntAccept, core.CntJoin} {
			fmt.Printf("  %-16s %d\n", key, res.Run.Counters[key])
		}
		return
	}
	res, err := core.Build(g, p, *seed)
	if err != nil {
		log.Fatal(err)
	}
	report(g, res.S, res.StretchBound())
	fmt.Printf("sampling cost (query-message proxy): %d\n", res.TotalSamples)
	if res.FailSafeNodes > 0 {
		fmt.Printf("fail-safe rescued %d nodes\n", res.FailSafeNodes)
	}
	if *trace {
		fmt.Print(res.Trace())
	}
}

func report(g *graph.Graph, s map[graph.EdgeID]bool, bound int) {
	_, rep, err := graph.VerifySpanner(g, s, bound)
	if err != nil {
		log.Fatalf("spanner verification failed: %v", err)
	}
	fmt.Printf("spanner: |S|=%d (%.1f%% of m)  stretch bound %d  measured max %d mean %.2f\n",
		rep.Edges, 100*float64(rep.Edges)/float64(g.NumEdges()), bound,
		rep.MaxEdgeStretch, rep.MeanEdgeStretch)
}

func makeGraph(kind string, n int, deg float64, seed uint64) *graph.Graph {
	// community composes two gen helpers with a CLI-specific shape, so it
	// stays outside the Spec registry; everything else routes through Build.
	if kind == "community" {
		b := 6
		rng := xrand.New(seed)
		return gen.Community(b, n/b, math.Min(1, 4*deg/float64(n/b)), 0.002, rng)
	}
	spec := gen.Spec{Family: kind, N: n, Seed: seed}
	switch kind {
	case "gnp":
		spec.Degree = deg
	case "pa":
		spec.Degree = 3
	}
	g, err := gen.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
