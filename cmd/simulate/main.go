// Command simulate runs a t-round LOCAL algorithm on a generated graph
// under one of the execution strategies the paper compares — direct
// execution, message-reduction scheme 1, scheme 2, or gossip collection —
// verifies that simulated outputs match direct execution, and prints the
// cost ledger.
//
// Usage:
//
//	simulate -graph complete -n 400 -alg maxid -t 4 -scheme 1 -gamma 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/simulate"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	var (
		kind   = flag.String("graph", "complete", "graph family: gnp|complete|grid|hypercube|barbell")
		n      = flag.Int("n", 300, "node count")
		deg    = flag.Float64("deg", 16, "average degree for gnp")
		alg    = flag.String("alg", "maxid", "algorithm: maxid|mis|coloring|bfs")
		t      = flag.Int("t", 4, "round budget for maxid/bfs (mis/coloring use their whp budgets)")
		scheme = flag.Int("scheme", 1, "0=direct only, 1=scheme1, 2=scheme2, 3=gossip")
		gamma  = flag.Int("gamma", 1, "Sampler level parameter for the schemes")
		bsK    = flag.Int("bsk", 2, "Baswana–Sen stretch parameter for scheme 2")
		seed   = flag.Uint64("seed", 1, "random seed")
		check  = flag.Int("check", 25, "number of nodes to verify against direct execution")
	)
	flag.Parse()

	g := makeGraph(*kind, *n, *deg, *seed)
	spec := makeSpec(*alg, *t, g.NumNodes())
	fmt.Printf("graph: %s n=%d m=%d   algorithm: %s t=%d\n",
		*kind, g.NumNodes(), g.NumEdges(), spec.Name, spec.T)

	direct, directRun, err := simulate.Direct(g, spec, *seed, local.Config{Concurrent: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct: rounds=%d messages=%d\n", directRun.Rounds, directRun.Messages)
	if *scheme == 0 {
		return
	}

	var coll *simulate.Collection
	switch *scheme {
	case 1:
		res, err := simulate.Scheme1(g, spec, simulate.Scheme1Params(*gamma), *seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		printScheme("scheme1", res, directRun.Messages)
		coll = res.Coll
	case 2:
		res, err := simulate.Scheme2(g, spec, simulate.Scheme1Params(*gamma), *bsK, *seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		printScheme("scheme2", res, directRun.Messages)
		coll = res.Coll
	case 3:
		c, cover, msgs, err := simulate.GossipCollect(g, spec.T, 100*g.NumNodes(), *seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gossip: cover-round=%d messages-to-cover=%d\n", cover, msgs)
		if cover < 0 {
			log.Fatal("gossip did not cover the t-balls within its budget")
		}
		coll = c
	default:
		log.Fatalf("unknown scheme %d", *scheme)
	}

	// Verify a sample of nodes against the direct run.
	step := g.NumNodes() / max(1, *check)
	if step == 0 {
		step = 1
	}
	verified := 0
	for v := 0; v < g.NumNodes(); v += step {
		got, err := coll.Replay(spec, graph.NodeID(v))
		if err != nil {
			log.Fatalf("replay at node %d: %v", v, err)
		}
		if got != direct[v] {
			log.Fatalf("FIDELITY VIOLATION at node %d: simulated %v, direct %v", v, got, direct[v])
		}
		verified++
	}
	fmt.Printf("fidelity: %d sampled nodes match direct execution exactly\n", verified)
}

func printScheme(name string, res *simulate.SchemeResult, directMsgs int64) {
	fmt.Printf("%s: rounds=%d messages=%d (%.2fx direct)\n",
		name, res.TotalRounds(), res.TotalMessages(),
		float64(res.TotalMessages())/float64(directMsgs))
	for _, ph := range res.Phases {
		fmt.Printf("  %-12s rounds=%-6d messages=%d\n", ph.Name, ph.Rounds, ph.Messages)
	}
	fmt.Printf("  carrier spanner: %d edges, stretch bound %d\n", res.SpannerEdges, res.StretchUsed)
}

func makeSpec(alg string, t, n int) algorithms.Spec {
	switch alg {
	case "maxid":
		return algorithms.MaxID(t)
	case "mis":
		return algorithms.MIS(algorithms.MISRounds(n))
	case "coloring":
		return algorithms.Coloring(algorithms.ColoringRounds(n))
	case "bfs":
		return algorithms.BFS(0, t)
	default:
		log.Fatalf("unknown algorithm %q", alg)
		return algorithms.Spec{}
	}
}

func makeGraph(kind string, n int, deg float64, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	switch kind {
	case "gnp":
		return gen.Connectify(gen.GNP(n, deg/float64(n-1), rng), rng)
	case "complete":
		return gen.Complete(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return gen.Grid(side, side)
	case "hypercube":
		return gen.Hypercube(int(math.Round(math.Log2(float64(n)))))
	case "barbell":
		return gen.Barbell(n/2, 4)
	default:
		log.Fatalf("unknown graph family %q", kind)
		return nil
	}
}
