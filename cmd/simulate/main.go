// Command simulate runs a t-round LOCAL algorithm on a generated graph
// under any execution scheme in the registry — direct execution, the
// paper's message-reduction schemes 1/2 (Baswana–Sen) / 2en (Elkin–Neiman),
// or the push–pull gossip baseline — verifies that simulated outputs match
// direct execution bit for bit, and prints the cost ledger.
//
// Schemes are addressed by registry name, so a newly registered scheme is
// runnable here without touching this file:
//
//	simulate -graph complete -n 400 -alg maxid -t 4 -scheme scheme2en -gamma 2
//
// Interrupting a run (Ctrl-C) cancels the engine's context; the simulation
// aborts mid-round.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/graph/gen"
)

func main() {
	log.SetFlags(0)
	var (
		kind       = flag.String("graph", "complete", "graph family: "+strings.Join(gen.FamilyNames(), "|"))
		n          = flag.Int("n", 300, "node count")
		deg        = flag.Float64("deg", 16, "average degree (gnp/regular/pa/expander)")
		graphPath  = flag.String("graphpath", "", "edge-list file for -graph edgelist")
		alg        = flag.String("alg", "maxid", "algorithm: maxid|mis|coloring|bfs")
		t          = flag.Int("t", 4, "round budget for maxid/bfs (mis/coloring use their whp budgets)")
		scheme     = flag.String("scheme", "scheme1", "execution scheme: "+strings.Join(repro.SchemeNames(), "|"))
		gamma      = flag.Int("gamma", 1, "Sampler level parameter for the schemes")
		stageK     = flag.Int("stagek", 2, "stage-2 stretch parameter for scheme2/scheme2en")
		bandwidth  = flag.Int("bandwidth", 0, "CONGEST word cap per edge per round for scheme1-congest (0 = ceil(log2 n))")
		hybridFrac = flag.Float64("hybridfrac", 0.5, "fraction of t-balls the hybrid scheme's gossip stage seeds, in (0,1]")
		seed       = flag.Uint64("seed", 1, "random seed")
		advName    = flag.String("adversary", "", "adversary profile: "+strings.Join(repro.AdversaryProfiles(), "|")+" (empty = flawless network)")
		repeat     = flag.Int("repeat", 1, "run the scheme this many times on one engine; repeats reuse the cached stage-1 spanner")
		progress   = flag.Bool("progress", false, "stream live per-round progress from the observer")
		nocache    = flag.Bool("nocache", false, "disable the engine's stage-1 spanner cache")
		metrics    = flag.Bool("metrics", false, "stream rounds into a bounded MetricsSink and print its JSON snapshot after the runs")
		ledger     = flag.Bool("ledger", true, "keep the internal per-round ledgers; -ledger=false makes long runs O(1) memory in executed rounds")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g, err := gen.Build(gen.Spec{Family: *kind, N: *n, Degree: *deg, Seed: *seed, Path: *graphPath})
	if err != nil {
		log.Fatal(err)
	}
	spec := makeSpec(*alg, *t, g.NumNodes())
	fmt.Printf("graph: %s n=%d m=%d   algorithm: %s t=%d   scheme: %s\n",
		*kind, g.NumNodes(), g.NumEdges(), spec.Name, spec.T, *scheme)

	opts := []repro.Option{
		repro.WithSeed(*seed),
		repro.WithConcurrency(-1),
		repro.WithGamma(*gamma),
		repro.WithStageK(*stageK),
		repro.WithHybridFraction(*hybridFrac),
		repro.WithRoundLedger(*ledger),
		repro.WithObserver(progressObserver(*progress)),
	}
	if *bandwidth != 0 {
		// Negative values flow through so the engine's validation rejects
		// them loudly instead of silently falling back to the auto cap.
		opts = append(opts, repro.WithBandwidth(*bandwidth))
	}
	adversarial := *advName != ""
	if adversarial {
		profile, ok := repro.NamedAdversary(*advName)
		if !ok {
			log.Fatalf("unknown adversary profile %q (shipped: %s)", *advName, strings.Join(repro.AdversaryProfiles(), ", "))
		}
		opts = append(opts, repro.WithAdversary(profile))
		fmt.Printf("adversary: %s\n", profile.Name)
	}
	if *nocache {
		opts = append(opts, repro.WithNoCache())
	}
	var sink *repro.MetricsSink
	if *metrics {
		sink = repro.NewMetricsSink(0)
		opts = append(opts, repro.WithObserver(sink))
	}
	eng := repro.NewEngine(opts...)

	direct, err := eng.Run(ctx, "direct", g, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("direct: rounds=%d messages=%d\n", direct.Rounds, direct.Messages)
	if *scheme == "direct" {
		printMetrics(sink)
		return
	}

	// Repeated runs on the one engine demonstrate the paper's amortization:
	// after the first run the cached stage-1 spanner is reused, so the
	// ledger shows "sampler(cached)" at zero cost and only the collection
	// phases remain on the bill.
	var total int64
	for i := 0; i < *repeat; i++ {
		res, err := eng.Run(ctx, *scheme, g, spec)
		if err != nil {
			fatal(err)
		}
		total += res.Messages
		if *repeat > 1 {
			fmt.Printf("run %d ", i+1)
		}
		fmt.Printf("%s: rounds=%d messages=%d (%.2fx direct)\n",
			res.Scheme, res.Rounds, res.Messages, float64(res.Messages)/float64(direct.Messages))
		for _, ph := range res.Phases {
			fmt.Printf("  %-16s rounds=%-6d messages=%d", ph.Name, ph.Rounds, ph.Messages)
			if ph.Dilation != 0 {
				fmt.Printf(" (congest dilation %.2fx)", ph.Dilation)
			}
			if ph.Dropped != 0 || ph.Duplicated != 0 {
				fmt.Printf(" (adversary dropped %d, duplicated %d)", ph.Dropped, ph.Duplicated)
			}
			fmt.Println()
		}
		if res.SpannerEdges > 0 {
			fmt.Printf("  carrier spanner: %d edges, stretch bound %d\n", res.SpannerEdges, res.StretchUsed)
		}

		// Fidelity: on a flawless network every node's simulated output must
		// equal direct execution's — any mismatch is a bug. Under an
		// adversary the free-lunch guarantee is void by design, so the
		// mismatch count is reported as a degradation measurement instead.
		match := 0
		for v := range direct.Outputs {
			if res.Outputs[v] == direct.Outputs[v] {
				match++
			} else if !adversarial {
				log.Fatalf("FIDELITY VIOLATION at node %d: simulated %v, direct %v",
					v, res.Outputs[v], direct.Outputs[v])
			}
		}
		if adversarial {
			fmt.Printf("fidelity: %d/%d node outputs match the (equally adversarial) direct run (%.1f%%)\n",
				match, len(direct.Outputs), 100*float64(match)/float64(len(direct.Outputs)))
		} else {
			fmt.Printf("fidelity: all %d node outputs match direct execution exactly\n", len(direct.Outputs))
		}
	}
	if *repeat > 1 {
		fmt.Printf("amortized: %d runs, %.1f messages/run (%.2fx direct per run)\n",
			*repeat, float64(total)/float64(*repeat),
			float64(total)/float64(*repeat)/float64(direct.Messages))
	}
	printMetrics(sink)
}

// printMetrics dumps the sink's bounded aggregates — per-phase totals,
// log-bucketed per-round message histograms, and the tail ring of most
// recent rounds — as JSON. A nil sink (no -metrics) prints nothing.
func printMetrics(sink *repro.MetricsSink) {
	if sink == nil {
		return
	}
	blob, err := json.MarshalIndent(sink.Snapshot(), "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("metrics snapshot:\n%s\n", blob)
}

// fatal distinguishes user cancellation from real failures.
func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		log.Fatal("cancelled (simulation aborted mid-round)")
	}
	log.Fatal(err)
}

// progressObserver prints the cost ledger as it streams in: every phase
// completion, and (with live set) a round ticker.
func progressObserver(live bool) repro.Observer {
	return repro.ObserverFuncs{
		OnRound: func(phase string, round int, messages int64) {
			if live && round%16 == 0 {
				fmt.Printf("  ... %-12s round %-6d %d messages\n", phase, round, messages)
			}
		},
		OnPhase: func(c repro.PhaseCost) {
			if live {
				fmt.Printf("  phase %-12s done: rounds=%-6d messages=%d\n", c.Name, c.Rounds, c.Messages)
			}
		},
	}
}

func makeSpec(alg string, t, n int) algorithms.Spec {
	switch alg {
	case "maxid":
		return algorithms.MaxID(t)
	case "mis":
		return algorithms.MIS(algorithms.MISRounds(n))
	case "coloring":
		return algorithms.Coloring(algorithms.ColoringRounds(n))
	case "bfs":
		return algorithms.BFS(0, t)
	default:
		log.Fatalf("unknown algorithm %q", alg)
		return algorithms.Spec{}
	}
}
