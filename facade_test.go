package repro_test

// Black-box tests of the Engine/Scheme facade: registry behaviour, the
// fidelity matrix (every scheme × every target algorithm reproduces direct
// execution bit for bit), observer streaming, and context cancellation in
// both execution engines.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func testGraph() *repro.Graph {
	return gen.ConnectedGNP(40, 0.12, xrand.New(101))
}

func TestRegistryContents(t *testing.T) {
	names := repro.SchemeNames()
	want := []string{"direct", "gossip", "scheme1", "scheme2", "scheme2en"}
	if len(names) < len(want) {
		t.Fatalf("registry has %v, want at least %v", names, want)
	}
	for _, w := range want {
		s, err := repro.Lookup(w)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", w, err)
		}
		if s.Name() != w {
			t.Fatalf("Lookup(%q) returned scheme %q", w, s.Name())
		}
		if s.Description() == "" {
			t.Fatalf("scheme %q has no description", w)
		}
	}
	if _, err := repro.Lookup("no-such-scheme"); err == nil {
		t.Fatal("Lookup accepted an unknown scheme")
	}
}

func TestRegisterSchemeRejectsDuplicates(t *testing.T) {
	if err := repro.RegisterScheme(nil); err == nil {
		t.Fatal("nil scheme accepted")
	}
	direct, err := repro.Lookup("direct")
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.RegisterScheme(direct); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// TestSchemesMatchDirect is the fidelity matrix: every registered scheme ×
// every target algorithm family, on a small connected G(n,p), must produce
// outputs identical to direct execution at the same seed.
func TestSchemesMatchDirect(t *testing.T) {
	g := testGraph()
	n := g.NumNodes()
	const seed = 7
	algs := []struct {
		name string
		spec repro.AlgorithmSpec
	}{
		{"maxid", repro.MaxID(3)},
		{"mis", repro.MIS(repro.MISRounds(n))},
		{"coloring", repro.Coloring(repro.ColoringRounds(n))},
		{"bfs", repro.BFSLayers(0, 3)},
	}
	for _, concurrency := range []int{0, -1} {
		eng := repro.NewEngine(
			repro.WithSeed(seed),
			repro.WithConcurrency(concurrency),
			repro.WithMaxRounds(1500), // gossip budget; other schemes self-schedule
		)
		for _, alg := range algs {
			direct, err := eng.Run(context.Background(), "direct", g, alg.spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range repro.Schemes() {
				t.Run(fmt.Sprintf("conc=%d/%s/%s", concurrency, s.Name(), alg.name), func(t *testing.T) {
					res, err := eng.RunScheme(context.Background(), s, g, alg.spec)
					if err != nil {
						t.Fatal(err)
					}
					if res.Scheme != s.Name() {
						t.Fatalf("result labeled %q, want %q", res.Scheme, s.Name())
					}
					for v := range direct.Outputs {
						if res.Outputs[v] != direct.Outputs[v] {
							t.Fatalf("node %d: %s produced %v, direct %v",
								v, s.Name(), res.Outputs[v], direct.Outputs[v])
						}
					}
					if len(res.Phases) == 0 {
						t.Fatal("no phase ledger")
					}
				})
			}
		}
	}
}

// TestDeprecatedWrappersMatchEngine pins the compatibility contract: the
// old entry points are wrappers over the Engine and must produce identical
// outputs at the same seed.
func TestDeprecatedWrappersMatchEngine(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(3)
	const seed, gamma, stageK = 9, 1, 2
	eng := repro.NewEngine(repro.WithSeed(seed), repro.WithGamma(gamma), repro.WithStageK(stageK))

	old, err := repro.SimulateScheme1(g, spec, gamma, seed, repro.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := eng.Run(context.Background(), "scheme1", g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if old.Rounds != cur.Rounds || old.Messages != cur.Messages {
		t.Fatalf("wrapper cost (%d rounds, %d msgs) != engine cost (%d, %d)",
			old.Rounds, old.Messages, cur.Rounds, cur.Messages)
	}
	for v := range cur.Outputs {
		if old.Outputs[v] != cur.Outputs[v] {
			t.Fatalf("node %d: wrapper %v != engine %v", v, old.Outputs[v], cur.Outputs[v])
		}
	}

	old2, err := repro.SimulateScheme2EN(g, spec, gamma, stageK, seed, repro.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh engine: the wrappers construct one per call, so the cost
	// contract is against an unprimed spanner cache (the shared engine above
	// would amortize the sampler away on its second run).
	eng2 := repro.NewEngine(repro.WithSeed(seed), repro.WithGamma(gamma), repro.WithStageK(stageK))
	cur2, err := eng2.Run(context.Background(), "scheme2en", g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if old2.Messages != cur2.Messages {
		t.Fatalf("scheme2en wrapper msgs %d != engine %d", old2.Messages, cur2.Messages)
	}
}

func TestValidationErrors(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(2)
	if _, err := repro.NewEngine(repro.WithGamma(0)).Run(context.Background(), "scheme1", g, spec); err == nil {
		t.Fatal("gamma 0 accepted by scheme1")
	}
	if _, err := repro.NewEngine(repro.WithStageK(0)).Run(context.Background(), "scheme2", g, spec); err == nil {
		t.Fatal("stage k 0 accepted by scheme2")
	}
	if _, err := repro.NewEngine(repro.WithLogNSlack(0.5)).Run(context.Background(), "direct", g, spec); err == nil {
		t.Fatal("LogNSlack < 1 accepted")
	}
	if _, err := repro.NewEngine().Run(context.Background(), "nope", g, spec); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := repro.NewEngine().Run(context.Background(), "direct", nil, spec); err == nil {
		t.Fatal("nil graph accepted")
	}
	// Replay internals have no option equivalent; the deprecated wrappers
	// must reject them rather than silently drop them.
	if _, err := repro.RunDirect(g, spec, 1, repro.RunConfig{NOverride: 5}); err == nil {
		t.Fatal("NOverride accepted by deprecated wrapper")
	}
	if _, err := repro.SimulateScheme1(g, spec, 1, 1, repro.RunConfig{IDMap: make([]repro.NodeID, g.NumNodes())}); err == nil {
		t.Fatal("IDMap accepted by deprecated wrapper")
	}
}

// TestObserverStreamsPhases checks that observers see every phase with the
// same ledger the result reports, in order.
func TestObserverStreamsPhases(t *testing.T) {
	g := testGraph()
	var seen []repro.PhaseCost
	var rounds int
	eng := repro.NewEngine(
		repro.WithSeed(3),
		repro.WithObserver(repro.ObserverFuncs{
			OnRound: func(phase string, round int, messages int64) { rounds++ },
			OnPhase: func(c repro.PhaseCost) { seen = append(seen, c) },
		}),
	)
	res, err := eng.Run(context.Background(), "scheme2en", g, repro.MaxID(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Phases) {
		t.Fatalf("observer saw %d phases, result has %d", len(seen), len(res.Phases))
	}
	for i := range seen {
		if seen[i] != res.Phases[i] {
			t.Fatalf("phase %d: observed %+v != reported %+v", i, seen[i], res.Phases[i])
		}
	}
	if rounds != res.Rounds {
		t.Fatalf("observer counted %d rounds, result reports %d", rounds, res.Rounds)
	}
}

// phaseRecorder is a thread-safe observer that records phase completions in
// order and counts rounds per phase, usable from concurrently running Runs.
type phaseRecorder struct {
	mu     sync.Mutex
	phases []repro.PhaseCost
	rounds map[string]int
}

func newPhaseRecorder() *phaseRecorder {
	return &phaseRecorder{rounds: make(map[string]int)}
}

func (p *phaseRecorder) RoundCompleted(phase string, round int, messages int64) {
	p.mu.Lock()
	p.rounds[phase]++
	p.mu.Unlock()
}

func (p *phaseRecorder) PhaseCompleted(c repro.PhaseCost) {
	p.mu.Lock()
	p.phases = append(p.phases, c)
	p.mu.Unlock()
}

// phaseNameCount returns how many recorded phases carry the given name.
func (p *phaseRecorder) phaseNameCount(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.phases {
		if c.Name == name {
			n++
		}
	}
	return n
}

// roundCount returns the number of recorded rounds for a phase.
func (p *phaseRecorder) roundCount(phase string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rounds[phase]
}

// clear resets the recorder between runs.
func (p *phaseRecorder) clear() {
	p.mu.Lock()
	p.phases = nil
	p.rounds = make(map[string]int)
	p.mu.Unlock()
}

// sameOutputs fails the test unless the two output vectors are identical.
func sameOutputs(t *testing.T, label string, got, want []any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: node %d produced %v, want %v", label, v, got[v], want[v])
		}
	}
}

// TestSpannerCacheFidelityMatrix is the cache fidelity matrix: every
// registered scheme run twice on the same engine must produce outputs
// bit-identical to a fresh engine's — including after Reset — and for the
// sampler-based schemes the second run must perform zero sampler rounds,
// reporting the stage as the zero-cost phase "sampler(cached)".
func TestSpannerCacheFidelityMatrix(t *testing.T) {
	g := testGraph()
	const seed = 7
	algs := []struct {
		name string
		spec repro.AlgorithmSpec
	}{
		{"maxid", repro.MaxID(3)},
		{"mis", repro.MIS(repro.MISRounds(g.NumNodes()))},
	}
	for _, alg := range algs {
		for _, s := range repro.Schemes() {
			t.Run(fmt.Sprintf("%s/%s", s.Name(), alg.name), func(t *testing.T) {
				ctx := context.Background()
				rec := newPhaseRecorder()
				shared := repro.NewEngine(
					repro.WithSeed(seed),
					repro.WithMaxRounds(1500), // gossip budget
					repro.WithObserver(rec),
				)
				fresh, err := repro.NewEngine(
					repro.WithSeed(seed),
					repro.WithMaxRounds(1500),
				).RunScheme(ctx, s, g, alg.spec)
				if err != nil {
					t.Fatal(err)
				}
				run1, err := shared.RunScheme(ctx, s, g, alg.spec)
				if err != nil {
					t.Fatal(err)
				}
				sameOutputs(t, "first run", run1.Outputs, fresh.Outputs)
				usesSampler := len(run1.Phases) > 0 && run1.Phases[0].Name == "sampler"

				rec.clear()
				run2, err := shared.RunScheme(ctx, s, g, alg.spec)
				if err != nil {
					t.Fatal(err)
				}
				sameOutputs(t, "cached run", run2.Outputs, fresh.Outputs)
				if run2.StretchUsed != fresh.StretchUsed || run2.SpannerEdges != fresh.SpannerEdges {
					t.Fatalf("cached run spanner (stretch %d, %d edges) != fresh (%d, %d)",
						run2.StretchUsed, run2.SpannerEdges, fresh.StretchUsed, fresh.SpannerEdges)
				}
				if usesSampler {
					// The acceptance criterion: zero sampler rounds on the
					// second run, stage reported as "sampler(cached)".
					if rounds := rec.roundCount("sampler"); rounds != 0 {
						t.Fatalf("cached run executed %d sampler rounds, want 0", rounds)
					}
					want := repro.PhaseCost{Name: "sampler(cached)"}
					if run2.Phases[0] != want {
						t.Fatalf("cached run phase[0] = %+v, want %+v", run2.Phases[0], want)
					}
					// Every non-sampler phase is unchanged: the cached spanner
					// carries exactly the same collections.
					if len(run2.Phases) != len(fresh.Phases) {
						t.Fatalf("cached run has %d phases, fresh %d", len(run2.Phases), len(fresh.Phases))
					}
					for i := 1; i < len(run2.Phases); i++ {
						if run2.Phases[i] != fresh.Phases[i] {
							t.Fatalf("phase %d: cached %+v != fresh %+v", i, run2.Phases[i], fresh.Phases[i])
						}
					}
					if run2.Messages >= fresh.Messages {
						t.Fatalf("cached run cost %d messages, not below fresh %d", run2.Messages, fresh.Messages)
					}
				} else {
					// No stage-1 to cache: repeated runs must be identical in
					// full, ledger included.
					if len(run2.Phases) != len(fresh.Phases) {
						t.Fatalf("repeat run has %d phases, fresh %d", len(run2.Phases), len(fresh.Phases))
					}
					for i := range run2.Phases {
						if run2.Phases[i] != fresh.Phases[i] {
							t.Fatalf("phase %d: repeat %+v != fresh %+v", i, run2.Phases[i], fresh.Phases[i])
						}
					}
				}

				// After Reset the engine reconstructs from scratch and must
				// land on the same outputs and the same full-cost ledger.
				shared.Reset()
				rec.clear()
				run3, err := shared.RunScheme(ctx, s, g, alg.spec)
				if err != nil {
					t.Fatal(err)
				}
				sameOutputs(t, "post-reset run", run3.Outputs, fresh.Outputs)
				if len(run3.Phases) != len(fresh.Phases) {
					t.Fatalf("post-reset run has %d phases, fresh %d", len(run3.Phases), len(fresh.Phases))
				}
				for i := range run3.Phases {
					if run3.Phases[i] != fresh.Phases[i] {
						t.Fatalf("post-reset phase %d: %+v != fresh %+v", i, run3.Phases[i], fresh.Phases[i])
					}
				}
				if usesSampler && rec.roundCount("sampler") == 0 {
					t.Fatal("post-reset run did not rebuild the spanner")
				}
			})
		}
	}
}

// TestWithNoCache pins the opt-out: a WithNoCache engine reconstructs the
// sampler spanner on every run.
func TestWithNoCache(t *testing.T) {
	g := testGraph()
	rec := newPhaseRecorder()
	eng := repro.NewEngine(repro.WithSeed(7), repro.WithNoCache(), repro.WithObserver(rec))
	for i := 0; i < 2; i++ {
		if _, err := eng.Run(context.Background(), "scheme1", g, repro.MaxID(3)); err != nil {
			t.Fatal(err)
		}
	}
	if n := rec.phaseNameCount("sampler"); n != 2 {
		t.Fatalf("%d sampler constructions with cache disabled, want 2", n)
	}
	if n := rec.phaseNameCount("sampler(cached)"); n != 0 {
		t.Fatalf("%d cache hits with cache disabled, want 0", n)
	}
}

// TestBuildSpannerCached checks that BuildSpanner shares the engine cache —
// the second call is a hit with the identical edge set — and that mutating a
// returned Spanner cannot corrupt the cached artifact.
func TestBuildSpannerCached(t *testing.T) {
	g := testGraph()
	rec := newPhaseRecorder()
	eng := repro.NewEngine(repro.WithSeed(3), repro.WithObserver(rec))
	first, err := eng.BuildSpanner(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the caller's copy: the cache must be unaffected.
	for id := range first.Edges {
		delete(first.Edges, id)
		break
	}
	second, err := eng.BuildSpanner(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Edges) != len(first.Edges)+1 {
		t.Fatalf("cached spanner has %d edges, want %d", len(second.Edges), len(first.Edges)+1)
	}
	if second.StretchBound != first.StretchBound {
		t.Fatalf("stretch drifted: %d != %d", second.StretchBound, first.StretchBound)
	}
	if second.Rounds != first.Rounds || second.Messages != first.Messages {
		t.Fatalf("cached spanner cost (%d, %d) != original (%d, %d)",
			second.Rounds, second.Messages, first.Rounds, first.Messages)
	}
	if got := rec.phaseNameCount("sampler"); got != 1 {
		t.Fatalf("%d sampler constructions, want 1", got)
	}
	if got := rec.phaseNameCount("sampler(cached)"); got != 1 {
		t.Fatalf("%d cache hits, want 1", got)
	}
}

// TestEngineCacheSingleFlight drives one shared engine from many goroutines
// at the same cache key (run under -race in CI): exactly one goroutine must
// build the spanner, the rest must coalesce onto it, and every run must
// produce the fresh engine's outputs.
func TestEngineCacheSingleFlight(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(3)
	const seed, workers = 5, 8
	want, err := repro.NewEngine(repro.WithSeed(seed)).Run(context.Background(), "scheme1", g, spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := newPhaseRecorder()
	eng := repro.NewEngine(repro.WithSeed(seed), repro.WithObserver(rec))
	results := make([]*repro.SimulationResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Run(context.Background(), "scheme1", g, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		sameOutputs(t, fmt.Sprintf("goroutine %d", i), results[i].Outputs, want.Outputs)
	}
	if built := rec.phaseNameCount("sampler"); built != 1 {
		t.Fatalf("%d sampler constructions across %d concurrent runs, want 1 (single flight)", built, workers)
	}
	if hits := rec.phaseNameCount("sampler(cached)"); hits != workers-1 {
		t.Fatalf("%d cache hits, want %d", hits, workers-1)
	}
}

// cancelAfterRounds is an observer that cancels a context once the pipeline
// has completed a given number of rounds.
type cancelAfterRounds struct {
	cancel context.CancelFunc
	left   int
}

func (c *cancelAfterRounds) RoundCompleted(string, int, int64) {
	c.left--
	if c.left == 0 {
		c.cancel()
	}
}
func (c *cancelAfterRounds) PhaseCompleted(repro.PhaseCost) {}

// TestCancellationStopsRun aborts a long direct run after two rounds, in
// both the sequential and the concurrent engine, and checks the run stops
// promptly (well before its round budget) without deadlock.
func TestCancellationStopsRun(t *testing.T) {
	g := gen.ConnectedGNP(200, 0.05, xrand.New(5))
	spec := repro.MaxID(50) // 51-round budget: plenty left to cut short
	for _, concurrency := range []int{0, -1} {
		t.Run(fmt.Sprintf("conc=%d", concurrency), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			obs := &cancelAfterRounds{cancel: cancel, left: 2}
			eng := repro.NewEngine(
				repro.WithSeed(1),
				repro.WithConcurrency(concurrency),
				repro.WithObserver(obs),
			)
			done := make(chan error, 1)
			go func() {
				_, err := eng.Run(ctx, "direct", g, spec)
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("got %v, want context.Canceled", err)
				}
				if obs.left > 0 {
					t.Fatalf("run returned before the observer cancelled (%d rounds left)", obs.left)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancelled run did not return: deadlock")
			}
		})
	}
}

// TestCancellationMidPipeline cancels during a scheme pipeline (the sampler
// phase of scheme1) and checks the whole pipeline unwinds with the context
// error in both engines.
func TestCancellationMidPipeline(t *testing.T) {
	g := gen.ConnectedGNP(150, 0.08, xrand.New(6))
	for _, concurrency := range []int{0, -1} {
		t.Run(fmt.Sprintf("conc=%d", concurrency), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			obs := &cancelAfterRounds{cancel: cancel, left: 3}
			eng := repro.NewEngine(
				repro.WithSeed(2),
				repro.WithConcurrency(concurrency),
				repro.WithGamma(1),
				repro.WithObserver(obs),
			)
			_, err := eng.Run(ctx, "scheme1", g, repro.MaxID(4))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got %v, want context.Canceled", err)
			}
		})
	}
}

// TestPreCancelledContext checks that an already-cancelled context stops a
// run before any round executes.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rounds := 0
	eng := repro.NewEngine(repro.WithObserver(repro.ObserverFuncs{
		OnRound: func(string, int, int64) { rounds++ },
	}))
	_, err := eng.Run(ctx, "direct", testGraph(), repro.MaxID(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if rounds != 0 {
		t.Fatalf("%d rounds ran under a cancelled context", rounds)
	}
}
