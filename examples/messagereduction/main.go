// Message reduction end to end: run t-round LOCAL algorithms on a dense
// graph directly, then again through the paper's scheme 1 (addressed by its
// registry name), and confirm that the simulation produces identical
// outputs node for node.
//
// Two workloads bracket the claim honestly:
//
//   - t-hop max-ID keeps every edge busy every round, the Θ(t·m) worst case
//     the paper's Õ(t·n^{1+ε}) bound is aimed at — here the scheme wins
//     outright;
//   - Luby's MIS is message-sparse on dense graphs (most nodes decide after
//     one iteration and fall silent), so direct execution is already cheap
//     and the simulation's worst-case insurance costs more than it saves.
//
// The free lunch is about the worst case over t-round algorithms; the pair
// shows both where it pays and where it does not need to.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/graph/gen"
)

func main() {
	const n, seed = 300, 11
	ctx := context.Background()
	g := gen.Complete(n)
	fmt.Printf("graph: K_%d (n=%d, m=%d)\n\n", n, g.NumNodes(), g.NumEdges())

	eng := repro.NewEngine(
		repro.WithSeed(seed),
		repro.WithConcurrency(-1),
		repro.WithGamma(2),
	)
	for _, spec := range []repro.AlgorithmSpec{
		repro.MaxID(4),
		repro.MIS(repro.MISRounds(n)),
	} {
		fmt.Printf("== %s (t=%d)\n", spec.Name, spec.T)
		direct, err := eng.Run(ctx, "direct", g, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   direct:  %8d messages  %5d rounds\n", direct.Messages, direct.Rounds)

		sim, err := eng.Run(ctx, "scheme1", g, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   scheme1: %8d messages  %5d rounds  (%.2fx direct messages)\n",
			sim.Messages, sim.Rounds, float64(sim.Messages)/float64(direct.Messages))
		for _, ph := range sim.Phases {
			fmt.Printf("      %-8s %8d messages  %5d rounds\n", ph.Name, ph.Messages, ph.Rounds)
		}

		for v := range direct.Outputs {
			if sim.Outputs[v] != direct.Outputs[v] {
				log.Fatalf("node %d: simulated %v != direct %v", v, sim.Outputs[v], direct.Outputs[v])
			}
		}
		fmt.Printf("   fidelity: all %d node outputs identical\n\n", n)
	}

	fmt.Println("note: max-ID is the message-dense regime the theorem targets (direct\n" +
		"cost ~ t·m); MIS goes quiet after a round on K_n, so its direct cost is\n" +
		"already o(t·m) and the scheme's worst-case insurance does not pay there.")
}
