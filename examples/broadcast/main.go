// Broadcast comparison: t-local broadcast three ways — direct flooding,
// flooding over a Sampler spanner, and push–pull gossip — on a dense graph
// and on a low-conductance barbell. Reproduces the trade-offs the paper's
// introduction describes: direct pays Θ(t·m) messages, gossip pays rounds
// that grow with n and suffer on low conductance, and the spanner scheme
// pays neither.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/simulate"
)

func main() {
	const tr, seed = 3, 5
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"complete K_240", gen.Complete(240)},
		{"barbell 2xK_120", gen.Barbell(120, 4)},
	} {
		g := tc.g
		fmt.Printf("== %s: n=%d m=%d, t=%d\n", tc.name, g.NumNodes(), g.NumEdges(), tr)

		// Direct flooding on G.
		direct, err := simulate.DirectBroadcastCost(ctx, g, tr, seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   direct flood:   %8d msgs  %4d rounds\n", direct.Run.Messages, direct.Run.Rounds)

		// Spanner flooding (spanner built once; collection is the recurring
		// per-use cost).
		p := core.Default(2, 8)
		p.C = 0.5
		sp, err := core.BuildDistributedCtx(ctx, g, p, seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		h, err := g.SubgraphByEdges(sp.S)
		if err != nil {
			log.Fatal(err)
		}
		coll, err := simulate.Collect(ctx, g, h, sp.StretchBound()*tr, seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   spanner flood:  %8d msgs  %4d rounds  (+one-off spanner: %d msgs, %d rounds)\n",
			coll.Run.Messages, coll.Run.Rounds, sp.Run.Messages, sp.Run.Rounds)

		// Gossip until every t-ball is covered (generous fixed budget; the
		// cover round is detected post hoc).
		_, cover, gmsgs, err := simulate.GossipCollect(ctx, g, tr, 2000, seed, local.Config{Concurrent: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   gossip:         %8d msgs  %4d rounds to cover all %d-balls\n", gmsgs, cover, tr)

		// Sanity: spanner collection actually covered every t-ball.
		missing := 0
		for v := 0; v < g.NumNodes(); v++ {
			for _, u := range g.Ball(graph.NodeID(v), tr) {
				if _, ok := coll.Ports[v][u]; !ok {
					missing++
				}
			}
		}
		if missing > 0 {
			log.Fatalf("spanner collection missed %d ball entries", missing)
		}
		fmt.Printf("   coverage check: every node heard its full %d-ball via the spanner\n\n", tr)
	}
	fmt.Println(broadcastMoral)
}

const broadcastMoral = `moral: direct flooding pays for every edge every round; gossip keeps
messages at 2n/round but its cover time grows with n and degrades with
conductance (compare the barbell); the spanner scheme pays a one-off
construction and then floods a near-linear-size subgraph for a constant
multiple of t rounds - the paper's free lunch.`
