// Quickstart: build a constant-stretch spanner with algorithm Sampler and
// verify it, in a dozen lines of the public Engine API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func main() {
	// A connected random graph: 500 nodes, average degree ~24.
	g := gen.ConnectedGNP(500, 24.0/499, xrand.New(7))
	fmt.Printf("input graph: n=%d m=%d\n", g.NumNodes(), g.NumEdges())

	// An engine configured once via functional options; the spanner build
	// runs the distributed protocol (the paper's Section 5) under it.
	eng := repro.NewEngine(
		repro.WithSeed(42),
		repro.WithConcurrency(-1),
		repro.WithSpannerParams(2, 4, 0.5),
	)
	sp, err := eng.BuildSpanner(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanner: %d edges (%.1f%% of m), certified stretch <= %d\n",
		len(sp.Edges), 100*float64(len(sp.Edges))/float64(g.NumEdges()), sp.StretchBound)
	fmt.Printf("construction: %d rounds, %d messages (%.2f per input edge)\n",
		sp.Rounds, sp.Messages, float64(sp.Messages)/float64(g.NumEdges()))

	// Verify the stretch certificate against the actual graph.
	maxStretch, err := sp.Verify(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: measured max stretch %d (bound %d)\n", maxStretch, sp.StretchBound)
}
