// Aggregate: the paper's Section 7 remark in action. Computes a global
// minimum over all node inputs on a dense graph twice — by flooding the
// graph itself, and over a Sampler spanner — and compares the bills.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/globalcompute"
	"repro/internal/graph/gen"
	"repro/internal/local"
	"repro/internal/xrand"
)

func main() {
	const n, seed = 400, 23
	g := gen.ConnectedGNP(n, 0.5, xrand.New(seed))
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = int64((i*2654435761)%100000 + 1)
	}
	diam := g.Diameter()
	fmt.Printf("graph: n=%d m=%d diameter=%d; computing global min of node inputs\n\n",
		n, g.NumEdges(), diam)

	direct, err := globalcompute.Direct(context.Background(), g, inputs, globalcompute.Min, diam, local.Config{Concurrent: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct (flood G):   %8d messages  %4d rounds\n",
		direct.TotalMessages(), direct.TotalRounds())

	p := core.Default(2, 8)
	p.C = 0.5
	span, err := globalcompute.OverSpanner(context.Background(), g, inputs, globalcompute.Min, diam, p, seed, local.Config{Concurrent: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanner (Sec. 7):   %8d messages  %4d rounds  (spanner %d msgs + aggregation %d over %d edges)\n",
		span.TotalMessages(), span.TotalRounds(),
		span.SpannerRun.Messages, span.Run.Messages, span.HostEdges)

	want := inputs[0]
	for _, v := range inputs[1:] {
		if v < want {
			want = v
		}
	}
	for v := range direct.Values {
		if direct.Values[v] != want || span.Values[v] != want {
			log.Fatalf("node %d computed a wrong aggregate", v)
		}
	}
	fmt.Printf("\nall %d nodes agree on min=%d under both pipelines (%.2fx message ratio)\n",
		n, want, float64(span.TotalMessages())/float64(direct.TotalMessages()))
}
