// Cluster trace: the textual counterpart of the paper's Figure 1. Runs the
// centralized Sampler on a small graph and prints each level's sampling,
// light/heavy classification, center draws, and cluster formation, followed
// by the cluster membership of every original node.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func main() {
	dotPath := flag.String("dot", "", "also write a Graphviz file (spanner bold, nodes colored by top-level cluster)")
	flag.Parse()
	// A small community graph: three dense pockets, sparse bridges — enough
	// structure for the hierarchy to be visible.
	g := gen.Community(3, 8, 0.8, 0.08, xrand.New(3))
	g = gen.Connectify(g, xrand.New(4))
	fmt.Printf("input: n=%d m=%d (3 communities of 8)\n\n", g.NumNodes(), g.NumEdges())

	res, err := core.Build(g, core.Default(2, 2), 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Trace())

	// Show where each original node ended up at the top level.
	top := res.Levels[len(res.Levels)-1]
	fmt.Printf("\ntop-level clusters (level %d):\n", top.J)
	for v, members := range top.OrigMembers {
		fmt.Printf("  C%-3d -> %v\n", v, members)
	}

	if err := res.ValidateHierarchy(g); err != nil {
		log.Fatalf("hierarchy invariant violated: %v", err)
	}
	_, rep, err := graph.VerifySpanner(g, res.S, res.StretchBound())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspanner verified: %d/%d edges, max stretch %d (bound %d)\n",
		rep.Edges, g.NumEdges(), rep.MaxEdgeStretch, res.StretchBound())

	if *dotPath != "" {
		// Nodes whose cluster died before the top level belong to no
		// top-level cluster; leave them unstyled (-1).
		cluster := make([]int, g.NumNodes())
		for i := range cluster {
			cluster[i] = -1
		}
		for c, members := range top.OrigMembers {
			for _, m := range members {
				cluster[m] = c
			}
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		err = g.WriteDOT(f, graph.DOTOptions{
			Name:      "clustertrace",
			Highlight: res.S,
			NodeGroup: func(v graph.NodeID) int { return cluster[v] },
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (render with: dot -Tsvg %s -o trace.svg)\n", *dotPath, *dotPath)
	}
}
