package repro

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/globalcompute"
	"repro/internal/simulate"
)

// Scheme is one execution strategy for a t-round LOCAL algorithm: the
// direct baseline, one of the paper's message-reduction pipelines, or a
// literature baseline such as push–pull gossip. Implementations are
// registered by name (RegisterScheme) and looked up by drivers
// (Lookup/Schemes), so new strategies plug in without new top-level API.
type Scheme interface {
	// Name is the registry key ("direct", "scheme1", ...).
	Name() string
	// Description is a one-line summary for listings and -help output.
	Description() string
	// Validate rejects option combinations the scheme cannot honor, before
	// any simulation work starts.
	Validate(opts *Options) error
	// Run simulates spec on g under opts. Outputs are bit-identical to a
	// direct run at the same seed for every registered scheme; cancelling
	// ctx aborts the pipeline within one node step's work.
	Run(ctx context.Context, g *Graph, spec AlgorithmSpec, opts *Options) (*SimulationResult, error)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Scheme)
)

// RegisterScheme adds a scheme to the registry. It errors on an empty name
// or a duplicate registration.
func RegisterScheme(s Scheme) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("repro: RegisterScheme with empty scheme name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		return fmt.Errorf("repro: scheme %q already registered", s.Name())
	}
	registry[s.Name()] = s
	return nil
}

// mustRegister is RegisterScheme for the built-in init path.
func mustRegister(s Scheme) {
	if err := RegisterScheme(s); err != nil {
		panic(err)
	}
}

// Lookup returns the scheme registered under name.
func Lookup(name string) (Scheme, error) {
	registryMu.RLock()
	s, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("repro: unknown scheme %q (registered: %v)", name, SchemeNames())
	}
	return s, nil
}

// Schemes returns every registered scheme, sorted by name.
func Schemes() []Scheme {
	registryMu.RLock()
	out := make([]Scheme, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	registryMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// SchemeNames returns the sorted names of every registered scheme.
func SchemeNames() []string {
	ss := Schemes()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name()
	}
	return names
}

// schemeFunc is the built-in Scheme implementation: a named run function
// plus a validator.
type schemeFunc struct {
	name     string
	desc     string
	validate func(o *Options) error
	run      func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error)
}

func (s *schemeFunc) Name() string        { return s.name }
func (s *schemeFunc) Description() string { return s.desc }

func (s *schemeFunc) Validate(o *Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	if s.validate != nil {
		return s.validate(o)
	}
	return nil
}

func (s *schemeFunc) Run(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
	return s.run(ctx, g, spec, o)
}

// ErrRoundBudget is the typed failure returned when a run exceeds the
// engine's WithMaxRounds budget: the scheme's billed rounds overran it, a
// gossip stage failed to cover its t-balls within its schedule, or the
// runaway guard cancelled the pipeline. Test for it with errors.Is.
var ErrRoundBudget = simulate.ErrRoundBudget

func init() {
	mustRegister(&schemeFunc{
		name: "direct",
		desc: "direct execution on G: ground truth, Θ(t·m) messages",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			hooks := o.hooks()
			outs, run, err := simulate.Direct(ctx, g, spec, o.Seed, hooks.RoundConfig(o.localConfig(), "direct"))
			if err != nil {
				return nil, err
			}
			cost := PhaseCost{Name: "direct", Rounds: run.Rounds, Messages: run.Messages,
				Dropped: run.Dropped, Duplicated: run.Duplicated}
			hooks.PhaseDone(cost)
			return &SimulationResult{
				Scheme:   "direct",
				Outputs:  outs,
				Rounds:   run.Rounds,
				Messages: run.Messages,
				Phases:   []PhaseCost{cost},
			}, nil
		},
	})
	mustRegister(&schemeFunc{
		name: "scheme1",
		desc: "Theorem 3 (i): Sampler spanner + stretch·t-round collection",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			res, err := simulate.Scheme1Src(ctx, g, spec, o.samplerParams(), o.Seed, o.localConfig(), o.hooks(), o.stage1)
			if err != nil {
				return nil, err
			}
			return replayResult(ctx, "scheme1", res, spec, o)
		},
	})
	mustRegister(&schemeFunc{
		name: "scheme2",
		desc: "Theorem 3 (ii): Sampler spanner simulates Baswana–Sen, whose spanner collects",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			res, err := simulate.Scheme2WithSrc(ctx, g, spec, o.samplerParams(),
				simulate.BaswanaSenStage2(o.StageK), o.Seed, o.localConfig(), o.hooks(), o.stage1)
			if err != nil {
				return nil, err
			}
			return replayResult(ctx, "scheme2", res, spec, o)
		},
	})
	mustRegister(&schemeFunc{
		name: "scheme2en",
		desc: "scheme2 with Elkin–Neiman as the simulated stage (k+O(1) rounds vs O(k²))",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			res, err := simulate.Scheme2WithSrc(ctx, g, spec, o.samplerParams(),
				simulate.ElkinNeimanStage2(o.StageK), o.Seed, o.localConfig(), o.hooks(), o.stage1)
			if err != nil {
				return nil, err
			}
			return replayResult(ctx, "scheme2en", res, spec, o)
		},
	})
	mustRegister(&schemeFunc{
		name: "gossip",
		desc: "push–pull gossip collection baseline (Censor-Hillel et al.; Haeupler)",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			return runGossip(ctx, g, spec, o, "gossip", "gossip", o.EarlyStop)
		},
	})
	mustRegister(&schemeFunc{
		name: "gossip-earlystop",
		desc: "gossip with central early stop: halts at the cover round, same bill, a fraction of the wall clock",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			return runGossip(ctx, g, spec, o, "gossip-earlystop", "gossip(earlystop)", true)
		},
	})
	mustRegister(&schemeFunc{
		name: "gossip-converge",
		desc: "early-stopped gossip + distributed termination detection (BFS-tree convergecast), detection billed as its own phase",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			budget := o.gossipBudget(g.NumNodes())
			hooks := o.hooks()
			coll, cover, msgs, err := simulate.GossipCollectEarly(ctx, g, spec.T, budget, o.Seed,
				hooks.RoundConfig(o.localConfig(), "gossip(earlystop)"))
			if err != nil {
				return nil, err
			}
			if cover < 0 {
				return nil, fmt.Errorf("gossip did not cover the %d-balls within %d rounds (raise WithMaxRounds): %w",
					spec.T, budget, ErrRoundBudget)
			}
			// Rounds/Messages are truncated at the cover round; damage
			// attribution covers the whole executed schedule (drop/duplicate
			// counts are not tracked per round, and under delay profiles the
			// in-flight gate can keep the run going well past cover).
			gossipCost := PhaseCost{Name: "gossip(earlystop)", Rounds: cover, Messages: msgs,
				Dropped: coll.Run.Dropped, Duplicated: coll.Run.Duplicated}
			hooks.PhaseDone(gossipCost)
			// The central stop check knew coverage was complete; distributed
			// nodes do not. Bill what *knowing you're done* costs: at the
			// stop round every node's local predicate ("my ball is covered")
			// is true, and one wave → convergecast-AND → broadcast-halt pass
			// over G's BFS tree carries the unanimous verdict to everyone.
			done := make([]bool, g.NumNodes())
			for v := range done {
				done[v] = true
			}
			dcfg := o.localConfig()
			dcfg.Seed = o.Seed
			ok, drun, err := globalcompute.DetectTermination(ctx, g, done, g.Diameter(),
				hooks.RoundConfig(dcfg, "converge(halt)"))
			if err != nil {
				return nil, fmt.Errorf("gossip-converge termination detection: %w", err)
			}
			if !ok {
				return nil, fmt.Errorf("gossip-converge termination detection returned a false verdict from all-true predicates")
			}
			detectCost := PhaseCost{Name: "converge(halt)", Rounds: drun.Rounds, Messages: drun.Messages,
				Dropped: drun.Dropped, Duplicated: drun.Duplicated}
			hooks.PhaseDone(detectCost)
			outs, err := coll.ReplayAllN(ctx, spec, o.Concurrency)
			if err != nil {
				return nil, err
			}
			return &SimulationResult{
				Scheme:   "gossip-converge",
				Outputs:  outs,
				Rounds:   cover + drun.Rounds,
				Messages: msgs + drun.Messages,
				Phases:   []PhaseCost{gossipCost, detectCost},
			}, nil
		},
	})
	mustRegister(&schemeFunc{
		name: "scheme1-congest",
		desc: "scheme1 under a CONGEST word cap: WithBandwidth words per edge per round, dilation in PhaseCost",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			res, err := simulate.Scheme1CongestSrc(ctx, g, spec, o.samplerParams(), o.bandwidth(g.NumNodes()),
				o.Seed, o.localConfig(), o.hooks(), o.stage1)
			if err != nil {
				return nil, err
			}
			return replayResult(ctx, "scheme1-congest", res, spec, o)
		},
	})
	mustRegister(&schemeFunc{
		name: "hybrid",
		desc: "gossip seeds WithHybridFraction of the t-balls, the Sampler spanner collects the residue",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			res, err := simulate.HybridSrc(ctx, g, spec, o.samplerParams(), o.HybridFraction,
				o.gossipBudget(g.NumNodes()), o.Seed, o.localConfig(), o.hooks(), o.stage1)
			if err != nil {
				return nil, err
			}
			return replayResult(ctx, "hybrid", res, spec, o)
		},
	})
	mustRegister(&schemeFunc{
		name: "globalcompute",
		desc: "Section 7: spanner BFS tree convergecasts all knowledge, O(stretch·D) rounds, O(n) tree messages",
		run: func(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
			res, err := simulate.GlobalCollectSrc(ctx, g, spec, o.samplerParams(), o.Seed, o.localConfig(), o.hooks(), o.stage1)
			if err != nil {
				return nil, err
			}
			return replayResult(ctx, "globalcompute", res, spec, o)
		},
	})
}

// runGossip is the shared run body of the gossip family's central variants:
// the plain fixed-schedule baseline ("gossip", optionally early-stopped via
// WithEarlyStop) and the always-early-stopping "gossip-earlystop". Both bill
// the cover round and the messages through it, so their results are
// bit-identical; early stopping only skips the schedule's dead tail. The
// phase label distinguishes the variants in observer streams and metrics.
func runGossip(ctx context.Context, g *Graph, spec AlgorithmSpec, o *Options, scheme, phase string, early bool) (*SimulationResult, error) {
	budget := o.gossipBudget(g.NumNodes())
	hooks := o.hooks()
	collect := simulate.GossipCollect
	if early {
		collect = simulate.GossipCollectEarly
	}
	coll, cover, msgs, err := collect(ctx, g, spec.T, budget, o.Seed,
		hooks.RoundConfig(o.localConfig(), phase))
	if err != nil {
		return nil, err
	}
	if cover < 0 {
		return nil, fmt.Errorf("gossip did not cover the %d-balls within %d rounds (raise WithMaxRounds): %w",
			spec.T, budget, ErrRoundBudget)
	}
	// As with the hybrid seed stage: the bill is truncated at the cover
	// round, but damage attribution covers the whole executed schedule.
	cost := PhaseCost{Name: phase, Rounds: cover, Messages: msgs,
		Dropped: coll.Run.Dropped, Duplicated: coll.Run.Duplicated}
	hooks.PhaseDone(cost)
	outs, err := coll.ReplayAllN(ctx, spec, o.Concurrency)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		Scheme:   scheme,
		Outputs:  outs,
		Rounds:   cover,
		Messages: msgs,
		Phases:   []PhaseCost{cost},
	}, nil
}

// replayResult recovers every node's output from a scheme's collection —
// fanning the independent per-node replays out over a worker pool under
// WithConcurrency — and packages the cost ledger.
func replayResult(ctx context.Context, scheme string, res *simulate.SchemeResult, spec AlgorithmSpec, o *Options) (*SimulationResult, error) {
	outs, err := res.Coll.ReplayAllN(ctx, spec, o.Concurrency)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		Scheme:       scheme,
		Outputs:      outs,
		Rounds:       res.TotalRounds(),
		Messages:     res.TotalMessages(),
		Phases:       res.Phases,
		StretchUsed:  res.StretchUsed,
		SpannerEdges: res.SpannerEdges,
	}, nil
}
