package repro

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/simulate"
)

// ErrDeadline is the typed failure returned when a run exceeds the engine's
// WithDeadline wall-clock budget: the run's context expires, every scheme's
// round loop aborts within one node step's work, and the result is discarded.
// It wraps context.DeadlineExceeded, so errors.Is matches either sentinel.
var ErrDeadline error = fmt.Errorf("repro: wall-clock deadline exceeded: %w", context.DeadlineExceeded)

// DefaultCacheSize is the stage-1 spanner cache's capacity when
// WithCacheSize is not given: enough for a healthy experiment sweep, small
// enough that a long-lived engine crossing many (graph, seed, parameter)
// keys stays bounded.
const DefaultCacheSize = 32

// Engine executes simulations under one fixed, validated configuration. It
// is cheap to construct, its configuration is immutable after construction,
// and it is safe for concurrent use by multiple goroutines (each Run gets
// its own copy of the options — but registered Observer instances are shared
// across Runs, so a stateful observer on a concurrently-used engine must be
// thread-safe; see Observer).
//
//	eng := repro.NewEngine(
//		repro.WithSeed(42),
//		repro.WithConcurrency(-1),
//		repro.WithGamma(2),
//	)
//	res, err := eng.Run(ctx, "scheme2en", g, repro.MIS(repro.MISRounds(n)))
//
// # Spanner cache
//
// The paper's stage-1 Sampler spanner is a one-off construction whose cost
// is meant to be amortized across many stage-2 executions. The engine
// therefore memoizes stage-1 artifacts keyed by (graph identity, seed,
// spanner parameters, model options): the first Run or BuildSpanner at a key
// constructs the spanner, every subsequent call at the same key reuses it
// without executing a single sampler round. Concurrent Runs at the same key
// are coalesced (single flight): one builds, the rest wait and share the
// artifact. A cache hit is observable as a PhaseCost named "sampler(cached)"
// with zero rounds and messages, so result ledgers report only what the run
// actually spent. Reset drops the cache; WithNoCache disables it.
type Engine struct {
	opts Options

	mu       sync.Mutex
	spanners map[spannerKey]*spannerEntry
	lru      *list.List // of spannerKey; front = most recently used
	cap      int
}

// spannerKey identifies one cached stage-1 construction: exactly the inputs
// that determine the Sampler's execution bit for bit. Concurrency is
// excluded (the sequential and concurrent engines produce identical
// executions), as is MaxRounds (the sampler schedules its own rounds).
type spannerKey struct {
	fingerprint  uint64
	nodes, edges int
	seed         uint64
	k, h         int
	c            float64
	kt1          bool
	logNSlack    float64
}

// spannerEntry is one cache slot. The creator builds the artifact and closes
// ready; waiters block on ready (or their own context). A failed or
// cancelled build is removed from the map so it does not poison the key.
// elem is the entry's recency-list slot, guarded by the engine mutex; it is
// nil once the entry has been evicted or removed.
type spannerEntry struct {
	ready chan struct{}
	st1   *simulate.Stage1
	err   error
	elem  *list.Element
}

// NewEngine builds an engine from functional options (see the With*
// functions). Unset options fall back to the paper's canonical defaults.
func NewEngine(opts ...Option) *Engine {
	o := newOptions(opts)
	size := o.CacheSize
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Engine{
		opts:     o,
		spanners: make(map[spannerKey]*spannerEntry),
		lru:      list.New(),
		cap:      size,
	}
}

// Options returns a copy of the engine's resolved options.
func (e *Engine) Options() Options {
	o := e.opts
	o.Observers = append([]Observer(nil), e.opts.Observers...)
	return o
}

// Reset drops every cached stage-1 spanner, so the next Run or BuildSpanner
// at any key constructs from scratch. Builds already in flight complete and
// hand their artifact to the runs waiting on them, but are not re-admitted
// to the cache. Reset is safe to call concurrently with Runs.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.spanners = make(map[spannerKey]*spannerEntry)
	e.lru = list.New()
	e.mu.Unlock()
}

// cachedStage1 is the simulate.Stage1Source bound to the engine's cache. On
// a miss it becomes the builder for its key (observers of the building run
// see the sampler rounds as usual); on a hit — or after waiting out a
// concurrent builder — it returns the memoized artifact under the zero-cost
// phase "sampler(cached)".
func (e *Engine) cachedStage1(ctx context.Context, g *graph.Graph, p core.Params, seed uint64, cfg local.Config, hooks simulate.Hooks) (*simulate.Stage1, PhaseCost, error) {
	key := spannerKey{
		fingerprint: g.Fingerprint(),
		nodes:       g.NumNodes(),
		edges:       g.NumEdges(),
		seed:        seed,
		k:           p.K,
		h:           p.H,
		c:           p.C,
		kt1:         cfg.KT1,
		logNSlack:   cfg.LogNSlack,
	}
	for {
		e.mu.Lock()
		ent, ok := e.spanners[key]
		if !ok {
			ent = &spannerEntry{ready: make(chan struct{})}
			ent.elem = e.lru.PushFront(key)
			e.spanners[key] = ent
			// LRU bound: evict the coldest entries beyond capacity (never the
			// one just admitted). An evicted in-flight build still completes
			// for its waiters; it is simply no longer re-usable afterwards.
			for e.lru.Len() > e.cap {
				back := e.lru.Back()
				if back == ent.elem {
					break
				}
				bk := back.Value.(spannerKey)
				if old := e.spanners[bk]; old != nil {
					old.elem = nil
				}
				delete(e.spanners, bk)
				e.lru.Remove(back)
			}
			e.mu.Unlock()
			st1, cost, err := simulate.BuildStage1(ctx, g, p, seed, cfg, hooks)
			ent.st1, ent.err = st1, err
			if err != nil {
				// Do not poison the key: a failed (or cancelled) build is
				// retried by the next run, not replayed to it.
				e.mu.Lock()
				if e.spanners[key] == ent {
					delete(e.spanners, key)
					if ent.elem != nil {
						e.lru.Remove(ent.elem)
						ent.elem = nil
					}
				}
				e.mu.Unlock()
			}
			close(ent.ready)
			return st1, cost, err
		}
		e.lru.MoveToFront(ent.elem)
		e.mu.Unlock()
		select {
		case <-ent.ready:
		case <-ctx.Done():
			return nil, PhaseCost{}, ctx.Err()
		}
		if ent.err == nil {
			return ent.st1, PhaseCost{Name: "sampler(cached)"}, nil
		}
		// The builder failed and removed the entry; retry (and possibly
		// become the builder) unless this run was itself cancelled.
		if err := ctx.Err(); err != nil {
			return nil, PhaseCost{}, err
		}
	}
}

// stage1Source resolves the stage-1 source for one run: the engine cache
// unless caching is disabled.
func (e *Engine) stage1Source(o *Options) simulate.Stage1Source {
	if o.NoCache {
		return simulate.BuildStage1
	}
	return e.cachedStage1
}

// Run looks up the named scheme in the registry, validates the engine's
// options against it, and executes it on g.
func (e *Engine) Run(ctx context.Context, scheme string, g *Graph, spec AlgorithmSpec) (*SimulationResult, error) {
	s, err := Lookup(scheme)
	if err != nil {
		return nil, err
	}
	return e.RunSchemeWith(ctx, s, g, spec)
}

// RunWith is Run with per-run option overrides: the extra options are
// layered over the engine's configuration for this run only, leaving the
// engine and its other runs untouched. This is the entry point for serving
// layers that multiplex many clients over one engine — the shared stage-1
// spanner cache keeps amortizing across requests while each request brings
// its own seed, budgets (WithMaxRounds, WithDeadline), and observers.
// Overrides are validated exactly like construction-time options; note that
// WithCacheSize only takes effect at engine construction.
func (e *Engine) RunWith(ctx context.Context, scheme string, g *Graph, spec AlgorithmSpec, extra ...Option) (*SimulationResult, error) {
	s, err := Lookup(scheme)
	if err != nil {
		return nil, err
	}
	return e.RunSchemeWith(ctx, s, g, spec, extra...)
}

// RunScheme executes an already-resolved scheme on g.
//
// A positive WithMaxRounds budget is enforced here, uniformly for every
// scheme: a result whose billed rounds exceed the budget is discarded and
// the run fails with ErrRoundBudget, and a pipeline whose *executed* rounds
// overshoot a safety multiple of the budget (a runaway protocol) is
// cancelled in flight and reported the same way. Schemes with their own
// schedule semantics (gossip's fixed-length seeding schedule) may execute
// more rounds than they bill; the budget governs what the result charges.
// Because it charges only what the run actually spends, the budget
// interacts with the spanner cache by design: a run that fails the budget
// on a cold cache (its bill includes the sampler construction) may succeed
// when repeated, once the cached stage-1 spanner brings the bill down to
// the collection phases alone — exactly the amortized cost the paper
// argues for. Budget a cold pipeline with WithNoCache or Reset.
//
// A positive WithDeadline is enforced the same way, as a wall-clock budget:
// the run executes under a context that expires after the configured
// duration, and a run cut short by it fails with the typed ErrDeadline.
func (e *Engine) RunScheme(ctx context.Context, s Scheme, g *Graph, spec AlgorithmSpec) (*SimulationResult, error) {
	return e.RunSchemeWith(ctx, s, g, spec)
}

// RunSchemeWith is RunScheme with per-run option overrides; see RunWith.
func (e *Engine) RunSchemeWith(ctx context.Context, s Scheme, g *Graph, spec AlgorithmSpec, extra ...Option) (*SimulationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s == nil {
		return nil, fmt.Errorf("repro: nil scheme")
	}
	if g == nil {
		return nil, fmt.Errorf("repro: nil graph")
	}
	o := e.Options() // private copy: schemes (and overrides) may not mutate engine state
	for _, fn := range extra {
		if fn != nil {
			fn(&o)
		}
	}
	o.stage1 = e.stage1Source(&o)
	if err := s.Validate(&o); err != nil {
		return nil, fmt.Errorf("repro: scheme %s: %w", s.Name(), err)
	}
	var deadlineCtx context.Context
	if o.Deadline > 0 {
		var cancel context.CancelFunc
		deadlineCtx, cancel = context.WithTimeout(ctx, o.Deadline)
		defer cancel()
		ctx = deadlineCtx
	}
	var guard *roundGuard
	if o.MaxRounds > 0 {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		guard = &roundGuard{limit: 2*o.MaxRounds + 64, cancel: cancel}
		o.Observers = append(o.Observers, guard)
		ctx = runCtx
	}
	res, err := s.Run(ctx, g, spec, &o)
	if guard != nil && guard.hit {
		return nil, fmt.Errorf("repro: scheme %s: pipeline cancelled after %d executed rounds, far over the %d-round budget: %w",
			s.Name(), guard.seen, o.MaxRounds, ErrRoundBudget)
	}
	if err != nil {
		// Attribute a deadline expiry to the engine budget only when the
		// budget's own context actually expired — a parent context that
		// carried its own earlier deadline keeps its plain error.
		if deadlineCtx != nil && errors.Is(err, context.DeadlineExceeded) &&
			errors.Is(deadlineCtx.Err(), context.DeadlineExceeded) {
			return nil, fmt.Errorf("repro: scheme %s: run exceeded its %v wall-clock budget: %w",
				s.Name(), o.Deadline, ErrDeadline)
		}
		return nil, err
	}
	if o.MaxRounds > 0 && res.Rounds > o.MaxRounds {
		return nil, fmt.Errorf("repro: scheme %s billed %d rounds, over the %d-round budget: %w",
			s.Name(), res.Rounds, o.MaxRounds, ErrRoundBudget)
	}
	return res, nil
}

// roundGuard is the engine's runaway backstop: an observer that counts every
// executed LOCAL round of a run and cancels the run's context once the count
// passes its limit. It runs on the run's coordinating goroutine, like every
// observer, so its fields need no further synchronization.
type roundGuard struct {
	limit  int
	cancel context.CancelFunc
	seen   int
	hit    bool
}

func (r *roundGuard) RoundCompleted(string, int, int64) {
	r.seen++
	if r.seen > r.limit && !r.hit {
		r.hit = true
		r.cancel()
	}
}

func (r *roundGuard) PhaseCompleted(PhaseCost) {}

// BuildSpanner runs the distributed algorithm Sampler (the paper's
// Section 5) on the connected simple graph g under the engine's options and
// returns the spanner with its cost ledger. Parameters come from
// WithSpannerParams, defaulting to the paper's K=2, H=4. Observers see a
// fresh construction as phase "sampler" and a cache hit as the zero-cost
// phase "sampler(cached)"; in both cases the returned Spanner carries the
// construction's original round and message costs. Cancelling ctx aborts a
// fresh construction mid-round.
func (e *Engine) BuildSpanner(ctx context.Context, g *Graph) (*Spanner, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("repro: BuildSpanner: nil graph")
	}
	o := e.Options()
	if err := o.validate(); err != nil {
		return nil, fmt.Errorf("repro: BuildSpanner: %w", err)
	}
	hooks := o.hooks()
	st1, cost, err := e.stage1Source(&o)(ctx, g, o.buildSpannerParams(), o.Seed, o.localConfig(), hooks)
	if err != nil {
		return nil, err
	}
	hooks.PhaseDone(cost)
	// Copy the edge set: the cached artifact is shared across runs and must
	// stay immutable.
	edges := make(map[EdgeID]bool, len(st1.S))
	for id := range st1.S {
		edges[id] = true
	}
	return &Spanner{
		Edges:        edges,
		StretchBound: st1.Stretch,
		Rounds:       st1.Rounds,
		Messages:     st1.Messages,
	}, nil
}
