package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Engine executes simulations under one fixed, validated configuration. It
// is cheap to construct, immutable after construction, and safe for
// concurrent use by multiple goroutines (each Run gets its own copy of the
// options — but registered Observer instances are shared across Runs, so a
// stateful observer on a concurrently-used engine must be thread-safe; see
// Observer).
//
//	eng := repro.NewEngine(
//		repro.WithSeed(42),
//		repro.WithConcurrency(-1),
//		repro.WithGamma(2),
//	)
//	res, err := eng.Run(ctx, "scheme2en", g, repro.MIS(repro.MISRounds(n)))
type Engine struct {
	opts Options
}

// NewEngine builds an engine from functional options (see the With*
// functions). Unset options fall back to the paper's canonical defaults.
func NewEngine(opts ...Option) *Engine {
	return &Engine{opts: newOptions(opts)}
}

// Options returns a copy of the engine's resolved options.
func (e *Engine) Options() Options {
	o := e.opts
	o.Observers = append([]Observer(nil), e.opts.Observers...)
	return o
}

// Run looks up the named scheme in the registry, validates the engine's
// options against it, and executes it on g.
func (e *Engine) Run(ctx context.Context, scheme string, g *Graph, spec AlgorithmSpec) (*SimulationResult, error) {
	s, err := Lookup(scheme)
	if err != nil {
		return nil, err
	}
	return e.RunScheme(ctx, s, g, spec)
}

// RunScheme executes an already-resolved scheme on g.
func (e *Engine) RunScheme(ctx context.Context, s Scheme, g *Graph, spec AlgorithmSpec) (*SimulationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s == nil {
		return nil, fmt.Errorf("repro: nil scheme")
	}
	if g == nil {
		return nil, fmt.Errorf("repro: nil graph")
	}
	o := e.Options() // private copy: schemes may not mutate engine state
	if err := s.Validate(&o); err != nil {
		return nil, fmt.Errorf("repro: scheme %s: %w", s.Name(), err)
	}
	return s.Run(ctx, g, spec, &o)
}

// BuildSpanner runs the distributed algorithm Sampler (the paper's
// Section 5) on the connected simple graph g under the engine's options and
// returns the spanner with its cost ledger. Parameters come from
// WithSpannerParams, defaulting to the paper's K=2, H=4. Observers see the
// construction as phase "sampler"; cancelling ctx aborts it mid-round.
func (e *Engine) BuildSpanner(ctx context.Context, g *Graph) (*Spanner, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := e.Options()
	if err := o.validate(); err != nil {
		return nil, fmt.Errorf("repro: BuildSpanner: %w", err)
	}
	hooks := o.hooks()
	res, err := core.BuildDistributedCtx(ctx, g, o.buildSpannerParams(), o.Seed,
		hooks.RoundConfig(o.localConfig(), "sampler"))
	if err != nil {
		return nil, err
	}
	hooks.PhaseDone(PhaseCost{Name: "sampler", Rounds: res.Run.Rounds, Messages: res.Run.Messages})
	return &Spanner{
		Edges:        res.S,
		StretchBound: res.StretchBound(),
		Rounds:       res.Run.Rounds,
		Messages:     res.Run.Messages,
	}, nil
}
