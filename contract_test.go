package repro_test

// Satellite audits pinned as regression tests: (1) the Observer
// single-goroutine contract — within one Run, callbacks fire only from that
// run's coordinating goroutine, even on the concurrent engine with its
// parallel replay fan-out — pinned by running every scheme with a
// deliberately non-thread-safe observer under the race detector; (2) the
// engine's runaway round guard must never cancel a run whose *billed*
// rounds fit the budget, even for schemes that legitimately execute more
// rounds than they bill (gossip's fixed schedule, hybrid's geometric
// seeding retries, congest's dilation).

import (
	"context"
	"reflect"
	"testing"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// unsyncObserver is deliberately not safe for concurrent use: it mutates a
// map and appends to slices without synchronization. Any scheme that fires
// an observer callback from a worker goroutine — instead of the run's
// coordinating goroutine, as observer.go promises — turns the map write
// into a detectable data race under -race.
type unsyncObserver struct {
	rounds map[string]int
	phases []string
}

func (o *unsyncObserver) RoundCompleted(phase string, round int, messages int64) {
	o.rounds[phase]++
}

func (o *unsyncObserver) PhaseCompleted(c repro.PhaseCost) {
	o.phases = append(o.phases, c.Name)
}

// TestObserverSingleGoroutineContract runs every registered scheme on the
// concurrent engine (WithConcurrency(-1): concurrent node stepping AND the
// parallel ReplayAllN path, plus congest's split/filler rounds) with an
// unsynchronized observer. A worker-goroutine emission fails under -race;
// the count checks ensure the callbacks actually fired.
func TestObserverSingleGoroutineContract(t *testing.T) {
	g := gen.ConnectedGNP(30, 0.14, xrand.New(13))
	spec := repro.MaxID(2)
	for _, s := range repro.Schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			obs := &unsyncObserver{rounds: map[string]int{}}
			eng := repro.NewEngine(
				repro.WithSeed(4),
				repro.WithConcurrency(-1),
				repro.WithNoCache(),
				repro.WithObserver(obs),
			)
			if _, err := eng.RunScheme(context.Background(), s, g, spec); err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, n := range obs.rounds {
				total += n
			}
			if total == 0 {
				t.Fatal("observer saw no rounds")
			}
			if len(obs.phases) == 0 {
				t.Fatal("observer saw no phase completions")
			}
		})
	}
}

// TestRoundGuardNeverCancelsWithinBudget is the spurious-cancellation table
// test: for every scheme, measure an unbudgeted run's billed rounds, then
// rerun with WithMaxRounds set to exactly that bill. The run must succeed
// with identical outputs — schemes that execute unbilled schedule rounds
// (gossip runs its full schedule and bills the cover round; hybrid replays
// geometrically growing gossip budgets; congest executes its dilated
// schedule) must not trip the executed-rounds backstop.
func TestRoundGuardNeverCancelsWithinBudget(t *testing.T) {
	g := gen.ConnectedGNP(30, 0.14, xrand.New(13))
	spec := repro.MaxID(2)
	for _, s := range repro.Schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			base := repro.NewEngine(repro.WithSeed(4), repro.WithNoCache())
			ref, err := base.RunScheme(context.Background(), s, g, spec)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Rounds <= 0 {
				t.Fatalf("unbudgeted run billed %d rounds", ref.Rounds)
			}
			tight := repro.NewEngine(
				repro.WithSeed(4),
				repro.WithNoCache(),
				repro.WithMaxRounds(ref.Rounds),
			)
			res, err := tight.RunScheme(context.Background(), s, g, spec)
			if err != nil {
				t.Fatalf("budget exactly equal to the %d billed rounds failed: %v", ref.Rounds, err)
			}
			if res.Rounds != ref.Rounds {
				t.Fatalf("billed %d rounds under the budget, %d without", res.Rounds, ref.Rounds)
			}
			if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
				t.Fatal("outputs drifted under a tight round budget")
			}
			// One under the bill must fail with the typed budget error, and
			// cleanly — not via a spurious mid-flight cancellation of some
			// other scheme's schedule. (Schemes whose schedule length is the
			// budget itself — gossip, hybrid — may legitimately bill fewer
			// rounds under the smaller budget, so only the equal-budget case
			// above asserts success.)
			if _, err := repro.NewEngine(
				repro.WithSeed(4),
				repro.WithNoCache(),
				repro.WithMaxRounds(ref.Rounds-1),
			).RunScheme(context.Background(), s, g, spec); err == nil {
				if s.Name() == "gossip" || s.Name() == "hybrid" {
					return // smaller budget can still cover; success is legal
				}
				t.Fatalf("budget one under the %d billed rounds succeeded", ref.Rounds)
			}
		})
	}
}
