package repro_test

// Tests for the registry growth of this PR: the engine-wide option
// validation matrix, the WithMaxRounds round-budget guard, the LRU bound on
// the stage-1 spanner cache, and the scheme-specific behaviour of the
// CONGEST-budgeted and hybrid pipelines.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// TestSchemeValidationMatrix is the registry-wide validation table: every
// registered scheme must reject every nonsense option value — Gamma < 1,
// StageK < 1, Bandwidth < 1, HybridFraction outside (0,1], a negative
// CacheSize, a sub-1 LogNSlack — before any simulation work starts (no
// round event may fire).
func TestSchemeValidationMatrix(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(2)
	bad := []struct {
		name string
		opt  repro.Option
	}{
		{"gamma0", repro.WithGamma(0)},
		{"gamma-negative", repro.WithGamma(-2)},
		{"stagek0", repro.WithStageK(0)},
		{"bandwidth0", repro.WithBandwidth(0)},
		{"bandwidth-negative", repro.WithBandwidth(-8)},
		{"hybridfraction0", repro.WithHybridFraction(0)},
		{"hybridfraction-above-1", repro.WithHybridFraction(1.01)},
		{"cachesize-negative", repro.WithCacheSize(-1)},
		{"lognslack-below-1", repro.WithLogNSlack(0.5)},
		{"deadline0", repro.WithDeadline(0)},
		{"deadline-negative", repro.WithDeadline(-time.Second)},
	}
	for _, tc := range bad {
		for _, s := range repro.Schemes() {
			t.Run(fmt.Sprintf("%s/%s", tc.name, s.Name()), func(t *testing.T) {
				rounds := 0
				eng := repro.NewEngine(tc.opt, repro.WithObserver(repro.ObserverFuncs{
					OnRound: func(string, int, int64) { rounds++ },
				}))
				if _, err := eng.RunScheme(context.Background(), s, g, spec); err == nil {
					t.Fatalf("scheme %s accepted %s", s.Name(), tc.name)
				}
				if rounds != 0 {
					t.Fatalf("scheme %s executed %d rounds before rejecting %s", s.Name(), rounds, tc.name)
				}
			})
		}
	}
}

// TestRoundBudgetGuard is the per-scheme budget table: with a budget far
// below what any pipeline needs, every registered scheme must fail with the
// typed ErrRoundBudget — the gossip-backed schemes through their seeding
// schedule, the rest through the engine-level guard on billed rounds.
func TestRoundBudgetGuard(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(3)
	for _, s := range repro.Schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			eng := repro.NewEngine(repro.WithSeed(3), repro.WithMaxRounds(2))
			_, err := eng.RunScheme(context.Background(), s, g, spec)
			if err == nil {
				t.Fatalf("scheme %s ran within a 2-round budget", s.Name())
			}
			if !errors.Is(err, repro.ErrRoundBudget) {
				t.Fatalf("scheme %s failed with %v, want ErrRoundBudget", s.Name(), err)
			}
		})
	}
	// A generous budget must not interfere.
	eng := repro.NewEngine(repro.WithSeed(3), repro.WithMaxRounds(5000))
	for _, s := range repro.Schemes() {
		if _, err := eng.RunScheme(context.Background(), s, g, spec); err != nil {
			t.Fatalf("scheme %s failed under a generous budget: %v", s.Name(), err)
		}
	}
}

// TestDeadlineBudget is the registry-wide table for WithDeadline, the
// wall-clock twin of WithMaxRounds: under a deadline that has effectively
// already expired, every registered scheme must abort through the shared ctx
// plumbing and fail with the typed ErrDeadline (which also matches
// context.DeadlineExceeded); under a generous deadline, every scheme must
// complete untouched.
func TestDeadlineBudget(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(3)
	for _, s := range repro.Schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			eng := repro.NewEngine(repro.WithSeed(3), repro.WithDeadline(time.Nanosecond))
			_, err := eng.RunScheme(context.Background(), s, g, spec)
			if err == nil {
				t.Fatalf("scheme %s completed within a 1ns wall-clock budget", s.Name())
			}
			if !errors.Is(err, repro.ErrDeadline) {
				t.Fatalf("scheme %s failed with %v, want ErrDeadline", s.Name(), err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("scheme %s: ErrDeadline chain lost context.DeadlineExceeded: %v", s.Name(), err)
			}
		})
	}
	// A generous budget must not interfere, and a parent context's own
	// earlier deadline must keep its plain error rather than be rebranded
	// as the engine's budget.
	eng := repro.NewEngine(repro.WithSeed(3), repro.WithDeadline(time.Hour))
	for _, s := range repro.Schemes() {
		if _, err := eng.RunScheme(context.Background(), s, g, spec); err != nil {
			t.Fatalf("scheme %s failed under a generous deadline: %v", s.Name(), err)
		}
	}
}

// TestRunWithOverrides pins the per-run override layer the serving facade
// rides on: one engine, per-run budgets and observers, no cross-run bleed —
// and a spanner cached by one override set is visible to the next run at the
// same key.
func TestRunWithOverrides(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(3)
	eng := repro.NewEngine(repro.WithSeed(3))

	// Per-run round budget: the override must fail this run only.
	if _, err := eng.RunWith(context.Background(), "scheme1", g, spec, repro.WithMaxRounds(2)); !errors.Is(err, repro.ErrRoundBudget) {
		t.Fatalf("override WithMaxRounds(2): got %v, want ErrRoundBudget", err)
	}
	// The engine's own configuration is untouched: the same run without the
	// override succeeds, and warms the cache for the key (seed 3, gamma 1).
	if _, err := eng.RunWith(context.Background(), "scheme1", g, spec); err != nil {
		t.Fatalf("post-override run failed: %v", err)
	}

	// A per-run observer sees this run; the cached stage-1 spanner from the
	// previous run is reused (zero-cost "sampler(cached)" phase).
	var phases []string
	res, err := eng.RunWith(context.Background(), "scheme1", g, spec,
		repro.WithObserver(repro.ObserverFuncs{
			OnPhase: func(c repro.PhaseCost) { phases = append(phases, c.Name) },
		}))
	if err != nil {
		t.Fatalf("observed run failed: %v", err)
	}
	cached := false
	for _, name := range phases {
		if name == "sampler(cached)" {
			cached = true
		}
	}
	if !cached {
		t.Fatalf("override run did not reuse the engine cache; phases %v", phases)
	}
	for _, ph := range res.Phases {
		if ph.Name == "sampler" {
			t.Fatalf("override run rebuilt the spanner: %+v", res.Phases)
		}
	}

	// A per-run seed override lands on a different cache key: fresh build.
	var phases2 []string
	if _, err := eng.RunWith(context.Background(), "scheme1", g, spec,
		repro.WithSeed(77),
		repro.WithObserver(repro.ObserverFuncs{
			OnPhase: func(c repro.PhaseCost) { phases2 = append(phases2, c.Name) },
		})); err != nil {
		t.Fatalf("seed-override run failed: %v", err)
	}
	fresh := false
	for _, name := range phases2 {
		if name == "sampler" {
			fresh = true
		}
	}
	if !fresh {
		t.Fatalf("seed override did not move the cache key; phases %v", phases2)
	}
}

// TestRoundBudgetCancelsRunaway checks the live half of the guard: a
// pipeline whose executed rounds far overshoot the budget is cancelled in
// flight, not merely rejected after completing.
func TestRoundBudgetCancelsRunaway(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.08, xrand.New(8))
	rounds := 0
	eng := repro.NewEngine(
		repro.WithSeed(1),
		repro.WithMaxRounds(3),
		repro.WithObserver(repro.ObserverFuncs{
			OnRound: func(string, int, int64) { rounds++ },
		}),
	)
	// MaxID(200) executes 201 rounds directly — far beyond 2·3+64.
	_, err := eng.Run(context.Background(), "direct", g, repro.MaxID(200))
	if !errors.Is(err, repro.ErrRoundBudget) {
		t.Fatalf("got %v, want ErrRoundBudget", err)
	}
	if rounds >= 201 {
		t.Fatalf("runaway run executed all %d rounds; the guard never cancelled", rounds)
	}
}

// TestCacheEviction pins the LRU bound of the stage-1 spanner cache: with
// capacity 1, alternating between two graphs evicts on every switch; with
// capacity 2, the same sequence hits.
func TestCacheEviction(t *testing.T) {
	ga := gen.ConnectedGNP(40, 0.12, xrand.New(101))
	gb := gen.ConnectedGNP(40, 0.12, xrand.New(202))
	spec := repro.MaxID(3)
	sequence := []*repro.Graph{ga, gb, ga}

	runAll := func(size int) (built, hits int) {
		rec := newPhaseRecorder()
		eng := repro.NewEngine(repro.WithSeed(7), repro.WithCacheSize(size), repro.WithObserver(rec))
		for _, g := range sequence {
			if _, err := eng.Run(context.Background(), "scheme1", g, spec); err != nil {
				t.Fatal(err)
			}
		}
		return rec.phaseNameCount("sampler"), rec.phaseNameCount("sampler(cached)")
	}

	if built, hits := runAll(1); built != 3 || hits != 0 {
		t.Fatalf("capacity 1: %d builds and %d hits over A,B,A; want 3 and 0 (LRU must evict)", built, hits)
	}
	if built, hits := runAll(2); built != 2 || hits != 1 {
		t.Fatalf("capacity 2: %d builds and %d hits over A,B,A; want 2 and 1", built, hits)
	}
}

// TestCongestBandwidth pins the CONGEST scheme's contract against plain
// scheme1: with unbounded bandwidth the budgeted flood degenerates to the
// LOCAL schedule (identical collect rounds and messages, dilation exactly
// 1), while a one-word cap must dilate rounds and report the factor in
// PhaseCost.Dilation — with outputs bit-identical in both regimes.
func TestCongestBandwidth(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(3)
	const seed = 7
	base, err := repro.NewEngine(repro.WithSeed(seed)).Run(context.Background(), "scheme1", g, spec)
	if err != nil {
		t.Fatal(err)
	}
	collectOf := func(res *repro.SimulationResult) repro.PhaseCost {
		t.Helper()
		for _, ph := range res.Phases {
			if ph.Name == "collect(congest)" {
				return ph
			}
		}
		t.Fatalf("no collect(congest) phase in %+v", res.Phases)
		return repro.PhaseCost{}
	}
	baseCollect := base.Phases[len(base.Phases)-1]

	wide, err := repro.NewEngine(repro.WithSeed(seed), repro.WithBandwidth(1<<20)).
		Run(context.Background(), "scheme1-congest", g, spec)
	if err != nil {
		t.Fatal(err)
	}
	sameOutputs(t, "unbounded bandwidth", wide.Outputs, base.Outputs)
	wc := collectOf(wide)
	if wc.Rounds != baseCollect.Rounds || wc.Messages != baseCollect.Messages {
		t.Fatalf("unbounded-bandwidth collect (%d rounds, %d msgs) != scheme1 collect (%d, %d)",
			wc.Rounds, wc.Messages, baseCollect.Rounds, baseCollect.Messages)
	}
	if wc.Dilation != 1 {
		t.Fatalf("unbounded bandwidth dilation %v, want exactly 1", wc.Dilation)
	}

	narrow, err := repro.NewEngine(repro.WithSeed(seed), repro.WithBandwidth(1)).
		Run(context.Background(), "scheme1-congest", g, spec)
	if err != nil {
		t.Fatal(err)
	}
	sameOutputs(t, "one-word bandwidth", narrow.Outputs, base.Outputs)
	nc := collectOf(narrow)
	if nc.Rounds <= baseCollect.Rounds {
		t.Fatalf("one-word bandwidth did not dilate: %d rounds vs base %d", nc.Rounds, baseCollect.Rounds)
	}
	if nc.Dilation <= 1 {
		t.Fatalf("one-word bandwidth reported dilation %v, want > 1", nc.Dilation)
	}
}

// TestHybridResidue pins the hybrid composition: at fraction 1 the gossip
// stage covers every t-ball, so the spanner's residue flood carries nothing;
// at a small fraction the residue flood does the heavy lifting. Outputs
// match direct execution in both regimes (the fidelity matrix checks the
// default fraction).
func TestHybridResidue(t *testing.T) {
	g := testGraph()
	spec := repro.MaxID(3)
	const seed = 7
	direct, err := repro.NewEngine(repro.WithSeed(seed)).Run(context.Background(), "direct", g, spec)
	if err != nil {
		t.Fatal(err)
	}
	residueOf := func(res *repro.SimulationResult) repro.PhaseCost {
		t.Helper()
		for _, ph := range res.Phases {
			if ph.Name == "collect(residue)" {
				return ph
			}
		}
		t.Fatalf("no collect(residue) phase in %+v", res.Phases)
		return repro.PhaseCost{}
	}
	for _, fraction := range []float64{0.1, 1} {
		res, err := repro.NewEngine(repro.WithSeed(seed), repro.WithHybridFraction(fraction)).
			Run(context.Background(), "hybrid", g, spec)
		if err != nil {
			t.Fatalf("fraction %v: %v", fraction, err)
		}
		sameOutputs(t, fmt.Sprintf("fraction %v", fraction), res.Outputs, direct.Outputs)
		if fraction == 1 {
			if msgs := residueOf(res).Messages; msgs != 0 {
				t.Fatalf("full gossip coverage still flooded %d residue messages", msgs)
			}
		}
	}
}
